// Domain example: compile a Cuccaro ripple-carry adder down to a
// compressed TQEC layout, with the end-to-end verifier and visual exports.
//
//   ./examples/adder_pipeline [bits] [out-prefix]
//
// Writes <prefix>.obj and <prefix>.svg when a prefix is given.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/compiler.h"
#include "decompose/decompose.h"
#include "geom/export_obj.h"
#include "geom/export_svg.h"
#include "icm/builder.h"
#include "qcir/library.h"
#include "qcir/optimizer.h"
#include "verify/verifier.h"

int main(int argc, char** argv) {
  using namespace tqec;

  const int bits = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::string prefix = argc > 2 ? argv[2] : "";

  const qcir::Circuit adder = qcir::make_ripple_adder(bits);
  std::printf("%d-bit Cuccaro adder: %d qubits, %zu gates\n", bits,
              adder.num_qubits(), adder.size());

  const qcir::Circuit optimized = qcir::optimize(adder);
  const qcir::Circuit clifford_t = decompose::decompose(optimized);
  const icm::IcmCircuit icm = icm::from_clifford_t(clifford_t);
  const icm::IcmStats stats = icm.stats();
  std::printf("after decomposition: %d ICM lines, %d CNOTs, %d |A> (T "
              "gates), %d |Y>\n",
              stats.qubits, stats.cnots, stats.a_states, stats.y_states);

  core::CompileOptions opt;
  opt.seed = 7;
  opt.keep_internals = true;
  const core::CompileResult result = core::compile(icm, opt);
  const Vec3 dims = result.routing.bounding.dims();
  std::printf("compressed layout: volume %lld (%dx%dx%d), %.1fx below the "
              "canonical form, %s\n",
              static_cast<long long>(result.volume), dims.x, dims.y, dims.z,
              static_cast<double>(result.canonical_volume) /
                  static_cast<double>(result.volume),
              result.routed_legal ? "legally routed" : "NOT legal");

  const verify::VerifyReport report = verify::verify_result(result);
  std::printf("verification: %s\n", report.summary().c_str());

  if (!prefix.empty()) {
    geom::write_obj_file(result.geometry, prefix + ".obj");
    geom::write_svg_file(result.geometry, prefix + ".svg");
    std::printf("wrote %s.obj and %s.svg\n", prefix.c_str(), prefix.c_str());
  }
  return report.ok() && result.routed_legal ? 0 : 1;
}
