// Quickstart: compress a small reversible circuit end-to-end.
//
//   reversible circuit -> Clifford+T -> ICM -> PD graph -> I-shape ->
//   flipping/primal bridging -> dual bridging -> 2.5D placement -> routing
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/compiler.h"
#include "decompose/decompose.h"
#include "geom/canonical.h"
#include "geom/validate.h"
#include "icm/builder.h"
#include "qcir/circuit.h"

int main() {
  using namespace tqec;

  // A 1-bit full adder out of Toffoli/CNOT gates (a, b, cin, cout).
  qcir::Circuit adder(4, "full-adder");
  adder.add(qcir::Gate::toffoli(0, 1, 3));
  adder.add(qcir::Gate::cnot(0, 1));
  adder.add(qcir::Gate::toffoli(1, 2, 3));
  adder.add(qcir::Gate::cnot(1, 2));
  adder.add(qcir::Gate::cnot(0, 1));

  // Stage 1: gate decomposition to Clifford+T, then the ICM form.
  const qcir::Circuit clifford_t = decompose::decompose(adder);
  const icm::IcmCircuit icm = icm::from_clifford_t(clifford_t);
  const icm::IcmStats stats = icm.stats();
  std::printf("ICM form: %d lines, %d CNOTs, %d |Y>, %d |A>\n", stats.qubits,
              stats.cnots, stats.y_states, stats.a_states);
  std::printf("canonical space-time volume: %lld\n",
              static_cast<long long>(geom::canonical_volume(stats)));

  // Stages 2-7: the bridge-compression pipeline.
  core::CompileOptions options;
  options.seed = 7;
  const core::CompileResult result = core::compile(icm, options);

  std::printf("PD graph: %d modules, %d dual nets\n", result.modules,
              stats.cnots);
  std::printf("compression: %d I-shape merges, %d primal bridges, %d dual "
              "bridges -> %d placement nodes, %d net components\n",
              result.ishape_merges, result.primal_bridges,
              result.dual_bridges, result.nodes, result.net_components);
  const Vec3 dims = result.routing.bounding.dims();
  std::printf("final space-time volume: %lld (%dx%dx%d), %s\n",
              static_cast<long long>(result.volume), dims.x, dims.y, dims.z,
              result.routed_legal ? "legally routed" : "NOT legal");
  std::printf("reduction vs canonical: %.1fx\n",
              static_cast<double>(result.canonical_volume) /
                  static_cast<double>(result.volume));

  const geom::ValidationReport report = geom::validate(result.geometry);
  std::printf("geometry validation: %s\n", report.summary().c_str());
  return report.ok() && result.routed_legal ? 0 : 1;
}
