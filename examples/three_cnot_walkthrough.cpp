// Didactic walkthrough of the paper's 3-CNOT worked example, printing the
// intermediate state after every stage so the figures of the paper can be
// followed in the terminal:
//   Fig. 6  — PD-graph construction (p0..p5, d0..d2)
//   Fig. 10 — I-shaped simplification
//   Fig. 13 — flipping operation / greedy primal bridging
//   Fig. 14 — iterative dual bridging
//   Fig. 1  — final geometry and the 2x1x3 = 6 volume
#include <cstdio>

#include "compress/dual_bridging.h"
#include "compress/flipping.h"
#include "compress/ishape.h"
#include "core/compiler.h"
#include "core/paper_tables.h"
#include "geom/geometry.h"
#include "pdgraph/pd_graph.h"

int main() {
  using namespace tqec;

  const icm::IcmCircuit circuit = core::three_cnot_example();
  std::printf("The 3-CNOT example: CNOT(A->B), CNOT(C->B), CNOT(B->A)\n\n");

  // --- Fig. 6: PD graph ---------------------------------------------------
  const pdgraph::PdGraph graph = pdgraph::build_pd_graph(circuit);
  std::printf("[Fig. 6] PD graph: %d primal modules, %d dual nets\n",
              graph.module_count(), graph.net_count());
  for (const pdgraph::PrimalModule& m : graph.modules()) {
    std::printf("  p%d (row %c%s): nets {", m.id,
                static_cast<char>('A' + m.row),
                m.origin == pdgraph::ModuleOrigin::Innovative ? ", innovative"
                                                              : "");
    for (std::size_t i = 0; i < m.nets.size(); ++i)
      std::printf("%sd%d", i ? ", " : "", m.nets[i]);
    std::printf("}\n");
  }

  // --- Fig. 10: I-shaped simplification ------------------------------------
  const compress::IshapeResult ishape = compress::simplify_ishape(graph);
  std::printf("\n[Fig. 10] I-shaped simplification: %d merges\n",
              ishape.merge_count());
  for (const compress::IshapeMerge& merge : ishape.merges())
    std::printf("  merge p%d + p%d via d%d (x-axis bridge)\n",
                merge.im_module, merge.partner, merge.net);
  std::printf("  zones after splits (Fig. 14(a)):\n");
  for (int m = 0; m < graph.module_count(); ++m) {
    const auto& zone = ishape.zone_nets()[static_cast<std::size_t>(m)];
    if (zone.empty()) continue;
    std::printf("    p%d: {", m);
    for (std::size_t i = 0; i < zone.size(); ++i)
      std::printf("%sd%d", i ? ", " : "", zone[i]);
    std::printf("}\n");
  }

  // --- Fig. 13: flipping / primal bridging ---------------------------------
  const compress::PrimalBridging bridging =
      compress::bridge_primal(graph, ishape, 7);
  std::printf("\n[Fig. 13] primal bridging: %d chain(s)\n",
              bridging.chain_count());
  for (const compress::Chain& chain : bridging.chains) {
    std::printf("  chain:");
    for (compress::PointId p : chain.points) {
      std::printf(" {");
      const auto& members =
          bridging.point_members[static_cast<std::size_t>(p)];
      for (std::size_t i = 0; i < members.size(); ++i)
        std::printf("%sp%d", i ? "," : "", members[i]);
      std::printf("}f=%d",
                  bridging.flip_of_point[static_cast<std::size_t>(p)]);
    }
    std::printf("\n");
  }

  // --- Fig. 14: iterative dual bridging -------------------------------------
  compress::DualBridging dual = compress::bridge_dual(graph, ishape);
  std::printf("\n[Fig. 14] dual bridging: %d bridge(s), %d net "
              "component(s)\n",
              dual.bridge_count(), dual.component_count());
  for (const compress::DualBridge& bridge : dual.bridges())
    std::printf("  bridge d%d + d%d at p%d\n", bridge.net_a, bridge.net_b,
                bridge.site);

  // --- Fig. 1(e): final geometry --------------------------------------------
  core::CompileOptions opt;
  opt.seed = 7;
  const core::CompileResult result = core::compile(circuit, opt);
  const Vec3 dims = result.routing.bounding.dims();
  std::printf("\n[Fig. 1(e)] final space-time volume: %lld (%dx%dx%d); the "
              "paper reports 6 (2x1x3)\n",
              static_cast<long long>(result.volume), dims.x, dims.y, dims.z);
  std::printf("\n%s", geom::describe(result.geometry).c_str());
  return 0;
}
