// Compare every implemented flow on one benchmark workload:
// canonical form, Lin'17 1-D / 2-D layout synthesis, modularization only,
// the dual-only bridging baseline [Hsu DAC'21], and the full primal+dual
// bridge compression.
//
//   ./examples/baseline_comparison [benchmark-name] [effort]
//
// Benchmark names are the paper's (default 4gt10-v1_81); see
// core/paper_tables.h for the list.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baseline/lin2017.h"
#include "core/compiler.h"
#include "core/paper_tables.h"
#include "geom/canonical.h"
#include "icm/workload.h"

int main(int argc, char** argv) {
  using namespace tqec;

  const std::string name = argc > 1 ? argv[1] : "4gt10-v1_81";
  const double effort = argc > 2 ? std::atof(argv[2]) : 1.0;

  const core::PaperBenchmark& bench = core::paper_benchmark(name);
  const icm::IcmCircuit circuit =
      icm::make_workload(core::workload_spec(bench));
  const std::int64_t canonical = geom::canonical_volume(circuit.stats());

  std::printf("benchmark %s: %d lines, %d CNOTs\n\n", name.c_str(),
              circuit.stats().qubits, circuit.stats().cnots);
  std::printf("%-34s %14s %10s\n", "flow", "volume", "vs ours");

  const baseline::LinResult lin1 = baseline::lin_1d(circuit);
  const baseline::LinResult lin2 = baseline::lin_2d(circuit);

  auto run = [&](core::PipelineMode mode) {
    core::CompileOptions opt;
    opt.mode = mode;
    opt.effort = effort;
    opt.emit_geometry = false;
    return core::compile(circuit, opt);
  };
  const auto modular = run(core::PipelineMode::ModularOnly);
  const auto dual_only = run(core::PipelineMode::DualOnly);
  const auto ours = run(core::PipelineMode::Full);
  const double ours_v = static_cast<double>(ours.volume);

  auto row = [&](const char* label, std::int64_t volume) {
    std::printf("%-34s %14lld %9.2fx\n", label,
                static_cast<long long>(volume),
                static_cast<double>(volume) / ours_v);
  };
  row("canonical form", canonical);
  row("Lin'17 layout synthesis (1-D)", lin1.volume);
  row("Lin'17 layout synthesis (2-D)", lin2.volume);
  row("modularization only", modular.volume);
  row("dual-only bridging [Hsu DAC'21]", dual_only.volume);
  row("primal+dual bridging (this work)", ours.volume);

  std::printf("\npaper reference for %s: canonical %lld, 1-D %lld, 2-D "
              "%lld, Hsu %lld, ours %lld\n",
              name.c_str(), static_cast<long long>(bench.canonical_volume),
              static_cast<long long>(bench.lin1d_volume),
              static_cast<long long>(bench.lin2d_volume),
              static_cast<long long>(bench.hsu_volume),
              static_cast<long long>(bench.ours_volume));
  return ours.routed_legal ? 0 : 1;
}
