// Compress RevLib .real circuits: the full real-input path of the flow
// (parser -> MCT/Fredkin lowering -> Clifford+T -> ICM -> compression).
//
//   ./examples/revlib_compress [file.real ...]
//
// Without arguments it runs the three bundled circuits in examples/data.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "decompose/decompose.h"
#include "geom/canonical.h"
#include "icm/builder.h"
#include "qcir/revlib.h"

namespace {

int compress_file(const std::string& path) {
  using namespace tqec;
  std::printf("== %s ==\n", path.c_str());

  const qcir::Circuit reversible = qcir::parse_real_file(path);
  const auto rstats = reversible.stats();
  std::printf("  parsed: %d qubits, %lld gates (%lld TOF, %lld MCT, %lld "
              "CNOT, %lld Fredkin)\n",
              rstats.num_qubits, static_cast<long long>(rstats.total_gates),
              static_cast<long long>(rstats.toffoli),
              static_cast<long long>(rstats.mct),
              static_cast<long long>(rstats.cnot),
              static_cast<long long>(rstats.fredkin));

  const qcir::Circuit clifford_t = decompose::decompose(reversible);
  const icm::IcmCircuit icm = icm::from_clifford_t(clifford_t);
  const icm::IcmStats stats = icm.stats();
  std::printf("  ICM: %d lines, %d CNOTs, %d |Y>, %d |A>\n", stats.qubits,
              stats.cnots, stats.y_states, stats.a_states);

  core::CompileOptions opt;
  opt.seed = 7;
  const core::CompileResult result = core::compile(icm, opt);
  std::printf("  canonical volume %lld -> compressed %lld (%.1fx), %s, "
              "%.2fs\n\n",
              static_cast<long long>(result.canonical_volume),
              static_cast<long long>(result.volume),
              static_cast<double>(result.canonical_volume) /
                  static_cast<double>(result.volume),
              result.routed_legal ? "legal" : "NOT legal",
              result.timings.total_s);
  return result.routed_legal ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) files.emplace_back(argv[i]);
  if (files.empty()) {
    // Locate the bundled data directory relative to this source tree.
    for (const char* candidate :
         {"examples/data", "../examples/data", "../../examples/data"}) {
      if (std::filesystem::is_directory(candidate)) {
        for (const auto& entry :
             std::filesystem::directory_iterator(candidate))
          if (entry.path().extension() == ".real")
            files.push_back(entry.path().string());
        break;
      }
    }
    std::sort(files.begin(), files.end());
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: revlib_compress file.real ...\n"
                 "(run from the repository root to use examples/data)\n");
    return 2;
  }
  int status = 0;
  for (const std::string& file : files) status |= compress_file(file);
  return status;
}
