# Empty dependencies file for qcir_test.
# This may be replaced when dependencies are built.
