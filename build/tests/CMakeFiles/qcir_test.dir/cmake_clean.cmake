file(REMOVE_RECURSE
  "CMakeFiles/qcir_test.dir/qcir_test.cpp.o"
  "CMakeFiles/qcir_test.dir/qcir_test.cpp.o.d"
  "qcir_test"
  "qcir_test.pdb"
  "qcir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
