# Empty dependencies file for pdgraph_test.
# This may be replaced when dependencies are built.
