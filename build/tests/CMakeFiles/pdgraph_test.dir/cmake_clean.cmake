file(REMOVE_RECURSE
  "CMakeFiles/pdgraph_test.dir/pdgraph_test.cpp.o"
  "CMakeFiles/pdgraph_test.dir/pdgraph_test.cpp.o.d"
  "pdgraph_test"
  "pdgraph_test.pdb"
  "pdgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
