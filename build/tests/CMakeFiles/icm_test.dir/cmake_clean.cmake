file(REMOVE_RECURSE
  "CMakeFiles/icm_test.dir/icm_test.cpp.o"
  "CMakeFiles/icm_test.dir/icm_test.cpp.o.d"
  "icm_test"
  "icm_test.pdb"
  "icm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
