# Empty dependencies file for icm_test.
# This may be replaced when dependencies are built.
