file(REMOVE_RECURSE
  "CMakeFiles/force_directed_test.dir/force_directed_test.cpp.o"
  "CMakeFiles/force_directed_test.dir/force_directed_test.cpp.o.d"
  "force_directed_test"
  "force_directed_test.pdb"
  "force_directed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/force_directed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
