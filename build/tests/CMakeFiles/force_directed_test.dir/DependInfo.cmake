
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/force_directed_test.cpp" "tests/CMakeFiles/force_directed_test.dir/force_directed_test.cpp.o" "gcc" "tests/CMakeFiles/force_directed_test.dir/force_directed_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/place/CMakeFiles/tqec_place.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/tqec_route.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tqec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/tqec_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tqec_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/pdgraph/CMakeFiles/tqec_pdgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/icm/CMakeFiles/tqec_icm.dir/DependInfo.cmake"
  "/root/repo/build/src/qcir/CMakeFiles/tqec_qcir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tqec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
