# Empty compiler generated dependencies file for force_directed_test.
# This may be replaced when dependencies are built.
