
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pdgraph_property_test.cpp" "tests/CMakeFiles/pdgraph_property_test.dir/pdgraph_property_test.cpp.o" "gcc" "tests/CMakeFiles/pdgraph_property_test.dir/pdgraph_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdgraph/CMakeFiles/tqec_pdgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/icm/CMakeFiles/tqec_icm.dir/DependInfo.cmake"
  "/root/repo/build/src/qcir/CMakeFiles/tqec_qcir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tqec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
