file(REMOVE_RECURSE
  "CMakeFiles/pdgraph_property_test.dir/pdgraph_property_test.cpp.o"
  "CMakeFiles/pdgraph_property_test.dir/pdgraph_property_test.cpp.o.d"
  "pdgraph_property_test"
  "pdgraph_property_test.pdb"
  "pdgraph_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdgraph_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
