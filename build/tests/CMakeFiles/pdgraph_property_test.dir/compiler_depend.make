# Empty compiler generated dependencies file for pdgraph_property_test.
# This may be replaced when dependencies are built.
