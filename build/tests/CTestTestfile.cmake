# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/qcir_test[1]_include.cmake")
include("/root/repo/build/tests/decompose_test[1]_include.cmake")
include("/root/repo/build/tests/icm_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/pdgraph_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/library_test[1]_include.cmake")
include("/root/repo/build/tests/steiner_test[1]_include.cmake")
include("/root/repo/build/tests/force_directed_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/pdgraph_property_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_property_test[1]_include.cmake")
