file(REMOVE_RECURSE
  "CMakeFiles/fig11_flipping.dir/fig11_flipping.cpp.o"
  "CMakeFiles/fig11_flipping.dir/fig11_flipping.cpp.o.d"
  "fig11_flipping"
  "fig11_flipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_flipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
