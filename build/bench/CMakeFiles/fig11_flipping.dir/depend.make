# Empty dependencies file for fig11_flipping.
# This may be replaced when dependencies are built.
