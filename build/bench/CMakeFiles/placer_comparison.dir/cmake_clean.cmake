file(REMOVE_RECURSE
  "CMakeFiles/placer_comparison.dir/placer_comparison.cpp.o"
  "CMakeFiles/placer_comparison.dir/placer_comparison.cpp.o.d"
  "placer_comparison"
  "placer_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placer_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
