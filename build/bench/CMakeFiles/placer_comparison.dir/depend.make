# Empty dependencies file for placer_comparison.
# This may be replaced when dependencies are built.
