# Empty compiler generated dependencies file for table2_volume.
# This may be replaced when dependencies are built.
