file(REMOVE_RECURSE
  "CMakeFiles/table2_volume.dir/table2_volume.cpp.o"
  "CMakeFiles/table2_volume.dir/table2_volume.cpp.o.d"
  "table2_volume"
  "table2_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
