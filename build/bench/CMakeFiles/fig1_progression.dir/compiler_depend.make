# Empty compiler generated dependencies file for fig1_progression.
# This may be replaced when dependencies are built.
