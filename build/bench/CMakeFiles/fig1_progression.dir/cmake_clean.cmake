file(REMOVE_RECURSE
  "CMakeFiles/fig1_progression.dir/fig1_progression.cpp.o"
  "CMakeFiles/fig1_progression.dir/fig1_progression.cpp.o.d"
  "fig1_progression"
  "fig1_progression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_progression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
