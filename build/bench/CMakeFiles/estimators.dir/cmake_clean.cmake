file(REMOVE_RECURSE
  "CMakeFiles/estimators.dir/estimators.cpp.o"
  "CMakeFiles/estimators.dir/estimators.cpp.o.d"
  "estimators"
  "estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
