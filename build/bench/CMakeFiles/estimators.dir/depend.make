# Empty dependencies file for estimators.
# This may be replaced when dependencies are built.
