# Empty dependencies file for fig15_planning.
# This may be replaced when dependencies are built.
