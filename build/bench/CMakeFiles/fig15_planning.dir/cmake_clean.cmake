file(REMOVE_RECURSE
  "CMakeFiles/fig15_planning.dir/fig15_planning.cpp.o"
  "CMakeFiles/fig15_planning.dir/fig15_planning.cpp.o.d"
  "fig15_planning"
  "fig15_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
