file(REMOVE_RECURSE
  "CMakeFiles/adder_pipeline.dir/adder_pipeline.cpp.o"
  "CMakeFiles/adder_pipeline.dir/adder_pipeline.cpp.o.d"
  "adder_pipeline"
  "adder_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
