# Empty compiler generated dependencies file for adder_pipeline.
# This may be replaced when dependencies are built.
