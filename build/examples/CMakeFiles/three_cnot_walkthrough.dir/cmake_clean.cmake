file(REMOVE_RECURSE
  "CMakeFiles/three_cnot_walkthrough.dir/three_cnot_walkthrough.cpp.o"
  "CMakeFiles/three_cnot_walkthrough.dir/three_cnot_walkthrough.cpp.o.d"
  "three_cnot_walkthrough"
  "three_cnot_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_cnot_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
