# Empty dependencies file for three_cnot_walkthrough.
# This may be replaced when dependencies are built.
