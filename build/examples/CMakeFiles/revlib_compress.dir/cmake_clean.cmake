file(REMOVE_RECURSE
  "CMakeFiles/revlib_compress.dir/revlib_compress.cpp.o"
  "CMakeFiles/revlib_compress.dir/revlib_compress.cpp.o.d"
  "revlib_compress"
  "revlib_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revlib_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
