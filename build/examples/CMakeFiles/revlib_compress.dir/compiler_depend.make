# Empty compiler generated dependencies file for revlib_compress.
# This may be replaced when dependencies are built.
