# Empty dependencies file for tqec_pdgraph.
# This may be replaced when dependencies are built.
