file(REMOVE_RECURSE
  "CMakeFiles/tqec_pdgraph.dir/pd_graph.cpp.o"
  "CMakeFiles/tqec_pdgraph.dir/pd_graph.cpp.o.d"
  "libtqec_pdgraph.a"
  "libtqec_pdgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_pdgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
