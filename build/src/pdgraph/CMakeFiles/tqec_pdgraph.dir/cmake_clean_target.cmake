file(REMOVE_RECURSE
  "libtqec_pdgraph.a"
)
