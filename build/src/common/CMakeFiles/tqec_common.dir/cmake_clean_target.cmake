file(REMOVE_RECURSE
  "libtqec_common.a"
)
