file(REMOVE_RECURSE
  "CMakeFiles/tqec_common.dir/logging.cpp.o"
  "CMakeFiles/tqec_common.dir/logging.cpp.o.d"
  "CMakeFiles/tqec_common.dir/string_util.cpp.o"
  "CMakeFiles/tqec_common.dir/string_util.cpp.o.d"
  "libtqec_common.a"
  "libtqec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
