# Empty compiler generated dependencies file for tqec_common.
# This may be replaced when dependencies are built.
