# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("qcir")
subdirs("decompose")
subdirs("icm")
subdirs("geom")
subdirs("pdgraph")
subdirs("compress")
subdirs("place")
subdirs("route")
subdirs("baseline")
subdirs("core")
subdirs("verify")
