file(REMOVE_RECURSE
  "CMakeFiles/tqec_decompose.dir/decompose.cpp.o"
  "CMakeFiles/tqec_decompose.dir/decompose.cpp.o.d"
  "libtqec_decompose.a"
  "libtqec_decompose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
