file(REMOVE_RECURSE
  "libtqec_decompose.a"
)
