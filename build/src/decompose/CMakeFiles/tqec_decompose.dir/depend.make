# Empty dependencies file for tqec_decompose.
# This may be replaced when dependencies are built.
