# Empty compiler generated dependencies file for tqec_baseline.
# This may be replaced when dependencies are built.
