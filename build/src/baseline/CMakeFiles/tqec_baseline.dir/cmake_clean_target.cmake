file(REMOVE_RECURSE
  "libtqec_baseline.a"
)
