file(REMOVE_RECURSE
  "CMakeFiles/tqec_baseline.dir/lin2017.cpp.o"
  "CMakeFiles/tqec_baseline.dir/lin2017.cpp.o.d"
  "libtqec_baseline.a"
  "libtqec_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
