
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qcir/circuit.cpp" "src/qcir/CMakeFiles/tqec_qcir.dir/circuit.cpp.o" "gcc" "src/qcir/CMakeFiles/tqec_qcir.dir/circuit.cpp.o.d"
  "/root/repo/src/qcir/generator.cpp" "src/qcir/CMakeFiles/tqec_qcir.dir/generator.cpp.o" "gcc" "src/qcir/CMakeFiles/tqec_qcir.dir/generator.cpp.o.d"
  "/root/repo/src/qcir/library.cpp" "src/qcir/CMakeFiles/tqec_qcir.dir/library.cpp.o" "gcc" "src/qcir/CMakeFiles/tqec_qcir.dir/library.cpp.o.d"
  "/root/repo/src/qcir/optimizer.cpp" "src/qcir/CMakeFiles/tqec_qcir.dir/optimizer.cpp.o" "gcc" "src/qcir/CMakeFiles/tqec_qcir.dir/optimizer.cpp.o.d"
  "/root/repo/src/qcir/revlib.cpp" "src/qcir/CMakeFiles/tqec_qcir.dir/revlib.cpp.o" "gcc" "src/qcir/CMakeFiles/tqec_qcir.dir/revlib.cpp.o.d"
  "/root/repo/src/qcir/simulator.cpp" "src/qcir/CMakeFiles/tqec_qcir.dir/simulator.cpp.o" "gcc" "src/qcir/CMakeFiles/tqec_qcir.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tqec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
