file(REMOVE_RECURSE
  "libtqec_qcir.a"
)
