# Empty dependencies file for tqec_qcir.
# This may be replaced when dependencies are built.
