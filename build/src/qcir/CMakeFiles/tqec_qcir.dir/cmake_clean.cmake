file(REMOVE_RECURSE
  "CMakeFiles/tqec_qcir.dir/circuit.cpp.o"
  "CMakeFiles/tqec_qcir.dir/circuit.cpp.o.d"
  "CMakeFiles/tqec_qcir.dir/generator.cpp.o"
  "CMakeFiles/tqec_qcir.dir/generator.cpp.o.d"
  "CMakeFiles/tqec_qcir.dir/library.cpp.o"
  "CMakeFiles/tqec_qcir.dir/library.cpp.o.d"
  "CMakeFiles/tqec_qcir.dir/optimizer.cpp.o"
  "CMakeFiles/tqec_qcir.dir/optimizer.cpp.o.d"
  "CMakeFiles/tqec_qcir.dir/revlib.cpp.o"
  "CMakeFiles/tqec_qcir.dir/revlib.cpp.o.d"
  "CMakeFiles/tqec_qcir.dir/simulator.cpp.o"
  "CMakeFiles/tqec_qcir.dir/simulator.cpp.o.d"
  "libtqec_qcir.a"
  "libtqec_qcir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_qcir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
