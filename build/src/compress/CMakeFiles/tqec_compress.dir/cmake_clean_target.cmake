file(REMOVE_RECURSE
  "libtqec_compress.a"
)
