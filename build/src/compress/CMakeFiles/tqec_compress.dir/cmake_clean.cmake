file(REMOVE_RECURSE
  "CMakeFiles/tqec_compress.dir/dual_bridging.cpp.o"
  "CMakeFiles/tqec_compress.dir/dual_bridging.cpp.o.d"
  "CMakeFiles/tqec_compress.dir/flipping.cpp.o"
  "CMakeFiles/tqec_compress.dir/flipping.cpp.o.d"
  "CMakeFiles/tqec_compress.dir/ishape.cpp.o"
  "CMakeFiles/tqec_compress.dir/ishape.cpp.o.d"
  "libtqec_compress.a"
  "libtqec_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
