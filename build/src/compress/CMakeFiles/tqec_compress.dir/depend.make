# Empty dependencies file for tqec_compress.
# This may be replaced when dependencies are built.
