# Empty dependencies file for tqec_icm.
# This may be replaced when dependencies are built.
