file(REMOVE_RECURSE
  "libtqec_icm.a"
)
