file(REMOVE_RECURSE
  "CMakeFiles/tqec_icm.dir/builder.cpp.o"
  "CMakeFiles/tqec_icm.dir/builder.cpp.o.d"
  "CMakeFiles/tqec_icm.dir/ordering.cpp.o"
  "CMakeFiles/tqec_icm.dir/ordering.cpp.o.d"
  "CMakeFiles/tqec_icm.dir/serialize.cpp.o"
  "CMakeFiles/tqec_icm.dir/serialize.cpp.o.d"
  "CMakeFiles/tqec_icm.dir/workload.cpp.o"
  "CMakeFiles/tqec_icm.dir/workload.cpp.o.d"
  "libtqec_icm.a"
  "libtqec_icm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_icm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
