file(REMOVE_RECURSE
  "CMakeFiles/tqec_route.dir/router.cpp.o"
  "CMakeFiles/tqec_route.dir/router.cpp.o.d"
  "libtqec_route.a"
  "libtqec_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
