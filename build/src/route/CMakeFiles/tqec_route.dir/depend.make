# Empty dependencies file for tqec_route.
# This may be replaced when dependencies are built.
