file(REMOVE_RECURSE
  "libtqec_route.a"
)
