file(REMOVE_RECURSE
  "CMakeFiles/tqec_geom.dir/canonical.cpp.o"
  "CMakeFiles/tqec_geom.dir/canonical.cpp.o.d"
  "CMakeFiles/tqec_geom.dir/export_obj.cpp.o"
  "CMakeFiles/tqec_geom.dir/export_obj.cpp.o.d"
  "CMakeFiles/tqec_geom.dir/export_svg.cpp.o"
  "CMakeFiles/tqec_geom.dir/export_svg.cpp.o.d"
  "CMakeFiles/tqec_geom.dir/geometry.cpp.o"
  "CMakeFiles/tqec_geom.dir/geometry.cpp.o.d"
  "CMakeFiles/tqec_geom.dir/linking.cpp.o"
  "CMakeFiles/tqec_geom.dir/linking.cpp.o.d"
  "CMakeFiles/tqec_geom.dir/steiner.cpp.o"
  "CMakeFiles/tqec_geom.dir/steiner.cpp.o.d"
  "CMakeFiles/tqec_geom.dir/validate.cpp.o"
  "CMakeFiles/tqec_geom.dir/validate.cpp.o.d"
  "libtqec_geom.a"
  "libtqec_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
