file(REMOVE_RECURSE
  "libtqec_geom.a"
)
