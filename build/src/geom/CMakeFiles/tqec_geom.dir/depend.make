# Empty dependencies file for tqec_geom.
# This may be replaced when dependencies are built.
