
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/canonical.cpp" "src/geom/CMakeFiles/tqec_geom.dir/canonical.cpp.o" "gcc" "src/geom/CMakeFiles/tqec_geom.dir/canonical.cpp.o.d"
  "/root/repo/src/geom/export_obj.cpp" "src/geom/CMakeFiles/tqec_geom.dir/export_obj.cpp.o" "gcc" "src/geom/CMakeFiles/tqec_geom.dir/export_obj.cpp.o.d"
  "/root/repo/src/geom/export_svg.cpp" "src/geom/CMakeFiles/tqec_geom.dir/export_svg.cpp.o" "gcc" "src/geom/CMakeFiles/tqec_geom.dir/export_svg.cpp.o.d"
  "/root/repo/src/geom/geometry.cpp" "src/geom/CMakeFiles/tqec_geom.dir/geometry.cpp.o" "gcc" "src/geom/CMakeFiles/tqec_geom.dir/geometry.cpp.o.d"
  "/root/repo/src/geom/linking.cpp" "src/geom/CMakeFiles/tqec_geom.dir/linking.cpp.o" "gcc" "src/geom/CMakeFiles/tqec_geom.dir/linking.cpp.o.d"
  "/root/repo/src/geom/steiner.cpp" "src/geom/CMakeFiles/tqec_geom.dir/steiner.cpp.o" "gcc" "src/geom/CMakeFiles/tqec_geom.dir/steiner.cpp.o.d"
  "/root/repo/src/geom/validate.cpp" "src/geom/CMakeFiles/tqec_geom.dir/validate.cpp.o" "gcc" "src/geom/CMakeFiles/tqec_geom.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tqec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/icm/CMakeFiles/tqec_icm.dir/DependInfo.cmake"
  "/root/repo/build/src/qcir/CMakeFiles/tqec_qcir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
