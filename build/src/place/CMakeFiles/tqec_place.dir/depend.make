# Empty dependencies file for tqec_place.
# This may be replaced when dependencies are built.
