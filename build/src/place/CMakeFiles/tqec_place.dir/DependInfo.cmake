
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/bstar_tree.cpp" "src/place/CMakeFiles/tqec_place.dir/bstar_tree.cpp.o" "gcc" "src/place/CMakeFiles/tqec_place.dir/bstar_tree.cpp.o.d"
  "/root/repo/src/place/force_directed.cpp" "src/place/CMakeFiles/tqec_place.dir/force_directed.cpp.o" "gcc" "src/place/CMakeFiles/tqec_place.dir/force_directed.cpp.o.d"
  "/root/repo/src/place/nodes.cpp" "src/place/CMakeFiles/tqec_place.dir/nodes.cpp.o" "gcc" "src/place/CMakeFiles/tqec_place.dir/nodes.cpp.o.d"
  "/root/repo/src/place/placer.cpp" "src/place/CMakeFiles/tqec_place.dir/placer.cpp.o" "gcc" "src/place/CMakeFiles/tqec_place.dir/placer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/tqec_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tqec_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/pdgraph/CMakeFiles/tqec_pdgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/icm/CMakeFiles/tqec_icm.dir/DependInfo.cmake"
  "/root/repo/build/src/qcir/CMakeFiles/tqec_qcir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tqec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
