file(REMOVE_RECURSE
  "libtqec_place.a"
)
