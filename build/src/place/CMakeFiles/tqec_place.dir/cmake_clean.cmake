file(REMOVE_RECURSE
  "CMakeFiles/tqec_place.dir/bstar_tree.cpp.o"
  "CMakeFiles/tqec_place.dir/bstar_tree.cpp.o.d"
  "CMakeFiles/tqec_place.dir/force_directed.cpp.o"
  "CMakeFiles/tqec_place.dir/force_directed.cpp.o.d"
  "CMakeFiles/tqec_place.dir/nodes.cpp.o"
  "CMakeFiles/tqec_place.dir/nodes.cpp.o.d"
  "CMakeFiles/tqec_place.dir/placer.cpp.o"
  "CMakeFiles/tqec_place.dir/placer.cpp.o.d"
  "libtqec_place.a"
  "libtqec_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
