# Empty dependencies file for tqec_verify.
# This may be replaced when dependencies are built.
