file(REMOVE_RECURSE
  "libtqec_verify.a"
)
