file(REMOVE_RECURSE
  "CMakeFiles/tqec_verify.dir/verifier.cpp.o"
  "CMakeFiles/tqec_verify.dir/verifier.cpp.o.d"
  "libtqec_verify.a"
  "libtqec_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
