file(REMOVE_RECURSE
  "libtqec_core.a"
)
