# Empty compiler generated dependencies file for tqec_core.
# This may be replaced when dependencies are built.
