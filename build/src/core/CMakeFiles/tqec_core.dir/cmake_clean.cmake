file(REMOVE_RECURSE
  "CMakeFiles/tqec_core.dir/compiler.cpp.o"
  "CMakeFiles/tqec_core.dir/compiler.cpp.o.d"
  "CMakeFiles/tqec_core.dir/paper_tables.cpp.o"
  "CMakeFiles/tqec_core.dir/paper_tables.cpp.o.d"
  "libtqec_core.a"
  "libtqec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
