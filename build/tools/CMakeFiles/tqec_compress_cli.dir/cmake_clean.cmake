file(REMOVE_RECURSE
  "CMakeFiles/tqec_compress_cli.dir/tqec_compress.cpp.o"
  "CMakeFiles/tqec_compress_cli.dir/tqec_compress.cpp.o.d"
  "tqec_compress"
  "tqec_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqec_compress_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
