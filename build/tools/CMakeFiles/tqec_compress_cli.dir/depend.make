# Empty dependencies file for tqec_compress_cli.
# This may be replaced when dependencies are built.
