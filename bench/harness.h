// Shared helpers for the table/figure regeneration harnesses.
//
// Environment knobs:
//   REPRO_BENCH_SET = quick | full   (default full: all eight benchmarks;
//                                     quick: the four smallest)
//   REPRO_EFFORT    = <float>        (SA/router effort multiplier, default 1)
//   REPRO_SEED      = <int>          (pipeline seed, default 7)
//   REPRO_JOBS      = <int>          (worker threads for parallel restarts;
//                                     default 1, 0 = hardware concurrency)
//   REPRO_PLACE_RESTARTS = <int>     (independent place+route attempts,
//                                     best legal wins; default 1)
//   REPRO_PLACE_REPLICAS = <int>     (parallel-tempering chains per SA
//                                     placement; default 1 = classic
//                                     single chain; changes results)
//   REPRO_PLACE_THREADS  = <int>     (worker threads per SA placement;
//                                     default 0 = split REPRO_JOBS across
//                                     attempts; never changes results)
//   REPRO_STATS     = 1              (print each run's per-stage
//                                     observability report as JSON)
//   REPRO_TRACE_JSON = <path>        (micro_pipeline only: enable tracing
//                                     and write a Chrome trace-event file
//                                     of every timed run's spans on exit)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/paper_tables.h"
#include "icm/workload.h"

namespace tqec::bench {

inline double effort_from_env() {
  const char* env = std::getenv("REPRO_EFFORT");
  return env != nullptr ? std::atof(env) : 1.0;
}

inline std::uint64_t seed_from_env() {
  const char* env = std::getenv("REPRO_SEED");
  return env != nullptr ? static_cast<std::uint64_t>(std::atoll(env)) : 7ull;
}

inline int jobs_from_env() {
  const char* env = std::getenv("REPRO_JOBS");
  return env != nullptr ? std::atoi(env) : 1;
}

inline int place_restarts_from_env() {
  const char* env = std::getenv("REPRO_PLACE_RESTARTS");
  return env != nullptr ? std::atoi(env) : 1;
}

inline int place_replicas_from_env() {
  const char* env = std::getenv("REPRO_PLACE_REPLICAS");
  return env != nullptr ? std::atoi(env) : 1;
}

inline int place_threads_from_env() {
  const char* env = std::getenv("REPRO_PLACE_THREADS");
  return env != nullptr ? std::atoi(env) : 0;
}

/// Benchmarks to run. Paper tables default to all eight; the extension
/// benches (fig15, ablations) default to the four smallest since they run
/// the full pipeline several times per row. REPRO_BENCH_SET overrides both.
inline std::vector<core::PaperBenchmark> benchmark_set(
    bool default_quick = false) {
  const char* env = std::getenv("REPRO_BENCH_SET");
  bool quick = default_quick;
  if (env != nullptr) quick = std::string(env) == "quick";
  auto all = core::paper_benchmarks();
  if (quick) all.resize(4);
  return all;
}

inline icm::IcmCircuit workload_for(const core::PaperBenchmark& bench) {
  return icm::make_workload(core::workload_spec(bench, seed_from_env()));
}

inline core::CompileResult run_mode(const icm::IcmCircuit& circuit,
                                    core::PipelineMode mode) {
  core::CompileOptions opt;
  opt.mode = mode;
  opt.seed = seed_from_env();
  opt.effort = effort_from_env();
  opt.jobs = jobs_from_env();
  opt.place_restarts = place_restarts_from_env();
  opt.place.replicas = place_replicas_from_env();
  opt.place.threads = place_threads_from_env();
  opt.emit_geometry = false;
  const core::CompileResult result = core::compile(circuit, opt);
  const char* stats_env = std::getenv("REPRO_STATS");
  if (stats_env != nullptr && std::atoi(stats_env) != 0)
    std::fputs(core::stats_json(result).c_str(), stdout);
  return result;
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// "x.xx" ratio string.
inline std::string ratio(double num, double den) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", den != 0 ? num / den : 0.0);
  return buf;
}

}  // namespace tqec::bench
