// Google-benchmark microbenchmarks for the core algorithmic primitives:
// PD-graph construction, I-shaped simplification, greedy primal bridging,
// iterative dual bridging, B*-tree packing, and Gauss linking numbers.
// These track the per-stage throughput that the table harnesses aggregate.
#include <benchmark/benchmark.h>

#include "common/trace.h"
#include "compress/dual_bridging.h"
#include "compress/flipping.h"
#include "compress/ishape.h"
#include "core/paper_tables.h"
#include "geom/linking.h"
#include "icm/workload.h"
#include "pdgraph/pd_graph.h"
#include "place/bstar_tree.h"

namespace {

using namespace tqec;

icm::IcmCircuit workload_of_size(int scale) {
  icm::WorkloadSpec spec;
  spec.name = "micro";
  spec.a_states = 10 * scale;
  spec.y_states = 2 * spec.a_states;
  spec.qubits = 3 * spec.a_states + 40 * scale;
  spec.cnots = 3 * spec.a_states + 60 * scale;
  spec.seed = 11;
  return icm::make_workload(spec);
}

void BM_PdGraphBuild(benchmark::State& state) {
  const auto circuit = workload_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto graph = pdgraph::build_pd_graph(circuit);
    benchmark::DoNotOptimize(graph.module_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(circuit.cnots().size()));
}
BENCHMARK(BM_PdGraphBuild)->Arg(1)->Arg(4)->Arg(16);

void BM_IshapeSimplify(benchmark::State& state) {
  const auto circuit = workload_of_size(static_cast<int>(state.range(0)));
  const auto graph = pdgraph::build_pd_graph(circuit);
  for (auto _ : state) {
    auto ishape = compress::simplify_ishape(graph);
    benchmark::DoNotOptimize(ishape.merge_count());
  }
  state.SetItemsProcessed(state.iterations() * graph.module_count());
}
BENCHMARK(BM_IshapeSimplify)->Arg(1)->Arg(4)->Arg(16);

void BM_PrimalBridging(benchmark::State& state) {
  const auto circuit = workload_of_size(static_cast<int>(state.range(0)));
  const auto graph = pdgraph::build_pd_graph(circuit);
  const auto ishape = compress::simplify_ishape(graph);
  for (auto _ : state) {
    auto bridging = compress::bridge_primal(graph, ishape, 7);
    benchmark::DoNotOptimize(bridging.chain_count());
  }
  state.SetItemsProcessed(state.iterations() * graph.module_count());
}
BENCHMARK(BM_PrimalBridging)->Arg(1)->Arg(4)->Arg(16);

void BM_DualBridging(benchmark::State& state) {
  const auto circuit = workload_of_size(static_cast<int>(state.range(0)));
  const auto graph = pdgraph::build_pd_graph(circuit);
  const auto ishape = compress::simplify_ishape(graph);
  for (auto _ : state) {
    auto dual = compress::bridge_dual(graph, ishape);
    benchmark::DoNotOptimize(dual.component_count());
  }
  state.SetItemsProcessed(state.iterations() * graph.net_count());
}
BENCHMARK(BM_DualBridging)->Arg(1)->Arg(4)->Arg(16);

void BM_BStarTreePack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  place::BStarTree tree;
  std::vector<place::Footprint> dims(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    dims[static_cast<std::size_t>(i)] = {rng.range(1, 6), rng.range(1, 6)};
    tree.insert(i, rng);
  }
  for (auto _ : state) {
    auto pack = tree.pack(
        [&](int item) { return dims[static_cast<std::size_t>(item)]; });
    benchmark::DoNotOptimize(pack.width);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BStarTreePack)->Arg(64)->Arg(512)->Arg(4096);

void BM_LinkingNumber(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const geom::Loop primal =
      geom::rectangle_loop({0, 0, 0}, Axis::X, side, Axis::Y, side);
  const geom::Loop dual = geom::offset_loop(
      geom::rectangle_loop({0, 0, -side}, Axis::X, side, Axis::Z, 2 * side),
      0.5, 0.5, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::linking_number(primal, dual));
  }
}
BENCHMARK(BM_LinkingNumber)->Arg(2)->Arg(8)->Arg(32);

// Tracing-overhead guard: a disabled span must cost one relaxed atomic
// load (low single-digit ns), which is what lets TQEC_TRACE_SPAN live in
// hot paths permanently. The enabled variant bounds the recording cost.
void BM_SpanDisabled(benchmark::State& state) {
  trace::set_enabled(false);
  for (auto _ : state) {
    TQEC_TRACE_SPAN("bench.span_disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  trace::set_enabled(true);
  trace::reset_events();
  for (auto _ : state) {
    TQEC_TRACE_SPAN("bench.span_enabled");
    benchmark::ClobberMemory();
  }
  trace::set_enabled(false);
  trace::reset_events();
}
BENCHMARK(BM_SpanEnabled);

}  // namespace

BENCHMARK_MAIN();
