// Regenerates the paper's Table 3: the bridge-compression comparison
// between the dual-only baseline ([Hsu et al., DAC'21]: iterative dual
// bridging, every module a 2.5D B*-tree node) and our full flow (I-shape +
// flipping/primal bridging + split-aware dual bridging + primal-bridging
// super-modules). Ratios are normalized to our measured volume; runtimes
// are wall-clock seconds on this machine.
#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace tqec;

  std::printf("Table 3: dual-only baseline [Hsu DAC'21] vs ours\n");
  bench::print_rule(126);
  std::printf("%-14s | %12s %8s %8s %8s | %12s %8s %8s | %7s %7s\n",
              "Benchmark", "Hsu vol", "r(pap)", "r(us)", "t(s)", "Ours vol",
              "legal", "t(s)", "n(Hsu)", "n(Ours)");
  bench::print_rule(126);

  double sum_ratio_paper = 0, sum_ratio_us = 0;
  int rows = 0;
  for (const core::PaperBenchmark& b : bench::benchmark_set()) {
    const icm::IcmCircuit circuit = bench::workload_for(b);
    const core::CompileResult ours =
        bench::run_mode(circuit, core::PipelineMode::Full);
    const core::CompileResult hsu =
        bench::run_mode(circuit, core::PipelineMode::DualOnly);

    const double ours_v = static_cast<double>(ours.volume);
    std::printf(
        "%-14s | %12lld %8.3f %8.3f %8.1f | %12lld %8s %8.1f | %7d %7d\n",
        b.name.c_str(), static_cast<long long>(hsu.volume),
        static_cast<double>(b.hsu_volume) /
            static_cast<double>(b.ours_volume),
        static_cast<double>(hsu.volume) / ours_v, hsu.timings.total_s,
        static_cast<long long>(ours.volume),
        ours.routed_legal && hsu.routed_legal ? "yes" : "NO",
        ours.timings.total_s, hsu.nodes, ours.nodes);
    sum_ratio_paper += static_cast<double>(b.hsu_volume) /
                       static_cast<double>(b.ours_volume);
    sum_ratio_us += static_cast<double>(hsu.volume) / ours_v;
    ++rows;
  }
  bench::print_rule(126);
  std::printf("%-14s | %12s %8.3f %8.3f\n", "Avg. ratio", "",
              sum_ratio_paper / rows, sum_ratio_us / rows);
  std::printf("Paper average ratio 2.121 (i.e. ~47%% volume reduction over "
              "[Hsu DAC'21]); gaps grow with benchmark size.\n");
  return 0;
}
