// Regenerates the paper's Table 1: benchmark statistics after gate
// decomposition — #Qubits, #CNOTs, #|Y>, #|A>, #Modules (PD-graph modules
// before primal bridging) and #Nodes (2.5D B*-tree nodes after primal
// bridging). Paper values are printed beside the measured ones.
#include <cstdio>

#include "bench/harness.h"
#include "compress/dual_bridging.h"
#include "compress/flipping.h"
#include "compress/ishape.h"
#include "pdgraph/pd_graph.h"
#include "place/nodes.h"

int main() {
  using namespace tqec;

  std::printf("Table 1: benchmark statistics (paper -> measured)\n");
  bench::print_rule(118);
  std::printf("%-14s %8s %8s %7s %7s | %9s %9s | %9s %9s\n", "Benchmark",
              "#Qubits", "#CNOTs", "#|Y>", "#|A>", "Mod(pap)", "Mod(us)",
              "Node(pap)", "Node(us)");
  bench::print_rule(118);

  for (const core::PaperBenchmark& b : bench::benchmark_set()) {
    const icm::IcmCircuit circuit = bench::workload_for(b);
    const icm::IcmStats stats = circuit.stats();
    const pdgraph::PdGraph graph = pdgraph::build_pd_graph(circuit);
    const compress::IshapeResult ishape = compress::simplify_ishape(graph);
    const compress::PrimalBridging bridging =
        compress::bridge_primal(graph, ishape, bench::seed_from_env());
    compress::DualBridging dual = compress::bridge_dual(graph, ishape);
    const place::NodeSet nodes =
        place::build_nodes(graph, ishape, bridging, dual);

    std::printf("%-14s %8d %8d %7d %7d | %9d %9d | %9d %9d\n",
                b.name.c_str(), stats.qubits, stats.cnots, stats.y_states,
                stats.a_states, b.modules, graph.module_count(), b.nodes,
                nodes.node_count());
  }
  bench::print_rule(118);
  std::printf("#Modules identity: #Qubits + #CNOTs + #|Y> + #|A> "
              "(exact on 6/8 paper rows, +-1/13 on add16/cycle17).\n"
              "#Nodes depends on the greedy bridging; the paper's own "
              "column varies 20x across benchmarks.\n");
  return 0;
}
