// Wirelength-estimator calibration (extension bench): HPWL vs rectilinear
// MST vs iterated 1-Steiner against the wire the PathFinder router
// actually used, summed over all net components of a placed benchmark.
// HPWL is the SA default; this harness shows how much each model
// undershoots reality (router detours, congestion).
#include <cstdio>

#include "bench/harness.h"
#include "compress/dual_bridging.h"
#include "compress/flipping.h"
#include "compress/ishape.h"
#include "geom/steiner.h"
#include "pdgraph/pd_graph.h"
#include "place/nodes.h"
#include "place/placer.h"
#include "route/router.h"

int main() {
  using namespace tqec;

  std::printf("Wirelength estimators vs routed wire (summed over nets)\n");
  bench::print_rule(104);
  std::printf("%-14s | %10s %10s %10s %10s | %8s %8s %8s\n", "Benchmark",
              "HPWL", "MST", "Steiner", "routed", "hpwl/rt", "mst/rt",
              "stn/rt");
  bench::print_rule(104);

  for (const core::PaperBenchmark& b : bench::benchmark_set(true)) {
    const icm::IcmCircuit circuit = bench::workload_for(b);
    const pdgraph::PdGraph graph = pdgraph::build_pd_graph(circuit);
    const compress::IshapeResult ishape = compress::simplify_ishape(graph);
    const compress::PrimalBridging bridging =
        compress::bridge_primal(graph, ishape, bench::seed_from_env());
    compress::DualBridging dual = compress::bridge_dual(graph, ishape);
    const place::NodeSet nodes =
        place::build_nodes(graph, ishape, bridging, dual);
    place::PlaceOptions popt;
    popt.seed = bench::seed_from_env();
    const place::Placement placement = place::place_modules(nodes, popt);
    route::RouteOptions ropt;
    const route::RoutingResult routing =
        route::route_nets(nodes, placement, ropt);

    std::int64_t total_hpwl = 0;
    std::int64_t total_mst = 0;
    std::int64_t total_steiner = 0;
    for (const auto& pins : nodes.net_pins) {
      std::vector<Vec3> cells;
      cells.reserve(pins.size());
      for (pdgraph::ModuleId m : pins)
        cells.push_back(placement.module_cell[static_cast<std::size_t>(m)]);
      total_hpwl += geom::hpwl(cells);
      total_mst += geom::rectilinear_mst_length(cells);
      // 1-Steiner is O(|Hanan|) per round; cap the pin count it sees.
      if (cells.size() <= 10)
        total_steiner += geom::rectilinear_steiner_tree(cells, 4).length;
      else
        total_steiner += geom::rectilinear_mst_length(cells);
    }
    const double routed = static_cast<double>(routing.total_wire);
    std::printf("%-14s | %10lld %10lld %10lld %10lld | %8.3f %8.3f %8.3f\n",
                b.name.c_str(), static_cast<long long>(total_hpwl),
                static_cast<long long>(total_mst),
                static_cast<long long>(total_steiner),
                static_cast<long long>(routing.total_wire),
                total_hpwl / routed, total_mst / routed,
                total_steiner / routed);
  }
  bench::print_rule(104);
  std::printf("Expect HPWL <= Steiner <= MST <= routed (trees share wire; "
              "routes add pin cells and detours).\n");
  return 0;
}
