// Regenerates the paper's Table 2: space-time volume of the canonical
// form, the Lin et al. (TCAD'17) 1-D and 2-D layout baselines, and our
// full flow, with every ratio normalized to our measured volume (the
// paper normalizes to its own "Ours" column the same way).
#include <cstdio>

#include "baseline/lin2017.h"
#include "bench/harness.h"
#include "geom/canonical.h"

int main() {
  using namespace tqec;

  std::printf("Table 2: space-time volume vs canonical and [Lin TCAD'17] "
              "(ratio = volume / ours)\n");
  bench::print_rule(130);
  std::printf("%-14s | %12s %7s %7s | %12s %7s %7s | %12s %7s %7s | %12s\n",
              "Benchmark", "Canonical", "r(pap)", "r(us)", "Lin-1D",
              "r(pap)", "r(us)", "Lin-2D", "r(pap)", "r(us)", "Ours");
  bench::print_rule(130);

  double sum_canon_paper = 0, sum_canon_us = 0;
  double sum_1d_paper = 0, sum_1d_us = 0;
  double sum_2d_paper = 0, sum_2d_us = 0;
  int rows = 0;

  for (const core::PaperBenchmark& b : bench::benchmark_set()) {
    const icm::IcmCircuit circuit = bench::workload_for(b);
    const std::int64_t canonical = geom::canonical_volume(circuit.stats());
    const baseline::LinResult lin1 = baseline::lin_1d(circuit);
    const baseline::LinResult lin2 = baseline::lin_2d(circuit);
    const core::CompileResult ours =
        bench::run_mode(circuit, core::PipelineMode::Full);

    const double ours_v = static_cast<double>(ours.volume);
    const double paper_ours = static_cast<double>(b.ours_volume);
    std::printf(
        "%-14s | %12lld %7.2f %7.2f | %12lld %7.2f %7.2f | %12lld %7.2f "
        "%7.2f | %12lld%s\n",
        b.name.c_str(), static_cast<long long>(canonical),
        static_cast<double>(b.canonical_volume) / paper_ours,
        static_cast<double>(canonical) / ours_v,
        static_cast<long long>(lin1.volume),
        static_cast<double>(b.lin1d_volume) / paper_ours,
        static_cast<double>(lin1.volume) / ours_v,
        static_cast<long long>(lin2.volume),
        static_cast<double>(b.lin2d_volume) / paper_ours,
        static_cast<double>(lin2.volume) / ours_v,
        static_cast<long long>(ours.volume),
        ours.routed_legal ? "" : " (!)");

    sum_canon_paper += static_cast<double>(b.canonical_volume) / paper_ours;
    sum_canon_us += static_cast<double>(canonical) / ours_v;
    sum_1d_paper += static_cast<double>(b.lin1d_volume) / paper_ours;
    sum_1d_us += static_cast<double>(lin1.volume) / ours_v;
    sum_2d_paper += static_cast<double>(b.lin2d_volume) / paper_ours;
    sum_2d_us += static_cast<double>(lin2.volume) / ours_v;
    ++rows;
  }
  bench::print_rule(130);
  std::printf("%-14s | %12s %7.2f %7.2f | %12s %7.2f %7.2f | %12s %7.2f "
              "%7.2f |\n",
              "Avg. ratio", "", sum_canon_paper / rows, sum_canon_us / rows,
              "", sum_1d_paper / rows, sum_1d_us / rows, "",
              sum_2d_paper / rows, sum_2d_us / rows);
  std::printf("Paper averages: canonical 24.04, 1-D 13.88, 2-D 12.78 "
              "(all > 1, same ordering canonical > 1-D > 2-D > ours).\n");
  return 0;
}
