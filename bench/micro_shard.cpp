// Google-benchmark A/B for time-axis sharded compilation (core/shard.h):
// the same layered long circuit compiled unsharded (window:0) and sharded
// (window:8, sequential), plus a threaded row. Counters expose the shard
// observability record (windows, crossings, seam cells) and the compile's
// peak-RSS gauge so CI artifacts carry the memory story next to the
// timing. The timing-gate ratio sharded_over_unsharded (see
// bench/shard_timing_baseline.json) bounds the sharding overhead —
// window recompiles plus seam stitching — relative to the plain pipeline
// on the same machine.
//
// Observability hooks (shared naming with bench/harness.h):
//   REPRO_STATS=1          after each benchmark, print the last run's
//                          stats_json report to stdout
//   REPRO_STATS_JSON=path  also collect those reports and write them as
//                          one JSON array to `path` on exit (CI artifact)
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/trace.h"
#include "core/compiler.h"
#include "core/shard.h"
#include "icm/workload.h"

namespace {

using namespace tqec;

bool stats_wanted() {
  const char* print_env = std::getenv("REPRO_STATS");
  return (print_env != nullptr && std::atoi(print_env) != 0) ||
         std::getenv("REPRO_STATS_JSON") != nullptr;
}

std::vector<std::string>& collected_reports() {
  static std::vector<std::string> reports;
  return reports;
}

void flush_reports_file() {
  const char* path = std::getenv("REPRO_STATS_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fputs("[\n", f);
  const auto& reports = collected_reports();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    std::fputs(reports[i].c_str(), f);
    if (i + 1 < reports.size()) std::fputs(",\n", f);
  }
  std::fputs("\n]\n", f);
  std::fclose(f);
}

void report_stats(const std::string& label, const std::string& stats_json) {
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  if (collected_reports().empty()) std::atexit(flush_reports_file);
  std::string entry = "{\"bench\": \"" + label + "\", \"report\": ";
  entry += stats_json;
  entry += "}";
  const char* print_env = std::getenv("REPRO_STATS");
  if (print_env != nullptr && std::atoi(print_env) != 0) {
    std::fputs(entry.c_str(), stdout);
    std::fputs("\n", stdout);
  }
  collected_reports().push_back(std::move(entry));
}

const icm::IcmCircuit& bench_circuit() {
  // Depth-93 layered circuit (>= 4x the deepest paper benchmark) — long
  // enough that window:8 yields a real multi-window plan, small enough
  // for a sub-second iteration.
  static const icm::IcmCircuit circuit = [] {
    icm::LayeredWorkloadSpec spec;
    TQEC_REQUIRE(icm::parse_layered_name("long_16x64_t1_c3", spec),
                 "micro_shard: bad workload name");
    return icm::make_layered_workload(spec);
  }();
  return circuit;
}

// window = state.range(0) (0 = unsharded delegate), threads = range(1).
void BM_ShardCompile(benchmark::State& state) {
  const icm::IcmCircuit& circuit = bench_circuit();
  core::CompileOptions opt;
  opt.emit_geometry = true;  // stitching needs per-window geometry
  core::ShardOptions shard;
  shard.window = static_cast<int>(state.range(0));
  shard.threads = static_cast<int>(state.range(1));
  std::int64_t volume = 0;
  bool legal = true;
  core::ShardStats last;
  const bool want_stats = stats_wanted();
  std::string stats;
  for (auto _ : state) {
    const auto result = core::compile_sharded(circuit, opt, shard);
    volume = result.volume;
    legal = legal && result.routed_legal;
    last = result.shard;
    if (want_stats) stats = core::stats_json(result);
    benchmark::DoNotOptimize(result.volume);
  }
  if (want_stats)
    report_stats("BM_ShardCompile/window:" + std::to_string(shard.window) +
                     "/threads:" + std::to_string(shard.threads),
                 stats);
  state.counters["volume"] = static_cast<double>(volume);
  state.counters["legal"] = legal ? 1 : 0;
  state.counters["windows"] = static_cast<double>(last.windows_total);
  state.counters["crossings"] = static_cast<double>(last.crossings);
  state.counters["seam_cells"] = static_cast<double>(last.seam_cells);
  state.counters["peak_rss_mib"] =
      static_cast<double>(trace::peak_rss_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_ShardCompile)
    ->ArgNames({"window", "threads"})
    ->Args({0, 1})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
