// Google-benchmark A/B of the SA placer's packing kernel and tempering
// schedule (ISSUE/PR: incremental contour packing + deterministic parallel
// tempering):
//
//   PlacePack/{full,incremental}   whole-placement time with whole-layer
//                                  repacking on every move vs the dirty-
//                                  suffix incremental pack, single chain —
//                                  isolates the packing-kernel swap
//                                  (results are bit-identical either way);
//   PlaceThreads/N                 4-replica parallel tempering at N
//                                  worker threads (the CI bench-smoke
//                                  sweep; wall-clock gains need real
//                                  cores, results are bit-identical
//                                  regardless).
//
// All variants place the same node set: the 64-qubit SA workload built
// once outside the timed region, so the numbers are pure placement.
// Counters (volume, moves, repacked nodes per move) are reported for the
// last run of each variant.
#include <benchmark/benchmark.h>

#include "compress/dual_bridging.h"
#include "compress/flipping.h"
#include "compress/ishape.h"
#include "icm/workload.h"
#include "place/nodes.h"
#include "place/placer.h"

namespace {

using namespace tqec;

/// Build the 64-qubit SA fixture once; every benchmark variant then places
/// the identical node set.
const place::NodeSet& problem() {
  static const place::NodeSet nodes = [] {
    icm::WorkloadSpec spec;
    spec.name = "place_kernel";
    spec.qubits = 64;
    spec.cnots = 96;
    spec.y_states = 20;
    spec.a_states = 10;
    spec.seed = 7;
    const icm::IcmCircuit circuit = icm::make_workload(spec);
    pdgraph::PdGraph graph = pdgraph::build_pd_graph(circuit);
    const compress::IshapeResult ishape = compress::simplify_ishape(graph);
    const compress::PrimalBridging bridging =
        compress::bridge_primal(graph, ishape, 7);
    compress::DualBridging dual = compress::bridge_dual(graph, ishape);
    return place::build_nodes(graph, ishape, bridging, dual);
  }();
  return nodes;
}

void run_place(benchmark::State& state, const place::PlaceOptions& opt) {
  const place::NodeSet& nodes = problem();
  place::Placement last;
  for (auto _ : state) {
    last = place::place_modules(nodes, opt);
    benchmark::DoNotOptimize(last.volume);
  }
  const double moves =
      static_cast<double>(last.moves_accepted + last.moves_rejected);
  state.counters["volume"] = static_cast<double>(last.volume);
  state.counters["moves"] = moves;
  state.counters["repacked_per_move"] =
      moves > 0 ? static_cast<double>(last.repacked_nodes) / moves : 0;
  state.counters["exchanges"] = static_cast<double>(last.exchanges_accepted);
}

void BM_PlacePack(benchmark::State& state) {
  place::PlaceOptions opt;
  opt.seed = 7;
  opt.full_pack = state.range(0) == 0;
  opt.threads = 1;
  run_place(state, opt);
}

void BM_PlaceThreads(benchmark::State& state) {
  place::PlaceOptions opt;
  opt.seed = 7;
  opt.replicas = 4;
  opt.threads = static_cast<int>(state.range(0));
  run_place(state, opt);
}

}  // namespace

BENCHMARK(BM_PlacePack)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"incremental"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlaceThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
