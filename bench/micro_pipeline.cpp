// Google-benchmark end-to-end pipeline scaling: full compile time as the
// workload grows, for the full flow and the dual-only baseline. Tracks the
// paper's Table-3 runtime trend (runtime grows with module count; the
// baseline's larger SA problem dominates at scale).
#include <benchmark/benchmark.h>

#include "core/compiler.h"
#include "icm/workload.h"

namespace {

using namespace tqec;

icm::IcmCircuit workload_of_scale(int scale) {
  icm::WorkloadSpec spec;
  spec.name = "scale" + std::to_string(scale);
  spec.a_states = 8 * scale;
  spec.y_states = 2 * spec.a_states;
  spec.qubits = 3 * spec.a_states + 32 * scale;
  spec.cnots = 3 * spec.a_states + 48 * scale;
  spec.seed = 13;
  return icm::make_workload(spec);
}

void run_pipeline(benchmark::State& state, core::PipelineMode mode) {
  const auto circuit = workload_of_scale(static_cast<int>(state.range(0)));
  core::CompileOptions opt;
  opt.mode = mode;
  opt.emit_geometry = false;
  std::int64_t volume = 0;
  bool legal = true;
  for (auto _ : state) {
    const auto result = core::compile(circuit, opt);
    volume = result.volume;
    legal = legal && result.routed_legal;
    benchmark::DoNotOptimize(result.volume);
  }
  state.counters["volume"] = static_cast<double>(volume);
  state.counters["legal"] = legal ? 1 : 0;
  state.counters["modules"] =
      static_cast<double>(circuit.stats().qubits + circuit.stats().cnots);
}

void BM_FullPipeline(benchmark::State& state) {
  run_pipeline(state, core::PipelineMode::Full);
}
BENCHMARK(BM_FullPipeline)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_DualOnlyPipeline(benchmark::State& state) {
  run_pipeline(state, core::PipelineMode::DualOnly);
}
BENCHMARK(BM_DualOnlyPipeline)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

// Multi-seed restart engine scaling: 8 independent place+route attempts on
// 1/2/4 worker threads. The volume counter must be identical across rows
// of the same scale (deterministic reduction); wall-clock should shrink
// with jobs on multicore hosts.
void BM_MultiSeedPipeline(benchmark::State& state) {
  const auto circuit = workload_of_scale(static_cast<int>(state.range(0)));
  core::CompileOptions opt;
  opt.emit_geometry = false;
  opt.place_restarts = 8;
  opt.jobs = static_cast<int>(state.range(1));
  std::int64_t volume = 0;
  bool legal = true;
  for (auto _ : state) {
    const auto result = core::compile(circuit, opt);
    volume = result.volume;
    legal = legal && result.routed_legal;
    benchmark::DoNotOptimize(result.volume);
  }
  state.counters["volume"] = static_cast<double>(volume);
  state.counters["legal"] = legal ? 1 : 0;
  state.counters["jobs"] = static_cast<double>(opt.jobs);
}
BENCHMARK(BM_MultiSeedPipeline)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
