// Google-benchmark end-to-end pipeline scaling: full compile time as the
// workload grows, for the full flow and the dual-only baseline. Tracks the
// paper's Table-3 runtime trend (runtime grows with module count; the
// baseline's larger SA problem dominates at scale).
//
// Observability hooks (shared naming with bench/harness.h):
//   REPRO_STATS=1          after each benchmark, print the last run's
//                          per-stage stats_json report to stdout
//   REPRO_STATS_JSON=path  also collect those reports and write them as
//                          one JSON array to `path` on exit (CI artifact)
//   REPRO_TRACE_JSON=path  enable pipeline tracing and write the spans of
//                          every timed run as one Chrome trace-event file
//                          to `path` on exit (open in Perfetto; also a CI
//                          artifact)
// Producing the report costs one stats_json serialization per timed
// iteration, and tracing buffers every span, so leave all three unset for
// clean timing runs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace.h"
#include "core/compiler.h"
#include "icm/workload.h"

namespace {

using namespace tqec;

bool stats_wanted() {
  const char* print_env = std::getenv("REPRO_STATS");
  return (print_env != nullptr && std::atoi(print_env) != 0) ||
         std::getenv("REPRO_STATS_JSON") != nullptr;
}

std::vector<std::string>& collected_reports() {
  static std::vector<std::string> reports;
  return reports;
}

void flush_reports_file() {
  const char* path = std::getenv("REPRO_STATS_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fputs("[\n", f);
  const auto& reports = collected_reports();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    std::fputs(reports[i].c_str(), f);
    if (i + 1 < reports.size()) std::fputs(",\n", f);
  }
  std::fputs("\n]\n", f);
  std::fclose(f);
}

/// Record one benchmark's final-run report, tagged with the benchmark
/// label (the stats_json "name" field only names the workload).
void report_stats(const std::string& label, const std::string& stats_json) {
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  if (collected_reports().empty()) std::atexit(flush_reports_file);
  std::string entry = "{\"bench\": \"" + label + "\", \"report\": ";
  entry += stats_json;
  entry += "}";
  const char* print_env = std::getenv("REPRO_STATS");
  if (print_env != nullptr && std::atoi(print_env) != 0) {
    std::fputs(entry.c_str(), stdout);
    std::fputs("\n", stdout);
  }
  collected_reports().push_back(std::move(entry));
}

icm::IcmCircuit workload_of_scale(int scale) {
  icm::WorkloadSpec spec;
  spec.name = "scale" + std::to_string(scale);
  spec.a_states = 8 * scale;
  spec.y_states = 2 * spec.a_states;
  spec.qubits = 3 * spec.a_states + 32 * scale;
  spec.cnots = 3 * spec.a_states + 48 * scale;
  spec.seed = 13;
  return icm::make_workload(spec);
}

void run_pipeline(benchmark::State& state, core::PipelineMode mode,
                  const std::string& label) {
  const auto circuit = workload_of_scale(static_cast<int>(state.range(0)));
  core::CompileOptions opt;
  opt.mode = mode;
  opt.emit_geometry = false;
  std::int64_t volume = 0;
  bool legal = true;
  const bool want_stats = stats_wanted();
  std::string stats;
  for (auto _ : state) {
    const auto result = core::compile(circuit, opt);
    volume = result.volume;
    legal = legal && result.routed_legal;
    if (want_stats) stats = core::stats_json(result);
    benchmark::DoNotOptimize(result.volume);
  }
  if (want_stats)
    report_stats(label + "/" + std::to_string(state.range(0)), stats);
  state.counters["volume"] = static_cast<double>(volume);
  state.counters["legal"] = legal ? 1 : 0;
  state.counters["modules"] =
      static_cast<double>(circuit.stats().qubits + circuit.stats().cnots);
}

void BM_FullPipeline(benchmark::State& state) {
  run_pipeline(state, core::PipelineMode::Full, "BM_FullPipeline");
}
BENCHMARK(BM_FullPipeline)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_DualOnlyPipeline(benchmark::State& state) {
  run_pipeline(state, core::PipelineMode::DualOnly, "BM_DualOnlyPipeline");
}
BENCHMARK(BM_DualOnlyPipeline)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

// Multi-seed restart engine scaling: 8 independent place+route attempts on
// 1/2/4 worker threads. The volume counter must be identical across rows
// of the same scale (deterministic reduction); wall-clock should shrink
// with jobs on multicore hosts.
void BM_MultiSeedPipeline(benchmark::State& state) {
  const auto circuit = workload_of_scale(static_cast<int>(state.range(0)));
  core::CompileOptions opt;
  opt.emit_geometry = false;
  opt.place_restarts = 8;
  opt.jobs = static_cast<int>(state.range(1));
  std::int64_t volume = 0;
  bool legal = true;
  const bool want_stats = stats_wanted();
  std::string stats;
  for (auto _ : state) {
    const auto result = core::compile(circuit, opt);
    volume = result.volume;
    legal = legal && result.routed_legal;
    if (want_stats) stats = core::stats_json(result);
    benchmark::DoNotOptimize(result.volume);
  }
  if (want_stats)
    report_stats("BM_MultiSeedPipeline/" + std::to_string(state.range(0)) +
                     "/jobs:" + std::to_string(opt.jobs),
                 stats);
  state.counters["volume"] = static_cast<double>(volume);
  state.counters["legal"] = legal ? 1 : 0;
  state.counters["jobs"] = static_cast<double>(opt.jobs);
}
BENCHMARK(BM_MultiSeedPipeline)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// BENCHMARK_MAIN() expanded so the harness can honor REPRO_TRACE_JSON:
// tracing is enabled before any benchmark runs and the accumulated spans
// are written as one Chrome trace-event file after the last one.
int main(int argc, char** argv) {
  const char* trace_path = std::getenv("REPRO_TRACE_JSON");
  if (trace_path != nullptr && trace_path[0] != '\0')
    tqec::trace::set_enabled(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (trace_path != nullptr && trace_path[0] != '\0') {
    if (!tqec::trace::write_chrome_trace_file(trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu span events)\n", trace_path,
                 tqec::trace::event_count());
  }
  return 0;
}
