// Regenerates the paper's Figure 1 volume progression on the 3-CNOT worked
// example: canonical form (54 = 9x3x2), topological deformation only
// (paper: 32 = 4x4x2), bridge compression on dual defects only (paper:
// 18 = 3x3x2), and bridge compression on primal AND dual defects (paper:
// 6 = 2x1x3).
#include <cstdio>

#include "bench/harness.h"
#include "geom/canonical.h"
#include "geom/validate.h"

int main() {
  using namespace tqec;

  const icm::IcmCircuit circuit = core::three_cnot_example();
  const core::Fig1Volumes paper;

  std::printf("Figure 1: 3-CNOT example volume progression (paper -> "
              "measured)\n");
  bench::print_rule(72);

  const geom::GeomDescription canonical = geom::build_canonical(circuit);
  std::printf("%-38s %8lld %10lld\n", "(b) canonical form",
              static_cast<long long>(paper.canonical),
              static_cast<long long>(canonical.additive_volume()));

  struct Row {
    const char* label;
    core::PipelineMode mode;
    std::int64_t paper_volume;
  };
  const Row rows[] = {
      {"(c) topological deformation only", core::PipelineMode::ModularOnly,
       paper.deformed},
      {"(d) dual bridging only", core::PipelineMode::DualOnly,
       paper.dual_only},
      {"(e) primal + dual bridging (ours)", core::PipelineMode::Full,
       paper.primal_dual},
  };
  for (const Row& row : rows) {
    core::CompileOptions opt;
    opt.mode = row.mode;
    opt.seed = bench::seed_from_env();
    const core::CompileResult r = core::compile(circuit, opt);
    const auto report = geom::validate(r.geometry);
    std::printf("%-38s %8lld %10lld   [%s, %s]\n", row.label,
                static_cast<long long>(row.paper_volume),
                static_cast<long long>(r.volume),
                r.routed_legal ? "routed" : "UNROUTED",
                report.ok() ? "valid geometry" : "INVALID");
  }
  bench::print_rule(72);
  std::printf("Expected monotone decrease; the paper's (e) = 6 is the "
              "headline single-example result.\n");
  return 0;
}
