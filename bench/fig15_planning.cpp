// Regenerates the paper's Figure 15 ablation: the f-value dual-segment
// planning step (eq. 5). With planning, the dual-segment access sides
// alternate along each primal-bridging chain; without it every segment
// exits on the same side, which congests the channel and lengthens routes
// ("we might get poor routing results", Sec. 3.5).
#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace tqec;

  std::printf("Figure 15: routed dual wirelength with vs without f-value "
              "planning\n");
  bench::print_rule(108);
  std::printf("%-14s | %12s %12s %8s | %12s %12s %8s\n", "Benchmark",
              "wire(plan)", "wire(none)", "delta", "vol(plan)", "vol(none)",
              "delta");
  bench::print_rule(108);

  for (const core::PaperBenchmark& b : bench::benchmark_set(true)) {
    const icm::IcmCircuit circuit = bench::workload_for(b);
    core::CompileOptions opt;
    opt.seed = bench::seed_from_env();
    opt.effort = bench::effort_from_env();
    opt.emit_geometry = false;

    opt.plan_flips = true;
    const core::CompileResult planned = core::compile(circuit, opt);
    opt.plan_flips = false;
    const core::CompileResult naive = core::compile(circuit, opt);

    const double wire_delta =
        100.0 *
        (static_cast<double>(naive.routing.total_wire) /
             static_cast<double>(planned.routing.total_wire) -
         1.0);
    const double vol_delta =
        100.0 * (static_cast<double>(naive.volume) /
                     static_cast<double>(planned.volume) -
                 1.0);
    std::printf("%-14s | %12lld %12lld %+7.1f%% | %12lld %12lld %+7.1f%%\n",
                b.name.c_str(),
                static_cast<long long>(planned.routing.total_wire),
                static_cast<long long>(naive.routing.total_wire), wire_delta,
                static_cast<long long>(planned.volume),
                static_cast<long long>(naive.volume), vol_delta);
  }
  bench::print_rule(108);
  std::printf("Positive deltas = the unplanned variant needs more wire / "
              "volume, as in Fig. 15(b).\n");
  return 0;
}
