// Google-benchmark A/B of the router's search kernel and negotiation
// schedule (ISSUE/PR: bucket-queue search kernel + batched negotiation):
//
//   RouteKernel/{bucket,heap}        whole-routing time with the monotone
//                                    bucket (Dial) open list vs the binary
//                                    heap, serial schedule — isolates the
//                                    open-list swap (satellite A/B);
//   RouteSchedule/{serial,batched}   classic one-net-at-a-time vs the
//                                    disjoint-region batched schedule at
//                                    threads=1 — isolates schedule
//                                    overhead;
//   RouteThreads/N                   batched schedule at N worker threads
//                                    (the CI bench-smoke sweep; wall-clock
//                                    gains need real cores, results are
//                                    bit-identical regardless);
//   RouteLookahead/{off,on}          classic searches vs the seed-closure
//                                    reachability lookahead (identical
//                                    routes by construction — the A/B
//                                    isolates its map-build plus
//                                    per-connect lookup overhead);
//   RouteWarmStart/{cold,warm}       cold negotiation vs one warmed by the
//                                    NegotiationMemory a prior run of the
//                                    same problem exported (the
//                                    core::compile restart chain), warm
//                                    windows included.
//
// All variants route the same placements: mid-size SA workloads placed
// once per scale outside the timed region, so the numbers are pure
// routing. Counters (batches, conflicts, queue traffic) are reported for
// the last run of each variant.
#include <benchmark/benchmark.h>

#include <vector>

#include "compress/dual_bridging.h"
#include "compress/flipping.h"
#include "compress/ishape.h"
#include "icm/workload.h"
#include "place/nodes.h"
#include "place/placer.h"
#include "route/router.h"

namespace {

using namespace tqec;

struct RoutingProblem {
  place::NodeSet nodes;
  place::Placement placement;
};

/// Place a mid-size workload once; every benchmark variant then routes the
/// identical placement.
const RoutingProblem& problem() {
  static const RoutingProblem p = [] {
    icm::WorkloadSpec spec;
    spec.name = "route_kernel";
    spec.qubits = 64;
    spec.cnots = 96;
    spec.y_states = 20;
    spec.a_states = 10;
    spec.seed = 7;
    const icm::IcmCircuit circuit = icm::make_workload(spec);
    pdgraph::PdGraph graph = pdgraph::build_pd_graph(circuit);
    const compress::IshapeResult ishape = compress::simplify_ishape(graph);
    const compress::PrimalBridging bridging =
        compress::bridge_primal(graph, ishape, 7);
    compress::DualBridging dual = compress::bridge_dual(graph, ishape);
    RoutingProblem out;
    out.nodes = place::build_nodes(graph, ishape, bridging, dual);
    place::PlaceOptions popt;
    popt.seed = 7;
    out.placement = place::place_modules(out.nodes, popt);
    return out;
  }();
  return p;
}

void run_route(benchmark::State& state, const route::RouteOptions& opt) {
  const RoutingProblem& p = problem();
  route::RoutingResult last;
  for (auto _ : state) {
    last = route::route_nets(p.nodes, p.placement, opt);
    benchmark::DoNotOptimize(last.total_wire);
  }
  state.counters["legal"] = last.legal ? 1 : 0;
  state.counters["wire"] = static_cast<double>(last.total_wire);
  state.counters["queue_pushes"] = static_cast<double>(last.queue_pushes);
  state.counters["batches"] = static_cast<double>(last.batches);
  state.counters["conflicts"] = static_cast<double>(last.conflicts_requeued);
  state.counters["nets_per_batch"] = last.parallel_efficiency;
}

void BM_RouteKernel(benchmark::State& state) {
  route::RouteOptions opt;
  opt.bucket_queue = state.range(0) != 0;
  opt.serial_schedule = true;  // isolate the open-list swap
  opt.threads = 1;
  run_route(state, opt);
}

void BM_RouteSchedule(benchmark::State& state) {
  route::RouteOptions opt;
  opt.serial_schedule = state.range(0) == 0;
  opt.threads = 1;
  run_route(state, opt);
}

void BM_RouteThreads(benchmark::State& state) {
  route::RouteOptions opt;
  opt.threads = static_cast<int>(state.range(0));
  run_route(state, opt);
}

void BM_RouteLookahead(benchmark::State& state) {
  route::RouteOptions opt;
  opt.lookahead = state.range(0) != 0;
  opt.threads = 1;
  run_route(state, opt);
}

void BM_RouteWarmStart(benchmark::State& state) {
  const RoutingProblem& p = problem();
  route::RouteOptions opt;
  opt.threads = 1;
  // The memory a cold run of the identical problem exports — computed
  // outside the timed region, exactly what core::compile chains between
  // restart attempts.
  route::NegotiationMemory memory;
  route::route_nets(p.nodes, p.placement, opt, nullptr, &memory);
  const bool warm = state.range(0) != 0;
  route::RoutingResult last;
  for (auto _ : state) {
    last = route::route_nets(p.nodes, p.placement, opt,
                             warm ? &memory : nullptr, nullptr);
    benchmark::DoNotOptimize(last.total_wire);
  }
  state.counters["legal"] = last.legal ? 1 : 0;
  state.counters["wire"] = static_cast<double>(last.total_wire);
  state.counters["queue_pushes"] = static_cast<double>(last.queue_pushes);
  state.counters["iterations"] = static_cast<double>(last.iterations);
  state.counters["window_hits"] = static_cast<double>(last.window_hits);
  state.counters["window_misses"] =
      static_cast<double>(last.window_misses);
}

}  // namespace

BENCHMARK(BM_RouteKernel)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"bucket"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouteSchedule)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"batched"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouteThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouteLookahead)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"lookahead"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouteWarmStart)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"warm"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
