// Quantifies the paper's Figure 11/12 point: *direct* primal bridging
// blocks dual bridging (the primal bridge consumes the very module zones
// the dual bridges need), while the flipping operation keeps both usable
// simultaneously.
//
// We emulate direct bridging by running iterative dual bridging with the
// zones of all chained modules emptied (a direct primal bridge welds the
// module faces the dual common segments would have shared); with flipping,
// primal bridges run on the z axis and the zones stay intact.
#include <cstdio>

#include "bench/harness.h"
#include "compress/dual_bridging.h"
#include "compress/flipping.h"
#include "compress/ishape.h"
#include "pdgraph/pd_graph.h"

int main() {
  using namespace tqec;

  std::printf("Figure 11/12: dual bridges possible after direct vs flipped "
              "primal bridging\n");
  bench::print_rule(96);
  std::printf("%-14s %9s | %12s %12s %12s\n", "Benchmark", "#nets",
              "no primal", "direct", "flipping");
  bench::print_rule(96);

  auto run_case = [&](const std::string& label,
                      const icm::IcmCircuit& circuit) {
    const pdgraph::PdGraph graph = pdgraph::build_pd_graph(circuit);
    const compress::IshapeResult ishape = compress::simplify_ishape(graph);
    const compress::PrimalBridging bridging =
        compress::bridge_primal(graph, ishape, bench::seed_from_env());

    // Flipping: dual bridging on the untouched I-shape zones.
    compress::DualBridging with_flip = compress::bridge_dual(graph, ishape);

    // Direct bridging: chained modules lose their bridgeable zones.
    compress::IshapeResult direct = compress::simplify_ishape(graph);
    {
      auto zones = direct.zone_nets();  // copy for counting only
      compress::DualBridging blocked(graph.net_count());
      UnionFind& comp = blocked.components();
      for (std::size_t m = 0; m < zones.size(); ++m) {
        const int point = bridging.point_of_module[m];
        const bool chained =
            point >= 0 &&
            bridging.chains[static_cast<std::size_t>(
                                bridging.chain_of_point[static_cast<
                                    std::size_t>(point)])]
                    .points.size() > 1;
        if (chained) zones[m].clear();
      }
      int direct_bridges = 0;
      for (const auto& zone : zones) {
        for (std::size_t i = 0; i < zone.size(); ++i)
          for (std::size_t j = i + 1; j < zone.size(); ++j)
            if (comp.unite(static_cast<std::size_t>(zone[i]),
                           static_cast<std::size_t>(zone[j])))
              ++direct_bridges;
      }
      compress::DualBridging no_primal =
          compress::bridge_dual(graph, ishape);
      std::printf("%-14s %9d | %12d %12d %12d\n", label.c_str(),
                  graph.net_count(), no_primal.bridge_count(),
                  direct_bridges, with_flip.bridge_count());
    }
  };

  run_case("three-cnot", core::three_cnot_example());
  for (const core::PaperBenchmark& b : bench::benchmark_set())
    run_case(b.name, bench::workload_for(b));

  bench::print_rule(96);
  std::printf("Flipping preserves every dual-bridging opportunity (column "
              "'flipping' == 'no primal'); direct bridging forfeits most "
              "of them, matching Fig. 11 where one blocks the other.\n");
  return 0;
}
