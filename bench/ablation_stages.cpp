// Stage-contribution ablation (DESIGN.md extension; not a paper table):
// measures how much each of the paper's compression stages contributes to
// the final space-time volume by disabling them one at a time in the full
// flow:
//   full        — all stages (the paper's algorithm)
//   -ishape     — no I-shaped simplification (stage 3)
//   -primal     — no flipping/primal bridging, per-module placement nodes
//   -dual       — no iterative dual bridging (every CNOT net separate)
#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace tqec;

  std::printf("Ablation: space-time volume with individual stages "
              "disabled\n");
  bench::print_rule(112);
  std::printf("%-14s | %12s %12s %12s %12s | %8s %8s %8s\n", "Benchmark",
              "full", "-ishape", "-primal", "-dual", "r(-ish)", "r(-pri)",
              "r(-dual)");
  bench::print_rule(112);

  for (const core::PaperBenchmark& b : bench::benchmark_set(true)) {
    const icm::IcmCircuit circuit = bench::workload_for(b);
    auto run_with = [&](bool ishape, bool primal, bool dual) {
      core::CompileOptions opt;
      opt.seed = bench::seed_from_env();
      opt.effort = bench::effort_from_env();
      opt.emit_geometry = false;
      opt.enable_ishape = ishape;
      opt.enable_primal = primal;
      opt.enable_dual = dual;
      return core::compile(circuit, opt);
    };
    const auto full = run_with(true, true, true);
    const auto no_ishape = run_with(false, true, true);
    const auto no_primal = run_with(true, false, true);
    const auto no_dual = run_with(true, true, false);

    const double fv = static_cast<double>(full.volume);
    std::printf(
        "%-14s | %12lld %12lld %12lld %12lld | %8.3f %8.3f %8.3f\n",
        b.name.c_str(), static_cast<long long>(full.volume),
        static_cast<long long>(no_ishape.volume),
        static_cast<long long>(no_primal.volume),
        static_cast<long long>(no_dual.volume),
        static_cast<double>(no_ishape.volume) / fv,
        static_cast<double>(no_primal.volume) / fv,
        static_cast<double>(no_dual.volume) / fv);
  }
  bench::print_rule(112);
  std::printf("Ratios > 1 quantify each stage's contribution; the paper "
              "motivates primal bridging as the dominant new lever.\n");
  return 0;
}
