// Placement-engine comparison (extension bench): the SA 2.5D B*-tree
// engine of the paper vs the force-directed relaxation of Paetznick &
// Fowler (arXiv:1304.2807) that the related work describes, on the same
// post-bridging node sets. Reports placed volume, routed volume and
// routed wirelength for each engine.
#include <cstdio>

#include "bench/harness.h"
#include "compress/dual_bridging.h"
#include "compress/flipping.h"
#include "compress/ishape.h"
#include "pdgraph/pd_graph.h"
#include "place/force_directed.h"
#include "place/placer.h"
#include "route/router.h"

int main() {
  using namespace tqec;

  std::printf("Placement engines: SA 2.5D B*-tree (paper) vs "
              "force-directed relaxation [Paetznick-Fowler]\n");
  bench::print_rule(118);
  std::printf("%-14s | %12s %12s %10s | %12s %12s %10s | %8s\n", "Benchmark",
              "SA placed", "SA routed", "SA wire", "FD placed", "FD routed",
              "FD wire", "FD/SA");
  bench::print_rule(118);

  for (const core::PaperBenchmark& b : bench::benchmark_set(true)) {
    const icm::IcmCircuit circuit = bench::workload_for(b);
    const pdgraph::PdGraph graph = pdgraph::build_pd_graph(circuit);
    const compress::IshapeResult ishape = compress::simplify_ishape(graph);
    const compress::PrimalBridging bridging =
        compress::bridge_primal(graph, ishape, bench::seed_from_env());
    compress::DualBridging dual = compress::bridge_dual(graph, ishape);
    const place::NodeSet nodes =
        place::build_nodes(graph, ishape, bridging, dual);

    place::PlaceOptions sa_opt;
    sa_opt.seed = bench::seed_from_env();
    sa_opt.effort = bench::effort_from_env();
    const place::Placement sa = place::place_modules(nodes, sa_opt);
    route::RouteOptions ropt;
    const route::RoutingResult sa_routed = route::route_nets(nodes, sa, ropt);

    place::ForceDirectedOptions fd_opt;
    fd_opt.seed = bench::seed_from_env();
    const place::Placement fd = place::place_force_directed(nodes, fd_opt);
    const route::RoutingResult fd_routed = route::route_nets(nodes, fd, ropt);

    std::printf("%-14s | %12lld %12lld %10lld | %12lld %12lld %10lld | "
                "%7.2fx\n",
                b.name.c_str(), static_cast<long long>(sa.volume),
                static_cast<long long>(sa_routed.volume),
                static_cast<long long>(sa_routed.total_wire),
                static_cast<long long>(fd.volume),
                static_cast<long long>(fd_routed.volume),
                static_cast<long long>(fd_routed.total_wire),
                static_cast<double>(fd_routed.volume) /
                    static_cast<double>(sa_routed.volume));
  }
  bench::print_rule(118);
  std::printf("FD/SA > 1 quantifies why the paper anneals B*-trees instead "
              "of relaxing forces (local minima).\n");
  return 0;
}
