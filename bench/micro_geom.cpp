// Google-benchmark coverage for the data-oriented geometry engine
// (geom/cell_grid.h): occupancy-grid build cost and query throughput,
// plus the measured validate+stitch path of a long layered workload run
// A/B — grid engine (grid:1) against the hash-set reference (grid:0) on
// identical inputs in the same process. The timing-gate ratio
// geom_grid_over_hash (see bench/geom_timing_baseline.json) pins the
// grid engine's speedup self-relatively, so runner speed cancels out.
// Counters carry the memory story (grid_bytes, peak_rss_mib) next to the
// timing so CI artifacts show both axes of the trade.
//
// Observability hooks (shared naming with bench/harness.h):
//   REPRO_STATS=1          after each benchmark, print the last run's
//                          stats report to stdout
//   REPRO_STATS_JSON=path  also collect those reports and write them as
//                          one JSON array to `path` on exit (CI artifact)
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/compiler.h"
#include "core/paper_tables.h"
#include "core/shard.h"
#include "geom/cell_grid.h"
#include "geom/stitch.h"
#include "geom/validate.h"
#include "icm/workload.h"

namespace {

using namespace tqec;

bool stats_wanted() {
  const char* print_env = std::getenv("REPRO_STATS");
  return (print_env != nullptr && std::atoi(print_env) != 0) ||
         std::getenv("REPRO_STATS_JSON") != nullptr;
}

std::vector<std::string>& collected_reports() {
  static std::vector<std::string> reports;
  return reports;
}

void flush_reports_file() {
  const char* path = std::getenv("REPRO_STATS_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fputs("[\n", f);
  const auto& reports = collected_reports();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    std::fputs(reports[i].c_str(), f);
    if (i + 1 < reports.size()) std::fputs(",\n", f);
  }
  std::fputs("\n]\n", f);
  std::fclose(f);
}

void report_stats(const std::string& label, const std::string& stats_json) {
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  if (collected_reports().empty()) std::atexit(flush_reports_file);
  std::string entry = "{\"bench\": \"" + label + "\", \"report\": ";
  entry += stats_json;
  entry += "}";
  const char* print_env = std::getenv("REPRO_STATS");
  if (print_env != nullptr && std::atoi(print_env) != 0) {
    std::fputs(entry.c_str(), stdout);
    std::fputs("\n", stdout);
  }
  collected_reports().push_back(std::move(entry));
}

// ---------------------------------------------------------------------------
// Fixture: the same depth-long layered circuit micro_shard uses, cut into
// windows and compiled once. The benchmarks below re-run only the
// geometry-engine stages (validate, stitch, grid build) on the compiled
// windows, which is the path the tentpole optimized.

struct WindowFixture {
  std::string name;
  std::vector<geom::GeomDescription> geoms;  // normalized to the origin
  std::vector<geom::StitchWindow> windows;   // pointers into geoms
  geom::GeomDescription stitched;            // grid-engine stitch output
};

const WindowFixture& window_fixture() {
  static const WindowFixture fixture = [] {
    icm::LayeredWorkloadSpec spec;
    TQEC_REQUIRE(icm::parse_layered_name("long_16x64_t1_c3", spec),
                 "micro_geom: bad workload name");
    const icm::IcmCircuit circuit = icm::make_layered_workload(spec);
    const core::ShardPlan plan = core::plan_windows(circuit, 8);
    const std::size_t n = plan.windows.size();
    TQEC_REQUIRE(n >= 2, "micro_geom: expected a multi-window plan");

    WindowFixture f;
    f.name = circuit.name();
    f.geoms.resize(n);
    f.windows.resize(n);
    for (std::size_t w = 0; w < n; ++w) {
      core::CompileOptions wopt;
      wopt.keep_internals = true;
      const core::CompileResult r = core::compile(
          core::extract_window(circuit, plan, static_cast<int>(w)), wopt);
      TQEC_REQUIRE(r.routed_legal, "micro_geom: window compile not legal");
      const Box3 bb = r.geometry.bounding_box();
      const Vec3 lo = bb.empty() ? Vec3{0, 0, 0} : bb.lo;
      f.geoms[w] = r.geometry;
      f.geoms[w].translate({-lo.x, -lo.y, -lo.z});
      const auto& rows = r.internals->graph.rows();
      const auto& module_cell = r.placement.module_cell;
      const core::WindowPlan& wp = plan.windows[w];
      for (std::size_t i = 0; i < wp.lines.size(); ++i) {
        if (wp.carry_in[i])
          f.windows[w].carry_in.emplace_back(
              wp.lines[i],
              module_cell[static_cast<std::size_t>(rows[i].front())] - lo);
        if (wp.carry_out[i])
          f.windows[w].carry_out.emplace_back(
              wp.lines[i],
              module_cell[static_cast<std::size_t>(rows[i].back())] - lo);
      }
    }
    for (std::size_t w = 0; w < n; ++w) f.windows[w].geometry = &f.geoms[w];
    geom::StitchResult stitched = geom::stitch_windows(f.windows, f.name);
    TQEC_REQUIRE(stitched.ok(), "micro_geom: fixture stitch failed");
    f.stitched = std::move(stitched.geometry);
    return f;
  }();
  return fixture;
}

// ---------------------------------------------------------------------------
// Grid build: rasterize the stitched long geometry into an occupancy
// grid — the cost published as geom.grid_build_s on every compile.

void BM_GridBuild(benchmark::State& state) {
  const geom::GeomDescription& g = window_fixture().stitched;
  geom::GridBuildStats stats;
  std::int64_t cells = 0;
  for (auto _ : state) {
    const geom::OccupancyGrid grid = geom::build_occupancy(g, &stats);
    cells = grid.popcount(geom::kPrimalPlane) +
            grid.popcount(geom::kDualPlane);
    benchmark::DoNotOptimize(cells);
  }
  state.counters["grid_bytes"] = static_cast<double>(stats.bytes);
  state.counters["dense"] = stats.dense ? 1 : 0;
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["segments"] = static_cast<double>(g.segment_count());
}
BENCHMARK(BM_GridBuild)->Unit(benchmark::kMillisecond)->UseRealTime();

// Query throughput: random point probes against the built grid, the
// inner-loop primitive of validate's V3/V5 passes and the stitch A*.

void BM_GridQuery(benchmark::State& state) {
  const geom::GeomDescription& g = window_fixture().stitched;
  const geom::OccupancyGrid grid = geom::build_occupancy(g);
  const Box3 bb = grid.bounds();
  constexpr int kProbes = 4096;
  std::vector<Vec3> probes(kProbes);
  Rng rng(1234);
  for (Vec3& p : probes)
    p = {rng.range(bb.lo.x, bb.hi.x), rng.range(bb.lo.y, bb.hi.y),
         rng.range(bb.lo.z, bb.hi.z)};
  std::int64_t hits = 0;
  for (auto _ : state) {
    for (int i = 0; i < kProbes; ++i)
      hits += grid.test(i & 1, probes[static_cast<std::size_t>(i)]) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * kProbes);
  state.counters["grid_bytes"] = static_cast<double>(grid.byte_size());
}
BENCHMARK(BM_GridQuery)->UseRealTime();

// Hash-set reference for the canonical exact cell count — the per-plane
// rasterize-into-unordered_set every consumer used before the grid.
std::int64_t hash_exact_cell_count(const geom::GeomDescription& g) {
  std::unordered_set<Vec3> planes[2];
  for (const geom::DefectView d : g.defects()) {
    const int plane = geom::plane_of(d.type);
    for (const geom::Segment& s : d.segments) {
      const Vec3 d3 = s.b - s.a;
      const Vec3 step{d3.x > 0 ? 1 : d3.x < 0 ? -1 : 0,
                      d3.y > 0 ? 1 : d3.y < 0 ? -1 : 0,
                      d3.z > 0 ? 1 : d3.z < 0 ? -1 : 0};
      Vec3 p = s.a;
      while (true) {
        planes[plane].insert(p);
        if (p == s.b) break;
        p = p + step;
      }
    }
  }
  return static_cast<std::int64_t>(planes[0].size() + planes[1].size());
}

// ---------------------------------------------------------------------------
// The measured path: validate every window geometry, stitch the seams,
// then take the canonical exact cell count of the stitched result — grid
// engine vs hash-set reference on identical inputs.
// grid = state.range(0): 1 = bit-grid engine, 0 = reference.

void BM_GeomPath(benchmark::State& state) {
  const WindowFixture& f = window_fixture();
  const bool use_grid = state.range(0) != 0;
  geom::ValidateOptions vopt;
  vopt.use_grid = use_grid;
  geom::StitchOptions sopt;
  sopt.use_grid = use_grid;
  bool ok = true;
  std::int64_t seam_cells = 0, grid_bytes = 0, cells = 0;
  for (auto _ : state) {
    for (const geom::GeomDescription& g : f.geoms)
      ok = ok && geom::validate(g, vopt).ok();
    geom::StitchResult r = geom::stitch_windows(f.windows, f.name, sopt);
    ok = ok && r.ok();
    seam_cells = r.seam_cells;
    grid_bytes = r.grid_bytes;
    cells = use_grid ? r.geometry.exact_cell_count()
                     : hash_exact_cell_count(r.geometry);
    benchmark::DoNotOptimize(cells);
  }
  if (stats_wanted()) {
    std::string entry = "{\"ok\": ";
    entry += ok ? "true" : "false";
    entry += ", \"seam_cells\": " + std::to_string(seam_cells);
    entry += ", \"grid_bytes\": " + std::to_string(grid_bytes) + "}";
    report_stats(
        "BM_GeomPath/grid:" + std::to_string(use_grid ? 1 : 0), entry);
  }
  state.counters["ok"] = ok ? 1 : 0;
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["seam_cells"] = static_cast<double>(seam_cells);
  state.counters["grid_bytes"] = static_cast<double>(grid_bytes);
  state.counters["peak_rss_mib"] =
      static_cast<double>(trace::peak_rss_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_GeomPath)
    ->ArgNames({"grid"})
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Perf-trajectory rows for BENCH_geom.json: grid vs hash wall (and the
// process peak-RSS gauge) for validate + canonical exact count on the two
// tracked workloads — a paper benchmark and the deep layered circuit.
// workload = state.range(0): 0 = ham15_107, 1 = long_16x128_t1_c3;
// grid = state.range(1).

const geom::GeomDescription& workload_geometry(int which) {
  static const geom::GeomDescription geoms[2] = {
      [] {
        const icm::IcmCircuit circuit =
            icm::make_workload(core::workload_spec(
                core::paper_benchmark("ham15_107")));
        core::CompileResult r = core::compile(circuit, {});
        TQEC_REQUIRE(r.routed_legal, "micro_geom: ham15 compile not legal");
        return std::move(r.geometry);
      }(),
      [] {
        icm::LayeredWorkloadSpec spec;
        TQEC_REQUIRE(icm::parse_layered_name("long_16x128_t1_c3", spec),
                     "micro_geom: bad workload name");
        core::CompileResult r =
            core::compile(icm::make_layered_workload(spec), {});
        TQEC_REQUIRE(r.routed_legal, "micro_geom: long compile not legal");
        return std::move(r.geometry);
      }(),
  };
  return geoms[which];
}

void BM_ValidateCount(benchmark::State& state) {
  const geom::GeomDescription& g =
      workload_geometry(static_cast<int>(state.range(0)));
  const bool use_grid = state.range(1) != 0;
  geom::ValidateOptions vopt;
  vopt.use_grid = use_grid;
  bool ok = true;
  std::int64_t cells = 0;
  for (auto _ : state) {
    ok = ok && geom::validate(g, vopt).ok();
    cells = use_grid ? g.exact_cell_count() : hash_exact_cell_count(g);
    benchmark::DoNotOptimize(cells);
  }
  state.counters["ok"] = ok ? 1 : 0;
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["segments"] = static_cast<double>(g.segment_count());
  state.counters["peak_rss_mib"] =
      static_cast<double>(trace::peak_rss_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_ValidateCount)
    ->ArgNames({"workload", "grid"})
    ->Args({0, 1})
    ->Args({0, 0})
    ->Args({1, 1})
    ->Args({1, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
