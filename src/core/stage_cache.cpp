#include "core/stage_cache.h"

namespace tqec::core {

CacheKey make_cache_key(std::string_view stage_tag,
                        std::string_view canonical_input,
                        std::string_view option_fingerprint) {
  Digest128 d;
  // Length-prefix each field so (tag, input) pairs cannot collide by
  // shifting bytes across the field boundary.
  const auto put = [&](std::string_view s) {
    const std::uint64_t n = s.size();
    d.update(std::string_view(reinterpret_cast<const char*>(&n), sizeof n));
    d.update(s);
  };
  put(stage_tag);
  put(canonical_input);
  put(option_fingerprint);
  return CacheKey{d.lo, d.hi};
}

StageCache::StageCache(std::int64_t byte_budget)
    : budget_(byte_budget > 0 ? byte_budget : 0) {}

std::shared_ptr<const void> StageCache::get_erased(const CacheKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most recently used
  return it->second->value;
}

void StageCache::put_erased(const CacheKey& key,
                            std::shared_ptr<const void> value,
                            std::int64_t bytes) {
  if (budget_ <= 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh (identical content by determinism; the byte estimate may
    // differ across estimator versions, so keep the accounting exact).
    bytes_ += bytes - it->second->bytes;
    it->second->bytes = bytes;
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(value), bytes});
    index_.emplace(key, lru_.begin());
    bytes_ += bytes;
    ++insertions_;
  }
  evict_over_budget_locked();
}

void StageCache::evict_over_budget_locked() {
  // Evict least-recently-used until under budget. An entry larger than the
  // whole budget evicts immediately — oversized outputs simply don't
  // cache, bounding worst-case memory at budget + one in-flight value.
  while (bytes_ > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

StageCache::Stats StageCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = static_cast<std::int64_t>(lru_.size());
  s.bytes = bytes_;
  s.budget = budget_;
  return s;
}

void StageCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace tqec::core
