// Published data from the paper (Tables 1-3 and the Figure-1 example),
// used by the benchmark harnesses to print paper-vs-measured comparisons
// and by the workload generator to reproduce the benchmark statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "icm/workload.h"

namespace tqec::core {

struct PaperBenchmark {
  std::string name;
  // Table 1: benchmark statistics after gate decomposition.
  int qubits = 0;
  int cnots = 0;
  int y_states = 0;
  int a_states = 0;
  int modules = 0;  // #Modules before primal bridging
  int nodes = 0;    // #Nodes after primal bridging (2.5D B*-tree nodes)
  // Table 2: space-time volumes (ratios are relative to the paper's "Ours").
  std::int64_t canonical_volume = 0;
  std::int64_t lin1d_volume = 0;  // [Lin et al. TCAD'17], 1D architecture
  std::int64_t lin2d_volume = 0;  // [Lin et al. TCAD'17], 2D architecture
  // Table 3: bridge-compression comparison.
  std::int64_t hsu_volume = 0;    // [Hsu et al. DAC'21], dual-only bridging
  double hsu_runtime_s = 0;
  std::int64_t ours_volume = 0;   // the paper's result
  double ours_runtime_s = 0;
};

/// The eight RevLib benchmarks of the paper's evaluation.
const std::vector<PaperBenchmark>& paper_benchmarks();

/// Look up a benchmark by name; throws TqecError when unknown.
const PaperBenchmark& paper_benchmark(const std::string& name);

/// Workload-generator spec reproducing a benchmark's Table-1 statistics.
icm::WorkloadSpec workload_spec(const PaperBenchmark& bench,
                                std::uint64_t seed = 7);

/// Figure 1: volume progression of the 3-CNOT example.
struct Fig1Volumes {
  std::int64_t canonical = 54;       // 9 x 3 x 2
  std::int64_t deformed = 32;        // 4 x 4 x 2, topological deformation only
  std::int64_t dual_only = 18;       // 3 x 3 x 2, dual bridging only
  std::int64_t primal_dual = 6;      // 2 x 1 x 3, primal + dual bridging
};

/// The paper's 3-CNOT worked example (Figs. 1, 6, 10-14): three lines;
/// CNOT(A->B), CNOT(C->B), CNOT(B->A).
icm::IcmCircuit three_cnot_example();

}  // namespace tqec::core
