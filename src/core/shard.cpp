#include "core/shard.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "geom/canonical.h"
#include "geom/cell_grid.h"
#include "geom/stitch.h"
#include "geom/validate.h"
#include "icm/serialize.h"

namespace tqec::core {

namespace {

namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------------
// Window outcome: the slim per-window record kept across the shard run.
// Holding only this (never the window's CompileResult with its fabric,
// B*-tree, and internals) is what makes sequential peak RSS O(largest
// window).

struct WindowOutcome {
  bool legal = false;
  std::int64_t volume = 0;
  std::int64_t canonical_volume = 0;
  int modules = 0, nodes = 0;
  int ishape_merges = 0, primal_bridges = 0, dual_bridges = 0;
  int net_components = 0;
  double pd_graph_s = 0, ishape_s = 0, primal_bridge_s = 0;
  double dual_bridge_s = 0, place_s = 0, route_s = 0;
  double place_route_wall_s = 0, total_s = 0;
  PlaceAttemptStats selected;  // the winning attempt (curves omitted)
  geom::GeomDescription geometry;  // normalized: bounding box lo == origin
  std::vector<std::pair<int, Vec3>> carry_in;   // global line -> cell
  std::vector<std::pair<int, Vec3>> carry_out;
  bool resumed = false;
};

// ---------------------------------------------------------------------------
// Content hashing (stage-cache discipline: Digest128 over canonical text)

/// Every result-affecting compile option, serialized canonically. Thread
/// counts (jobs, place.threads, route.threads, shard threads) are
/// excluded: they never change results, so a resume with a different
/// worker count must still hit.
std::string options_fingerprint(const CompileOptions& o,
                                const ShardOptions& shard) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "shardfp/v1"
     << "|mode=" << static_cast<int>(o.mode) << "|seed=" << o.seed
     << "|effort=" << o.effort << "|plan=" << o.plan_flips
     << "|ish=" << o.enable_ishape << "|pri=" << o.enable_primal
     << "|dual=" << o.enable_dual << "|prestarts=" << o.primal_restarts
     << "|attempts=" << o.place_restarts;
  const place::PlaceOptions& p = o.place;
  os << "|p.layers=" << p.layers << "|p.alpha=" << p.alpha_volume
     << "|p.beta=" << p.beta_wire
     << "|p.wire=" << static_cast<int>(p.wire_model)
     << "|p.iters=" << p.iterations << "|p.effort=" << p.effort
     << "|p.t0=" << p.t0_fraction << "|p.cool=" << p.cooling
     << "|p.batch=" << p.batch << "|p.ygap=" << p.layer_y_gap
     << "|p.replicas=" << p.replicas << "|p.stagger=" << p.replica_stagger
     << "|p.fullpack=" << p.full_pack;
  const route::RouteOptions& r = o.route;
  os << "|r.margin=" << r.margin << "|r.maxit=" << r.max_iterations
     << "|r.hist=" << r.history_increment << "|r.pbase=" << r.present_base
     << "|r.pgrow=" << r.present_growth << "|r.pmax=" << r.present_max
     << "|r.incr=" << r.incremental << "|r.stall=" << r.stall_sweeps
     << "|r.region=" << r.region_margin << "|r.serial=" << r.serial_schedule
     << "|r.bucket=" << r.bucket_queue << "|r.look=" << r.lookahead
     << "|r.windows=" << r.windows << "|r.warm=" << r.warm_start;
  os << "|shard.window=" << shard.window << "|shard.gap=" << shard.seam_gap;
  return os.str();
}

std::string digest_hex(const Digest128& d) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(d.lo),
                static_cast<unsigned long long>(d.hi));
  return buf;
}

/// Content hash of one window: its canonical ICM text (carry flags
/// included), the result-affecting options, and its position in the plan.
/// The ICM serializer streams straight into the digest — FNV-1a chunks
/// identically however the bytes arrive, so the hash equals the old
/// update(to_icm_text(...)) without materializing the window's text.
std::string window_digest(const icm::IcmCircuit& window_circuit,
                          const std::string& fingerprint, int index,
                          int total) {
  Digest128 d;
  d.update("tqec.shard.window/v1");
  d.update(fingerprint);
  d.update(std::to_string(index) + "/" + std::to_string(total));
  DigestStreambuf sb(d);
  std::ostream os(&sb);
  icm::write_icm(window_circuit, os);
  os.flush();
  return digest_hex(sb.digest());
}

// ---------------------------------------------------------------------------
// Checkpoint serialization (self-contained text record per window)

void write_vec3(std::ostream& out, Vec3 v) {
  out << v.x << ' ' << v.y << ' ' << v.z;
}

void write_checkpoint(std::ostream& out, const std::string& digest,
                      int index, int total, const WindowOutcome& o) {
  out << std::setprecision(17);
  out << "tqecck 1\n";
  out << "digest " << digest << "\n";
  out << "window " << index << ' ' << total << "\n";
  out << "legal " << (o.legal ? 1 : 0) << "\n";
  out << "volume " << o.volume << ' ' << o.canonical_volume << "\n";
  out << "counts " << o.modules << ' ' << o.nodes << ' ' << o.ishape_merges
      << ' ' << o.primal_bridges << ' ' << o.dual_bridges << ' '
      << o.net_components << "\n";
  out << "timings " << o.pd_graph_s << ' ' << o.ishape_s << ' '
      << o.primal_bridge_s << ' ' << o.dual_bridge_s << ' ' << o.place_s
      << ' ' << o.route_s << ' ' << o.place_route_wall_s << ' ' << o.total_s
      << "\n";
  out << "attempt " << o.selected.seed << ' ' << o.selected.volume << ' '
      << (o.selected.legal ? 1 : 0) << ' ' << o.selected.y_gap << ' '
      << o.selected.place_s << ' ' << o.selected.route_s << "\n";
  for (const auto& [line, cell] : o.carry_in) {
    out << "carry_in " << line << ' ';
    write_vec3(out, cell);
    out << "\n";
  }
  for (const auto& [line, cell] : o.carry_out) {
    out << "carry_out " << line << ' ';
    write_vec3(out, cell);
    out << "\n";
  }
  for (const geom::DefectView d : o.geometry.defects()) {
    out << "defect " << (d.type == geom::DefectType::Primal ? 'p' : 'd')
        << ' ' << d.source_id << ' ' << d.segments.size() << "\n";
    for (const geom::Segment& s : d.segments) {
      out << "seg ";
      write_vec3(out, s.a);
      out << ' ';
      write_vec3(out, s.b);
      out << "\n";
    }
  }
  for (const geom::DistillBox& b : o.geometry.boxes()) {
    out << "box " << (b.kind == geom::BoxKind::YBox ? 'y' : 'a') << ' ';
    write_vec3(out, b.origin);
    out << ' ' << b.line << "\n";
  }
  for (const geom::ImComponent& c : o.geometry.components()) {
    out << "comp " << static_cast<int>(c.kind) << ' ';
    write_vec3(out, c.position);
    out << ' ' << c.defect_index << "\n";
  }
  out << "end\n";
}

/// Tokenizing reader for the checkpoint format; any structural surprise
/// makes the load fail soft (nullopt -> the window is recompiled).
class CheckpointReader {
 public:
  explicit CheckpointReader(std::istream& in) : in_(in) {}

  bool next(std::vector<std::string>& tokens) {
    std::string raw;
    while (std::getline(in_, raw)) {
      const std::string_view t = trim(raw);
      if (t.empty()) continue;
      tokens = split_ws(t);
      return true;
    }
    return false;
  }

 private:
  std::istream& in_;
};

bool parse_int(const std::string& s, std::int64_t& out) {
  const auto v = try_parse_i64(s);
  if (!v) return false;
  out = *v;
  return true;
}

bool parse_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

/// Full-range u64 parse (attempt seeds are splitmix64 outputs, which
/// routinely exceed int64's range).
bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

bool parse_vec3(const std::vector<std::string>& t, std::size_t at, Vec3& v) {
  std::int64_t x, y, z;
  if (t.size() < at + 3 || !parse_int(t[at], x) || !parse_int(t[at + 1], y) ||
      !parse_int(t[at + 2], z))
    return false;
  v = {static_cast<int>(x), static_cast<int>(y), static_cast<int>(z)};
  return true;
}

std::optional<WindowOutcome> read_checkpoint(std::istream& in,
                                             const std::string& digest,
                                             int index, int total) {
  CheckpointReader reader(in);
  std::vector<std::string> t;
  WindowOutcome o;
  // Defects stream line-by-line straight into the geometry's segment
  // arena (begin_defect/append_segment) — no intermediate vector-of-
  // vectors, so peak memory during a resume is the parse buffer plus the
  // geometry itself. Components are collected for the end-of-record index
  // check (they may reference any defect).
  geom::GeomDescription rebuilt;
  std::vector<geom::ImComponent> ck_components;
  bool defect_open = false;
  std::size_t segs_expected = 0, segs_read = 0;
  bool header = false, digest_ok = false, ended = false;

  while (reader.next(t)) {
    const std::string& kw = t[0];
    std::int64_t i1 = 0, i2 = 0;
    if (kw == "tqecck") {
      if (t.size() < 2 || t[1] != "1") return std::nullopt;
      header = true;
    } else if (!header) {
      return std::nullopt;
    } else if (kw == "digest") {
      if (t.size() != 2 || t[1] != digest) return std::nullopt;
      digest_ok = true;
    } else if (kw == "window") {
      if (t.size() != 3 || !parse_int(t[1], i1) || !parse_int(t[2], i2) ||
          i1 != index || i2 != total)
        return std::nullopt;
    } else if (kw == "legal") {
      if (t.size() != 2 || !parse_int(t[1], i1)) return std::nullopt;
      o.legal = i1 != 0;
    } else if (kw == "volume") {
      if (t.size() != 3 || !parse_int(t[1], o.volume) ||
          !parse_int(t[2], o.canonical_volume))
        return std::nullopt;
    } else if (kw == "counts") {
      std::int64_t v[6];
      if (t.size() != 7) return std::nullopt;
      for (int i = 0; i < 6; ++i)
        if (!parse_int(t[static_cast<std::size_t>(i) + 1], v[i]))
          return std::nullopt;
      o.modules = static_cast<int>(v[0]);
      o.nodes = static_cast<int>(v[1]);
      o.ishape_merges = static_cast<int>(v[2]);
      o.primal_bridges = static_cast<int>(v[3]);
      o.dual_bridges = static_cast<int>(v[4]);
      o.net_components = static_cast<int>(v[5]);
    } else if (kw == "timings") {
      double* d[8] = {&o.pd_graph_s, &o.ishape_s, &o.primal_bridge_s,
                      &o.dual_bridge_s, &o.place_s, &o.route_s,
                      &o.place_route_wall_s, &o.total_s};
      if (t.size() != 9) return std::nullopt;
      for (int i = 0; i < 8; ++i)
        if (!parse_double(t[static_cast<std::size_t>(i) + 1], *d[i]))
          return std::nullopt;
    } else if (kw == "attempt") {
      std::uint64_t seed = 0;
      std::int64_t volume = 0, legal = 0, y_gap = 0;
      if (t.size() != 7 || !parse_u64(t[1], seed) ||
          !parse_int(t[2], volume) || !parse_int(t[3], legal) ||
          !parse_int(t[4], y_gap) || !parse_double(t[5], o.selected.place_s) ||
          !parse_double(t[6], o.selected.route_s))
        return std::nullopt;
      o.selected.seed = seed;
      o.selected.volume = volume;
      o.selected.legal = legal != 0;
      o.selected.selected = true;
      o.selected.y_gap = static_cast<int>(y_gap);
    } else if (kw == "carry_in" || kw == "carry_out") {
      Vec3 cell;
      if (t.size() != 5 || !parse_int(t[1], i1) || !parse_vec3(t, 2, cell))
        return std::nullopt;
      auto& dst = kw == "carry_in" ? o.carry_in : o.carry_out;
      dst.emplace_back(static_cast<int>(i1), cell);
    } else if (kw == "defect") {
      if (defect_open && segs_read != segs_expected) return std::nullopt;
      if (t.size() != 4 || (t[1] != "p" && t[1] != "d") ||
          !parse_int(t[2], i1) || !parse_int(t[3], i2) || i2 < 0)
        return std::nullopt;
      rebuilt.begin_defect(t[1] == "p" ? geom::DefectType::Primal
                                       : geom::DefectType::Dual,
                           static_cast<int>(i1));
      defect_open = true;
      segs_expected = static_cast<std::size_t>(i2);
      segs_read = 0;
    } else if (kw == "seg") {
      geom::Segment s;
      if (!defect_open || t.size() != 7 || !parse_vec3(t, 1, s.a) ||
          !parse_vec3(t, 4, s.b) || !s.axis_aligned())
        return std::nullopt;
      rebuilt.append_segment(s);
      ++segs_read;
    } else if (kw == "box") {
      geom::DistillBox b;
      if (t.size() != 6 || (t[1] != "y" && t[1] != "a") ||
          !parse_vec3(t, 2, b.origin) || !parse_int(t[5], i1))
        return std::nullopt;
      b.kind = t[1] == "y" ? geom::BoxKind::YBox : geom::BoxKind::ABox;
      b.line = static_cast<int>(i1);
      rebuilt.add_box(b);
    } else if (kw == "comp") {
      geom::ImComponent c;
      if (t.size() != 6 || !parse_int(t[1], i1) || i1 < 0 || i1 > 5 ||
          !parse_vec3(t, 2, c.position) || !parse_int(t[5], i2))
        return std::nullopt;
      c.kind = static_cast<geom::ComponentKind>(i1);
      c.defect_index = static_cast<int>(i2);
      ck_components.push_back(c);
    } else if (kw == "end") {
      ended = true;
      break;
    } else {
      return std::nullopt;
    }
  }
  if (!header || !digest_ok || !ended) return std::nullopt;
  if (defect_open && segs_read != segs_expected) return std::nullopt;
  // Components last, so their defect indices validate against the fully
  // streamed defect list.
  for (const geom::ImComponent& c : ck_components) {
    if (c.defect_index >= static_cast<int>(rebuilt.defect_count()))
      return std::nullopt;
    rebuilt.add_component(c);
  }
  o.geometry = std::move(rebuilt);
  o.resumed = true;
  return o;
}

std::string checkpoint_filename(int index, const std::string& digest) {
  return "win" + std::to_string(index) + "_" + digest + ".tqecck";
}

std::optional<WindowOutcome> load_checkpoint(const fs::path& path,
                                             const std::string& digest,
                                             int index, int total) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  try {
    return read_checkpoint(in, digest, index, total);
  } catch (...) {
    return std::nullopt;  // corrupt record: recompile the window
  }
}

void save_checkpoint(const fs::path& path, const std::string& digest,
                     int index, int total, const WindowOutcome& o) {
  // Atomic publish: a killed compile must never leave a half-written
  // record that a resume could half-read.
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return;  // checkpointing is best-effort, never fatal
    write_checkpoint(out, digest, index, total, o);
    if (!out) return;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
}

std::string json_escape_min(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

void write_manifest(const fs::path& dir, const std::string& name,
                    const ShardOptions& shard, const ShardPlan& plan,
                    const std::vector<std::string>& digests) {
  std::ofstream out(dir / "manifest.json");
  if (!out) return;
  out << "{\n  \"name\": \"" << json_escape_min(name) << "\",\n";
  out << "  \"shard_window\": " << shard.window << ",\n";
  out << "  \"depth\": " << plan.depth << ",\n";
  out << "  \"windows\": [";
  for (std::size_t w = 0; w < plan.windows.size(); ++w) {
    if (w) out << ",";
    out << "\n    {\"index\": " << w << ", \"layer_lo\": "
        << plan.windows[w].layer_lo << ", \"layer_hi\": "
        << plan.windows[w].layer_hi << ", \"digest\": \"" << digests[w]
        << "\", \"file\": \""
        << checkpoint_filename(static_cast<int>(w), digests[w]) << "\"}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace

// ---------------------------------------------------------------------------
// Planning

ShardPlan plan_windows(const icm::IcmCircuit& circuit, int window_layers) {
  TQEC_TRACE_SPAN("shard.plan");
  const int K = std::max(1, window_layers);
  const int lines = circuit.num_lines();
  const auto& cnots = circuit.cnots();

  ShardPlan plan;
  plan.meas_window.assign(static_cast<std::size_t>(lines), 0);

  // ASAP layering: layer(k) = 1 + max(last layer of either endpoint).
  std::vector<int> layer(cnots.size(), 0);
  std::vector<int> last(static_cast<std::size_t>(lines), 0);
  std::vector<int> first_use(static_cast<std::size_t>(lines), 0);
  std::vector<int> last_use(static_cast<std::size_t>(lines), 0);
  int depth = 0;
  for (std::size_t k = 0; k < cnots.size(); ++k) {
    const auto c = static_cast<std::size_t>(cnots[k].control);
    const auto t = static_cast<std::size_t>(cnots[k].target);
    const int L = std::max(last[c], last[t]) + 1;
    layer[k] = L;
    last[c] = last[t] = L;
    if (first_use[c] == 0) first_use[c] = L;
    if (first_use[t] == 0) first_use[t] = L;
    last_use[c] = std::max(last_use[c], L);
    last_use[t] = std::max(last_use[t], L);
    depth = std::max(depth, L);
  }
  plan.depth = depth;

  if (depth == 0) {
    // CNOT-free circuit: one window holding every line.
    WindowPlan w;
    w.index = 0;
    w.layer_lo = 1;
    w.layer_hi = 2;
    for (int l = 0; l < lines; ++l) {
      w.lines.push_back(l);
      w.carry_in.push_back(0);
      w.carry_out.push_back(0);
    }
    plan.windows.push_back(std::move(w));
    return plan;
  }

  // crossings(b) = #lines with a CNOT at a layer < b and one at >= b,
  // via a difference array over boundary candidates b in [2, depth].
  std::vector<int> crossing(static_cast<std::size_t>(depth) + 2, 0);
  for (int l = 0; l < lines; ++l) {
    const auto lu = static_cast<std::size_t>(l);
    if (first_use[lu] == 0 || first_use[lu] == last_use[lu]) continue;
    crossing[static_cast<std::size_t>(first_use[lu]) + 1] += 1;
    crossing[static_cast<std::size_t>(last_use[lu]) + 1] -= 1;
  }
  for (std::size_t b = 1; b < crossing.size(); ++b)
    crossing[b] += crossing[b - 1];

  // Cut selection: around each target multiple of K, pick the boundary
  // with the fewest crossings in a +-K/3 neighborhood (smallest layer on
  // ties). The slack keeps the final window from degenerating.
  const int slack = std::max(1, K / 3);
  std::vector<int> bounds{1};
  int lo = 1;
  while (depth - lo + 1 > K + slack) {
    const int blo = lo + std::max(1, (2 * K) / 3);
    const int bhi = std::min(depth, lo + K + slack);
    int best = blo;
    for (int b = blo; b <= bhi; ++b)
      if (crossing[static_cast<std::size_t>(b)] <
          crossing[static_cast<std::size_t>(best)])
        best = b;
    bounds.push_back(best);
    plan.cut_layers.push_back(best);
    plan.crossings += crossing[static_cast<std::size_t>(best)];
    lo = best;
  }
  bounds.push_back(depth + 1);

  const auto n = bounds.size() - 1;
  plan.windows.resize(n);
  std::vector<int> window_of_layer(static_cast<std::size_t>(depth) + 1, 0);
  for (std::size_t w = 0; w < n; ++w) {
    plan.windows[w].index = static_cast<int>(w);
    plan.windows[w].layer_lo = bounds[w];
    plan.windows[w].layer_hi = bounds[w + 1];
    for (int L = bounds[w]; L < bounds[w + 1]; ++L)
      window_of_layer[static_cast<std::size_t>(L)] = static_cast<int>(w);
  }
  for (std::size_t k = 0; k < cnots.size(); ++k)
    plan.windows[static_cast<std::size_t>(
                     window_of_layer[static_cast<std::size_t>(layer[k])])]
        .cnots.push_back(static_cast<int>(k));

  for (int l = 0; l < lines; ++l) {
    const auto lu = static_cast<std::size_t>(l);
    if (first_use[lu] == 0) {
      // Line untouched by any CNOT: keep it in the first window.
      plan.windows[0].lines.push_back(l);
      plan.windows[0].carry_in.push_back(0);
      plan.windows[0].carry_out.push_back(0);
      plan.meas_window[lu] = 0;
      continue;
    }
    const int wf = window_of_layer[static_cast<std::size_t>(first_use[lu])];
    const int wl = window_of_layer[static_cast<std::size_t>(last_use[lu])];
    for (int w = wf; w <= wl; ++w) {
      auto& win = plan.windows[static_cast<std::size_t>(w)];
      win.lines.push_back(l);
      win.carry_in.push_back(w > wf ? 1 : 0);
      win.carry_out.push_back(w < wl ? 1 : 0);
    }
    plan.meas_window[lu] = wl;
  }

  for (const icm::MeasOrder& o : circuit.meas_order()) {
    const int wb = plan.meas_window[static_cast<std::size_t>(o.before_line)];
    const int wa = plan.meas_window[static_cast<std::size_t>(o.after_line)];
    if (wb != wa) plan.cross_order.push_back(o);
  }
  return plan;
}

icm::IcmCircuit extract_window(const icm::IcmCircuit& circuit,
                               const ShardPlan& plan, int index) {
  const WindowPlan& w = plan.windows.at(static_cast<std::size_t>(index));
  icm::IcmCircuit out(circuit.name() + "@w" + std::to_string(index));

  std::unordered_map<int, int> local;
  local.reserve(w.lines.size());
  for (std::size_t i = 0; i < w.lines.size(); ++i) {
    const int l = w.lines[i];
    const int id = out.add_line(circuit.init_basis(l),
                                circuit.meas_basis(l));
    // Crossing the right cut defers the measurement exactly like a real
    // output; crossing the left cut suppresses the initialization.
    if (circuit.is_output(l) || w.carry_out[i]) out.mark_output(id);
    if (circuit.is_carry_in(l) || w.carry_in[i]) out.mark_carry_in(id);
    local.emplace(l, id);
  }
  for (const int k : w.cnots) {
    const icm::IcmCnot& c = circuit.cnots()[static_cast<std::size_t>(k)];
    out.add_cnot(local.at(c.control), local.at(c.target));
  }
  for (const icm::MeasOrder& o : circuit.meas_order()) {
    if (plan.meas_window[static_cast<std::size_t>(o.before_line)] != index ||
        plan.meas_window[static_cast<std::size_t>(o.after_line)] != index)
      continue;
    out.add_meas_order(local.at(o.before_line), local.at(o.after_line));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sharded compile

CompileResult compile_sharded(const icm::IcmCircuit& circuit,
                              const CompileOptions& options,
                              const ShardOptions& shard) {
  if (shard.window <= 0) return compile(circuit, options);
  const auto t_start = std::chrono::steady_clock::now();
  TQEC_TRACE_SPAN("shard.compile");

  const ShardPlan plan = plan_windows(circuit, shard.window);
  const std::size_t n = plan.windows.size();

  // Window circuits, content digests, and the checkpoint layout.
  const std::string fingerprint = options_fingerprint(options, shard);
  std::vector<icm::IcmCircuit> window_circuits(n);
  std::vector<std::string> digests(n);
  for (std::size_t w = 0; w < n; ++w) {
    window_circuits[w] = extract_window(circuit, plan, static_cast<int>(w));
    digests[w] = window_digest(window_circuits[w], fingerprint,
                               static_cast<int>(w), static_cast<int>(n));
  }

  const bool checkpointing = !shard.checkpoint_dir.empty();
  fs::path ckdir;
  if (checkpointing) {
    ckdir = shard.checkpoint_dir;
    std::error_code ec;
    fs::create_directories(ckdir, ec);  // best-effort; loads just miss
    write_manifest(ckdir, circuit.name(), shard, plan, digests);
  }

  // Per-window seeds, derived exactly like the place+route attempt chain
  // (window 0 uses the request seed itself).
  std::vector<std::uint64_t> seeds(n);
  seeds[0] = options.seed;
  std::uint64_t seed_state = options.seed;
  for (std::size_t w = 1; w < n; ++w) seeds[w] = splitmix64(seed_state);

  std::vector<WindowOutcome> outcomes(n);
  auto run_window = [&](std::size_t w, std::uint64_t seed,
                        bool allow_resume) {
    const fs::path ckpath =
        checkpointing
            ? ckdir / checkpoint_filename(static_cast<int>(w), digests[w])
            : fs::path();
    if (checkpointing && allow_resume) {
      if (auto loaded = load_checkpoint(ckpath, digests[w],
                                        static_cast<int>(w),
                                        static_cast<int>(n))) {
        outcomes[w] = std::move(*loaded);
        return;
      }
    }

    CompileOptions wopt = options;
    wopt.seed = seed;
    // The stitch needs the window geometry and the carry modules' cells.
    wopt.emit_geometry = true;
    wopt.keep_internals = true;
    CompileResult r = compile(window_circuits[w], wopt);

    WindowOutcome o;
    o.legal = r.routed_legal;
    o.volume = r.volume;
    o.canonical_volume = r.canonical_volume;
    o.modules = r.modules;
    o.nodes = r.nodes;
    o.ishape_merges = r.ishape_merges;
    o.primal_bridges = r.primal_bridges;
    o.dual_bridges = r.dual_bridges;
    o.net_components = r.net_components;
    o.pd_graph_s = r.timings.pd_graph_s;
    o.ishape_s = r.timings.ishape_s;
    o.primal_bridge_s = r.timings.primal_bridge_s;
    o.dual_bridge_s = r.timings.dual_bridge_s;
    o.place_s = r.timings.place_s;
    o.route_s = r.timings.route_s;
    o.place_route_wall_s = r.timings.place_route_wall_s;
    o.total_s = r.timings.total_s;
    for (const PlaceAttemptStats& a : r.timings.attempts)
      if (a.selected) {
        o.selected = a;
        o.selected.sa_curve.clear();
        o.selected.sa_replica_curves.clear();
        o.selected.route_overused_per_iter.clear();
        o.selected.route_reroutes_per_iter.clear();
        break;
      }

    // Normalize the window to the origin; carry cells move with it.
    const Box3 bb = r.geometry.bounding_box();
    const Vec3 lo = bb.empty() ? Vec3{0, 0, 0} : bb.lo;
    o.geometry = std::move(r.geometry);
    o.geometry.translate({-lo.x, -lo.y, -lo.z});

    const WindowPlan& wp = plan.windows[w];
    const auto& rows = r.internals->graph.rows();
    const auto& module_cell = r.placement.module_cell;
    for (std::size_t i = 0; i < wp.lines.size(); ++i) {
      const auto& row = rows[i];  // local line id == i by construction
      if (wp.carry_in[i])
        o.carry_in.emplace_back(
            wp.lines[i],
            module_cell[static_cast<std::size_t>(row.front())] - lo);
      if (wp.carry_out[i])
        o.carry_out.emplace_back(
            wp.lines[i],
            module_cell[static_cast<std::size_t>(row.back())] - lo);
    }
    outcomes[w] = std::move(o);

    if (checkpointing)
      save_checkpoint(ckpath, digests[w], static_cast<int>(w),
                      static_cast<int>(n), outcomes[w]);
  };

  // Window compiles: slot-indexed writes + a serial stitch below keep the
  // result bit-identical for any worker count (the repo-wide reduction
  // rule). threads == 1 additionally guarantees only one window's fabric
  // and B*-tree are ever live at once.
  const int workers = resolve_jobs(shard.threads);
  if (workers > 1) {
    parallel_for_slots(n, workers, [&](std::size_t, std::size_t w) {
      run_window(w, seeds[w], true);
    });
  } else {
    for (std::size_t w = 0; w < n; ++w) run_window(w, seeds[w], true);
  }
  const double windows_wall_s = seconds_since(t_start);

  // Serial stitch along the pinned seam interfaces. A placement can seal
  // a carry module inside a pocket of neighboring cells, leaving its seam
  // with no legal path; when that happens the blamed window is recompiled
  // with the next seed of its deterministic retry chain and the stitch
  // reruns. Serial, so the outcome is identical for any worker count, and
  // retried windows overwrite their checkpoints so a resumed run replays
  // the retried geometry byte-for-byte.
  const auto t_stitch = std::chrono::steady_clock::now();
  geom::StitchOptions sopt;
  sopt.seam_gap = shard.seam_gap;
  geom::StitchResult stitched;
  std::vector<int> reseeds(n, 0);
  constexpr int kMaxReseedsPerWindow = 3;
  int windows_reseeded = 0;
  for (;;) {
    // Windows point at the outcome geometries — a retry iteration restages
    // them without deep-copying a single segment vector.
    std::vector<geom::StitchWindow> stitch_in(n);
    for (std::size_t w = 0; w < n; ++w) {
      stitch_in[w].geometry = &outcomes[w].geometry;
      stitch_in[w].carry_in = outcomes[w].carry_in;
      stitch_in[w].carry_out = outcomes[w].carry_out;
    }
    stitched = geom::stitch_windows(stitch_in, circuit.name(), sopt);
    if (stitched.blocked.empty()) break;
    std::vector<int> blamed;
    for (const auto& b : stitched.blocked) blamed.push_back(b.window);
    std::sort(blamed.begin(), blamed.end());
    blamed.erase(std::unique(blamed.begin(), blamed.end()), blamed.end());
    bool progressed = false;
    for (const int w : blamed) {
      const auto wu = static_cast<std::size_t>(w);
      if (reseeds[wu] >= kMaxReseedsPerWindow) continue;
      ++reseeds[wu];
      ++windows_reseeded;
      std::uint64_t state = seeds[wu];
      std::uint64_t seed = 0;
      for (int i = 0; i < reseeds[wu]; ++i) seed = splitmix64(state);
      run_window(wu, seed, false);
      progressed = true;
    }
    if (!progressed) break;
  }
  const double stitch_s = seconds_since(t_stitch);

  // Assemble the merged result.
  CompileResult result;
  result.name = circuit.name();
  result.stats = circuit.stats();
  // Canonical volume is the whole circuit's Table-1 reference (what the
  // compression ratio is measured against), not a sum of window canonicals
  // (carry lines drop their injection modules inside a window).
  result.canonical_volume = geom::canonical_volume(result.stats);
  result.shard.enabled = true;
  result.shard.window = shard.window;
  result.shard.threads = workers;
  result.shard.windows_total = static_cast<int>(n);
  result.shard.crossings = plan.crossings;
  result.shard.cut_layers = plan.cut_layers;
  result.shard.stitches = stitched.stitches;
  result.shard.seam_cells = stitched.seam_cells;
  result.shard.stitch_s = stitch_s;
  result.shard.windows_reseeded = windows_reseeded;
  result.shard.issues = stitched.issues;

  bool windows_legal = true;
  for (std::size_t w = 0; w < n; ++w) {
    const WindowOutcome& o = outcomes[w];
    if (o.resumed) ++result.shard.windows_resumed;
    if (!o.legal) {
      windows_legal = false;
      result.shard.issues.push_back("window " + std::to_string(w) +
                                    ": not legally routed");
    }
    result.shard.window_volumes.push_back(o.volume);
    result.modules += o.modules;
    result.nodes += o.nodes;
    result.ishape_merges += o.ishape_merges;
    result.primal_bridges += o.primal_bridges;
    result.dual_bridges += o.dual_bridges;
    result.net_components += o.net_components;
    result.timings.pd_graph_s += o.pd_graph_s;
    result.timings.ishape_s += o.ishape_s;
    result.timings.primal_bridge_s += o.primal_bridge_s;
    result.timings.dual_bridge_s += o.dual_bridge_s;
    result.timings.place_s += o.place_s;
    result.timings.route_s += o.route_s;
    result.timings.attempts.push_back(o.selected);
  }
  result.timings.place_route_wall_s = windows_wall_s;

  // Cross-window measurement order: window w sits at strictly smaller x
  // than window w+1, so before-window < after-window is sufficient.
  for (const icm::MeasOrder& o : plan.cross_order) {
    if (plan.meas_window[static_cast<std::size_t>(o.before_line)] >
        plan.meas_window[static_cast<std::size_t>(o.after_line)]) {
      std::ostringstream os;
      os << "cross-window measurement order reversed: line "
         << o.before_line << " measures after line " << o.after_line;
      result.shard.issues.push_back(os.str());
    }
  }

  // The stitched geometry must pass the structural validator wholesale —
  // seams are held to the same rules as any compiled design.
  const geom::ValidationReport vr = geom::validate(stitched.geometry);
  constexpr std::size_t kMaxReported = 16;
  for (std::size_t i = 0; i < vr.issues.size() && i < kMaxReported; ++i)
    result.shard.issues.push_back("validate: [" + vr.issues[i].rule + "] " +
                                  vr.issues[i].detail);
  if (vr.issues.size() > kMaxReported)
    result.shard.issues.push_back(
        "validate: +" + std::to_string(vr.issues.size() - kMaxReported) +
        " more issue(s)");

  result.volume = stitched.geometry.volume();
  result.routing.volume = result.volume;
  result.routing.bounding = stitched.geometry.bounding_box();
  result.routed_legal = windows_legal && result.shard.issues.empty();
  result.routing.legal = result.routed_legal;

  // Geometry-engine observability: grid_build_s totals the rasterization
  // passes of this result (stitcher frame grid, validator grid, and the
  // final occupancy grid that yields the exact cell count); grid_bytes is
  // the largest single-grid footprint.
  {
    geom::GridBuildStats gstats;
    const geom::OccupancyGrid grid =
        geom::build_occupancy(stitched.geometry, &gstats);
    result.geom.grid_build_s =
        gstats.build_s + vr.grid_build_s + stitched.grid_build_s;
    result.geom.grid_bytes =
        std::max({gstats.bytes, vr.grid_bytes, stitched.grid_bytes});
    result.geom.exact_cells =
        grid.popcount(geom::kPrimalPlane) + grid.popcount(geom::kDualPlane);
    result.geom.segments =
        static_cast<std::int64_t>(stitched.geometry.segment_count());
    result.geom.arena_bytes = stitched.geometry.arena_bytes();
  }
  if (options.emit_geometry) result.geometry = std::move(stitched.geometry);

  result.peak_rss_bytes = trace::peak_rss_bytes();
  result.timings.total_s = seconds_since(t_start);

  // Shard-level metrics snapshot. Window compiles each reset the registry
  // (core::compile's per-run discipline), so the merged result publishes
  // its own shard gauges rather than inheriting the last window's.
  if (trace::enabled()) {
    trace::reset_metrics();
    trace::gauge_set("shard.windows_total",
                     static_cast<double>(result.shard.windows_total));
    trace::gauge_set("shard.windows_resumed",
                     static_cast<double>(result.shard.windows_resumed));
    trace::gauge_set("shard.crossings",
                     static_cast<double>(result.shard.crossings));
    trace::gauge_set("shard.stitches",
                     static_cast<double>(result.shard.stitches));
    trace::gauge_set("shard.seam_cells",
                     static_cast<double>(result.shard.seam_cells));
    trace::gauge_set("geom.grid_build_s", result.geom.grid_build_s);
    trace::gauge_set("geom.grid_bytes",
                     static_cast<double>(result.geom.grid_bytes));
    trace::gauge_set("geom.exact_cells",
                     static_cast<double>(result.geom.exact_cells));
    trace::gauge_set("geom.segments",
                     static_cast<double>(result.geom.segments));
    trace::gauge_set("geom.arena_bytes",
                     static_cast<double>(result.geom.arena_bytes));
    trace::gauge_set("process.peak_rss_bytes",
                     static_cast<double>(result.peak_rss_bytes));
    result.metrics = trace::snapshot_metrics();
  }
  return result;
}

}  // namespace tqec::core
