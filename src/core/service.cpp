#include "core/service.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "core/paper_tables.h"
#include "core/shard.h"
#include "decompose/decompose.h"
#include "icm/builder.h"
#include "icm/serialize.h"
#include "icm/workload.h"
#include "pdgraph/pd_graph.h"
#include "qcir/optimizer.h"
#include "qcir/revlib.h"

namespace tqec {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Canonical text of a Clifford+T circuit, the ICM-stage cache key input.
/// The name is included because ICM outputs embed it (write_icm round-trips
/// it), so same-gates/different-name circuits must not share an entry.
std::string canonical_clifford_text(const qcir::Circuit& circuit) {
  std::string out = "cliffordt 1 " + circuit.name() + "\n";
  out += "qubits " + std::to_string(circuit.num_qubits()) + "\n";
  for (const qcir::Gate& g : circuit.gates()) {
    out += g.to_string();
    out += '\n';
  }
  return out;
}

// Byte-size estimates for cache accounting. The cache never inspects its
// values, so these only need to be deterministic and proportional — the LRU
// budget is a memory-pressure bound, not an allocator audit.
std::int64_t estimate_bytes(const qcir::Circuit& c) {
  return 64 + static_cast<std::int64_t>(c.gates().size()) *
                  static_cast<std::int64_t>(sizeof(qcir::Gate));
}

std::int64_t estimate_bytes(const icm::IcmCircuit& c) {
  return 64 + 8 * static_cast<std::int64_t>(c.num_lines()) +
         16 * static_cast<std::int64_t>(c.cnots().size()) +
         16 * static_cast<std::int64_t>(c.meas_order().size());
}

std::int64_t estimate_bytes(const pdgraph::PdGraph& g) {
  return 64 + 128 * static_cast<std::int64_t>(g.module_count()) +
         64 * static_cast<std::int64_t>(g.net_count()) +
         16 * static_cast<std::int64_t>(g.meas_order().size());
}

CompileError make_error(CompileError::Code code, std::string message) {
  CompileError e;
  e.code = code;
  e.message = std::move(message);
  return e;
}

}  // namespace

const char* CompileError::code_name() const {
  switch (code) {
    case Code::None: return "none";
    case Code::BadRequest: return "bad_request";
    case Code::Parse: return "parse_error";
    case Code::Cancelled: return "cancelled";
    case Code::DeadlineExceeded: return "deadline_exceeded";
    case Code::Internal: return "internal";
  }
  return "?";
}

Compiler::Compiler(CompilerConfig config)
    : config_(config),
      cache_(config.cache_enabled ? config.cache_bytes : 0) {}

CompileResponse Compiler::compile(const CompileRequest& request) {
  const auto t_start = std::chrono::steady_clock::now();
  CompileResponse response;
  const bool caching = config_.cache_enabled && config_.cache_bytes > 0;
  core::CacheUsage usage;
  usage.enabled = caching;

  const int kinds = (request.real_text.empty() ? 0 : 1) +
                    (request.icm_text.empty() ? 0 : 1) +
                    (request.benchmark.empty() ? 0 : 1);
  if (kinds != 1) {
    response.error = make_error(
        CompileError::Code::BadRequest,
        kinds == 0 ? "request has no input (need real, icm, or benchmark)"
                   : "request has multiple inputs (need exactly one of "
                     "real, icm, benchmark)");
    response.wall_s = seconds_since(t_start);
    return response;
  }

  // Deadline watchdog: piggybacks on the stage-boundary progress callback,
  // firing the request's own cancel token when the budget runs out.
  // `deadline_fired` distinguishes DeadlineExceeded from a caller-initiated
  // Cancelled once CancelledError surfaces.
  core::CompileOptions options = request.options;
  auto deadline_fired = std::make_shared<std::atomic<bool>>(false);
  if (request.deadline_s > 0) {
    const auto inner = options.progress;
    const auto cancel = options.cancel;
    const double budget = request.deadline_s;
    options.progress = [inner, cancel, deadline_fired, budget,
                        t_start](const char* stage) {
      if (inner) inner(stage);
      if (seconds_since(t_start) > budget) {
        deadline_fired->store(true, std::memory_order_relaxed);
        cancel.cancel();
      }
    };
  }

  try {
    // ---- Cached pure-prefix stages -------------------------------------
    icm::IcmCircuit icm_built;
    std::shared_ptr<const icm::IcmCircuit> icm_cached;
    if (!request.real_text.empty()) {
      qcir::Circuit reversible = qcir::parse_real_string(
          request.real_text, request.id.empty() ? "<real>" : request.id);
      if (request.optimize) reversible = qcir::optimize(reversible);

      // Stage: gate decomposition, keyed by the canonical RevLib text of
      // the (post-peephole) reversible circuit.
      std::shared_ptr<const qcir::Circuit> clifford;
      const core::CacheKey dkey = core::make_cache_key(
          "decompose/v1", qcir::write_real(reversible));
      if (caching) clifford = timed_get<qcir::Circuit>(dkey);
      usage.decompose = clifford ? "hit" : "miss";
      if (!clifford) {
        auto built = std::make_shared<const qcir::Circuit>(
            decompose::decompose(reversible));
        if (caching) cache_.put(dkey, built, estimate_bytes(*built));
        clifford = std::move(built);
      }

      // Stage: Clifford+T -> ICM.
      const core::CacheKey ikey = core::make_cache_key(
          "icm/v1", canonical_clifford_text(*clifford));
      if (caching) icm_cached = timed_get<icm::IcmCircuit>(ikey);
      usage.icm = icm_cached ? "hit" : "miss";
      if (!icm_cached) {
        auto built = std::make_shared<const icm::IcmCircuit>(
            icm::from_clifford_t(*clifford));
        if (caching) cache_.put(ikey, built, estimate_bytes(*built));
        icm_cached = std::move(built);
      }
    } else if (!request.icm_text.empty()) {
      std::istringstream in(request.icm_text);
      icm_built =
          icm::read_icm(in, request.id.empty() ? "<icm>" : request.id);
    } else {
      // Workload generator: the long-circuit layered family
      // ("long_<data>x<layers>...") or a paper benchmark's statistics;
      // seeded and cheap, so not worth a cache stage of its own (the
      // PD-graph stage below still caches its output).
      icm::LayeredWorkloadSpec layered;
      layered.seed = options.seed;
      if (icm::parse_layered_name(request.benchmark, layered)) {
        icm_built = icm::make_layered_workload(layered);
      } else {
        const core::PaperBenchmark* bench = nullptr;
        try {
          bench = &core::paper_benchmark(request.benchmark);
        } catch (const TqecError& e) {
          response.error =
              make_error(CompileError::Code::BadRequest, e.what());
          response.wall_s = seconds_since(t_start);
          return response;
        }
        icm_built =
            icm::make_workload(core::workload_spec(*bench, options.seed));
      }
    }
    const icm::IcmCircuit& icm = icm_cached ? *icm_cached : icm_built;

    if (request.shard.window > 0) {
      // ---- Sharded pipeline (core/shard.h) -----------------------------
      // Each window is compiled as its own circuit, so the full-circuit
      // PD graph is never built and the cache stage stays "skip".
      response.result =
          core::compile_sharded(icm, options, request.shard);
    } else {
      // Stage: PD-graph construction, keyed by the canonical ICM text (the
      // same serialization icm/serialize round-trips).
      std::shared_ptr<const pdgraph::PdGraph> graph;
      double pd_graph_s = 0;
      const core::CacheKey gkey =
          core::make_cache_key("pdgraph/v1", icm::to_icm_text(icm));
      if (caching) graph = timed_get<pdgraph::PdGraph>(gkey);
      usage.pd_graph = graph ? "hit" : "miss";
      if (!graph) {
        const auto t_build = std::chrono::steady_clock::now();
        auto built = std::make_shared<const pdgraph::PdGraph>(
            pdgraph::build_pd_graph(icm));
        pd_graph_s = seconds_since(t_build);
        if (caching) cache_.put(gkey, built, estimate_bytes(*built));
        graph = std::move(built);
      }

      // ---- Seeded pipeline (never cached) ------------------------------
      response.result = core::compile(icm, options, graph.get());
      response.result.timings.pd_graph_s = pd_graph_s;  // 0 on a cache hit
    }
    response.ok = true;
  } catch (const CancelledError& e) {
    response.error = make_error(
        deadline_fired->load(std::memory_order_relaxed)
            ? CompileError::Code::DeadlineExceeded
            : CompileError::Code::Cancelled,
        e.what());
  } catch (const ParseError& e) {
    response.error = make_error(CompileError::Code::Parse, e.what());
    response.error.source = e.source();
    response.error.line = e.line();
  } catch (const TqecError& e) {
    response.error = make_error(CompileError::Code::Internal, e.what());
  } catch (const std::exception& e) {
    response.error = make_error(CompileError::Code::Internal, e.what());
  }

  const core::StageCache::Stats stats = cache_.stats();
  usage.hits = stats.hits;
  usage.misses = stats.misses;
  usage.entries = stats.entries;
  usage.bytes = stats.bytes;
  usage.budget = stats.budget;
  usage.evictions = stats.evictions;
  response.result.cache = usage;
  response.wall_s = seconds_since(t_start);
  return response;
}

}  // namespace tqec
