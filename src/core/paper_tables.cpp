#include "core/paper_tables.h"

#include "common/error.h"

namespace tqec::core {

const std::vector<PaperBenchmark>& paper_benchmarks() {
  // Columns: name, Q, G, #|Y>, #|A>, #Modules, #Nodes,
  //          canonical, lin-1D, lin-2D, hsu volume, hsu runtime,
  //          ours volume, ours runtime.
  static const std::vector<PaperBenchmark> benchmarks = {
      {"4gt10-v1_81", 131, 168, 42, 21, 362, 18,
       136836, 98322, 91116, 25520, 15, 20880, 16},
      {"4gt4-v0_73", 257, 341, 84, 42, 724, 360,
       535398, 361152, 327816, 58696, 26, 45560, 184},
      {"rd84_142", 897, 1162, 294, 147, 2500, 1242,
       6287400, 2805246, 2744316, 451440, 262, 190773, 654},
      {"hwb5_53", 1307, 1729, 434, 217, 3687, 1853,
       13608294, 9114828, 8203548, 1341704, 447, 465800, 1295},
      {"add16_174", 1394, 1792, 448, 224, 3857, 1904,
       15028608, 6449532, 6173928, 1069362, 590, 519350, 941},
      {"sym6_145", 1519, 1980, 504, 252, 4255, 2148,
       18103176, 10720836, 9852336, 1971840, 793, 585060, 1538},
      {"cycle17_3_112", 1911, 2478, 630, 315, 5321, 2744,
       28469700, 19082448, 16843884, 2354100, 1402, 1327656, 1666},
      {"ham15_107", 3753, 4938, 1246, 623, 10560, 5301,
       111335928, 69294822, 63017484, 7331454, 4901, 3650985, 4541},
  };
  return benchmarks;
}

const PaperBenchmark& paper_benchmark(const std::string& name) {
  for (const PaperBenchmark& b : paper_benchmarks())
    if (b.name == name) return b;
  throw TqecError("unknown paper benchmark: " + name);
}

icm::WorkloadSpec workload_spec(const PaperBenchmark& bench,
                                std::uint64_t seed) {
  icm::WorkloadSpec spec;
  spec.name = bench.name;
  spec.qubits = bench.qubits;
  spec.cnots = bench.cnots;
  spec.y_states = bench.y_states;
  spec.a_states = bench.a_states;
  spec.seed = seed;
  return spec;
}

icm::IcmCircuit three_cnot_example() {
  icm::IcmCircuit circuit("three-cnot");
  const int a = circuit.add_line(icm::InitBasis::Zero);
  const int b = circuit.add_line(icm::InitBasis::Zero);
  const int c = circuit.add_line(icm::InitBasis::Zero);
  circuit.add_cnot(a, b);
  circuit.add_cnot(c, b);
  circuit.add_cnot(b, a);
  return circuit;
}

}  // namespace tqec::core
