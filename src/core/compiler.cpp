#include "core/compiler.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/logging.h"
#include "geom/canonical.h"

namespace tqec::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Append one segment per maximal collinear run of cells.
void emit_cell_runs(geom::Defect& defect, std::vector<Vec3> cells) {
  if (cells.empty()) return;
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  // Greedy x-runs (cells sorted lexicographically by (x, y, z) — group by
  // (y, z) and emit maximal x intervals; remaining singleton cells are
  // still correct single-cell segments).
  std::sort(cells.begin(), cells.end(), [](Vec3 a, Vec3 b) {
    return std::tuple(a.y, a.z, a.x) < std::tuple(b.y, b.z, b.x);
  });
  std::size_t i = 0;
  while (i < cells.size()) {
    std::size_t j = i;
    while (j + 1 < cells.size() && cells[j + 1].y == cells[i].y &&
           cells[j + 1].z == cells[i].z && cells[j + 1].x == cells[j].x + 1)
      ++j;
    defect.segments.push_back({cells[i], cells[j]});
    i = j + 1;
  }
}

}  // namespace

geom::GeomDescription emit_geometry(const pdgraph::PdGraph& graph,
                                    const place::NodeSet& nodes,
                                    const place::Placement& placement,
                                    const route::RoutingResult& routing,
                                    const std::string& name) {
  geom::GeomDescription g(name);

  // Primal structures: one defect per placement node of bridged modules
  // (a chain is a single connected primal structure); time-dependent and
  // distillation nodes contribute one single-cell defect per module (each
  // is an unbridged primal loop).
  for (const place::PlacementNode& node : nodes.nodes) {
    if (node.kind == place::NodeKind::PrimalChain && node.modules.size() > 1) {
      geom::Defect defect;
      defect.type = geom::DefectType::Primal;
      defect.source_id = node.id;
      std::vector<Vec3> cells;
      cells.reserve(node.modules.size());
      for (pdgraph::ModuleId m : node.modules)
        cells.push_back(placement.module_cell[static_cast<std::size_t>(m)]);
      emit_cell_runs(defect, std::move(cells));
      const int index = g.add_defect(defect);
      // Attach the I/M components carried by the chain's modules.
      for (pdgraph::ModuleId m : node.modules) {
        const pdgraph::PrimalModule& mod = graph.module(m);
        const Vec3 cell = placement.module_cell[static_cast<std::size_t>(m)];
        if (mod.has_init) {
          geom::ComponentKind kind = geom::ComponentKind::InitZ;
          switch (mod.init_basis) {
            case icm::InitBasis::Zero: kind = geom::ComponentKind::InitZ; break;
            case icm::InitBasis::Plus: kind = geom::ComponentKind::InitX; break;
            case icm::InitBasis::YState:
              kind = geom::ComponentKind::InjectY;
              break;
            case icm::InitBasis::AState:
              kind = geom::ComponentKind::InjectA;
              break;
          }
          g.add_component({kind, cell, index});
        }
        if (mod.has_meas)
          g.add_component({mod.meas_basis == icm::MeasBasis::Z
                               ? geom::ComponentKind::MeasZ
                               : geom::ComponentKind::MeasX,
                           cell, index});
      }
    } else {
      for (std::size_t i = 0; i < node.modules.size(); ++i) {
        const pdgraph::ModuleId m = node.modules[i];
        geom::Defect defect;
        defect.type = geom::DefectType::Primal;
        defect.source_id = m;
        const Vec3 cell = placement.module_cell[static_cast<std::size_t>(m)];
        defect.segments.push_back({cell, cell});
        g.add_defect(defect);
      }
    }
  }

  // Dual structures: one defect per routed component.
  for (const route::RoutedNet& net : routing.nets) {
    if (net.cells.empty()) continue;
    geom::Defect defect;
    defect.type = geom::DefectType::Dual;
    defect.source_id = net.component;
    emit_cell_runs(defect, net.cells);
    g.add_defect(defect);
  }

  for (const geom::DistillBox& box : placement.boxes) g.add_box(box);
  return g;
}

CompileResult compile(const icm::IcmCircuit& circuit,
                      const CompileOptions& options) {
  const auto t_start = std::chrono::steady_clock::now();
  CompileResult result;
  result.name = circuit.name();
  result.stats = circuit.stats();
  result.canonical_volume = geom::canonical_volume(result.stats);

  // Stage 2: PD graph.
  auto t = std::chrono::steady_clock::now();
  const pdgraph::PdGraph graph = pdgraph::build_pd_graph(circuit);
  result.modules = graph.module_count();
  result.timings.pd_graph_s = seconds_since(t);

  // Stages 3-5 depend on the pipeline mode.
  const bool full = options.mode == PipelineMode::Full;
  const bool use_ishape = full && options.enable_ishape;
  const bool use_primal = full && options.enable_primal;

  compress::IshapeResult ishape(graph);  // identity (no merges) by default
  t = std::chrono::steady_clock::now();
  if (use_ishape) ishape = compress::simplify_ishape(graph);
  result.ishape_merges = ishape.merge_count();
  result.timings.ishape_s = seconds_since(t);

  t = std::chrono::steady_clock::now();
  compress::PrimalBridging bridging;
  if (use_primal) {
    bridging = compress::bridge_primal_best(graph, ishape, options.seed,
                                            options.primal_restarts);
    result.primal_bridges = bridging.bridge_count();
  }
  result.timings.primal_bridge_s = seconds_since(t);

  t = std::chrono::steady_clock::now();
  compress::DualBridging dual(graph.net_count());
  switch (options.mode) {
    case PipelineMode::Full:
      if (options.enable_dual) dual = compress::bridge_dual(graph, ishape);
      break;
    case PipelineMode::DualOnly:
      dual = compress::bridge_dual_without_ishape(graph);
      break;
    case PipelineMode::ModularOnly:
      break;  // no bridging: every net stays its own component
  }
  result.dual_bridges = dual.bridge_count();
  result.net_components = dual.component_count();
  result.timings.dual_bridge_s = seconds_since(t);

  // Stage 6 + 7: module placement and dual-defect net routing. When the
  // router cannot legalize the tightest packing, escalate once with a free
  // routing plane between layers (congestion-driven whitespace insertion).
  place::NodeSet nodes =
      use_primal ? place::build_nodes(graph, ishape, bridging, dual,
                                      options.plan_flips)
                 : place::build_nodes_dual_only(graph, dual);
  result.nodes = nodes.node_count();

  place::Placement placement;
  route::RoutingResult routing;
  for (const int y_gap : {0, 1}) {
    t = std::chrono::steady_clock::now();
    place::PlaceOptions place_opt = options.place;
    place_opt.seed = options.seed;
    place_opt.effort *= options.effort;
    place_opt.layer_y_gap = std::max(place_opt.layer_y_gap, y_gap);
    placement = place_modules(nodes, place_opt);
    result.timings.place_s += seconds_since(t);

    t = std::chrono::steady_clock::now();
    route::RouteOptions route_opt = options.route;
    route_opt.seed = options.seed;
    routing = route::route_nets(nodes, placement, route_opt);
    result.timings.route_s += seconds_since(t);
    if (routing.legal) break;
    TQEC_LOG_INFO("routing illegal at y-gap " << y_gap
                                              << "; escalating whitespace");
  }

  result.placement = placement;
  result.routing = routing;
  result.routed_legal = routing.legal;
  result.volume = routing.volume;
  if (options.emit_geometry)
    result.geometry =
        emit_geometry(graph, nodes, placement, routing, circuit.name());
  if (options.keep_internals) {
    result.internals = std::make_shared<PipelineInternals>(
        PipelineInternals{graph, std::move(nodes), std::move(dual)});
  }

  result.timings.total_s = seconds_since(t_start);
  TQEC_LOG_INFO("compile '" << circuit.name() << "': modules="
                            << result.modules << " nodes=" << result.nodes
                            << " volume=" << result.volume << " ("
                            << result.timings.total_s << "s)");
  return result;
}

}  // namespace tqec::core
