#include "core/compiler.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <tuple>
#include <type_traits>
#include <unordered_map>

#include "common/error.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/trace.h"
#include "geom/canonical.h"
#include "geom/cell_grid.h"

namespace tqec::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

#ifndef NDEBUG
// Defect::cell_count() double-counts cells where segments overlap (shared
// corners of L-paths); the routed emit path promises its builders never do
// that — emit_cell_runs yields disjoint maximal x-runs — so verify the
// promise per defect in debug builds. Per-defect (not whole-geometry): two
// defects legally sharing a port-region cell is not an overlap bug.
bool emitted_defects_have_disjoint_segments(const geom::GeomDescription& g) {
  std::vector<Vec3> cells;
  for (const geom::DefectView d : g.defects()) {
    cells.clear();
    for (const geom::Segment& s : d.segments) {
      Vec3 step{0, 0, 0};
      const Vec3 delta = s.b - s.a;
      if (delta.x != 0) step = {delta.x > 0 ? 1 : -1, 0, 0};
      else if (delta.y != 0) step = {0, delta.y > 0 ? 1 : -1, 0};
      else if (delta.z != 0) step = {0, 0, delta.z > 0 ? 1 : -1};
      for (Vec3 p = s.a;; p += step) {
        cells.push_back(p);
        if (p == s.b) break;
      }
    }
    std::sort(cells.begin(), cells.end());
    if (std::adjacent_find(cells.begin(), cells.end()) != cells.end())
      return false;
  }
  return true;
}
#endif

}  // namespace

void emit_cell_runs(geom::Defect& defect, std::vector<Vec3> cells) {
  if (cells.empty()) return;
  // Greedy x-runs: group by (y, z) and emit maximal x intervals; remaining
  // singleton cells are still correct single-cell segments. One (y, z, x)
  // sort both dedupes (duplicates are adjacent under any total order) and
  // orders the runs.
  std::sort(cells.begin(), cells.end(), [](Vec3 a, Vec3 b) {
    return std::tuple(a.y, a.z, a.x) < std::tuple(b.y, b.z, b.x);
  });
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  std::size_t i = 0;
  while (i < cells.size()) {
    std::size_t j = i;
    while (j + 1 < cells.size() && cells[j + 1].y == cells[i].y &&
           cells[j + 1].z == cells[i].z && cells[j + 1].x == cells[j].x + 1)
      ++j;
    defect.segments.push_back({cells[i], cells[j]});
    i = j + 1;
  }
}

geom::GeomDescription emit_geometry(const pdgraph::PdGraph& graph,
                                    const place::NodeSet& nodes,
                                    const place::Placement& placement,
                                    const route::RoutingResult& routing,
                                    const std::string& name) {
  TQEC_TRACE_SPAN("core.emit_geometry");
  geom::GeomDescription g(name);

  // Primal structures: one defect per placement node of bridged modules
  // (a chain is a single connected primal structure); time-dependent and
  // distillation nodes contribute one single-cell defect per module (each
  // is an unbridged primal loop).
  for (const place::PlacementNode& node : nodes.nodes) {
    if (node.kind == place::NodeKind::PrimalChain && node.modules.size() > 1) {
      geom::Defect defect;
      defect.type = geom::DefectType::Primal;
      defect.source_id = node.id;
      std::vector<Vec3> cells;
      cells.reserve(node.modules.size());
      for (pdgraph::ModuleId m : node.modules)
        cells.push_back(placement.module_cell[static_cast<std::size_t>(m)]);
      emit_cell_runs(defect, std::move(cells));
      const int index = g.add_defect(defect);
      // Attach the I/M components carried by the chain's modules.
      for (pdgraph::ModuleId m : node.modules) {
        const pdgraph::PrimalModule& mod = graph.module(m);
        const Vec3 cell = placement.module_cell[static_cast<std::size_t>(m)];
        if (mod.has_init) {
          geom::ComponentKind kind = geom::ComponentKind::InitZ;
          switch (mod.init_basis) {
            case icm::InitBasis::Zero: kind = geom::ComponentKind::InitZ; break;
            case icm::InitBasis::Plus: kind = geom::ComponentKind::InitX; break;
            case icm::InitBasis::YState:
              kind = geom::ComponentKind::InjectY;
              break;
            case icm::InitBasis::AState:
              kind = geom::ComponentKind::InjectA;
              break;
          }
          g.add_component({kind, cell, index});
        }
        if (mod.has_meas)
          g.add_component({mod.meas_basis == icm::MeasBasis::Z
                               ? geom::ComponentKind::MeasZ
                               : geom::ComponentKind::MeasX,
                           cell, index});
      }
    } else {
      for (std::size_t i = 0; i < node.modules.size(); ++i) {
        const pdgraph::ModuleId m = node.modules[i];
        geom::Defect defect;
        defect.type = geom::DefectType::Primal;
        defect.source_id = m;
        const Vec3 cell = placement.module_cell[static_cast<std::size_t>(m)];
        defect.segments.push_back({cell, cell});
        g.add_defect(defect);
      }
    }
  }

  // Dual structures: one defect per routed component.
  for (const route::RoutedNet& net : routing.nets) {
    if (net.cells.empty()) continue;
    geom::Defect defect;
    defect.type = geom::DefectType::Dual;
    defect.source_id = net.component;
    emit_cell_runs(defect, net.cells);
    g.add_defect(defect);
  }

  for (const geom::DistillBox& box : placement.boxes) g.add_box(box);
  assert(emitted_defects_have_disjoint_segments(g) &&
         "emit_geometry produced a defect with overlapping segments; "
         "Defect::cell_count() would double-count");
  return g;
}

CompileResult compile(const icm::IcmCircuit& circuit,
                      const CompileOptions& options,
                      const pdgraph::PdGraph* prebuilt_graph) {
  // Each compile snapshots its own metrics: wipe whatever a previous
  // compile left in the registry. (Concurrent compile() calls would share
  // one registry; the pipeline's own parallelism lives *inside* compile.)
  if (trace::enabled()) trace::reset_metrics();
  TQEC_TRACE_SPAN("core.compile", circuit.name());
  const auto t_start = std::chrono::steady_clock::now();
  // Stage boundary: report progress (on the calling thread), then honour a
  // cancellation request — including one the progress callback itself just
  // made, so a deadline watchdog stops the pipeline at the very boundary
  // that observed the overrun.
  const auto stage_boundary = [&options](const char* stage) {
    if (options.progress) options.progress(stage);
    if (options.cancel.cancelled()) throw CancelledError(stage);
  };
  CompileResult result;
  result.name = circuit.name();
  result.stats = circuit.stats();
  result.canonical_volume = geom::canonical_volume(result.stats);

  // Stage 2: PD graph (skipped when the caller supplies a cached one).
  stage_boundary("pd_graph");
  auto t = std::chrono::steady_clock::now();
  pdgraph::PdGraph built_graph;
  if (prebuilt_graph == nullptr) built_graph = pdgraph::build_pd_graph(circuit);
  const pdgraph::PdGraph& graph =
      prebuilt_graph != nullptr ? *prebuilt_graph : built_graph;
  result.modules = graph.module_count();
  result.timings.pd_graph_s =
      prebuilt_graph != nullptr ? 0.0 : seconds_since(t);

  // Stages 3-5 depend on the pipeline mode.
  const bool full = options.mode == PipelineMode::Full;
  const bool use_ishape = full && options.enable_ishape;
  const bool use_primal = full && options.enable_primal;

  stage_boundary("ishape");
  compress::IshapeResult ishape(graph);  // identity (no merges) by default
  t = std::chrono::steady_clock::now();
  if (use_ishape) ishape = compress::simplify_ishape(graph);
  result.ishape_merges = ishape.merge_count();
  result.timings.ishape_s = seconds_since(t);

  const int jobs = resolve_jobs(options.jobs);

  stage_boundary("primal_bridge");
  t = std::chrono::steady_clock::now();
  compress::PrimalBridging bridging;
  if (use_primal) {
    bridging = compress::bridge_primal_best(
        graph, ishape, options.seed, options.primal_restarts, jobs,
        &result.timings.primal_restarts);
    result.primal_bridges = bridging.bridge_count();
  }
  result.timings.primal_bridge_s = seconds_since(t);

  stage_boundary("dual_bridge");
  t = std::chrono::steady_clock::now();
  compress::DualBridging dual(graph.net_count());
  switch (options.mode) {
    case PipelineMode::Full:
      if (options.enable_dual) dual = compress::bridge_dual(graph, ishape);
      break;
    case PipelineMode::DualOnly:
      dual = compress::bridge_dual_without_ishape(graph);
      break;
    case PipelineMode::ModularOnly:
      break;  // no bridging: every net stays its own component
  }
  result.dual_bridges = dual.bridge_count();
  result.net_components = dual.component_count();
  result.timings.dual_bridge_s = seconds_since(t);

  // Stage 6 + 7: module placement and dual-defect net routing, run as K
  // independent attempts with derived seeds on up to `jobs` threads
  // (identically in every pipeline mode; attempt 0 uses options.seed
  // itself). Within an attempt, when the router cannot legalize the
  // tightest packing it escalates once with a free routing plane between
  // layers (congestion-driven whitespace insertion). The winner is picked
  // sequentially under the total order (legal first, volume, attempt
  // index), so the result is bit-identical for any thread count.
  stage_boundary("place_route");
  trace::Span build_nodes_span("place.build_nodes");
  place::NodeSet nodes =
      use_primal ? place::build_nodes(graph, ishape, bridging, dual,
                                      options.plan_flips)
                 : place::build_nodes_dual_only(graph, dual);
  build_nodes_span.end();
  result.nodes = nodes.node_count();

  const std::size_t attempts =
      static_cast<std::size_t>(std::max(1, options.place_restarts));
  std::vector<std::uint64_t> seeds(attempts);
  seeds[0] = options.seed;
  std::uint64_t seed_state = options.seed;
  for (std::size_t k = 1; k < attempts; ++k) seeds[k] = splitmix64(seed_state);

  struct Attempt {
    place::Placement placement;
    route::RoutingResult routing;
    PlaceAttemptStats stats;
  };
  std::vector<Attempt> outcomes(attempts);
  t = std::chrono::steady_clock::now();
  trace::Span place_route_span("pipeline.place_route");
  // Warm-start chaining (--route-warm-start): the NegotiationMemory
  // exported by each attempt's final routing seeds the NEXT attempt's
  // first routing with decayed history and remembered windows, so later
  // attempts skip part of the negotiation-convergence price. Each attempt
  // snapshots the incoming memory once: its internal y-gap escalation
  // re-consumes that same snapshot rather than its own y-gap-0 export, so
  // every attempt in isolation routes exactly as it would without
  // chaining. Chaining imposes a sequential attempt order (each attempt
  // then gets the whole jobs budget for its internal parallelism); the
  // order is a fixed function of the attempt index, so results stay
  // bit-identical for any jobs value. Attempt 0 consumes an invalid
  // (empty) memory, preserving single-attempt == attempt-0 equivalence —
  // and making the default place_restarts=1 pipeline bit-identical to
  // --route-warm-start=0.
  const bool warm_chain = options.route.warm_start;
  route::NegotiationMemory chained_memory;
  auto run_attempt = [&](std::size_t k) {
    TQEC_TRACE_SPAN("place_route.attempt", "attempt " + std::to_string(k));
    Attempt& a = outcomes[k];
    a.stats.seed = seeds[k];
    const route::NegotiationMemory attempt_in = chained_memory;
    const int thread_split = std::max(
        1, jobs / static_cast<int>(
                      std::min(attempts, static_cast<std::size_t>(jobs))));
    for (const int y_gap : {0, 1}) {
      // Cooperative cancellation between escalation levels. The attempt
      // just stops early (leaving its outcome illegal/empty); the stage
      // boundary after the join raises CancelledError on the calling
      // thread, so no partial winner ever escapes.
      if (options.cancel.cancelled()) return;
      auto t_stage = std::chrono::steady_clock::now();
      place::PlaceOptions place_opt = options.place;
      place_opt.seed = seeds[k];
      place_opt.effort *= options.effort;
      place_opt.layer_y_gap = std::max(place_opt.layer_y_gap, y_gap);
      // Split the jobs budget between concurrent attempts and each
      // attempt's SA replicas (an explicit --place-threads wins); under
      // warm-start chaining attempts run one at a time, so each gets the
      // whole budget. Thread counts never change results, so the split is
      // a pure wall-clock heuristic — same contract as the routing split
      // below.
      if (place_opt.threads == 0)
        place_opt.threads = warm_chain ? jobs : thread_split;
      a.placement = place_modules(nodes, place_opt);
      a.stats.place_s += seconds_since(t_stage);

      t_stage = std::chrono::steady_clock::now();
      route::RouteOptions route_opt = options.route;
      route_opt.seed = seeds[k];
      // Split the jobs budget between concurrent attempts and each
      // attempt's routing workers (an explicit --route-threads wins).
      // Thread counts never change results, so the split is a pure
      // wall-clock heuristic.
      if (route_opt.threads == 0)
        route_opt.threads = warm_chain ? jobs : thread_split;
      a.routing = warm_chain
                      ? route::route_nets(nodes, a.placement, route_opt,
                                          &attempt_in, &chained_memory)
                      : route::route_nets(nodes, a.placement, route_opt);
      a.stats.route_s += seconds_since(t_stage);
      a.stats.y_gap = y_gap;
      if (a.routing.legal) break;
      TQEC_LOG_INFO("attempt " << k << ": routing illegal at y-gap " << y_gap
                               << "; escalating whitespace");
    }
    a.stats.volume = a.routing.volume;
    a.stats.legal = a.routing.legal;
    a.stats.sa_iterations = a.placement.iterations_run;
    a.stats.sa_accepted = a.placement.moves_accepted;
    a.stats.sa_rejected = a.placement.moves_rejected;
    a.stats.sa_replicas = a.placement.replicas;
    a.stats.sa_selected_replica = a.placement.selected_replica;
    a.stats.sa_repacked_nodes = a.placement.repacked_nodes;
    a.stats.sa_exchanges_attempted = a.placement.exchanges_attempted;
    a.stats.sa_exchanges_accepted = a.placement.exchanges_accepted;
    // Moves/sec covers the attempt's final (selected-y-gap) placement over
    // its total place time; purely diagnostic, never affects results.
    if (a.stats.place_s > 0)
      a.stats.sa_moves_per_sec =
          static_cast<double>(a.placement.iterations_run) / a.stats.place_s;
    a.stats.route_iterations = a.routing.iterations;
    a.stats.route_overused = a.routing.overused_cells;
    a.stats.route_reroutes_per_iter = a.routing.reroutes_per_iter;
    a.stats.route_reroutes = a.routing.reroutes_total;
    a.stats.route_full_sweeps = a.routing.full_sweeps;
    a.stats.route_queue_pushes = a.routing.queue_pushes;
    a.stats.route_queue_pops = a.routing.queue_pops;
    a.stats.route_repair_awarded = a.routing.repair_awarded;
    a.stats.route_repair_failed = a.routing.repair_failed;
    a.stats.route_batches = a.routing.batches;
    a.stats.route_conflicts_requeued = a.routing.conflicts_requeued;
    a.stats.route_parallel_efficiency = a.routing.parallel_efficiency;
    a.stats.route_lookahead_nets = a.routing.lookahead_nets;
    a.stats.route_window_hits = a.routing.window_hits;
    a.stats.route_window_misses = a.routing.window_misses;
    a.stats.route_warm_started = a.routing.warm_started;
    a.stats.sa_curve = a.placement.sa_curve;
    a.stats.sa_replica_curves = a.placement.replica_curves;
    a.stats.route_overused_per_iter = a.routing.overused_per_iter;
  };
  if (warm_chain) {
    for (std::size_t k = 0; k < attempts; ++k) run_attempt(k);
  } else {
    parallel_for(attempts, jobs, run_attempt);
  }
  place_route_span.end();
  result.timings.place_route_wall_s = seconds_since(t);
  // Deliver a mid-place/route cancellation (workers returned early above)
  // on the calling thread, at the boundary of the next stage.
  stage_boundary("emit_geometry");

  // Deterministic reduction: strict-less scan keeps the earliest attempt
  // on ties.
  std::size_t best = 0;
  const auto key = [&](const Attempt& a) {
    return std::tuple(a.routing.legal ? 0 : 1, a.routing.volume);
  };
  for (std::size_t k = 1; k < attempts; ++k)
    if (key(outcomes[k]) < key(outcomes[best])) best = k;
  outcomes[best].stats.selected = true;
  result.timings.place_s = outcomes[best].stats.place_s;
  result.timings.route_s = outcomes[best].stats.route_s;
  result.timings.attempts.reserve(attempts);
  for (const Attempt& a : outcomes) result.timings.attempts.push_back(a.stats);

  place::Placement placement = std::move(outcomes[best].placement);
  route::RoutingResult routing = std::move(outcomes[best].routing);
  result.placement = placement;
  result.routing = routing;
  result.routed_legal = routing.legal;
  result.volume = routing.volume;
  if (options.emit_geometry) {
    result.geometry =
        emit_geometry(graph, nodes, placement, routing, circuit.name());
    // One occupancy-grid build covers the whole geometry record: exact cell
    // count from the population count, plus the grid's own build cost and
    // footprint (the same grid the validator's fast path rasterizes).
    geom::GridBuildStats gstats;
    const geom::OccupancyGrid grid =
        geom::build_occupancy(result.geometry, &gstats);
    result.geom.grid_build_s = gstats.build_s;
    result.geom.grid_bytes = gstats.bytes;
    result.geom.exact_cells =
        grid.popcount(geom::kPrimalPlane) + grid.popcount(geom::kDualPlane);
    result.geom.segments =
        static_cast<std::int64_t>(result.geometry.segment_count());
    result.geom.arena_bytes = result.geometry.arena_bytes();
  }
  if (options.keep_internals) {
    result.internals = std::make_shared<PipelineInternals>(
        PipelineInternals{graph, std::move(nodes), std::move(dual)});
  }

  result.timings.total_s = seconds_since(t_start);

  // Publish the run's gauges and the selected attempt's convergence curves
  // to the metrics registry, then snapshot it into the result. This runs
  // on the calling thread after the parallel join, so snapshot content is
  // independent of thread scheduling (counter totals are commutative sums
  // published by the stages themselves).
  result.peak_rss_bytes = trace::peak_rss_bytes();
  if (trace::enabled()) {
    const PlaceAttemptStats& sel = outcomes[best].stats;
    trace::gauge_set("process.peak_rss_bytes",
                     static_cast<double>(result.peak_rss_bytes));
    trace::gauge_set("process.current_rss_bytes",
                     static_cast<double>(trace::current_rss_bytes()));
    trace::gauge_set("compile.volume", static_cast<double>(result.volume));
    trace::gauge_set("compile.modules", result.modules);
    trace::gauge_set("compile.nodes", result.nodes);
    trace::gauge_set("compile.attempts", static_cast<double>(attempts));
    trace::gauge_set("stage.pd_graph_s", result.timings.pd_graph_s);
    trace::gauge_set("stage.ishape_s", result.timings.ishape_s);
    trace::gauge_set("stage.primal_bridge_s",
                     result.timings.primal_bridge_s);
    trace::gauge_set("stage.dual_bridge_s", result.timings.dual_bridge_s);
    trace::gauge_set("stage.place_s", result.timings.place_s);
    trace::gauge_set("stage.route_s", result.timings.route_s);
    trace::gauge_set("stage.place_route_wall_s",
                     result.timings.place_route_wall_s);
    trace::gauge_set("route.parallel_efficiency",
                     sel.route_parallel_efficiency);
    trace::gauge_set("place.sa_replicas", sel.sa_replicas);
    trace::gauge_set("place.sa_moves_per_sec", sel.sa_moves_per_sec);
    if (options.emit_geometry) {
      trace::gauge_set("geom.grid_build_s", result.geom.grid_build_s);
      trace::gauge_set("geom.grid_bytes",
                       static_cast<double>(result.geom.grid_bytes));
      trace::gauge_set("geom.exact_cells",
                       static_cast<double>(result.geom.exact_cells));
      trace::gauge_set("geom.segments",
                       static_cast<double>(result.geom.segments));
      trace::gauge_set("geom.arena_bytes",
                       static_cast<double>(result.geom.arena_bytes));
    }
    trace::gauge_set(
        "place.sa_repacked_per_move",
        static_cast<double>(sel.sa_repacked_nodes) /
            static_cast<double>(std::max(1, sel.sa_accepted + sel.sa_rejected)));
    auto iota_x = [](std::size_t n) {
      std::vector<double> x(n);
      for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i);
      return x;
    };
    // The x vector is built before each call: argument evaluation order is
    // unspecified, so iota_x(v.size()) inside the call could see v already
    // moved from.
    auto put_indexed = [&](const char* name, std::vector<double> y) {
      std::vector<double> x = iota_x(y.size());
      trace::series_put(name, std::move(x), std::move(y));
    };
    std::vector<double> cost, temp, rate;
    for (const place::SaSample& s : sel.sa_curve) {
      cost.push_back(s.cost);
      temp.push_back(s.temperature);
      rate.push_back(s.accept_rate);
    }
    put_indexed("place.sa_cost", std::move(cost));
    put_indexed("place.sa_temperature", std::move(temp));
    put_indexed("place.sa_accept_rate", std::move(rate));
    put_indexed("route.overused",
                {sel.route_overused_per_iter.begin(),
                 sel.route_overused_per_iter.end()});
    put_indexed("route.reroutes",
                {sel.route_reroutes_per_iter.begin(),
                 sel.route_reroutes_per_iter.end()});
    put_indexed("route.congestion_hist",
                {result.routing.congestion_histogram.begin(),
                 result.routing.congestion_histogram.end()});
    result.metrics = trace::snapshot_metrics();
  }

  TQEC_LOG_INFO("compile '" << circuit.name() << "': modules="
                            << result.modules << " nodes=" << result.nodes
                            << " volume=" << result.volume << " ("
                            << result.timings.total_s << "s)");
  // Progress only, no cancel check: the result is complete, discarding it
  // now would help nobody.
  if (options.progress) options.progress("done");
  return result;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

template <typename T>
void emit_number_array(std::ostringstream& os, const std::vector<T>& values) {
  os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    if constexpr (std::is_floating_point_v<T>) os << json_double(values[i]);
    else os << values[i];
  }
  os << "]";
}

void emit_sa_curve(std::ostringstream& os,
                   const std::vector<place::SaSample>& curve) {
  std::vector<double> cost, temperature, accept_rate;
  cost.reserve(curve.size());
  temperature.reserve(curve.size());
  accept_rate.reserve(curve.size());
  for (const place::SaSample& s : curve) {
    cost.push_back(s.cost);
    temperature.push_back(s.temperature);
    accept_rate.push_back(s.accept_rate);
  }
  os << "{\"cost\": ";
  emit_number_array(os, cost);
  os << ", \"temperature\": ";
  emit_number_array(os, temperature);
  os << ", \"accept_rate\": ";
  emit_number_array(os, accept_rate);
  os << "}";
}

void emit_histogram(std::ostringstream& os,
                    const trace::HistogramSnapshot& h) {
  os << trace::histogram_json(h);
}

}  // namespace

std::string stats_json(const CompileResult& result) {
  const StageTimings& t = result.timings;
  std::ostringstream os;
  os << "{\n"
     << "  \"stats_version\": 2,\n"
     << "  \"name\": \"" << json_escape(result.name) << "\",\n"
     << "  \"volume\": " << result.volume << ",\n"
     << "  \"canonical_volume\": " << result.canonical_volume << ",\n"
     << "  \"legal\": " << (result.routed_legal ? "true" : "false") << ",\n"
     << "  \"modules\": " << result.modules << ",\n"
     << "  \"nodes\": " << result.nodes << ",\n"
     << "  \"ishape_merges\": " << result.ishape_merges << ",\n"
     << "  \"primal_bridges\": " << result.primal_bridges << ",\n"
     << "  \"dual_bridges\": " << result.dual_bridges << ",\n"
     << "  \"net_components\": " << result.net_components << ",\n"
     << "  \"peak_rss_bytes\": " << result.peak_rss_bytes << ",\n"
     << "  \"timings\": {"
     << "\"pd_graph_s\": " << json_double(t.pd_graph_s)
     << ", \"ishape_s\": " << json_double(t.ishape_s)
     << ", \"primal_bridge_s\": " << json_double(t.primal_bridge_s)
     << ", \"dual_bridge_s\": " << json_double(t.dual_bridge_s)
     << ", \"place_s\": " << json_double(t.place_s)
     << ", \"route_s\": " << json_double(t.route_s)
     << ", \"place_route_wall_s\": " << json_double(t.place_route_wall_s)
     << ", \"total_s\": " << json_double(t.total_s) << "},\n";

  os << "  \"primal_restarts\": {\"selected\": " << t.primal_restarts.selected
     << ", \"restarts\": [";
  for (std::size_t r = 0; r < t.primal_restarts.restart_s.size(); ++r) {
    if (r > 0) os << ", ";
    os << "{\"time_s\": " << json_double(t.primal_restarts.restart_s[r])
       << ", \"chains\": " << t.primal_restarts.chain_counts[r]
       << ", \"bridges\": " << t.primal_restarts.bridge_counts[r] << "}";
  }
  os << "]},\n";

  os << "  \"attempts\": [";
  for (std::size_t k = 0; k < t.attempts.size(); ++k) {
    const PlaceAttemptStats& a = t.attempts[k];
    if (k > 0) os << ",";
    os << "\n    {\"seed\": " << a.seed << ", \"volume\": " << a.volume
       << ", \"legal\": " << (a.legal ? "true" : "false")
       << ", \"selected\": " << (a.selected ? "true" : "false")
       << ", \"y_gap\": " << a.y_gap
       << ", \"place_s\": " << json_double(a.place_s)
       << ", \"route_s\": " << json_double(a.route_s)
       << ", \"sa_iterations\": " << a.sa_iterations
       << ", \"sa_accepted\": " << a.sa_accepted
       << ", \"sa_rejected\": " << a.sa_rejected
       << ", \"sa_replicas\": " << a.sa_replicas
       << ", \"sa_selected_replica\": " << a.sa_selected_replica
       << ", \"sa_repacked_nodes\": " << a.sa_repacked_nodes
       << ", \"sa_repacked_per_move\": "
       << json_double(static_cast<double>(a.sa_repacked_nodes) /
                      static_cast<double>(
                          std::max(1, a.sa_accepted + a.sa_rejected)))
       << ", \"sa_moves_per_sec\": " << json_double(a.sa_moves_per_sec)
       << ", \"sa_exchanges_attempted\": " << a.sa_exchanges_attempted
       << ", \"sa_exchanges_accepted\": " << a.sa_exchanges_accepted
       << ", \"route_iterations\": " << a.route_iterations
       << ", \"route_overused\": " << a.route_overused
       << ", \"route_reroutes\": " << a.route_reroutes
       << ", \"route_full_sweeps\": " << a.route_full_sweeps
       << ", \"route_queue_pushes\": " << a.route_queue_pushes
       << ", \"route_queue_pops\": " << a.route_queue_pops
       << ", \"route_repair_awarded\": " << a.route_repair_awarded
       << ", \"route_repair_failed\": " << a.route_repair_failed
       << ", \"route_batches\": " << a.route_batches
       << ", \"route_conflicts_requeued\": " << a.route_conflicts_requeued
       << ", \"route_parallel_efficiency\": "
       << json_double(a.route_parallel_efficiency)
       << ", \"route_lookahead_nets\": " << a.route_lookahead_nets
       << ", \"route_window_hits\": " << a.route_window_hits
       << ", \"route_window_misses\": " << a.route_window_misses
       << ", \"route_warm_started\": "
       << (a.route_warm_started ? "true" : "false")
       << ", \"route_reroutes_per_iter\": ";
    emit_number_array(os, a.route_reroutes_per_iter);
    os << ", \"route_overused_per_iter\": ";
    emit_number_array(os, a.route_overused_per_iter);
    os << ", \"sa_curve\": ";
    emit_sa_curve(os, a.sa_curve);
    os << ", \"sa_replica_curves\": [";
    for (std::size_t r = 0; r < a.sa_replica_curves.size(); ++r) {
      if (r > 0) os << ", ";
      emit_sa_curve(os, a.sa_replica_curves[r]);
    }
    os << "]}";
  }
  if (!t.attempts.empty()) os << "\n  ";
  os << "],\n";

  // Congestion census of the selected attempt's final routing.
  const route::RoutingResult& routing = result.routing;
  os << "  \"route\": {\"iterations\": " << routing.iterations
     << ", \"overused_cells\": " << routing.overused_cells
     << ", \"total_wire\": " << routing.total_wire
     << ", \"present_factor_final\": "
     << json_double(routing.present_factor_final)
     << ", \"batches\": " << routing.batches
     << ", \"conflicts_requeued\": " << routing.conflicts_requeued
     << ", \"parallel_efficiency\": "
     << json_double(routing.parallel_efficiency)
     << ", \"lookahead_nets\": " << routing.lookahead_nets
     << ", \"window_hits\": " << routing.window_hits
     << ", \"window_misses\": " << routing.window_misses
     << ", \"warm_started\": " << (routing.warm_started ? "true" : "false")
     << ", \"overused_per_iter\": ";
  emit_number_array(os, routing.overused_per_iter);
  os << ", \"congestion_histogram\": ";
  emit_number_array(os, routing.congestion_histogram);
  os << ", \"hottest_cells\": [";
  for (std::size_t i = 0; i < routing.hottest_cells.size(); ++i) {
    const route::RoutingResult::HotCell& h = routing.hottest_cells[i];
    if (i > 0) os << ", ";
    os << "{\"x\": " << h.cell.x << ", \"y\": " << h.cell.y
       << ", \"z\": " << h.cell.z << ", \"usage\": " << h.usage
       << ", \"capacity\": " << h.capacity << "}";
  }
  os << "], \"heatmap\": \"" << json_escape(routing.congestion_heatmap)
     << "\"},\n";

  // Time-axis sharding record (additive in v2; enabled=false defaults for
  // unsharded compiles — see core/shard.h).
  const ShardStats& sh = result.shard;
  os << "  \"shard\": {\"enabled\": " << (sh.enabled ? "true" : "false")
     << ", \"window\": " << sh.window << ", \"threads\": " << sh.threads
     << ", \"windows_total\": " << sh.windows_total
     << ", \"windows_resumed\": " << sh.windows_resumed
     << ", \"windows_reseeded\": " << sh.windows_reseeded
     << ", \"crossings\": " << sh.crossings
     << ", \"stitches\": " << sh.stitches
     << ", \"seam_cells\": " << sh.seam_cells
     << ", \"stitch_s\": " << json_double(sh.stitch_s)
     << ", \"cut_layers\": ";
  emit_number_array(os, sh.cut_layers);
  os << ", \"window_volumes\": ";
  emit_number_array(os, sh.window_volumes);
  os << ", \"issues\": [";
  for (std::size_t i = 0; i < sh.issues.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(sh.issues[i]) << "\"";
  }
  os << "]},\n";

  // Geometry-engine record (additive in v2; zeros when emit_geometry was
  // off — see core/compiler.h GeomStats).
  const GeomStats& ge = result.geom;
  os << "  \"geom\": {\"grid_build_s\": " << json_double(ge.grid_build_s)
     << ", \"grid_bytes\": " << ge.grid_bytes
     << ", \"exact_cells\": " << ge.exact_cells
     << ", \"segments\": " << ge.segments
     << ", \"arena_bytes\": " << ge.arena_bytes << "},\n";

  // Stage-cache usage (additive in v2; all-"skip" defaults for the
  // single-shot CLI path, filled in by the tqec::Compiler facade).
  const CacheUsage& c = result.cache;
  os << "  \"cache\": {\"enabled\": " << (c.enabled ? "true" : "false")
     << ", \"decompose\": \"" << json_escape(c.decompose) << "\""
     << ", \"icm\": \"" << json_escape(c.icm) << "\""
     << ", \"pd_graph\": \"" << json_escape(c.pd_graph) << "\""
     << ", \"hits\": " << c.hits << ", \"misses\": " << c.misses
     << ", \"entries\": " << c.entries << ", \"bytes\": " << c.bytes
     << ", \"budget\": " << c.budget << ", \"evictions\": " << c.evictions
     << "},\n";

  // Trace metrics registry snapshot (empty object unless tracing was on).
  os << "  \"metrics\": {\"counters\": {";
  {
    bool first = true;
    for (const auto& [name, value] : result.metrics.counters) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << json_escape(name) << "\": " << value;
    }
  }
  os << "}, \"gauges\": {";
  {
    bool first = true;
    for (const auto& [name, value] : result.metrics.gauges) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << json_escape(name) << "\": " << json_double(value);
    }
  }
  os << "}, \"series\": {";
  {
    bool first = true;
    for (const trace::SeriesChannel& s : result.metrics.series) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << json_escape(s.name) << "\": {\"x\": ";
      emit_number_array(os, s.x);
      os << ", \"y\": ";
      emit_number_array(os, s.y);
      os << "}";
    }
  }
  os << "}, \"histograms\": {";
  {
    bool first = true;
    for (const trace::HistogramSnapshot& h : result.metrics.histograms) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << json_escape(h.name) << "\": ";
      emit_histogram(os, h);
    }
  }
  os << "}}\n}\n";
  return os.str();
}

}  // namespace tqec::core
