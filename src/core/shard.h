// Time-axis sharded compilation (ROADMAP item 5).
//
// The unsharded pipeline holds one B*-tree and one routing fabric for the
// whole circuit, so compile memory and wall-clock grow with circuit depth.
// But the time axis is special: Paler et al. (arXiv:1604.08621) synthesize
// topological assemblies streamingly along it, and bridging (Fowler-Devitt,
// arXiv:1209.0510) is local in time — the defect geometry decomposes into
// time windows connected only by the thin set of logical lines alive at
// each cut.
//
// This module exploits that structure:
//
//   plan_windows()    — ASAP-layer the CNOT list (layer(k) = 1 + max of the
//                       endpoints' last layers) and cut it into ~K-layer
//                       windows at *low-crossing* boundaries: around each
//                       multiple of K, the boundary minimizing the number
//                       of lines with CNOTs on both sides is chosen
//                       (smallest layer on ties — fully deterministic).
//   extract_window()  — materialize one window as a standalone IcmCircuit:
//                       lines crossing the left cut are flagged carry-in
//                       (compiled without an initialization or injection
//                       box), lines crossing the right cut are marked
//                       output (compiled without a measurement).
//                       Measurement-order constraints whose endpoints both
//                       measure in the window are kept; constraints that
//                       span windows are satisfied by construction (window
//                       w is stacked at smaller x than window w+1) and
//                       checked at stitch time.
//   compile_sharded() — compile every window independently through
//                       core::compile (on up to --shard-threads workers of
//                       a parallel_for_slots pool; slot-indexed results +
//                       a serial stitch keep the output bit-identical for
//                       any thread count), then splice the window
//                       geometries along pinned seam interfaces
//                       (geom/stitch.h) and validate the merged result.
//
// Peak memory: in the sequential path (--shard-threads=1) only one
// window's placement fabric / B*-tree / routing state is live at a time;
// each window is reduced to its slim geometry + carry cells before the
// next one starts, so peak RSS is O(largest window), not O(circuit).
//
// Checkpointing: with a --checkpoint-dir, every finished window is written
// as a self-contained text record keyed by a Digest128 content hash over
// the window's canonical ICM text, the result-affecting compile options,
// and the shard parameters (the same hashing discipline as the stage
// cache). A killed compile re-plans, finds matching digests, and skips
// those windows; anything stale (edited circuit, different options) hashes
// differently and is recompiled. A manifest.json in the directory lists
// the expected windows for external tooling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/compiler.h"

namespace tqec::core {

struct ShardOptions {
  /// ASAP layers per window; <= 0 disables sharding (compile_sharded
  /// delegates straight to core::compile — bit-identical to unsharded).
  int window = 0;
  /// Concurrent window compiles. 1 = sequential (the O(largest-window)
  /// memory path); 0 or negative = one per hardware thread. Never changes
  /// results, only wall-clock and peak memory.
  int threads = 1;
  /// Directory for per-window checkpoints; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Free cells between consecutive windows along x (seam slab width).
  int seam_gap = 3;
};

/// One planned window over the ASAP layering.
struct WindowPlan {
  int index = 0;
  int layer_lo = 0;  // first ASAP layer (inclusive)
  int layer_hi = 0;  // past-the-end ASAP layer
  std::vector<int> cnots;  // global CNOT indices, ascending
  std::vector<int> lines;  // global line ids, ascending
  /// Parallel to `lines`: crosses the left / right cut of this window.
  std::vector<std::uint8_t> carry_in;
  std::vector<std::uint8_t> carry_out;
};

struct ShardPlan {
  int depth = 0;  // max ASAP layer (1-based; 0 for a CNOT-free circuit)
  std::vector<WindowPlan> windows;
  /// Chosen cut boundaries (layer_lo of every window after the first).
  std::vector<int> cut_layers;
  /// Per line: index of the window holding its final (measured) module.
  std::vector<int> meas_window;
  /// Measurement-order constraints whose endpoints measure in different
  /// windows; satisfied by x-stacking iff before's window < after's.
  std::vector<icm::MeasOrder> cross_order;
  /// Total line/cut crossings over all chosen boundaries.
  int crossings = 0;
};

/// Partition `circuit` into windows of roughly `window_layers` ASAP layers
/// cut at low-crossing boundaries. Deterministic. `window_layers` < 1 is
/// clamped to 1; a circuit whose depth fits one window yields one window.
ShardPlan plan_windows(const icm::IcmCircuit& circuit, int window_layers);

/// Materialize window `index` of `plan` as a standalone ICM circuit (local
/// line ids follow plan.windows[index].lines order; name gets an "@w<i>"
/// suffix).
icm::IcmCircuit extract_window(const icm::IcmCircuit& circuit,
                               const ShardPlan& plan, int index);

/// Compile `circuit` through the time-axis sharding path. With
/// shard.window <= 0 this is exactly core::compile(circuit, options).
/// Otherwise the result's geometry is the stitched multi-window design,
/// result.shard carries the shard observability record, and
/// result.routed_legal additionally requires every seam to have been
/// carved and the stitched geometry to pass the structural validator.
CompileResult compile_sharded(const icm::IcmCircuit& circuit,
                              const CompileOptions& options,
                              const ShardOptions& shard);

}  // namespace tqec::core
