// Top-level TQEC circuit compression pipeline (paper Fig. 5).
//
// Orchestrates the seven stages on an ICM circuit:
//   (1) preprocess / gate decomposition happens upstream (decompose + icm);
//   (2) PD-graph generation, (3) I-shaped simplification, (4) flipping /
//   primal bridging, (5) iterative dual bridging, (6) 2.5D module
//   placement, (7) dual-defect net routing — and emits the final 3D
//   geometric description with its space-time volume.
//
// Three pipeline modes select how much of the paper's contribution runs:
//   Full        — the paper's algorithm (primal + dual bridging).
//   DualOnly    — the [Hsu DAC'21] baseline: dual bridging on the raw
//                 module records, every module its own placement node.
//   ModularOnly — modularization + placement + routing with no bridging at
//                 all (the "topological deformation only" point of Fig. 1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/trace.h"
#include "compress/dual_bridging.h"
#include "compress/flipping.h"
#include "compress/ishape.h"
#include "geom/geometry.h"
#include "icm/icm.h"
#include "pdgraph/pd_graph.h"
#include "place/placer.h"
#include "route/router.h"

namespace tqec::core {

enum class PipelineMode : std::uint8_t { Full, DualOnly, ModularOnly };

struct CompileOptions {
  PipelineMode mode = PipelineMode::Full;
  std::uint64_t seed = 7;
  /// Multiplier on the SA iteration budget (and other effort knobs).
  double effort = 1.0;
  /// f-value dual-segment planning (eq. 5); disable for the Fig. 15
  /// "no planning" ablation.
  bool plan_flips = true;
  /// Fine-grained stage ablations (Full mode only): individually disable
  /// I-shaped simplification, primal bridging (chains + super-modules), or
  /// iterative dual bridging.
  bool enable_ishape = true;
  bool enable_primal = true;
  bool enable_dual = true;
  /// Greedy primal-bridging restarts (best-of-N chain covers; the greedy
  /// start is randomized per the paper, so restarts escape bad starts).
  int primal_restarts = 4;
  /// Independent place+route attempts with derived seeds (best legal
  /// result wins by (volume, attempt index) — a total order, so the
  /// outcome is identical for any `jobs` value). Attempt 0 uses `seed`
  /// itself, so the default reproduces the single-attempt pipeline.
  int place_restarts = 1;
  /// Worker threads for the parallel stages (primal-bridging restarts and
  /// place+route attempts). 1 = sequential; 0 or negative = one per
  /// hardware thread. Never changes results, only wall-clock.
  int jobs = 1;
  /// Validate and keep the emitted geometric description (adds memory and
  /// time on the largest benchmarks; tables only need the volume).
  bool emit_geometry = true;
  /// Retain the intermediate pipeline structures (PD graph, placement
  /// nodes, merged-net components) on the result, enabling end-to-end
  /// verification via verify::verify_result().
  bool keep_internals = false;
  /// Cooperative cancellation: compile() polls this token at stage
  /// boundaries (and between place+route attempts / whitespace
  /// escalations) and raises CancelledError when it fires. The default
  /// token never fires. cancel() may be called from any thread.
  CancelToken cancel;
  /// Stage-boundary progress callback, invoked on the thread that called
  /// compile() with the name of the stage about to run ("pd_graph",
  /// "ishape", "primal_bridge", "dual_bridge", "place_route",
  /// "emit_geometry", "done") — the same boundaries the trace spans mark.
  /// Must not throw; may call cancel.cancel() (a deadline watchdog does).
  std::function<void(const char* stage)> progress;
  place::PlaceOptions place;
  route::RouteOptions route;
};

/// Observability record of one place+route attempt of the multi-seed
/// outer loop (CompileOptions::place_restarts).
struct PlaceAttemptStats {
  std::uint64_t seed = 0;
  std::int64_t volume = 0;
  bool legal = false;
  bool selected = false;  // this attempt produced the final result
  int y_gap = 0;          // whitespace-escalation level that finished it
  double place_s = 0;
  double route_s = 0;
  int sa_iterations = 0;
  int sa_accepted = 0;
  int sa_rejected = 0;
  /// SA engine observability (see place::Placement): parallel-tempering
  /// schedule counters and the incremental-packing work metric. The
  /// moves/sec rate is timing-derived (not deterministic); everything else
  /// is bit-reproducible.
  int sa_replicas = 1;
  int sa_selected_replica = 0;
  std::int64_t sa_repacked_nodes = 0;
  std::int64_t sa_exchanges_attempted = 0;
  std::int64_t sa_exchanges_accepted = 0;
  double sa_moves_per_sec = 0;
  int route_iterations = 0;
  int route_overused = 0;
  /// PathFinder observability (final routing of the attempt): nets ripped
  /// up + rerouted per negotiation iteration and in total, iterations that
  /// swept every net, A*-queue traffic, and hard-block repair outcomes.
  std::vector<int> route_reroutes_per_iter;
  std::int64_t route_reroutes = 0;
  int route_full_sweeps = 0;
  std::int64_t route_queue_pushes = 0;
  std::int64_t route_queue_pops = 0;
  int route_repair_awarded = 0;
  int route_repair_failed = 0;
  /// Batched-negotiation schedule observability: disjoint-region batches
  /// committed, conflict requeues, and mean nets per batch (all pure
  /// functions of the schedule, identical for any --route-threads value).
  int route_batches = 0;
  int route_conflicts_requeued = 0;
  double route_parallel_efficiency = 0;
  /// Lookahead / warm-window / warm-start observability: components whose
  /// searches used the obstacle-aware lookahead, warm-window first-attempt
  /// hits vs. ladder fallbacks, and whether this attempt consumed the
  /// previous attempt's NegotiationMemory (--route-warm-start).
  int route_lookahead_nets = 0;
  std::int64_t route_window_hits = 0;
  std::int64_t route_window_misses = 0;
  bool route_warm_started = false;
  /// SA convergence curve of the attempt's (final) placement, one sample
  /// per temperature batch.
  std::vector<place::SaSample> sa_curve;
  /// Convergence curves of every tempering replica, indexed by ladder
  /// position (sa_replica_curves[sa_selected_replica] == sa_curve).
  std::vector<std::vector<place::SaSample>> sa_replica_curves;
  /// Overused-cell count after each PathFinder negotiation iteration.
  std::vector<int> route_overused_per_iter;
};

/// Per-stage observability report. The scalar *_s fields time the pipeline
/// stages (for place/route: the *selected* attempt, summed over its
/// whitespace escalations); the vectors break the parallel stages down
/// per restart/attempt. Serializable via stats_json().
struct StageTimings {
  double pd_graph_s = 0;
  double ishape_s = 0;
  double primal_bridge_s = 0;
  double dual_bridge_s = 0;
  double place_s = 0;
  double route_s = 0;
  /// Wall-clock of the whole multi-seed place+route stage (all attempts).
  double place_route_wall_s = 0;
  double total_s = 0;
  /// Per-restart greedy primal-bridging breakdown (Full mode only).
  compress::RestartReport primal_restarts;
  /// One entry per place+route attempt, in attempt order.
  std::vector<PlaceAttemptStats> attempts;
};

/// Intermediate pipeline structures, kept when
/// CompileOptions::keep_internals is set.
struct PipelineInternals {
  pdgraph::PdGraph graph;
  place::NodeSet nodes;
  compress::DualBridging dual{0};
};

/// Stage-cache observability for one request, filled in by the
/// tqec::Compiler facade (core::compile itself never touches the cache).
/// Per-stage outcomes are "hit", "miss", or "skip" (stage not run for this
/// input kind — e.g. an .icm request needs no decompose); the counters are
/// the cache-wide cumulative totals at response time.
struct CacheUsage {
  bool enabled = false;
  std::string decompose = "skip";
  std::string icm = "skip";
  std::string pd_graph = "skip";
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t entries = 0;
  std::int64_t bytes = 0;
  std::int64_t budget = 0;
  std::int64_t evictions = 0;
};

/// Geometry-engine observability (geom/cell_grid.h): occupancy-grid build
/// cost and footprint for the emitted geometry, the exact deduplicated
/// cell count from the grid's population count, and the segment-arena
/// size. All zero when CompileOptions::emit_geometry is off.
struct GeomStats {
  double grid_build_s = 0;       // occupancy-grid rasterization wall clock
  std::int64_t grid_bytes = 0;   // grid footprint (dense words or intervals)
  std::int64_t exact_cells = 0;  // population count over both sublattices
  std::int64_t segments = 0;     // segment-arena entries
  std::int64_t arena_bytes = 0;  // arena + defect-record heap bytes
};

/// Observability record of a time-axis sharded compile (core/shard.h).
/// Default-constructed (enabled == false) on unsharded results.
struct ShardStats {
  bool enabled = false;
  int window = 0;           // --shard-window layer budget
  int threads = 1;          // window workers used
  int windows_total = 0;
  int windows_resumed = 0;  // loaded from checkpoint instead of compiled
  int windows_reseeded = 0;  // recompiled with a retry seed (blocked seam)
  int crossings = 0;        // line/cut crossings over all seams
  int stitches = 0;         // seam paths carved
  std::int64_t seam_cells = 0;
  /// Chosen cut boundaries (first ASAP layer of each window after the
  /// first).
  std::vector<int> cut_layers;
  /// Final volume of each window's geometry, in window order.
  std::vector<std::int64_t> window_volumes;
  double stitch_s = 0;
  /// Seam / window failures (empty on a fully legal sharded result).
  std::vector<std::string> issues;
};

struct CompileResult {
  std::string name;
  icm::IcmStats stats;

  // Compression statistics (paper Table 1).
  int modules = 0;          // #Modules: PD-graph modules
  int nodes = 0;            // #Nodes: 2.5D B*-tree nodes after bridging
  int ishape_merges = 0;
  int primal_bridges = 0;
  int dual_bridges = 0;
  int net_components = 0;

  std::int64_t canonical_volume = 0;
  place::Placement placement;
  route::RoutingResult routing;
  /// Final space-time volume (#x * #y * #z of the routed design).
  std::int64_t volume = 0;
  bool routed_legal = false;

  /// Emitted final geometry (empty when emit_geometry is off).
  geom::GeomDescription geometry;

  /// Intermediate structures (null unless keep_internals was set).
  std::shared_ptr<PipelineInternals> internals;

  StageTimings timings;

  /// Stage-cache usage of the request that produced this result (default:
  /// caching disabled — the single-shot CLI path).
  CacheUsage cache;

  /// Time-axis sharding observability (enabled == false unless the result
  /// came from core::compile_sharded).
  ShardStats shard;

  /// Geometry-engine observability of `geometry` (zero when emit_geometry
  /// was off).
  GeomStats geom;

  /// Process peak RSS in bytes, sampled when the result was assembled
  /// (0 where the platform offers no probe — see trace::peak_rss_bytes).
  std::uint64_t peak_rss_bytes = 0;

  /// Snapshot of the trace metrics registry taken at the end of this
  /// compile (empty unless tracing was enabled — see common/trace.h).
  /// Embedded in stats_json so the report is a pure function of the
  /// result.
  trace::MetricsSnapshot metrics;
};

/// Run the compression pipeline on an ICM circuit.
///
/// `prebuilt_graph`, when non-null, must be build_pd_graph(circuit) (the
/// stage is deterministic, so the tqec::Compiler facade can supply a
/// cached copy); compile() then skips stage 2 entirely — no pdgraph.build
/// span, pd_graph_s stays 0 — and every downstream result is bit-identical
/// to the self-built path. Raises CancelledError if options.cancel fires.
CompileResult compile(const icm::IcmCircuit& circuit,
                      const CompileOptions& options = {},
                      const pdgraph::PdGraph* prebuilt_graph = nullptr);

/// Emit the final geometric description of a placed-and-routed design.
geom::GeomDescription emit_geometry(const pdgraph::PdGraph& graph,
                                    const place::NodeSet& nodes,
                                    const place::Placement& placement,
                                    const route::RoutingResult& routing,
                                    const std::string& name);

/// Append one segment per maximal collinear x-run of `cells` to the
/// defect; duplicate input cells collapse. Exposed for testing.
void emit_cell_runs(geom::Defect& defect, std::vector<Vec3> cells);

/// Serialize a compile result's statistics and per-stage observability
/// report as JSON (format v2): scalar stats and stage timings, the
/// per-restart and per-attempt breakdowns with their SA convergence and
/// PathFinder time-series, the selected attempt's congestion census
/// (histogram, top-K hottest cells, text heatmap), and the trace metrics
/// registry snapshot. tools/tqec_report renders this into a run report.
std::string stats_json(const CompileResult& result);

}  // namespace tqec::core
