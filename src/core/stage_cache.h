// Content-hash stage cache for the compilation service.
//
// The front of the pipeline — gate decomposition, the Clifford+T -> ICM
// transformation, and PD-graph construction — is a chain of deterministic
// pure functions of the input circuit (paper Fig. 5; stages before the
// seeded heuristics). Identical sub-circuits therefore recur across serving
// requests with identical stage outputs, and tqec::Compiler memoizes them
// here: key = 128-bit FNV digest of (stage tag, canonical serialized stage
// input, option fingerprint); value = the immutable stage output behind a
// shared_ptr. Entries are LRU-evicted under a byte budget (sizes are
// caller-supplied estimates — the cache never inspects its values).
//
// Thread-safe: one mutex around the index + LRU list. Lookups hand out
// shared_ptr<const T>, so an entry evicted mid-use stays alive for the
// request that holds it. A concurrent miss on the same key may compute the
// value twice; both computations are deterministic and identical, so the
// second put simply refreshes the entry.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "common/hash.h"

namespace tqec::core {

/// 128-bit content-hash cache key (see common/hash.h for collision notes).
struct CacheKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Key for one stage invocation: the stage tag separates namespaces (and
/// versions — bump the tag when a stage's semantics change), the canonical
/// input is the serialized stage input, and the option fingerprint encodes
/// any knobs the stage output depends on (empty for the pure prefix
/// stages, which take no options).
CacheKey make_cache_key(std::string_view stage_tag,
                        std::string_view canonical_input,
                        std::string_view option_fingerprint = {});

class StageCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t insertions = 0;
    std::int64_t evictions = 0;
    std::int64_t entries = 0;  // current
    std::int64_t bytes = 0;    // current
    std::int64_t budget = 0;
  };

  /// `byte_budget` <= 0 disables storage entirely (every get is a miss,
  /// every put a no-op) — the facade uses that for cache-off mode.
  explicit StageCache(std::int64_t byte_budget);

  /// Typed lookup; null on miss. The caller owns knowing T matches what was
  /// stored under this key — the stage tag inside the key guarantees it.
  template <typename T>
  std::shared_ptr<const T> get(const CacheKey& key) {
    return std::static_pointer_cast<const T>(get_erased(key));
  }

  /// Insert (or refresh) an entry of an estimated `bytes` size.
  template <typename T>
  void put(const CacheKey& key, std::shared_ptr<const T> value,
           std::int64_t bytes) {
    put_erased(key, std::static_pointer_cast<const void>(std::move(value)),
               bytes);
  }

  Stats stats() const;
  void clear();

 private:
  std::shared_ptr<const void> get_erased(const CacheKey& key);
  void put_erased(const CacheKey& key, std::shared_ptr<const void> value,
                  std::int64_t bytes);

  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return static_cast<std::size_t>(k.lo ^ (k.hi * kFnv1aPrime));
    }
  };
  struct Entry {
    CacheKey key;
    std::shared_ptr<const void> value;
    std::int64_t bytes = 0;
  };

  void evict_over_budget_locked();

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index_;
  std::int64_t budget_ = 0;
  std::int64_t bytes_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t insertions_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace tqec::core
