// tqec::Compiler — the compilation-service facade.
//
// Wraps the core::compile pipeline behind a request/response API suitable
// for long-running processes (tools/tqec_serve, embedders, tests):
//
//   * Structured errors. Every failure mode — malformed input, unknown
//     benchmark, cancellation, deadline overrun, internal defect — comes
//     back as a CompileError with a machine-readable code instead of an
//     exception unwinding through the caller.
//   * Cooperative cancellation and deadlines. The request's CancelToken is
//     polled at stage boundaries; a positive deadline_s arms a watchdog on
//     the progress callback that fires the token once wall-clock runs out.
//   * Content-hash stage caching. The deterministic pure-function prefix of
//     the pipeline — gate decomposition, Clifford+T -> ICM, PD-graph
//     construction — is memoized in a shared StageCache keyed by the
//     canonical serialization of each stage's input, so identical circuits
//     across requests skip straight to the seeded heuristics. The heuristic
//     stages (bridging, placement, routing) depend on seeds/effort/jobs and
//     are never cached.
//
// One Compiler instance serves many requests, concurrently: the cache is
// internally locked and core::compile keeps its state on the stack.
#pragma once

#include <cstdint>
#include <string>

#include "core/compiler.h"
#include "core/shard.h"
#include "core/stage_cache.h"

namespace tqec {

struct CompilerConfig {
  /// Stage-cache byte budget; <= 0 or cache_enabled=false turns caching
  /// off (every request recomputes the full pipeline).
  std::int64_t cache_bytes = std::int64_t{256} << 20;
  bool cache_enabled = true;
};

/// One compilation request. Exactly one of the three input kinds must be
/// set: RevLib source text, ICM source text, or a paper-benchmark name
/// (workload generator, seeded by options.seed).
struct CompileRequest {
  std::string id;  // caller's correlation id, echoed through responses
  std::string real_text;
  std::string icm_text;
  std::string benchmark;
  /// Run the reversible peephole pass before decomposition (.real only;
  /// same default as the tqec_compress CLI).
  bool optimize = true;
  /// Pipeline knobs, including options.cancel (cancellation token) and
  /// options.progress (stage-boundary callback).
  core::CompileOptions options;
  /// Time-axis sharding knobs (core/shard.h). shard.window <= 0 (the
  /// default) keeps the unsharded pipeline; > 0 routes the request through
  /// core::compile_sharded (window compiles bypass the PD-graph cache
  /// stage — each window is its own circuit).
  core::ShardOptions shard;
  /// Wall-clock budget in seconds; 0 disables. Checked at stage
  /// boundaries, so a request never outlives its deadline by more than
  /// one stage.
  double deadline_s = 0;
};

struct CompileError {
  enum class Code : std::uint8_t {
    None = 0,
    BadRequest,         // malformed request (no input kind, unknown name)
    Parse,              // input text failed to parse; source/line filled in
    Cancelled,          // options.cancel fired
    DeadlineExceeded,   // deadline_s elapsed (the watchdog fired the token)
    Internal,           // pipeline invariant failure
  };
  Code code = Code::None;
  std::string message;
  std::string source;  // Parse only: input name
  int line = 0;        // Parse only: 1-based, 0 = whole-document
  /// Stable machine-readable name ("bad_request", "parse_error", ...).
  const char* code_name() const;
};

struct CompileResponse {
  bool ok = false;
  CompileError error;
  /// Valid only when ok; result.cache records this request's stage-cache
  /// outcomes (and flows into stats_json / tqec_report).
  core::CompileResult result;
  double wall_s = 0;
};

class Compiler {
 public:
  explicit Compiler(CompilerConfig config = {});

  /// Serve one request. Never throws; all failures land in response.error.
  /// Thread-safe: concurrent calls share only the locked stage cache.
  CompileResponse compile(const CompileRequest& request);

  core::StageCache::Stats cache_stats() const { return cache_.stats(); }
  void clear_cache() { cache_.clear(); }

  /// Latency distribution of every stage-cache lookup this Compiler has
  /// performed (hits and misses alike — the *lookup*, not the recompute).
  /// Always recorded: two clock reads per lookup against a pipeline of
  /// milliseconds-to-minutes is noise, and a long-running service wants
  /// cache health observable without a restart. Purely observational.
  trace::HistogramSnapshot cache_lookup_latency() const {
    return cache_lookup_s_.snapshot();
  }

 private:
  /// cache_.get with the lookup latency recorded into cache_lookup_s_.
  template <typename T>
  std::shared_ptr<const T> timed_get(const core::CacheKey& key) {
    const std::uint64_t t0 = trace::now_ns();
    std::shared_ptr<const T> value = cache_.get<T>(key);
    cache_lookup_s_.record_s(
        static_cast<double>(trace::now_ns() - t0) / 1e9);
    return value;
  }

  CompilerConfig config_;
  core::StageCache cache_;
  trace::Histogram cache_lookup_s_{"serve.cache_lookup_s"};
};

}  // namespace tqec
