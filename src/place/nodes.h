// Placement-node construction: converting compression results into the
// three super-module types of the paper's module-placement stage
// (Sec. 3.5) plus the f-value dual-segment planning of eq. (5).
//
// Coordinates use the plumbing-piece cell convention of geom/geometry.h:
// one primal module occupies one cell (Figure 1(e): three bridged module
// pairs occupy 2 x 1 x 3 = 6 cells). Node footprints live in the (x, z)
// plane; y is the 2.5D layer axis.
//
// Node kinds:
//   - PrimalChain: a primal-bridging super-module. Chain points run along
//     z; the I-shape partners of a point run along x (bridges of the two
//     stages on different axes never conflict, Sec. 3.5); height 1.
//   - TimeDependent: one per connected component of the measurement-order
//     constraint graph; member modules are laid along the time axis (x) in
//     topological-level order, which satisfies every intra-node constraint
//     by construction.
//   - Distillation: one column per ancilla kind holding the |Y> (3x3x2) or
//     |A> (16x6x2) boxes stacked along z, each with its injection module
//     beside the box face.
#pragma once

#include <cstdint>
#include <vector>

#include "common/vec3.h"
#include "compress/dual_bridging.h"
#include "compress/flipping.h"
#include "geom/geometry.h"

namespace tqec::place {

enum class NodeKind : std::uint8_t { PrimalChain, TimeDependent, Distillation };

struct NodeBox {
  geom::BoxKind kind = geom::BoxKind::YBox;
  Vec3 offset;  // minimum corner relative to the node origin
  int line = -1;
};

struct PlacementNode {
  int id = -1;
  NodeKind kind = NodeKind::PrimalChain;
  Vec3 dims;  // footprint sizes: x, y (height), z
  /// Modules hosted by this node and their cell offsets within it.
  std::vector<pdgraph::ModuleId> modules;
  std::vector<Vec3> module_offsets;
  /// Distillation boxes hosted by this node (Distillation kind only).
  std::vector<NodeBox> boxes;
  /// Chain index for PrimalChain nodes; -1 otherwise.
  int chain = -1;
};

struct NodeSet {
  std::vector<PlacementNode> nodes;
  /// Node and intra-node offset per module.
  std::vector<int> node_of_module;
  std::vector<Vec3> module_offset;
  /// f value per module (eq. 5): which side of its chain the module's dual
  /// segment exits; 0 for modules outside chains.
  std::vector<std::uint8_t> flip_of_module;

  /// Dual-segment access offsets per module (relative to the module cell):
  /// the cells a routed net must pass through to enter this module's loop.
  /// Empty means no constraint. Flipping mirrors every other chain point
  /// (eq. 5), so the physical exit side alternates along the chain. With
  /// planning (Fig. 15(a)) the single correct port is required. Without
  /// planning the converter assumes every segment exits on the nominal
  /// side, so a mirrored module's net must wrap from its physical exit
  /// around to the assumed port — two required cells, which is exactly the
  /// "poor routing result" of Fig. 15(b).
  std::vector<std::vector<Vec3>> access_offsets;

  /// Routed dual-net components: for each component, the modules its
  /// constituent nets pass through (deduplicated pin list).
  std::vector<std::vector<pdgraph::ModuleId>> net_pins;

  /// Measurement-order constraints lifted to (module, module) pairs that
  /// span different nodes (intra-node pairs are satisfied by construction).
  std::vector<std::pair<pdgraph::ModuleId, pdgraph::ModuleId>> cross_order;

  int node_count() const { return static_cast<int>(nodes.size()); }
};

/// Build the placement nodes from the compression results. When
/// `plan_flips` is false the f values are left at zero (the "no planning"
/// ablation of Fig. 15); planning is the default.
NodeSet build_nodes(const pdgraph::PdGraph& graph,
                    const compress::IshapeResult& ishape,
                    const compress::PrimalBridging& bridging,
                    compress::DualBridging& dual,
                    bool plan_flips = true);

/// Baseline node builder ([Hsu DAC'21]): every non-injection module is its
/// own node (no primal bridging super-modules); time-dependent and
/// distillation super-modules as above.
NodeSet build_nodes_dual_only(const pdgraph::PdGraph& graph,
                              compress::DualBridging& dual);

}  // namespace tqec::place
