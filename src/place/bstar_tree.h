// B*-tree floorplan representation (Chang et al., DAC'00), the per-layer
// building block of the 2.5D placement of Falkenstern et al. (paper [4])
// used in the module-placement stage (Sec. 3.5).
//
// A B*-tree encodes a compacted (admissible) placement of rectangles on a
// plane: the preorder root sits at the origin, a left child abuts its
// parent's right edge (x = parent.x + parent.w), a right child shares its
// parent's x, and every rectangle drops onto the packing contour. Packing
// is O(n log n) with a map-based contour.
//
// The tree stores *items* (global placement-node ids); the simulated-
// annealing engine owns several trees (one per 2.5D layer) and moves items
// between them. All structural perturbations take an Rng for reproducible
// randomness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace tqec::place {

/// Rectangle footprint: w along x, d along z.
struct Footprint {
  int w = 1;
  int d = 1;
};

/// Packed position of one item.
struct PackedItem {
  int item = -1;
  int x = 0;
  int z = 0;
};

struct PackResult {
  std::vector<PackedItem> placed;
  int width = 0;  // extent along x
  int depth = 0;  // extent along z
};

class BStarTree {
 public:
  BStarTree() = default;

  int size() const { return static_cast<int>(slots_.size()); }
  bool empty() const { return slots_.empty(); }
  bool contains(int item) const;
  const std::vector<int>& items() const { return item_list_; }

  /// Insert an item at a uniformly random free child slot.
  void insert(int item, Rng& rng);

  /// Insert as the left child of the last inserted item (builds the
  /// initial left-skewed chain = a row along x).
  void insert_chain(int item);

  /// Detach an item from the tree (children are re-spliced).
  void remove(int item, Rng& rng);

  /// Exchange the tree positions of two contained items.
  void swap_items(int a, int b);

  /// Pack the tree; `footprint(item)` supplies each item's rectangle.
  template <typename FootprintFn>
  PackResult pack(FootprintFn&& footprint) const;

  /// Structural self-check (parent/child symmetry, single root, item map).
  void check_invariants() const;

 private:
  struct Slot {
    int item = -1;
    int parent = -1;
    int left = -1;   // placed at parent.x + parent.w
    int right = -1;  // placed at parent.x
  };

  int slot_of(int item) const;
  void replace_child(int parent, int old_slot, int new_slot);
  void erase_slot(int slot);

  std::vector<Slot> slots_;
  std::vector<int> item_list_;       // dense item list (for random pick)
  std::vector<int> slot_of_item_;    // item id -> slot index (-1 absent)
  int root_ = -1;
  int last_inserted_ = -1;
};

// ---- implementation of the packing template ----

namespace detail {

/// Packing contour: height step-function along x, keyed by step start.
/// Queries and updates are O(log n + touched steps), so packing a whole
/// tree is O(n log n).
class Contour {
 public:
  Contour() { steps_[0] = 0; }

  /// Max height over [x0, x1).
  int max_in(int x0, int x1) const {
    auto it = std::prev(steps_.upper_bound(x0));
    int best = 0;
    for (; it != steps_.end() && it->first < x1; ++it)
      best = std::max(best, it->second);
    return best;
  }

  /// Raise [x0, x1) to height h.
  void set(int x0, int x1, int h) {
    const int tail = std::prev(steps_.upper_bound(x1))->second;
    steps_.erase(steps_.lower_bound(x0), steps_.lower_bound(x1));
    steps_[x0] = h;
    steps_.emplace(x1, tail);  // keep the old height beyond the span
  }

 private:
  std::map<int, int> steps_;
};

}  // namespace detail

template <typename FootprintFn>
PackResult BStarTree::pack(FootprintFn&& footprint) const {
  PackResult result;
  if (root_ < 0) return result;

  detail::Contour contour;
  // Preorder DFS with explicit stack of (slot, x).
  struct Frame {
    int slot;
    int x;
  };
  std::vector<Frame> stack{{root_, 0}};
  result.placed.reserve(slots_.size());
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Slot& s = slots_[static_cast<std::size_t>(f.slot)];
    const Footprint fp = footprint(s.item);
    TQEC_ASSERT(fp.w > 0 && fp.d > 0, "non-positive footprint");
    const int z = contour.max_in(f.x, f.x + fp.w);
    contour.set(f.x, f.x + fp.w, z + fp.d);
    result.placed.push_back({s.item, f.x, z});
    result.width = std::max(result.width, f.x + fp.w);
    result.depth = std::max(result.depth, z + fp.d);
    if (s.right >= 0) stack.push_back({s.right, f.x});
    if (s.left >= 0) stack.push_back({s.left, f.x + fp.w});
  }
  return result;
}

}  // namespace tqec::place
