// B*-tree floorplan representation (Chang et al., DAC'00), the per-layer
// building block of the 2.5D placement of Falkenstern et al. (paper [4])
// used in the module-placement stage (Sec. 3.5).
//
// A B*-tree encodes a compacted (admissible) placement of rectangles on a
// plane: the preorder root sits at the origin, a left child abuts its
// parent's right edge (x = parent.x + parent.w), a right child shares its
// parent's x, and every rectangle drops onto the packing contour. Packing
// is O(n log n) with a contour step-function.
//
// The tree stores *items* (global placement-node ids); the simulated-
// annealing engine owns several trees (one per 2.5D layer) and moves items
// between them. All structural perturbations take an Rng for reproducible
// randomness.
//
// Incremental packing. Besides the stateless `pack()`, the tree keeps an
// epoch-stamped coordinate cache and a preorder dirty watermark so
// `pack_update()` can repack only the suffix a perturbation disturbed:
//
//  - Every mutator records the earliest preorder position it can affect in
//    `dirty_from_`. Positions strictly before the watermark keep their
//    slot, footprint, and coordinates, because a B*-tree packs in preorder
//    and a node's position depends only on the nodes packed before it.
//  - `pack_update()` replays the cached prefix into the contour (contour
//    raises are deterministic given their arguments, so replay reproduces
//    the exact contour state), then resumes the preorder DFS, doing real
//    packing work only for suffix nodes. The repacked suffix is returned
//    as a delta so callers can update downstream state proportionally to
//    the disturbance, not the layer size.
//  - Cached positions of suffix slots may be stale between packs; the
//    watermark update rule `min(dirty_from_, stale_pos)` stays sound
//    because the prefix slot set is invariant between packs: a stale
//    position below the watermark implies the slot really is at that
//    position (and vice versa).
//
// In checked builds every `pack_update()` cross-checks itself against a
// full `pack()` and asserts identical coordinates and extents.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace tqec::place {

/// Rectangle footprint: w along x, d along z.
struct Footprint {
  int w = 1;
  int d = 1;
};

/// Packed position of one item.
struct PackedItem {
  int item = -1;
  int x = 0;
  int z = 0;
};

struct PackResult {
  std::vector<PackedItem> placed;
  int width = 0;  // extent along x
  int depth = 0;  // extent along z
};

class BStarTree {
 public:
  /// Outcome of one `pack_update()`: the items whose coordinates were
  /// recomputed this call (everything on a full pack, the dirty suffix on
  /// an incremental one) plus the current overall extents.
  struct PackDelta {
    std::vector<PackedItem> repacked;
    int width = 0;  // extent along x
    int depth = 0;  // extent along z
  };

  BStarTree() = default;
  // Snapshots copy structure and the coordinate cache but not the packing
  // scratch (contour, DFS stack, last delta) — rollback copies dominate
  // the SA inner loop's memory traffic.
  BStarTree(const BStarTree& other);
  BStarTree& operator=(const BStarTree& other);
  BStarTree(BStarTree&&) = default;
  BStarTree& operator=(BStarTree&&) = default;

  int size() const { return static_cast<int>(slots_.size()); }
  bool empty() const { return slots_.empty(); }
  bool contains(int item) const;
  const std::vector<int>& items() const { return item_list_; }

  /// Insert an item at a uniformly random free child slot.
  void insert(int item, Rng& rng);

  /// Insert as the left child of the last inserted item (builds the
  /// initial left-skewed chain = a row along x).
  void insert_chain(int item);

  /// Detach an item from the tree (children are re-spliced).
  void remove(int item, Rng& rng);

  /// Exchange the tree positions of two contained items.
  void swap_items(int a, int b);

  /// Declare that an item's footprint changed (e.g. rotation) without any
  /// structural edit, so the next `pack_update()` repacks from it onward.
  void mark_item_dirty(int item);

  /// Pack the tree; `footprint(item)` supplies each item's rectangle.
  /// Stateless: ignores and does not touch the incremental cache.
  template <typename FootprintFn>
  PackResult pack(FootprintFn&& footprint) const;

  /// Incrementally repack everything at or after the dirty watermark and
  /// return the delta (valid until the next call). `force_full` repacks
  /// the entire tree (the --place-full-pack escape hatch); the result is
  /// identical either way, only the delta's extent differs.
  template <typename FootprintFn>
  const PackDelta& pack_update(FootprintFn&& footprint,
                               bool force_full = false);

  /// Cached coordinates from the last `pack_update()` (which must have
  /// left the tree clean — no mutations since).
  bool pack_cache_clean() const { return pack_valid_ && dirty_from_ == kClean; }
  int packed_x(int item) const;
  int packed_z(int item) const;
  int packed_width() const;
  int packed_depth() const;

  /// Structural self-check (parent/child symmetry, single root, item map).
  void check_invariants() const;

 private:
  struct Slot {
    int item = -1;
    int parent = -1;
    int left = -1;   // placed at parent.x + parent.w
    int right = -1;  // placed at parent.x
  };

  /// Cached packed rectangle of one slot (epoch-stamped via stamp_).
  struct SlotPack {
    int x = 0;
    int z = 0;
    int w = 0;
    int d = 0;
  };

  static constexpr int kClean = std::numeric_limits<int>::max();

  int slot_of(int item) const;
  void replace_child(int parent, int old_slot, int new_slot);
  void erase_slot(int slot);
  void grow_cache_for_new_slot();
  /// Lower the dirty watermark to `pos` (a preorder position).
  void mark_dirty_at(int pos) {
    if (pos < dirty_from_) dirty_from_ = pos;
  }
  /// Lower the watermark to just below a parent slot (new-child insert).
  void mark_dirty_below(int parent_slot) {
    if (!pack_valid_) return;
    const int p = pos_[static_cast<std::size_t>(parent_slot)];
    if (p < dirty_from_) dirty_from_ = p + 1;
  }
  void mark_dirty_slot(int slot) {
    if (!pack_valid_) return;
    mark_dirty_at(pos_[static_cast<std::size_t>(slot)]);
  }

  std::vector<Slot> slots_;
  std::vector<int> item_list_;       // dense item list (for random pick)
  std::vector<int> slot_of_item_;    // item id -> slot index (-1 absent)
  int root_ = -1;
  int last_inserted_ = -1;

  // ---- incremental packing cache (parallel to slots_) ----
  std::vector<SlotPack> packed_;       // coordinates at last repack
  std::vector<int> pos_;               // preorder position at last pack
  std::vector<std::uint32_t> stamp_;   // pack epoch that wrote packed_
  std::vector<int> order_;             // preorder position -> slot index
  std::uint32_t pack_epoch_ = 0;
  int width_ = 0;
  int depth_ = 0;
  int dirty_from_ = 0;      // first possibly-affected preorder position
  bool pack_valid_ = false; // cache initialized by some pack_update()

  // ---- packing scratch (not part of the logical state; not copied) ----
  struct Frame {
    int slot;
    int x;
  };
  class ContourScratch;  // defined below
  std::vector<std::pair<int, int>> contour_;  // (start x, height) steps
  std::vector<Frame> stack_;
  PackDelta delta_;
};

// ---- implementation of the packing templates ----

namespace detail {

/// Packing contour: height step-function along x as a flat sorted vector
/// of (start, height) steps, each covering [start, next start). A flat
/// array beats a std::map here: packing probes it thousands of times per
/// SA move and the step count stays small, so binary search plus a
/// contiguous splice wins on locality.
class FlatContour {
 public:
  using Step = std::pair<int, int>;

  explicit FlatContour(std::vector<Step>& storage) : steps_(storage) {
    steps_.clear();
    steps_.emplace_back(0, 0);  // ground level over [0, +inf)
  }

  /// Max height over [x0, x1).
  int max_in(int x0, int x1) const {
    std::size_t i = index_at(x0);
    int best = 0;
    for (; i < steps_.size() && steps_[i].first < x1; ++i)
      best = std::max(best, steps_[i].second);
    return best;
  }

  /// Raise [x0, x1) to height h.
  void set(int x0, int x1, int h) {
    TQEC_ASSERT(x0 >= 0 && x1 > x0, "bad contour span");
    const std::size_t lb0 = lower_bound(x0);
    const std::size_t lb1 = lower_bound(x1);
    const bool has_x1 = lb1 < steps_.size() && steps_[lb1].first == x1;
    // Height that must survive just beyond the span.
    const int tail = has_x1 ? steps_[lb1].second : steps_[lb1 - 1].second;
    const Step repl[2] = {{x0, h}, {x1, tail}};
    const std::size_t count = has_x1 ? 1 : 2;
    const std::size_t removed = lb1 - lb0;
    if (removed >= count) {
      for (std::size_t i = 0; i < count; ++i) steps_[lb0 + i] = repl[i];
      steps_.erase(steps_.begin() + static_cast<std::ptrdiff_t>(lb0 + count),
                   steps_.begin() + static_cast<std::ptrdiff_t>(lb1));
    } else {
      for (std::size_t i = 0; i < removed; ++i) steps_[lb0 + i] = repl[i];
      steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(lb1),
                    repl + removed, repl + count);
    }
  }

 private:
  /// Index of the step active at x (last step with start <= x).
  std::size_t index_at(int x) const {
    std::size_t i = lower_bound(x);
    if (i == steps_.size() || steps_[i].first > x) --i;
    return i;
  }
  /// First index with start >= x.
  std::size_t lower_bound(int x) const {
    return static_cast<std::size_t>(
        std::lower_bound(steps_.begin(), steps_.end(), x,
                         [](const Step& s, int v) { return s.first < v; }) -
        steps_.begin());
  }

  std::vector<Step>& steps_;
};

}  // namespace detail

template <typename FootprintFn>
PackResult BStarTree::pack(FootprintFn&& footprint) const {
  PackResult result;
  if (root_ < 0) return result;

  std::vector<detail::FlatContour::Step> storage;
  detail::FlatContour contour(storage);
  // Preorder DFS with explicit stack of (slot, x).
  std::vector<Frame> stack{{root_, 0}};
  result.placed.reserve(slots_.size());
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Slot& s = slots_[static_cast<std::size_t>(f.slot)];
    const Footprint fp = footprint(s.item);
    TQEC_ASSERT(fp.w > 0 && fp.d > 0, "non-positive footprint");
    const int z = contour.max_in(f.x, f.x + fp.w);
    contour.set(f.x, f.x + fp.w, z + fp.d);
    result.placed.push_back({s.item, f.x, z});
    result.width = std::max(result.width, f.x + fp.w);
    result.depth = std::max(result.depth, z + fp.d);
    if (s.right >= 0) stack.push_back({s.right, f.x});
    if (s.left >= 0) stack.push_back({s.left, f.x + fp.w});
  }
  return result;
}

template <typename FootprintFn>
const BStarTree::PackDelta& BStarTree::pack_update(FootprintFn&& footprint,
                                                   bool force_full) {
  delta_.repacked.clear();
  const int n = size();
  if (root_ < 0) {
    order_.clear();
    width_ = depth_ = 0;
    delta_.width = delta_.depth = 0;
    dirty_from_ = kClean;
    pack_valid_ = true;
    return delta_;
  }
  int from = (!pack_valid_ || force_full) ? 0 : dirty_from_;
  if (from == kClean) {
    // Nothing changed since the last pack; extents stay cached.
    delta_.width = width_;
    delta_.depth = depth_;
    return delta_;
  }
  // Preorder positions [0, keep) kept their slots, footprints, and
  // coordinates; replay their contour raises verbatim (a raise is a pure
  // function of its arguments and prior state, so the replayed contour is
  // bit-identical to the original one at position `keep`).
  const int keep = std::min(from, n);
  detail::FlatContour contour(contour_);
  int width = 0;
  int depth = 0;
  for (int i = 0; i < keep; ++i) {
    const SlotPack& c = packed_[static_cast<std::size_t>(
        order_[static_cast<std::size_t>(i)])];
    contour.set(c.x, c.x + c.w, c.z + c.d);
    width = std::max(width, c.x + c.w);
    depth = std::max(depth, c.z + c.d);
  }
  // Resume the preorder DFS; prefix nodes only refresh bookkeeping and
  // feed their cached geometry to their children.
  ++pack_epoch_;
  order_.resize(static_cast<std::size_t>(n));
  stack_.clear();
  stack_.push_back({root_, 0});
  int position = 0;
  while (!stack_.empty()) {
    const Frame f = stack_.back();
    stack_.pop_back();
    const std::size_t sp = static_cast<std::size_t>(f.slot);
    const Slot& s = slots_[sp];
    if (pos_[sp] < keep) {
      const SlotPack c = packed_[sp];
      // TQEC_ASSERT is always-on in this repo; these cache-sanity checks
      // call footprint() for clean-prefix nodes — the very work the
      // incremental path exists to skip — so they are debug-only.
#ifndef NDEBUG
      TQEC_ASSERT(pos_[sp] == position && c.x == f.x,
                  "clean-prefix cache out of sync");
      TQEC_ASSERT(footprint(s.item).w == c.w && footprint(s.item).d == c.d,
                  "footprint changed without mark_item_dirty");
#endif
      order_[static_cast<std::size_t>(position)] = f.slot;
      ++position;
      if (s.right >= 0) stack_.push_back({s.right, c.x});
      if (s.left >= 0) stack_.push_back({s.left, c.x + c.w});
      continue;
    }
    const Footprint fp = footprint(s.item);
    TQEC_ASSERT(fp.w > 0 && fp.d > 0, "non-positive footprint");
    const int z = contour.max_in(f.x, f.x + fp.w);
    contour.set(f.x, f.x + fp.w, z + fp.d);
    packed_[sp] = {f.x, z, fp.w, fp.d};
    stamp_[sp] = pack_epoch_;
    delta_.repacked.push_back({s.item, f.x, z});
    width = std::max(width, f.x + fp.w);
    depth = std::max(depth, z + fp.d);
    pos_[sp] = position;
    order_[static_cast<std::size_t>(position)] = f.slot;
    ++position;
    if (s.right >= 0) stack_.push_back({s.right, f.x});
    if (s.left >= 0) stack_.push_back({s.left, f.x + fp.w});
  }
  TQEC_ASSERT(position == n, "preorder walk missed slots");
  width_ = width;
  depth_ = depth;
  delta_.width = width;
  delta_.depth = depth;
  dirty_from_ = kClean;
  pack_valid_ = true;
#ifndef NDEBUG
  {
    // Cross-check the incremental result against a stateless full pack.
    const PackResult full = pack(footprint);
    TQEC_ASSERT(full.width == width_ && full.depth == depth_,
                "incremental pack extents diverge from full pack");
    for (const PackedItem& p : full.placed) {
      const SlotPack& c =
          packed_[static_cast<std::size_t>(slot_of(p.item))];
      TQEC_ASSERT(c.x == p.x && c.z == p.z,
                  "incremental pack coordinates diverge from full pack");
    }
  }
#endif
  return delta_;
}

}  // namespace tqec::place
