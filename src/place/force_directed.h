// Force-directed module placement, after Paetznick & Fowler
// (arXiv:1304.2807), the pre-SA compaction baseline the paper's related
// work describes: "smoothly pushes or pulls defect segments by the greedy
// method without destroying the braiding relationship".
//
// Adapted to the module-placement formulation: nodes carry continuous
// in-layer positions; every relaxation sweep pulls each node toward the
// centroid of its incident dual nets (attraction) and pushes overlapping
// footprints apart (repulsion); a best-fit occupancy-grid legalizer then
// snaps the relaxed positions to a legal packing. The SA B*-tree engine
// (placer.h) is the paper's choice precisely because force-directed
// relaxation gets stuck in local minima — bench/placer_comparison
// quantifies that gap.
#pragma once

#include <cstdint>

#include "place/nodes.h"
#include "place/placer.h"

namespace tqec::place {

struct ForceDirectedOptions {
  std::uint64_t seed = 1;
  /// Relaxation sweeps before legalization.
  int iterations = 120;
  /// Fraction of the node-to-centroid distance applied per sweep.
  double attraction = 0.25;
  /// Overlap push strength (cells per sweep per overlapping pair).
  double repulsion = 1.0;
  /// 2.5D layers; 0 = automatic (same rule as the SA placer).
  int layers = 0;
  /// Free routing plane above every layer (same meaning as PlaceOptions).
  int layer_y_gap = 0;
};

/// Place a node set with force-directed relaxation + legalization.
/// Deterministic for a fixed seed; the result satisfies the same
/// invariants as place_modules (distinct module cells, boxes inside node
/// footprints, measurement order by construction of the super-modules).
Placement place_force_directed(const NodeSet& nodes,
                               const ForceDirectedOptions& options);

}  // namespace tqec::place
