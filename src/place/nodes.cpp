#include "place/nodes.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/union_find.h"

namespace tqec::place {

using pdgraph::ModuleId;
using pdgraph::NetId;
using pdgraph::PdGraph;

namespace {

/// Routing halo: every node's footprint is grown by one cell in +x and +z.
/// Disjoint primal structures then always face a free channel on at least
/// one side, which keeps every module pin reachable by the dual-net router
/// no matter how tightly the B*-tree packs (the bounding-box volume only
/// pays for halo cells that routes actually use).
constexpr int kHalo = 2;

/// Append the time-dependent super-modules: one per connected component of
/// the measurement-order constraint graph, modules along x in level order.
void add_time_dependent_nodes(const PdGraph& graph, NodeSet& set) {
  const auto n = static_cast<std::size_t>(graph.module_count());
  UnionFind uf(n);
  for (const auto& [before, after] : graph.meas_order())
    uf.unite(static_cast<std::size_t>(before), static_cast<std::size_t>(after));

  std::unordered_map<std::size_t, std::vector<ModuleId>> components;
  for (const pdgraph::PrimalModule& m : graph.modules())
    if (m.meas_constrained)
      components[uf.find(static_cast<std::size_t>(m.id))].push_back(m.id);

  // Deterministic order: by smallest member id.
  std::vector<std::vector<ModuleId>> ordered;
  ordered.reserve(components.size());
  for (auto& [rep, members] : components) ordered.push_back(std::move(members));
  std::sort(ordered.begin(), ordered.end());

  for (auto& members : ordered) {
    std::sort(members.begin(), members.end(), [&](ModuleId a, ModuleId b) {
      const auto& ma = graph.module(a);
      const auto& mb = graph.module(b);
      return std::tuple(ma.meas_level, a) < std::tuple(mb.meas_level, b);
    });
    PlacementNode node;
    node.id = static_cast<int>(set.nodes.size());
    node.kind = NodeKind::TimeDependent;
    node.dims = {static_cast<int>(members.size()) + kHalo, 1, 1 + kHalo};
    for (std::size_t i = 0; i < members.size(); ++i) {
      node.modules.push_back(members[i]);
      node.module_offsets.push_back({static_cast<int>(i), 0, 0});
      set.node_of_module[static_cast<std::size_t>(members[i])] = node.id;
      set.module_offset[static_cast<std::size_t>(members[i])] = {
          static_cast<int>(i), 0, 0};
      // Interior modules of the x-ordered row are walled in x, so their
      // only in-layer escape is the +z halo cell; declaring it the port
      // gives it per-threading-net capacity (route/router.h).
      set.access_offsets[static_cast<std::size_t>(members[i])] = {{0, 0, 1}};
    }
    set.nodes.push_back(std::move(node));
  }
}

/// Append the distillation-injection super-modules: one column per ancilla
/// kind, boxes stacked along z with the injection module beside each box.
void add_distillation_nodes(const PdGraph& graph, NodeSet& set) {
  for (const geom::BoxKind kind : {geom::BoxKind::ABox, geom::BoxKind::YBox}) {
    const icm::InitBasis want = kind == geom::BoxKind::ABox
                                    ? icm::InitBasis::AState
                                    : icm::InitBasis::YState;
    std::vector<ModuleId> injections;
    for (const pdgraph::PrimalModule& m : graph.modules()) {
      if (m.origin != pdgraph::ModuleOrigin::Injection) continue;
      // The injection module heads its row; the row's initial module (its
      // immediate successor) carries the basis annotation.
      const auto& row = graph.rows()[static_cast<std::size_t>(m.row)];
      const auto it = std::find(row.begin(), row.end(), m.id);
      TQEC_ASSERT(it != row.end() && it + 1 != row.end(),
                  "injection module without row-initial successor");
      if (graph.module(*(it + 1)).init_basis == want)
        injections.push_back(m.id);
    }
    if (injections.empty()) continue;

    // Split the boxes into several column nodes of ~sqrt(n) boxes each so
    // no single node dominates one placement dimension and the SA can
    // scatter the columns near their consumers.
    const Vec3 box_dims = geom::box_dims(kind);
    const int per_column = std::max(
        1, static_cast<int>(std::lround(std::ceil(
               std::sqrt(static_cast<double>(injections.size()))))));
    for (std::size_t start = 0; start < injections.size();
         start += static_cast<std::size_t>(per_column)) {
      const std::size_t count =
          std::min(static_cast<std::size_t>(per_column),
                   injections.size() - start);
      PlacementNode node;
      node.id = static_cast<int>(set.nodes.size());
      node.kind = NodeKind::Distillation;
      node.dims = {box_dims.x + 1 + kHalo, box_dims.y,
                   box_dims.z * static_cast<int>(count) + kHalo};
      for (std::size_t i = 0; i < count; ++i) {
        const int z = box_dims.z * static_cast<int>(i);
        const ModuleId m = injections[start + i];
        node.boxes.push_back({kind, {0, 0, z}, graph.module(m).row});
        node.modules.push_back(m);
        const Vec3 offset{box_dims.x, 0, z};
        node.module_offsets.push_back(offset);
        set.node_of_module[static_cast<std::size_t>(m)] = node.id;
        set.module_offset[static_cast<std::size_t>(m)] = offset;
      }
      set.nodes.push_back(std::move(node));
    }
  }
}

/// Compute the routed-net pin lists over merged components.
void add_net_pins(const PdGraph& graph, compress::DualBridging& dual,
                  NodeSet& set) {
  std::unordered_map<NetId, std::size_t> component_index;
  for (const pdgraph::DualNet& net : graph.nets()) {
    const NetId rep = dual.component_of(net.id);
    auto [it, inserted] =
        component_index.emplace(rep, set.net_pins.size());
    if (inserted) set.net_pins.emplace_back();
    auto& pins = set.net_pins[it->second];
    for (ModuleId m : net.path())
      if (std::find(pins.begin(), pins.end(), m) == pins.end())
        pins.push_back(m);
  }
}

void init_set(const PdGraph& graph, NodeSet& set) {
  const auto n = static_cast<std::size_t>(graph.module_count());
  set.node_of_module.assign(n, -1);
  set.module_offset.assign(n, Vec3{});
  set.flip_of_module.assign(n, 0);
  set.access_offsets.assign(n, {});
}

}  // namespace

NodeSet build_nodes(const PdGraph& graph, const compress::IshapeResult& ishape,
                    const compress::PrimalBridging& bridging,
                    compress::DualBridging& dual, bool plan_flips) {
  (void)ishape;  // point membership already folded into `bridging`
  NodeSet set;
  init_set(graph, set);

  // Primal-bridging super-modules: one node per chain. Points along z,
  // I-shape partners of a point along x.
  for (std::size_t c = 0; c < bridging.chains.size(); ++c) {
    const compress::Chain& chain = bridging.chains[c];
    PlacementNode node;
    node.id = static_cast<int>(set.nodes.size());
    node.kind = NodeKind::PrimalChain;
    node.chain = static_cast<int>(c);
    int max_width = 1;
    for (std::size_t zi = 0; zi < chain.points.size(); ++zi) {
      const auto& members =
          bridging.point_members[static_cast<std::size_t>(chain.points[zi])];
      max_width = std::max(max_width, static_cast<int>(members.size()));
      for (std::size_t xi = 0; xi < members.size(); ++xi) {
        const ModuleId m = members[xi];
        const Vec3 offset{static_cast<int>(xi), 0, static_cast<int>(zi)};
        node.modules.push_back(m);
        node.module_offsets.push_back(offset);
        set.node_of_module[static_cast<std::size_t>(m)] = node.id;
        set.module_offset[static_cast<std::size_t>(m)] = offset;
        // The flip value is physical (each z-bridge mirrors its module,
        // eq. 5) regardless of whether the planning step consumes it.
        set.flip_of_module[static_cast<std::size_t>(m)] =
            bridging.flip_of_point[static_cast<std::size_t>(
                chain.points[zi])];
        // Dual-segment access sides (f-value planning, Fig. 15). Wide
        // points exit outward per edge module (interior modules are walled
        // in x and carry no constraint). Single-module points physically
        // exit on the side the flipping operation put them (alternating by
        // eq. 5): with planning the route uses that correct port; without
        // planning the converter assumes the nominal +x side, so mirrored
        // modules additionally drag the route around from their physical
        // -x exit — the Fig. 15(b) tangle.
        const bool mirrored =
            bridging.flip_of_point[static_cast<std::size_t>(
                chain.points[zi])] != 0;
        auto& access = set.access_offsets[static_cast<std::size_t>(m)];
        if (members.size() > 1) {
          if (xi == 0)
            access = {{-1, 0, 0}};
          else if (xi + 1 == members.size())
            access = {{1, 0, 0}};
        } else if (plan_flips) {
          access = {mirrored ? Vec3{-1, 0, 0} : Vec3{1, 0, 0}};
        } else {
          if (mirrored)
            access = {{-1, 0, 0}, {1, 0, 0}};  // physical exit + wrap
          else
            access = {{1, 0, 0}};
        }
      }
    }
    node.dims = {max_width + kHalo, 1,
                 static_cast<int>(chain.points.size()) + kHalo};
    set.nodes.push_back(std::move(node));
  }

  add_time_dependent_nodes(graph, set);
  add_distillation_nodes(graph, set);
  add_net_pins(graph, dual, set);

  for (const pdgraph::PrimalModule& m : graph.modules())
    TQEC_ASSERT(set.node_of_module[static_cast<std::size_t>(m.id)] >= 0,
                "module not assigned to any placement node");
  return set;
}

NodeSet build_nodes_dual_only(const PdGraph& graph,
                              compress::DualBridging& dual) {
  NodeSet set;
  init_set(graph, set);

  // Every bridgeable module is its own 1x1x1 node — the [Hsu DAC'21]
  // baseline has no primal-bridging super-modules, which is exactly why its
  // 2.5D B*-tree carries #Modules-many nodes (paper Table 1).
  for (const pdgraph::PrimalModule& m : graph.modules()) {
    if (m.origin == pdgraph::ModuleOrigin::Injection || m.meas_constrained)
      continue;
    PlacementNode node;
    node.id = static_cast<int>(set.nodes.size());
    node.kind = NodeKind::PrimalChain;
    node.dims = {1 + kHalo, 1, 1 + kHalo};
    node.modules.push_back(m.id);
    node.module_offsets.push_back({0, 0, 0});
    set.node_of_module[static_cast<std::size_t>(m.id)] = node.id;
    set.module_offset[static_cast<std::size_t>(m.id)] = {0, 0, 0};
    set.nodes.push_back(std::move(node));
  }

  add_time_dependent_nodes(graph, set);
  add_distillation_nodes(graph, set);
  add_net_pins(graph, dual, set);
  return set;
}

}  // namespace tqec::place
