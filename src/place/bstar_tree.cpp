#include "place/bstar_tree.h"

namespace tqec::place {

BStarTree::BStarTree(const BStarTree& other)
    : slots_(other.slots_),
      item_list_(other.item_list_),
      slot_of_item_(other.slot_of_item_),
      root_(other.root_),
      last_inserted_(other.last_inserted_),
      packed_(other.packed_),
      pos_(other.pos_),
      stamp_(other.stamp_),
      order_(other.order_),
      pack_epoch_(other.pack_epoch_),
      width_(other.width_),
      depth_(other.depth_),
      dirty_from_(other.dirty_from_),
      pack_valid_(other.pack_valid_) {}

BStarTree& BStarTree::operator=(const BStarTree& other) {
  if (this == &other) return *this;
  slots_ = other.slots_;
  item_list_ = other.item_list_;
  slot_of_item_ = other.slot_of_item_;
  root_ = other.root_;
  last_inserted_ = other.last_inserted_;
  packed_ = other.packed_;
  pos_ = other.pos_;
  stamp_ = other.stamp_;
  order_ = other.order_;
  pack_epoch_ = other.pack_epoch_;
  width_ = other.width_;
  depth_ = other.depth_;
  dirty_from_ = other.dirty_from_;
  pack_valid_ = other.pack_valid_;
  return *this;
}

bool BStarTree::contains(int item) const {
  return item >= 0 && item < static_cast<int>(slot_of_item_.size()) &&
         slot_of_item_[static_cast<std::size_t>(item)] >= 0;
}

int BStarTree::slot_of(int item) const {
  TQEC_REQUIRE(contains(item), "item not in this B*-tree");
  return slot_of_item_[static_cast<std::size_t>(item)];
}

void BStarTree::grow_cache_for_new_slot() {
  packed_.push_back({});
  // A fresh slot has no packed position yet; the sentinel keeps it in the
  // dirty suffix no matter where the watermark sits.
  pos_.push_back(kClean);
  stamp_.push_back(0);
}

void BStarTree::insert(int item, Rng& rng) {
  TQEC_REQUIRE(!contains(item), "item already in tree");
  if (item >= static_cast<int>(slot_of_item_.size()))
    slot_of_item_.resize(static_cast<std::size_t>(item) + 1, -1);

  const int slot = static_cast<int>(slots_.size());
  slots_.push_back({item, -1, -1, -1});
  grow_cache_for_new_slot();
  slot_of_item_[static_cast<std::size_t>(item)] = slot;
  item_list_.push_back(item);
  last_inserted_ = item;

  if (root_ < 0) {
    root_ = slot;
    if (pack_valid_) mark_dirty_at(0);
    return;
  }
  // Walk random child pointers until a free slot is found; expected
  // O(log n) on the evolving trees.
  int cur = root_;
  for (;;) {
    Slot& s = slots_[static_cast<std::size_t>(cur)];
    const bool go_left = rng.chance(0.5);
    int& child = go_left ? s.left : s.right;
    if (child < 0) {
      child = slot;
      slots_[static_cast<std::size_t>(slot)].parent = cur;
      // The new leaf lands somewhere inside the parent's subtree; its
      // preorder position is at least parent's + 1, so that is a sound
      // (conservative) watermark.
      mark_dirty_below(cur);
      return;
    }
    cur = child;
  }
}

void BStarTree::insert_chain(int item) {
  TQEC_REQUIRE(!contains(item), "item already in tree");
  if (item >= static_cast<int>(slot_of_item_.size()))
    slot_of_item_.resize(static_cast<std::size_t>(item) + 1, -1);
  const int slot = static_cast<int>(slots_.size());
  slots_.push_back({item, -1, -1, -1});
  grow_cache_for_new_slot();
  slot_of_item_[static_cast<std::size_t>(item)] = slot;
  item_list_.push_back(item);
  if (root_ < 0) {
    root_ = slot;
    if (pack_valid_) mark_dirty_at(0);
  } else {
    const int parent = slot_of(last_inserted_);
    TQEC_ASSERT(slots_[static_cast<std::size_t>(parent)].left < 0,
                "chain insertion point occupied");
    slots_[static_cast<std::size_t>(parent)].left = slot;
    slots_[static_cast<std::size_t>(slot)].parent = parent;
    mark_dirty_below(parent);
  }
  last_inserted_ = item;
}

void BStarTree::replace_child(int parent, int old_slot, int new_slot) {
  if (parent < 0) {
    TQEC_ASSERT(root_ == old_slot, "detached slot is not the root");
    root_ = new_slot;
  } else {
    Slot& p = slots_[static_cast<std::size_t>(parent)];
    if (p.left == old_slot)
      p.left = new_slot;
    else if (p.right == old_slot)
      p.right = new_slot;
    else
      TQEC_ASSERT(false, "parent does not own child slot");
  }
  if (new_slot >= 0) slots_[static_cast<std::size_t>(new_slot)].parent = parent;
}

void BStarTree::erase_slot(int slot) {
  const int last = static_cast<int>(slots_.size()) - 1;
  if (slot != last) {
    // Move the last slot into the vacated index and rewire references.
    Slot moved = slots_[static_cast<std::size_t>(last)];
    slots_[static_cast<std::size_t>(slot)] = moved;
    slot_of_item_[static_cast<std::size_t>(moved.item)] = slot;
    if (moved.parent >= 0) {
      Slot& p = slots_[static_cast<std::size_t>(moved.parent)];
      if (p.left == last) p.left = slot;
      if (p.right == last) p.right = slot;
    } else {
      root_ = slot;
    }
    if (moved.left >= 0) slots_[static_cast<std::size_t>(moved.left)].parent = slot;
    if (moved.right >= 0)
      slots_[static_cast<std::size_t>(moved.right)].parent = slot;
    // Carry the packing cache along with the renamed slot; if it is a
    // clean-prefix slot, the preorder index must keep pointing at it.
    packed_[static_cast<std::size_t>(slot)] =
        packed_[static_cast<std::size_t>(last)];
    stamp_[static_cast<std::size_t>(slot)] =
        stamp_[static_cast<std::size_t>(last)];
    const int moved_pos = pos_[static_cast<std::size_t>(last)];
    pos_[static_cast<std::size_t>(slot)] = moved_pos;
    if (moved_pos >= 0 && moved_pos < static_cast<int>(order_.size()) &&
        order_[static_cast<std::size_t>(moved_pos)] == last)
      order_[static_cast<std::size_t>(moved_pos)] = slot;
  }
  slots_.pop_back();
  packed_.pop_back();
  pos_.pop_back();
  stamp_.pop_back();
}

void BStarTree::remove(int item, Rng& rng) {
  int slot = slot_of(item);
  // Everything at or after the detached slot's preorder position can move;
  // the bubble-down below only swaps items within its subtree (all deeper
  // positions), so this single mark covers the whole operation.
  mark_dirty_slot(slot);
  // Bubble the item down by swapping with a random child until it has at
  // most one child, then splice it out. Swapping items (not slots) keeps
  // all structural pointers intact.
  for (;;) {
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    if (s.left >= 0 && s.right >= 0) {
      const int child = rng.chance(0.5) ? s.left : s.right;
      std::swap(slots_[static_cast<std::size_t>(slot)].item,
                slots_[static_cast<std::size_t>(child)].item);
      slot_of_item_[static_cast<std::size_t>(
          slots_[static_cast<std::size_t>(slot)].item)] = slot;
      slot = child;
      slot_of_item_[static_cast<std::size_t>(item)] = slot;
    } else {
      break;
    }
  }
  const Slot s = slots_[static_cast<std::size_t>(slot)];
  const int child = s.left >= 0 ? s.left : s.right;
  replace_child(s.parent, slot, child);
  slot_of_item_[static_cast<std::size_t>(item)] = -1;
  item_list_.erase(std::find(item_list_.begin(), item_list_.end(), item));
  if (last_inserted_ == item) last_inserted_ = -1;
  erase_slot(slot);
}

void BStarTree::swap_items(int a, int b) {
  const int sa = slot_of(a);
  const int sb = slot_of(b);
  mark_dirty_slot(sa);
  mark_dirty_slot(sb);
  std::swap(slots_[static_cast<std::size_t>(sa)].item,
            slots_[static_cast<std::size_t>(sb)].item);
  slot_of_item_[static_cast<std::size_t>(a)] = sb;
  slot_of_item_[static_cast<std::size_t>(b)] = sa;
}

void BStarTree::mark_item_dirty(int item) { mark_dirty_slot(slot_of(item)); }

int BStarTree::packed_x(int item) const {
  TQEC_ASSERT(pack_cache_clean(), "packed_x on an unpacked tree");
  return packed_[static_cast<std::size_t>(slot_of(item))].x;
}

int BStarTree::packed_z(int item) const {
  TQEC_ASSERT(pack_cache_clean(), "packed_z on an unpacked tree");
  return packed_[static_cast<std::size_t>(slot_of(item))].z;
}

int BStarTree::packed_width() const {
  TQEC_ASSERT(pack_cache_clean(), "packed_width on an unpacked tree");
  return width_;
}

int BStarTree::packed_depth() const {
  TQEC_ASSERT(pack_cache_clean(), "packed_depth on an unpacked tree");
  return depth_;
}

void BStarTree::check_invariants() const {
  TQEC_ASSERT(packed_.size() == slots_.size() && pos_.size() == slots_.size() &&
                  stamp_.size() == slots_.size(),
              "packing cache out of sync with slots");
  if (root_ < 0) {
    TQEC_ASSERT(slots_.empty(), "rootless tree with slots");
    return;
  }
  TQEC_ASSERT(slots_[static_cast<std::size_t>(root_)].parent == -1,
              "root has a parent");
  std::size_t visited = 0;
  std::vector<int> stack{root_};
  while (!stack.empty()) {
    const int slot = stack.back();
    stack.pop_back();
    ++visited;
    const Slot& s = slots_[static_cast<std::size_t>(slot)];
    TQEC_ASSERT(slot_of_item_[static_cast<std::size_t>(s.item)] == slot,
                "item map out of sync");
    for (int child : {s.left, s.right}) {
      if (child < 0) continue;
      TQEC_ASSERT(slots_[static_cast<std::size_t>(child)].parent == slot,
                  "child/parent pointer mismatch");
      stack.push_back(child);
    }
  }
  TQEC_ASSERT(visited == slots_.size(), "unreachable slots in tree");
  TQEC_ASSERT(item_list_.size() == slots_.size(), "item list out of sync");
}

}  // namespace tqec::place
