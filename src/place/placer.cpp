#include "place/placer.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "geom/steiner.h"

namespace tqec::place {

namespace {

/// One annealing chain (replica): the complete mutable SA state plus its
/// own RNG stream and ladder temperature. Chains never touch each other's
/// state while running, so replicas can anneal concurrently; every
/// cross-chain decision (replica exchange, winner selection) happens
/// serially in place_modules under a thread-count-independent order.
class Chain {
 public:
  struct LayerCache {
    int width = 0;
    int depth = 0;
    int height = 0;
  };

  Chain(const NodeSet& nodes, const PlaceOptions& opt,
        const std::vector<std::vector<int>>& nets_of_node)
      : nodes_(nodes),
        opt_(opt),
        nets_of_node_(nets_of_node),
        node_count_(nodes.node_count()) {}

  void init(int layer_count) {
    build_initial(layer_count);
    changed_nodes_.clear();
    cost_ = evaluate(/*full_nets=*/true, &volume_, &wire_);
    initial_volume_ = volume_;
    best_cost_ = cost_;
    best_state_ = snapshot();
  }

  void run_steps(int count) {
    for (int i = 0; i < count; ++i) last_step_applied_ = step();
  }

  /// One full temperature batch: `count` moves, then the batch-boundary
  /// bookkeeping (debug drift cross-check, convergence sample, cooling).
  /// A boundary whose final move failed to materialize (non-rotatable
  /// rotate, lone-node relocate) defers its cooling step and sample to the
  /// next boundary — the original annealer's schedule, kept so fixed-seed
  /// placements (and the committed Table 2/3 volumes) are reproduced
  /// move-for-move at replicas == 1.
  void run_batch(int count) {
    run_steps(count);
    if (!last_step_applied_) return;
    const double batch_temperature = temperature_;
    temperature_ *= opt_.cooling;
    // All wirelength bookkeeping is exact integer arithmetic, so the
    // incremental total cannot drift from a full recompute; checked builds
    // verify that at every temperature step instead of resyncing.
#ifndef NDEBUG
    {
      const std::int64_t tracked = total_wire_;
      full_wire_recompute();
      TQEC_ASSERT(total_wire_ == tracked,
                  "incremental wirelength diverged from full recompute");
    }
#endif
    sa_curve_.push_back(
        {cost_, batch_temperature,
         static_cast<double>(accepted_ - accepted_at_batch_start_) / count});
    accepted_at_batch_start_ = accepted_;
  }

  /// Exchange configurations with another chain (replica exchange): the
  /// layouts and their derived caches migrate, the ladder temperature, RNG
  /// stream, curve, and counters stay with the lane.
  void swap_config(Chain& other) {
    std::swap(layers_, other.layers_);
    std::swap(cache_, other.cache_);
    std::swap(layer_of_node_, other.layer_of_node_);
    std::swap(rotated_, other.rotated_);
    std::swap(plane_x_, other.plane_x_);
    std::swap(plane_z_, other.plane_z_);
    std::swap(layer_base_, other.layer_base_);
    std::swap(wl_of_net_, other.wl_of_net_);
    std::swap(net_stamp_, other.net_stamp_);
    std::swap(stamp_, other.stamp_);
    std::swap(total_wire_, other.total_wire_);
    std::swap(cost_, other.cost_);
    std::swap(volume_, other.volume_);
    std::swap(wire_, other.wire_);
  }

  /// Restore the best layout this lane ever held and emit the geometric
  /// part of the Placement.
  Placement materialize() {
    std::tie(layers_, layer_of_node_, rotated_) = std::move(best_state_);
    for (std::size_t l = 0; l < layers_.size(); ++l)
      refresh_layer_from_tree(static_cast<int>(l));
    std::int64_t final_volume = 0;
    std::int64_t final_wire = 0;
    evaluate(/*full_nets=*/true, &final_volume, &final_wire);

    Placement placement;
    placement.node_origin.assign(nodes_.nodes.size(), Vec3{});
    for (std::size_t n = 0; n < nodes_.nodes.size(); ++n)
      placement.node_origin[n] = {
          plane_x_[n],
          layer_base_[static_cast<std::size_t>(layer_of_node_[n])],
          plane_z_[n]};
    placement.node_rotated.assign(rotated_.begin(), rotated_.end());
    placement.module_cell.assign(nodes_.node_of_module.size(), Vec3{});
    for (std::size_t m = 0; m < nodes_.node_of_module.size(); ++m)
      placement.module_cell[m] =
          module_cell(static_cast<pdgraph::ModuleId>(m));
    for (const PlacementNode& n : nodes_.nodes) {
      for (const NodeBox& box : n.boxes) {
        TQEC_ASSERT(!rotated_[static_cast<std::size_t>(n.id)],
                    "distillation nodes must not rotate");
        placement.boxes.push_back(
            {box.kind, placement.node_origin[static_cast<std::size_t>(n.id)] +
                           box.offset,
             box.line});
      }
    }
    Box3 core;
    for (const Vec3& cell : placement.module_cell) core = core.expanded(cell);
    for (const geom::DistillBox& b : placement.boxes)
      core = core.merged(b.extent());
    placement.core = core;
    placement.volume = core.volume();
    placement.wirelength = static_cast<double>(final_wire);
    placement.layers = static_cast<int>(layers_.size());
    placement.initial_volume = initial_volume_;
    return placement;
  }

  double temperature_ = 1.0;
  Rng rng_{0};
  double cost_ = 0;
  double best_cost_ = 0;
  int accepted_ = 0;
  int rejected_ = 0;
  std::int64_t repacked_nodes_ = 0;
  std::vector<SaSample> sa_curve_;

 private:
  Footprint footprint(int node) const {
    const PlacementNode& n = nodes_.nodes[static_cast<std::size_t>(node)];
    if (rotated_[static_cast<std::size_t>(node)]) return {n.dims.z, n.dims.x};
    return {n.dims.x, n.dims.z};
  }

  bool can_rotate(int node) const {
    return nodes_.nodes[static_cast<std::size_t>(node)].kind ==
           NodeKind::PrimalChain;
  }

  /// Re-pack one layer incrementally and fold the repacked delta into the
  /// plane-coordinate cache, collecting the nodes whose cells moved.
  void repack(int layer) {
    BStarTree& tree = layers_[static_cast<std::size_t>(layer)];
    const BStarTree::PackDelta& delta = tree.pack_update(
        [this](int item) { return footprint(item); }, opt_.full_pack);
    LayerCache& c = cache_[static_cast<std::size_t>(layer)];
    c.width = delta.width;
    c.depth = delta.depth;
    for (const PackedItem& p : delta.repacked) {
      int& px = plane_x_[static_cast<std::size_t>(p.item)];
      int& pz = plane_z_[static_cast<std::size_t>(p.item)];
      if (px != p.x || pz != p.z) {
        px = p.x;
        pz = p.z;
        changed_nodes_.push_back(p.item);
      }
    }
    repacked_nodes_ += static_cast<std::int64_t>(delta.repacked.size());
  }

  /// Layer height depends only on the *set* of items in the layer (node
  /// y-dims are rotation-invariant — rotation transposes x/z), so it is
  /// recomputed only when a move adds or removes an item, not per repack.
  void recompute_height(int layer) {
    const BStarTree& tree = layers_[static_cast<std::size_t>(layer)];
    LayerCache& c = cache_[static_cast<std::size_t>(layer)];
    c.height = 0;
    for (int item : tree.items())
      c.height = std::max(
          c.height, nodes_.nodes[static_cast<std::size_t>(item)].dims.y);
    if (c.height > 0) c.height += opt_.layer_y_gap;
  }

  /// Resync a layer's caches from its tree's (clean) coordinate cache —
  /// used when a rollback or best-state restore replaced the tree object
  /// wholesale rather than through pack_update.
  void refresh_layer_from_tree(int layer) {
    BStarTree& tree = layers_[static_cast<std::size_t>(layer)];
    LayerCache& c = cache_[static_cast<std::size_t>(layer)];
    c.width = tree.empty() ? 0 : tree.packed_width();
    c.depth = tree.empty() ? 0 : tree.packed_depth();
    c.height = 0;
    for (int item : tree.items()) {
      c.height = std::max(
          c.height, nodes_.nodes[static_cast<std::size_t>(item)].dims.y);
      plane_x_[static_cast<std::size_t>(item)] = tree.packed_x(item);
      plane_z_[static_cast<std::size_t>(item)] = tree.packed_z(item);
    }
    if (c.height > 0) c.height += opt_.layer_y_gap;
  }

  /// After a snapshot rollback, restore the plane coordinates of every
  /// node the rejected candidate had moved, from whichever (restored,
  /// clean) tree now owns it.
  void restore_planes_of_changed() {
    for (int node : changed_nodes_) {
      const BStarTree& tree = layers_[static_cast<std::size_t>(
          layer_of_node_[static_cast<std::size_t>(node)])];
      plane_x_[static_cast<std::size_t>(node)] = tree.packed_x(node);
      plane_z_[static_cast<std::size_t>(node)] = tree.packed_z(node);
    }
  }

  Vec3 module_cell(pdgraph::ModuleId m) const {
    const int node = nodes_.node_of_module[static_cast<std::size_t>(m)];
    Vec3 off = nodes_.module_offset[static_cast<std::size_t>(m)];
    if (rotated_[static_cast<std::size_t>(node)]) off = {off.z, off.y, off.x};
    return Vec3{plane_x_[static_cast<std::size_t>(node)],
                layer_base_[static_cast<std::size_t>(
                    layer_of_node_[static_cast<std::size_t>(node)])],
                plane_z_[static_cast<std::size_t>(node)]} +
           off;
  }

  /// All wirelength models are integer-valued (HPWL and rectilinear MST
  /// over integer cells), so the running totals are exact — the basis for
  /// dropping the per-batch resync.
  std::int64_t net_wirelength(std::size_t net) const {
    const auto& pins = nodes_.net_pins[net];
    if (pins.size() < 2) return 0;
    if (opt_.wire_model == WireModel::Mst && pins.size() <= 8) {
      std::vector<Vec3> cells;
      cells.reserve(pins.size());
      for (pdgraph::ModuleId m : pins) cells.push_back(module_cell(m));
      return geom::rectilinear_mst_length(cells);
    }
    Box3 bbox;
    for (pdgraph::ModuleId m : pins) bbox = bbox.expanded(module_cell(m));
    const Vec3 d = bbox.dims();
    return (d.x - 1) + (d.y - 1) + (d.z - 1);
  }

  void full_wire_recompute() {
    total_wire_ = 0;
    for (std::size_t n = 0; n < nodes_.net_pins.size(); ++n) {
      wl_of_net_[n] = net_wirelength(n);
      total_wire_ += wl_of_net_[n];
    }
  }

  /// Refresh layer bases, then the wirelength of the nets incident to the
  /// nodes whose cells changed this move (full recompute when a layer
  /// height change shifted the bases — rare). Returns the new cost.
  double evaluate(bool full_nets, std::int64_t* volume_out,
                  std::int64_t* wire_out) {
    int width = 0;
    int depth = 0;
    int base = 0;
    bool bases_changed = false;
    for (std::size_t l = 0; l < cache_.size(); ++l) {
      width = std::max(width, cache_[l].width);
      depth = std::max(depth, cache_[l].depth);
      if (layer_base_[l] != base) bases_changed = true;
      layer_base_[l] = base;
      base += cache_[l].height;
    }
    const std::int64_t volume =
        std::int64_t{width} * depth * std::max(base, 1);

    if (full_nets || bases_changed) {
      full_wire_recompute();
    } else {
      ++stamp_;
      for (int node : changed_nodes_) {
        for (int net : nets_of_node_[static_cast<std::size_t>(node)]) {
          if (net_stamp_[static_cast<std::size_t>(net)] == stamp_) continue;
          net_stamp_[static_cast<std::size_t>(net)] = stamp_;
          total_wire_ -= wl_of_net_[static_cast<std::size_t>(net)];
          wl_of_net_[static_cast<std::size_t>(net)] =
              net_wirelength(static_cast<std::size_t>(net));
          total_wire_ += wl_of_net_[static_cast<std::size_t>(net)];
        }
      }
    }

    double order_penalty = 0;
    for (const auto& [before, after] : nodes_.cross_order) {
      const int xa = module_cell(before).x;
      const int xb = module_cell(after).x;
      if (xa >= xb) order_penalty += 10.0 * (xa - xb + 1);
    }

    if (volume_out != nullptr) *volume_out = volume;
    if (wire_out != nullptr) *wire_out = total_wire_;
    return opt_.alpha_volume * static_cast<double>(volume) +
           opt_.beta_wire * static_cast<double>(total_wire_) + order_penalty;
  }

  std::tuple<std::vector<BStarTree>, std::vector<int>, std::vector<bool>>
  snapshot() const {
    return std::tuple(layers_, layer_of_node_, rotated_);
  }

  void build_initial(int layer_count) {
    layers_.assign(static_cast<std::size_t>(layer_count), BStarTree{});
    cache_.assign(static_cast<std::size_t>(layer_count), LayerCache{});
    layer_base_.assign(static_cast<std::size_t>(layer_count), 0);
    layer_of_node_.assign(nodes_.nodes.size(), 0);
    rotated_.assign(nodes_.nodes.size(), false);
    plane_x_.assign(nodes_.nodes.size(), 0);
    plane_z_.assign(nodes_.nodes.size(), 0);
    wl_of_net_.assign(nodes_.net_pins.size(), 0);
    net_stamp_.assign(nodes_.net_pins.size(), 0);

    // Big nodes first, round-robin across layers; each layer starts as a
    // row (left-skewed chain), which the SA then reshapes.
    std::vector<int> order(nodes_.nodes.size());
    for (std::size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto area = [&](int n) {
        const Vec3 d = nodes_.nodes[static_cast<std::size_t>(n)].dims;
        return std::int64_t{d.x} * d.z;
      };
      return std::tuple(-area(a), a) < std::tuple(-area(b), b);
    });
    int next_layer = 0;
    for (int node : order) {
      layers_[static_cast<std::size_t>(next_layer)].insert_chain(node);
      layer_of_node_[static_cast<std::size_t>(node)] = next_layer;
      next_layer = (next_layer + 1) % layer_count;
    }
    for (int l = 0; l < layer_count; ++l) {
      repack(l);
      recompute_height(l);
    }
  }

  bool step() {
    enum class Move { Rotate, Swap, Relocate };
    const double roll = rng_.uniform();
    const Move move = roll < 0.3    ? Move::Rotate
                      : roll < 0.65 ? Move::Swap
                                    : Move::Relocate;

    const int a = static_cast<int>(rng_.below(
        static_cast<std::uint64_t>(node_count_)));
    int b = a;
    if (node_count_ > 1) {
      while (b == a)
        b = static_cast<int>(rng_.below(
            static_cast<std::uint64_t>(node_count_)));
    }

    const int la = layer_of_node_[static_cast<std::size_t>(a)];
    const int lb = layer_of_node_[static_cast<std::size_t>(b)];
    int target_layer = la;
    const bool saved_rot = rotated_[static_cast<std::size_t>(a)];
    bool applied = false;
    changed_nodes_.clear();

    switch (move) {
      case Move::Rotate:
        if (!can_rotate(a)) break;
        rotated_[static_cast<std::size_t>(a)] = !saved_rot;
        layers_[static_cast<std::size_t>(la)].mark_item_dirty(a);
        changed_nodes_.push_back(a);
        repack(la);
        applied = true;
        break;
      case Move::Swap:
        if (node_count_ < 2) break;
        if (la == lb) {
          // Same-layer swaps roll back by swapping again — no snapshot.
          layers_[static_cast<std::size_t>(la)].swap_items(a, b);
          changed_nodes_.push_back(a);
          changed_nodes_.push_back(b);
          repack(la);
        } else {
          saved_a_ = layers_[static_cast<std::size_t>(la)];
          saved_b_ = layers_[static_cast<std::size_t>(lb)];
          saved_cache_a_ = cache_[static_cast<std::size_t>(la)];
          saved_cache_b_ = cache_[static_cast<std::size_t>(lb)];
          layers_[static_cast<std::size_t>(la)].remove(a, rng_);
          layers_[static_cast<std::size_t>(lb)].remove(b, rng_);
          layers_[static_cast<std::size_t>(la)].insert(b, rng_);
          layers_[static_cast<std::size_t>(lb)].insert(a, rng_);
          layer_of_node_[static_cast<std::size_t>(a)] = lb;
          layer_of_node_[static_cast<std::size_t>(b)] = la;
          changed_nodes_.push_back(a);
          changed_nodes_.push_back(b);
          repack(la);
          repack(lb);
          recompute_height(la);
          recompute_height(lb);
        }
        applied = true;
        break;
      case Move::Relocate: {
        target_layer = static_cast<int>(rng_.below(layers_.size()));
        if (target_layer == la &&
            layers_[static_cast<std::size_t>(la)].size() == 1)
          break;  // no-op relocation of a lone node
        saved_a_ = layers_[static_cast<std::size_t>(la)];
        saved_cache_a_ = cache_[static_cast<std::size_t>(la)];
        if (target_layer != la) {
          saved_b_ = layers_[static_cast<std::size_t>(target_layer)];
          saved_cache_b_ = cache_[static_cast<std::size_t>(target_layer)];
        }
        layers_[static_cast<std::size_t>(la)].remove(a, rng_);
        layers_[static_cast<std::size_t>(target_layer)].insert(a, rng_);
        layer_of_node_[static_cast<std::size_t>(a)] = target_layer;
        changed_nodes_.push_back(a);
        repack(la);
        if (target_layer != la) {
          repack(target_layer);
          recompute_height(la);
          recompute_height(target_layer);
        }
        applied = true;
        break;
      }
    }
    if (!applied) return false;

    std::int64_t cand_volume = 0;
    std::int64_t cand_wire = 0;
    const double cand_cost = evaluate(false, &cand_volume, &cand_wire);
    const double delta = cand_cost - cost_;
    const bool accept =
        delta <= 0 || rng_.uniform() < std::exp(-delta / temperature_);
    if (accept) {
      cost_ = cand_cost;
      volume_ = cand_volume;
      wire_ = cand_wire;
      ++accepted_;
      if (cost_ < best_cost_) {
        best_cost_ = cost_;
        best_state_ = snapshot();
      }
    } else {
      ++rejected_;
      switch (move) {
        case Move::Rotate:
          // Inverse move instead of a snapshot: rotate back and repack.
          rotated_[static_cast<std::size_t>(a)] = saved_rot;
          layers_[static_cast<std::size_t>(la)].mark_item_dirty(a);
          changed_nodes_.push_back(a);
          repack(la);
          break;
        case Move::Swap:
          if (la == lb) {
            layers_[static_cast<std::size_t>(la)].swap_items(a, b);
            changed_nodes_.push_back(a);
            changed_nodes_.push_back(b);
            repack(la);
          } else {
            layers_[static_cast<std::size_t>(la)] = std::move(saved_a_);
            layers_[static_cast<std::size_t>(lb)] = std::move(saved_b_);
            cache_[static_cast<std::size_t>(la)] = saved_cache_a_;
            cache_[static_cast<std::size_t>(lb)] = saved_cache_b_;
            layer_of_node_[static_cast<std::size_t>(a)] = la;
            layer_of_node_[static_cast<std::size_t>(b)] = lb;
            restore_planes_of_changed();
          }
          break;
        case Move::Relocate:
          layers_[static_cast<std::size_t>(la)] = std::move(saved_a_);
          cache_[static_cast<std::size_t>(la)] = saved_cache_a_;
          if (target_layer != la) {
            layers_[static_cast<std::size_t>(target_layer)] =
                std::move(saved_b_);
            cache_[static_cast<std::size_t>(target_layer)] = saved_cache_b_;
          }
          layer_of_node_[static_cast<std::size_t>(a)] = la;
          restore_planes_of_changed();
          break;
      }
      // Re-evaluate the nets the candidate had touched to restore the
      // wirelength caches (bases roll back here too, if they moved).
      evaluate(false, nullptr, nullptr);
    }
    return true;
  }

  const NodeSet& nodes_;
  const PlaceOptions& opt_;
  const std::vector<std::vector<int>>& nets_of_node_;
  int node_count_ = 0;

  std::vector<BStarTree> layers_;
  std::vector<LayerCache> cache_;
  std::vector<int> layer_of_node_;
  std::vector<bool> rotated_;
  std::vector<int> plane_x_;
  std::vector<int> plane_z_;
  std::vector<int> layer_base_;
  std::vector<std::int64_t> wl_of_net_;
  std::vector<int> net_stamp_;
  int stamp_ = 0;
  std::int64_t total_wire_ = 0;
  std::int64_t volume_ = 0;
  std::int64_t wire_ = 0;
  std::int64_t initial_volume_ = 0;
  int accepted_at_batch_start_ = 0;
  bool last_step_applied_ = true;

  std::tuple<std::vector<BStarTree>, std::vector<int>, std::vector<bool>>
      best_state_;

  // Per-move scratch (lane-local, so replicas need no shared slots).
  std::vector<int> changed_nodes_;
  BStarTree saved_a_;
  BStarTree saved_b_;
  LayerCache saved_cache_a_;
  LayerCache saved_cache_b_;
};

}  // namespace

Placement place_modules(const NodeSet& nodes, const PlaceOptions& options) {
  TQEC_TRACE_SPAN("place.sa");
  const int node_count = nodes.node_count();
  TQEC_REQUIRE(node_count > 0, "nothing to place");

  int layer_count = options.layers;
  if (layer_count <= 0) {
    std::int64_t area = 0;
    for (const PlacementNode& n : nodes.nodes)
      area += std::int64_t{n.dims.x} * n.dims.z;
    layer_count = static_cast<int>(std::llround(std::cbrt(
        static_cast<double>(area))));
    layer_count = std::clamp(layer_count, 1, std::max(1, node_count));
    layer_count = std::min(layer_count, 48);
  }

  // Node -> incident nets (for incremental wirelength updates), shared
  // read-only by every replica.
  std::vector<std::vector<int>> nets_of_node(nodes.nodes.size());
  for (std::size_t net = 0; net < nodes.net_pins.size(); ++net) {
    for (pdgraph::ModuleId m : nodes.net_pins[net]) {
      auto& list = nets_of_node[static_cast<std::size_t>(
          nodes.node_of_module[static_cast<std::size_t>(m)])];
      if (list.empty() || list.back() != static_cast<int>(net))
        list.push_back(static_cast<int>(net));
    }
  }

  // Equal annealing budget per chain regardless of node count: the
  // super-module reduction then shows up as more exploration per node —
  // the paper's argument for why primal bridging makes the SA converge
  // better on large designs (Sec. 4).
  int iterations = options.iterations;
  if (iterations <= 0) iterations = std::clamp(node_count * 400, 2000, 60000);
  iterations = std::max(1, static_cast<int>(iterations * options.effort));
  const int batch =
      options.batch > 0 ? options.batch : std::max(64, node_count / 2);

  const int replica_count = std::max(1, options.replicas);
  const int threads = std::max(1, options.threads);

  // All chains start from the same deterministic initial layout; chain 0
  // keeps the classic RNG stream (replicas == 1 is move-for-move the old
  // single-chain annealer), hotter chains get salted derived streams.
  std::vector<Chain> chains;
  chains.reserve(static_cast<std::size_t>(replica_count));
  chains.emplace_back(nodes, options, nets_of_node);
  chains[0].init(layer_count);
  for (int r = 1; r < replica_count; ++r) chains.push_back(chains[0]);

  const double t0 = std::max(1.0, options.t0_fraction * chains[0].cost_);
  std::uint64_t lane_seed_state = options.seed ^ 0x706c616365726570ull;
  for (int r = 0; r < replica_count; ++r) {
    chains[static_cast<std::size_t>(r)].rng_ =
        r == 0 ? Rng(options.seed) : Rng(splitmix64(lane_seed_state));
    chains[static_cast<std::size_t>(r)].temperature_ =
        t0 * std::pow(options.replica_stagger, r);
  }
  std::uint64_t exchange_seed_state = options.seed ^ 0x74656d70657278ull;
  Rng exchange_rng(splitmix64(exchange_seed_state));
  std::int64_t exchanges_attempted = 0;
  std::int64_t exchanges_accepted = 0;

  // Temperature batches run lock-step across chains; replica-exchange
  // decisions happen serially between batches on alternating adjacent
  // pairs, consuming only the dedicated exchange stream — results are
  // bit-identical for any `threads`.
  const int full_batches = iterations / batch;
  const int tail = iterations % batch;
  for (int b = 0; b < full_batches; ++b) {
    parallel_for(chains.size(), threads,
                 [&](std::size_t r) { chains[r].run_batch(batch); });
    for (int r = b & 1; r + 1 < replica_count; r += 2) {
      Chain& cold = chains[static_cast<std::size_t>(r)];
      Chain& hot = chains[static_cast<std::size_t>(r + 1)];
      ++exchanges_attempted;
      const double arg = (1.0 / cold.temperature_ - 1.0 / hot.temperature_) *
                         (cold.cost_ - hot.cost_);
      if (arg >= 0 || exchange_rng.uniform() < std::exp(arg)) {
        cold.swap_config(hot);
        ++exchanges_accepted;
      }
    }
  }
  if (tail > 0)
    parallel_for(chains.size(), threads,
                 [&](std::size_t r) { chains[r].run_steps(tail); });

  // Winner: lowest best-ever cost, ties to the coldest lane.
  int selected = 0;
  for (int r = 1; r < replica_count; ++r)
    if (chains[static_cast<std::size_t>(r)].best_cost_ <
        chains[static_cast<std::size_t>(selected)].best_cost_)
      selected = r;

  Placement placement = chains[static_cast<std::size_t>(selected)].materialize();
  placement.iterations_run = iterations * replica_count;
  placement.replicas = replica_count;
  placement.selected_replica = selected;
  placement.exchanges_attempted = exchanges_attempted;
  placement.exchanges_accepted = exchanges_accepted;
  placement.sa_curve = chains[static_cast<std::size_t>(selected)].sa_curve_;
  placement.replica_curves.reserve(chains.size());
  for (Chain& chain : chains) {
    placement.moves_accepted += chain.accepted_;
    placement.moves_rejected += chain.rejected_;
    placement.repacked_nodes += chain.repacked_nodes_;
    placement.replica_curves.push_back(std::move(chain.sa_curve_));
  }
  trace::counter_add("place.sa_iterations", placement.iterations_run);
  trace::counter_add("place.sa_accepted", placement.moves_accepted);
  trace::counter_add("place.sa_rejected", placement.moves_rejected);
  trace::counter_add("place.sa_repacked_nodes", placement.repacked_nodes);
  trace::counter_add("place.sa_exchanges_attempted", exchanges_attempted);
  trace::counter_add("place.sa_exchanges_accepted", exchanges_accepted);
  TQEC_LOG_INFO("placement: nodes=" << nodes.node_count()
                                    << " layers=" << placement.layers
                                    << " volume=" << placement.volume
                                    << " wl=" << placement.wirelength
                                    << " accepted=" << placement.moves_accepted
                                    << "/" << placement.iterations_run
                                    << " replicas=" << replica_count);
  return placement;
}

}  // namespace tqec::place
