#include "place/placer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/trace.h"
#include "geom/steiner.h"

namespace tqec::place {

namespace {

class Annealer {
 public:
  Annealer(const NodeSet& nodes, const PlaceOptions& opt)
      : nodes_(nodes), opt_(opt), rng_(opt.seed) {}

  Placement run();

 private:
  struct LayerCache {
    PackResult pack;
    int height = 0;
  };

  Footprint footprint(int node) const {
    const PlacementNode& n = nodes_.nodes[static_cast<std::size_t>(node)];
    if (rotated_[static_cast<std::size_t>(node)]) return {n.dims.z, n.dims.x};
    return {n.dims.x, n.dims.z};
  }

  bool can_rotate(int node) const {
    return nodes_.nodes[static_cast<std::size_t>(node)].kind ==
           NodeKind::PrimalChain;
  }

  /// Re-pack one layer and refresh the in-plane origins of its items.
  void repack(int layer) {
    LayerCache& c = cache_[static_cast<std::size_t>(layer)];
    c.pack = layers_[static_cast<std::size_t>(layer)].pack(
        [&](int item) { return footprint(item); });
    c.height = 0;
    for (int item : layers_[static_cast<std::size_t>(layer)].items())
      c.height = std::max(
          c.height, nodes_.nodes[static_cast<std::size_t>(item)].dims.y);
    if (c.height > 0) c.height += opt_.layer_y_gap;
    for (const PackedItem& p : c.pack.placed) {
      plane_x_[static_cast<std::size_t>(p.item)] = p.x;
      plane_z_[static_cast<std::size_t>(p.item)] = p.z;
    }
  }

  Vec3 module_cell(pdgraph::ModuleId m) const {
    const int node = nodes_.node_of_module[static_cast<std::size_t>(m)];
    Vec3 off = nodes_.module_offset[static_cast<std::size_t>(m)];
    if (rotated_[static_cast<std::size_t>(node)]) off = {off.z, off.y, off.x};
    return Vec3{plane_x_[static_cast<std::size_t>(node)],
                layer_base_[static_cast<std::size_t>(
                    layer_of_node_[static_cast<std::size_t>(node)])],
                plane_z_[static_cast<std::size_t>(node)]} +
           off;
  }

  double net_wirelength(std::size_t net) const {
    const auto& pins = nodes_.net_pins[net];
    if (pins.size() < 2) return 0;
    if (opt_.wire_model == WireModel::Mst && pins.size() <= 8) {
      std::vector<Vec3> cells;
      cells.reserve(pins.size());
      for (pdgraph::ModuleId m : pins) cells.push_back(module_cell(m));
      return static_cast<double>(geom::rectilinear_mst_length(cells));
    }
    Box3 bbox;
    for (pdgraph::ModuleId m : pins) bbox = bbox.expanded(module_cell(m));
    const Vec3 d = bbox.dims();
    return (d.x - 1) + (d.y - 1) + (d.z - 1);
  }

  void full_wire_recompute() {
    total_wire_ = 0;
    for (std::size_t n = 0; n < nodes_.net_pins.size(); ++n) {
      wl_of_net_[n] = net_wirelength(n);
      total_wire_ += wl_of_net_[n];
    }
  }

  /// Refresh layer bases, then the wirelength of nets touched by the dirty
  /// layers (full recompute when a layer height change shifted the bases —
  /// rare). Returns the new cost.
  double evaluate_globals(std::initializer_list<int> dirty_layers,
                          std::int64_t* volume_out = nullptr,
                          double* wire_out = nullptr) {
    int width = 0;
    int depth = 0;
    int base = 0;
    bool bases_changed = false;
    for (std::size_t l = 0; l < cache_.size(); ++l) {
      width = std::max(width, cache_[l].pack.width);
      depth = std::max(depth, cache_[l].pack.depth);
      if (layer_base_[l] != base) bases_changed = true;
      layer_base_[l] = base;
      base += cache_[l].height;
    }
    const std::int64_t volume =
        std::int64_t{width} * depth * std::max(base, 1);

    if (bases_changed || dirty_layers.size() == 0) {
      full_wire_recompute();
    } else {
      ++stamp_;
      for (int layer : dirty_layers) {
        for (int item : layers_[static_cast<std::size_t>(layer)].items()) {
          for (int net : nets_of_node_[static_cast<std::size_t>(item)]) {
            if (net_stamp_[static_cast<std::size_t>(net)] == stamp_) continue;
            net_stamp_[static_cast<std::size_t>(net)] = stamp_;
            total_wire_ -= wl_of_net_[static_cast<std::size_t>(net)];
            wl_of_net_[static_cast<std::size_t>(net)] =
                net_wirelength(static_cast<std::size_t>(net));
            total_wire_ += wl_of_net_[static_cast<std::size_t>(net)];
          }
        }
      }
    }

    double order_penalty = 0;
    for (const auto& [before, after] : nodes_.cross_order) {
      const int xa = module_cell(before).x;
      const int xb = module_cell(after).x;
      if (xa >= xb) order_penalty += 10.0 * (xa - xb + 1);
    }

    if (volume_out != nullptr) *volume_out = volume;
    if (wire_out != nullptr) *wire_out = total_wire_;
    return opt_.alpha_volume * static_cast<double>(volume) +
           opt_.beta_wire * total_wire_ + order_penalty;
  }

  void build_initial(int layer_count);

  const NodeSet& nodes_;
  PlaceOptions opt_;
  Rng rng_;

  std::vector<BStarTree> layers_;
  std::vector<LayerCache> cache_;
  std::vector<int> layer_of_node_;
  std::vector<bool> rotated_;
  std::vector<int> plane_x_;
  std::vector<int> plane_z_;
  std::vector<int> layer_base_;
  std::vector<std::vector<int>> nets_of_node_;
  std::vector<double> wl_of_net_;
  std::vector<int> net_stamp_;
  int stamp_ = 0;
  double total_wire_ = 0;
};

void Annealer::build_initial(int layer_count) {
  layers_.assign(static_cast<std::size_t>(layer_count), BStarTree{});
  cache_.assign(static_cast<std::size_t>(layer_count), LayerCache{});
  layer_base_.assign(static_cast<std::size_t>(layer_count), 0);
  layer_of_node_.assign(nodes_.nodes.size(), 0);
  rotated_.assign(nodes_.nodes.size(), false);
  plane_x_.assign(nodes_.nodes.size(), 0);
  plane_z_.assign(nodes_.nodes.size(), 0);

  // Big nodes first, round-robin across layers; each layer starts as a row
  // (left-skewed chain), which the SA then reshapes.
  std::vector<int> order(nodes_.nodes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto area = [&](int n) {
      const Vec3 d = nodes_.nodes[static_cast<std::size_t>(n)].dims;
      return std::int64_t{d.x} * d.z;
    };
    return std::tuple(-area(a), a) < std::tuple(-area(b), b);
  });
  int next_layer = 0;
  for (int node : order) {
    layers_[static_cast<std::size_t>(next_layer)].insert_chain(node);
    layer_of_node_[static_cast<std::size_t>(node)] = next_layer;
    next_layer = (next_layer + 1) % layer_count;
  }
  for (int l = 0; l < layer_count; ++l) repack(l);

  // Node -> incident nets (for incremental wirelength updates).
  nets_of_node_.assign(nodes_.nodes.size(), {});
  wl_of_net_.assign(nodes_.net_pins.size(), 0.0);
  net_stamp_.assign(nodes_.net_pins.size(), 0);
  for (std::size_t net = 0; net < nodes_.net_pins.size(); ++net) {
    for (pdgraph::ModuleId m : nodes_.net_pins[net]) {
      auto& list = nets_of_node_[static_cast<std::size_t>(
          nodes_.node_of_module[static_cast<std::size_t>(m)])];
      if (list.empty() || list.back() != static_cast<int>(net))
        list.push_back(static_cast<int>(net));
    }
  }
}

Placement Annealer::run() {
  TQEC_TRACE_SPAN("place.sa");
  const int node_count = nodes_.node_count();
  TQEC_REQUIRE(node_count > 0, "nothing to place");

  int layer_count = opt_.layers;
  if (layer_count <= 0) {
    std::int64_t area = 0;
    for (const PlacementNode& n : nodes_.nodes)
      area += std::int64_t{n.dims.x} * n.dims.z;
    layer_count = static_cast<int>(std::llround(std::cbrt(
        static_cast<double>(area))));
    layer_count = std::clamp(layer_count, 1, std::max(1, node_count));
    layer_count = std::min(layer_count, 48);
  }
  build_initial(layer_count);

  std::int64_t volume = 0;
  double wire = 0;
  double cost = evaluate_globals({}, &volume, &wire);
  const std::int64_t initial_volume = volume;

  // Best-seen state (structures are cheap to copy relative to SA time).
  auto snapshot = [&]() {
    return std::tuple(layers_, layer_of_node_, rotated_);
  };
  auto best_state = snapshot();
  double best_cost = cost;

  // Equal annealing budget regardless of node count: the super-module
  // reduction then shows up as more exploration per node — the paper's
  // argument for why primal bridging makes the SA converge better on
  // large designs (Sec. 4).
  int iterations = opt_.iterations;
  if (iterations <= 0) iterations = std::clamp(node_count * 400, 2000, 60000);
  iterations = std::max(1, static_cast<int>(iterations * opt_.effort));
  const int batch =
      opt_.batch > 0 ? opt_.batch : std::max(64, node_count / 2);

  double temperature = std::max(1.0, opt_.t0_fraction * cost);
  int accepted = 0;
  int rejected = 0;
  int accepted_at_batch_start = 0;
  std::vector<SaSample> sa_curve;
  sa_curve.reserve(static_cast<std::size_t>(iterations / batch) + 1);

  for (int iter = 0; iter < iterations; ++iter) {
    enum class Move { Rotate, Swap, Relocate };
    const double roll = rng_.uniform();
    const Move move = roll < 0.3    ? Move::Rotate
                      : roll < 0.65 ? Move::Swap
                                    : Move::Relocate;

    const int a = static_cast<int>(rng_.below(
        static_cast<std::uint64_t>(node_count)));
    int b = a;
    if (node_count > 1) {
      while (b == a)
        b = static_cast<int>(rng_.below(
            static_cast<std::uint64_t>(node_count)));
    }

    const int la = layer_of_node_[static_cast<std::size_t>(a)];
    const int lb = layer_of_node_[static_cast<std::size_t>(b)];
    int target_layer = la;
    BStarTree saved_a;
    BStarTree saved_b;
    bool saved_rot = rotated_[static_cast<std::size_t>(a)];
    bool applied = false;

    switch (move) {
      case Move::Rotate:
        if (!can_rotate(a)) break;
        rotated_[static_cast<std::size_t>(a)] = !saved_rot;
        repack(la);
        applied = true;
        break;
      case Move::Swap:
        if (node_count < 2) break;
        saved_a = layers_[static_cast<std::size_t>(la)];
        saved_b = layers_[static_cast<std::size_t>(lb)];
        if (la == lb) {
          layers_[static_cast<std::size_t>(la)].swap_items(a, b);
          repack(la);
        } else {
          layers_[static_cast<std::size_t>(la)].remove(a, rng_);
          layers_[static_cast<std::size_t>(lb)].remove(b, rng_);
          layers_[static_cast<std::size_t>(la)].insert(b, rng_);
          layers_[static_cast<std::size_t>(lb)].insert(a, rng_);
          layer_of_node_[static_cast<std::size_t>(a)] = lb;
          layer_of_node_[static_cast<std::size_t>(b)] = la;
          repack(la);
          repack(lb);
        }
        applied = true;
        break;
      case Move::Relocate: {
        target_layer = static_cast<int>(rng_.below(layers_.size()));
        if (target_layer == la &&
            layers_[static_cast<std::size_t>(la)].size() == 1)
          break;  // no-op relocation of a lone node
        saved_a = layers_[static_cast<std::size_t>(la)];
        saved_b = layers_[static_cast<std::size_t>(target_layer)];
        layers_[static_cast<std::size_t>(la)].remove(a, rng_);
        layers_[static_cast<std::size_t>(target_layer)].insert(a, rng_);
        layer_of_node_[static_cast<std::size_t>(a)] = target_layer;
        repack(la);
        if (target_layer != la) repack(target_layer);
        applied = true;
        break;
      }
    }
    if (!applied) continue;

    std::int64_t cand_volume = 0;
    double cand_wire = 0;
    const double cand_cost =
        la == target_layer && move != Move::Swap
            ? evaluate_globals({la}, &cand_volume, &cand_wire)
            : evaluate_globals({la, lb, target_layer}, &cand_volume,
                               &cand_wire);
    const double delta = cand_cost - cost;
    const bool accept =
        delta <= 0 || rng_.uniform() < std::exp(-delta / temperature);
    if (accept) {
      cost = cand_cost;
      volume = cand_volume;
      wire = cand_wire;
      ++accepted;
      if (cost < best_cost) {
        best_cost = cost;
        best_state = snapshot();
      }
    } else {
      ++rejected;
      switch (move) {
        case Move::Rotate:
          rotated_[static_cast<std::size_t>(a)] = saved_rot;
          repack(la);
          break;
        case Move::Swap:
          layers_[static_cast<std::size_t>(la)] = std::move(saved_a);
          layers_[static_cast<std::size_t>(lb)] = std::move(saved_b);
          layer_of_node_[static_cast<std::size_t>(a)] = la;
          layer_of_node_[static_cast<std::size_t>(b)] = lb;
          repack(la);
          if (lb != la) repack(lb);
          break;
        case Move::Relocate:
          layers_[static_cast<std::size_t>(la)] = std::move(saved_a);
          layers_[static_cast<std::size_t>(target_layer)] = std::move(saved_b);
          layer_of_node_[static_cast<std::size_t>(a)] = la;
          repack(la);
          if (target_layer != la) repack(target_layer);
          break;
      }
      evaluate_globals({la, lb, target_layer});  // restore caches
    }

    if ((iter + 1) % batch == 0) {
      const double batch_temperature = temperature;
      temperature *= opt_.cooling;
      // The incremental total accumulates floating-point drift across
      // thousands of subtract/re-add updates, so late accept/reject
      // decisions would run on a cost inconsistent with a full recompute.
      // Resync at every temperature step (one full recompute per batch is
      // cheap relative to the batch itself); checked builds verify the
      // tracked total never strayed measurably from the truth.
#ifndef NDEBUG
      const double tracked_wire = total_wire_;
#endif
      cost = evaluate_globals({}, &volume, &wire);
#ifndef NDEBUG
      TQEC_ASSERT(std::abs(tracked_wire - total_wire_) <=
                      1e-6 * std::max(1.0, std::abs(total_wire_)),
                  "incremental wirelength drifted from full recompute");
#endif
      sa_curve.push_back({cost, batch_temperature,
                          static_cast<double>(accepted -
                                              accepted_at_batch_start) /
                              batch});
      accepted_at_batch_start = accepted;
    }
  }

  // Materialize the best state found.
  std::tie(layers_, layer_of_node_, rotated_) = std::move(best_state);
  for (std::size_t l = 0; l < layers_.size(); ++l) repack(static_cast<int>(l));
  double final_wire = 0;
  std::int64_t final_volume = 0;
  evaluate_globals({}, &final_volume, &final_wire);

  Placement placement;
  placement.node_origin.assign(nodes_.nodes.size(), Vec3{});
  for (std::size_t n = 0; n < nodes_.nodes.size(); ++n)
    placement.node_origin[n] = {
        plane_x_[n],
        layer_base_[static_cast<std::size_t>(layer_of_node_[n])],
        plane_z_[n]};
  placement.node_rotated.assign(rotated_.begin(), rotated_.end());
  placement.module_cell.assign(nodes_.node_of_module.size(), Vec3{});
  for (std::size_t m = 0; m < nodes_.node_of_module.size(); ++m)
    placement.module_cell[m] = module_cell(static_cast<pdgraph::ModuleId>(m));
  for (const PlacementNode& n : nodes_.nodes) {
    for (const NodeBox& box : n.boxes) {
      TQEC_ASSERT(!rotated_[static_cast<std::size_t>(n.id)],
                  "distillation nodes must not rotate");
      placement.boxes.push_back(
          {box.kind, placement.node_origin[static_cast<std::size_t>(n.id)] +
                         box.offset,
           box.line});
    }
  }
  Box3 core;
  for (const Vec3& cell : placement.module_cell) core = core.expanded(cell);
  for (const geom::DistillBox& b : placement.boxes)
    core = core.merged(b.extent());
  placement.core = core;
  placement.volume = core.volume();
  placement.wirelength = final_wire;
  placement.layers = static_cast<int>(layers_.size());
  placement.initial_volume = initial_volume;
  placement.iterations_run = iterations;
  placement.moves_accepted = accepted;
  placement.moves_rejected = rejected;
  placement.sa_curve = std::move(sa_curve);
  trace::counter_add("place.sa_iterations", iterations);
  trace::counter_add("place.sa_accepted", accepted);
  trace::counter_add("place.sa_rejected", rejected);
  TQEC_LOG_INFO("placement: nodes=" << nodes_.node_count()
                                    << " layers=" << placement.layers
                                    << " volume=" << placement.volume
                                    << " wl=" << placement.wirelength
                                    << " accepted=" << accepted << "/"
                                    << iterations);
  return placement;
}

}  // namespace

Placement place_modules(const NodeSet& nodes, const PlaceOptions& options) {
  Annealer annealer(nodes, options);
  return annealer.run();
}

}  // namespace tqec::place
