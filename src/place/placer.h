// 2.5D module placement with simulated annealing (paper Sec. 3.5).
//
// The placement nodes (primal-bridging / time-dependent / distillation
// super-modules) are packed into a stack of 2.5D layers, each layer a
// B*-tree floorplan in the (x, z) plane; a layer's height along y is the
// tallest node it holds. The SA engine minimizes
//     cost = alpha * volume + beta * total-wirelength
// where volume is the bounding box (max layer width x max layer depth x
// summed layer heights) and wirelength is the 3D HPWL of the merged dual
// nets over their module pins. Moves: rotate a node footprint, swap two
// nodes, and relocate a node (possibly across layers).
//
// Because primal bridging collapses hundreds of modules into a handful of
// chain nodes, the SA search space shrinks drastically versus the
// dual-only baseline — the effect the paper credits for both the better
// initial solution and the better final volume on large benchmarks.
//
// The inner loop is incremental end to end: every perturbation repacks
// only the dirty suffix of its layer's B*-tree (BStarTree::pack_update)
// and re-evaluates only the nets of nodes whose cells actually moved. All
// wirelength bookkeeping is exact integer arithmetic, so the tracked cost
// never drifts from a full recompute (checked builds assert this at every
// temperature-batch boundary).
//
// Optional parallel tempering: `replicas` > 1 anneals R temperature-
// staggered chains and swaps their configurations at temperature-batch
// boundaries (replica exchange). Chains run concurrently on up to
// `threads` workers, but every cross-chain decision is made serially from
// a dedicated RNG stream, so results are bit-identical for any thread
// count — the same determinism contract as `--route-threads`. With
// `replicas` == 1 the engine is move-for-move identical to the classic
// single-chain annealer.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/geometry.h"
#include "place/bstar_tree.h"
#include "place/nodes.h"

namespace tqec::place {

/// Net-wirelength model used inside the SA cost (see geom/steiner.h).
enum class WireModel : std::uint8_t {
  Hpwl,  // bounding-box half-perimeter (fastest, default)
  Mst,   // rectilinear MST for nets up to 8 pins, HPWL beyond
};

struct PlaceOptions {
  std::uint64_t seed = 1;
  /// Number of 2.5D layers; 0 = automatic (cube-balanced).
  int layers = 0;
  double alpha_volume = 1.0;
  double beta_wire = 0.5;
  WireModel wire_model = WireModel::Hpwl;
  /// SA iteration budget per replica; 0 = automatic from the node count.
  /// The budget scales multiplicatively with `effort`.
  int iterations = 0;
  double effort = 1.0;
  /// Initial acceptance temperature as a fraction of the initial cost.
  double t0_fraction = 0.05;
  double cooling = 0.97;
  /// Iterations per temperature step; 0 = automatic.
  int batch = 0;
  /// Free routing plane inserted above every layer (congestion-driven
  /// whitespace; the compiler escalates to 1 when routing cannot legalize).
  int layer_y_gap = 0;
  /// Parallel-tempering chain count. 1 (default) reproduces the classic
  /// single-chain annealer exactly; R > 1 adds R-1 hotter chains and
  /// replica exchange. The *result* depends only on this, never on
  /// `threads`.
  int replicas = 1;
  /// Temperature ratio between adjacent chains of the tempering ladder.
  double replica_stagger = 1.6;
  /// Worker threads for running replicas concurrently; 0 = let the caller
  /// decide (the compiler splits --jobs across attempts; plain
  /// place_modules treats 0 as 1). Bit-identical results for any value.
  int threads = 0;
  /// Escape hatch: repack whole layers on every move instead of the dirty
  /// suffix (A/B reference; results are bit-identical either way).
  bool full_pack = false;
};

/// One SA convergence sample, taken at every temperature-batch boundary
/// (after the batch's debug cost cross-check, before cooling).
struct SaSample {
  double cost = 0;
  double temperature = 0;
  /// Accepted fraction of the batch's iterations (move-less iterations
  /// count toward the denominator, mirroring iterations_run).
  double accept_rate = 0;
};

struct Placement {
  /// Absolute origin cell of each node (y = its layer's base).
  std::vector<Vec3> node_origin;
  /// Whether each node's footprint was rotated (x/z transposed).
  std::vector<bool> node_rotated;
  /// Absolute cell of each module (node origin + intra-node offset).
  std::vector<Vec3> module_cell;
  /// Absolute distillation boxes.
  std::vector<geom::DistillBox> boxes;
  /// Core bounding box of the placement (modules + boxes).
  Box3 core;
  std::int64_t volume = 0;
  double wirelength = 0;
  int layers = 0;
  /// SA statistics, summed over all replicas. Accepted + rejected can fall
  /// short of iterations_run: some iterations propose no applicable move
  /// (e.g. rotating a non-rotatable node) and count as neither.
  std::int64_t initial_volume = 0;
  int iterations_run = 0;
  int moves_accepted = 0;
  int moves_rejected = 0;
  /// Nodes repacked by pack_update across all moves and replicas
  /// (numerator of the repacked-nodes-per-move diagnostic).
  std::int64_t repacked_nodes = 0;
  /// Parallel-tempering schedule statistics (zero when replicas == 1).
  int replicas = 1;
  int selected_replica = 0;
  std::int64_t exchanges_attempted = 0;
  std::int64_t exchanges_accepted = 0;
  /// SA convergence curve of the selected replica, one sample per
  /// temperature batch (always collected — a push_back per batch is free
  /// next to the batch itself).
  std::vector<SaSample> sa_curve;
  /// Convergence curves of every replica, indexed by ladder position
  /// (replica_curves[selected_replica] == sa_curve).
  std::vector<std::vector<SaSample>> replica_curves;
};

/// Place a node set. Deterministic for a fixed seed and replica count,
/// independent of `threads`.
Placement place_modules(const NodeSet& nodes, const PlaceOptions& options);

}  // namespace tqec::place
