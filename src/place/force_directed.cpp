#include "place/force_directed.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace tqec::place {

namespace {

struct NodeState {
  double x = 0;
  double z = 0;
  int layer = 0;
};

/// Occupancy-grid legalizer for one layer: best-fit spiral search from the
/// rounded relaxed position.
class LayerLegalizer {
 public:
  LayerLegalizer(int width, int depth)
      : width_(width), depth_(depth),
        occupied_(static_cast<std::size_t>(width) * depth, 0) {}

  /// Find the free origin nearest (x0, z0) for a w x d footprint and claim
  /// it. Returns {x, z}; expands the search ring until success (the grid is
  /// sized to fit all nodes, so success is guaranteed).
  std::pair<int, int> claim(int x0, int z0, int w, int d) {
    x0 = std::clamp(x0, 0, std::max(0, width_ - w));
    z0 = std::clamp(z0, 0, std::max(0, depth_ - d));
    for (int radius = 0; radius < width_ + depth_; ++radius) {
      for (int dx = -radius; dx <= radius; ++dx) {
        for (int dz : {-radius + std::abs(dx), radius - std::abs(dx)}) {
          const int x = x0 + dx;
          const int z = z0 + dz;
          if (x < 0 || z < 0 || x + w > width_ || z + d > depth_) continue;
          if (fits(x, z, w, d)) {
            mark(x, z, w, d);
            return {x, z};
          }
          if (radius == 0) break;  // dz candidates coincide
        }
      }
    }
    throw TqecError("force-directed legalizer ran out of room");
  }

 private:
  bool fits(int x, int z, int w, int d) const {
    for (int i = 0; i < w; ++i)
      for (int j = 0; j < d; ++j)
        if (occupied_[index(x + i, z + j)]) return false;
    return true;
  }
  void mark(int x, int z, int w, int d) {
    for (int i = 0; i < w; ++i)
      for (int j = 0; j < d; ++j) occupied_[index(x + i, z + j)] = 1;
  }
  std::size_t index(int x, int z) const {
    return static_cast<std::size_t>(z) * width_ + x;
  }

  int width_;
  int depth_;
  std::vector<std::uint8_t> occupied_;
};

}  // namespace

Placement place_force_directed(const NodeSet& nodes,
                               const ForceDirectedOptions& opt) {
  const int node_count = nodes.node_count();
  TQEC_REQUIRE(node_count > 0, "nothing to place");
  Rng rng(opt.seed);

  int layer_count = opt.layers;
  std::int64_t total_area = 0;
  for (const PlacementNode& n : nodes.nodes)
    total_area += std::int64_t{n.dims.x} * n.dims.z;
  if (layer_count <= 0) {
    layer_count = static_cast<int>(std::llround(std::cbrt(
        static_cast<double>(total_area))));
    layer_count = std::clamp(layer_count, 1, std::max(1, node_count));
    layer_count = std::min(layer_count, 48);
  }

  // Initial state: round-robin layers (big nodes first), jittered grid
  // positions inside a square of the layer's expected side.
  const double side = std::ceil(std::sqrt(
      static_cast<double>(total_area) / layer_count)) * 1.6 + 4.0;
  std::vector<int> order(static_cast<std::size_t>(node_count));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto area = [&](int n) {
      const Vec3 d = nodes.nodes[static_cast<std::size_t>(n)].dims;
      return std::int64_t{d.x} * d.z;
    };
    return std::tuple(-area(a), a) < std::tuple(-area(b), b);
  });
  std::vector<NodeState> state(static_cast<std::size_t>(node_count));
  {
    int next_layer = 0;
    for (int node : order) {
      auto& s = state[static_cast<std::size_t>(node)];
      s.layer = next_layer;
      s.x = rng.uniform() * side;
      s.z = rng.uniform() * side;
      next_layer = (next_layer + 1) % layer_count;
    }
  }

  // Net incidence on nodes (weight = number of pins the node hosts).
  std::vector<std::vector<std::pair<int, int>>> nets_of_node(
      static_cast<std::size_t>(node_count));  // (net, weight)
  for (std::size_t net = 0; net < nodes.net_pins.size(); ++net) {
    for (pdgraph::ModuleId m : nodes.net_pins[net]) {
      auto& list = nets_of_node[static_cast<std::size_t>(
          nodes.node_of_module[static_cast<std::size_t>(m)])];
      if (!list.empty() && list.back().first == static_cast<int>(net))
        ++list.back().second;
      else
        list.emplace_back(static_cast<int>(net), 1);
    }
  }

  // Relaxation sweeps: attraction toward net centroids + pairwise overlap
  // repulsion within each layer.
  std::vector<double> net_cx(nodes.net_pins.size());
  std::vector<double> net_cz(nodes.net_pins.size());
  std::vector<double> net_weight(nodes.net_pins.size());
  for (int sweep = 0; sweep < opt.iterations; ++sweep) {
    // Net centroids from current node centers.
    std::fill(net_cx.begin(), net_cx.end(), 0.0);
    std::fill(net_cz.begin(), net_cz.end(), 0.0);
    std::fill(net_weight.begin(), net_weight.end(), 0.0);
    for (int node = 0; node < node_count; ++node) {
      const auto& s = state[static_cast<std::size_t>(node)];
      for (const auto& [net, weight] :
           nets_of_node[static_cast<std::size_t>(node)]) {
        net_cx[static_cast<std::size_t>(net)] += weight * s.x;
        net_cz[static_cast<std::size_t>(net)] += weight * s.z;
        net_weight[static_cast<std::size_t>(net)] += weight;
      }
    }
    // Attraction.
    for (int node = 0; node < node_count; ++node) {
      auto& s = state[static_cast<std::size_t>(node)];
      double fx = 0;
      double fz = 0;
      double total = 0;
      for (const auto& [net, weight] :
           nets_of_node[static_cast<std::size_t>(node)]) {
        const double nw = net_weight[static_cast<std::size_t>(net)];
        if (nw <= 0) continue;
        fx += weight * (net_cx[static_cast<std::size_t>(net)] / nw - s.x);
        fz += weight * (net_cz[static_cast<std::size_t>(net)] / nw - s.z);
        total += weight;
      }
      if (total > 0) {
        s.x += opt.attraction * fx / total;
        s.z += opt.attraction * fz / total;
      }
    }
    // Repulsion: push overlapping footprints apart (O(n^2) per layer pair
    // scan; node counts here are the post-bridging supermodule counts).
    for (int a = 0; a < node_count; ++a) {
      for (int b = a + 1; b < node_count; ++b) {
        auto& sa = state[static_cast<std::size_t>(a)];
        auto& sb = state[static_cast<std::size_t>(b)];
        if (sa.layer != sb.layer) continue;
        const Vec3 da = nodes.nodes[static_cast<std::size_t>(a)].dims;
        const Vec3 db = nodes.nodes[static_cast<std::size_t>(b)].dims;
        const double ox = std::min(sa.x + da.x, sb.x + db.x) -
                          std::max(sa.x, sb.x);
        const double oz = std::min(sa.z + da.z, sb.z + db.z) -
                          std::max(sa.z, sb.z);
        if (ox <= 0 || oz <= 0) continue;
        // Push along the axis with the smaller overlap.
        const double push = opt.repulsion * 0.5;
        if (ox < oz) {
          const double dir = sa.x < sb.x ? -1.0 : 1.0;
          sa.x += dir * push;
          sb.x -= dir * push;
        } else {
          const double dir = sa.z < sb.z ? -1.0 : 1.0;
          sa.z += dir * push;
          sb.z -= dir * push;
        }
      }
    }
  }

  // Legalization per layer, biggest nodes first (they are hardest to fit).
  const int grid_side = static_cast<int>(side * 2.5) + 40;
  std::vector<LayerLegalizer> legal(
      static_cast<std::size_t>(layer_count),
      LayerLegalizer(grid_side, grid_side));
  std::vector<int> final_x(static_cast<std::size_t>(node_count));
  std::vector<int> final_z(static_cast<std::size_t>(node_count));
  double min_x = 0;
  double min_z = 0;
  for (const NodeState& s : state) {
    min_x = std::min(min_x, s.x);
    min_z = std::min(min_z, s.z);
  }
  for (int node : order) {
    const auto& s = state[static_cast<std::size_t>(node)];
    const Vec3 d = nodes.nodes[static_cast<std::size_t>(node)].dims;
    const auto [x, z] = legal[static_cast<std::size_t>(s.layer)].claim(
        static_cast<int>(std::lround(s.x - min_x)),
        static_cast<int>(std::lround(s.z - min_z)), d.x, d.z);
    final_x[static_cast<std::size_t>(node)] = x;
    final_z[static_cast<std::size_t>(node)] = z;
  }

  // 1-D compaction sweeps (the "pull" half of force-directed compaction):
  // slide every node to the smallest x it can reach without overlapping a
  // z-interval neighbour, then the same along z; repeat once more since
  // the first pass opens new room.
  auto compact_axis = [&](bool along_x) {
    for (int l = 0; l < layer_count; ++l) {
      std::vector<int> members;
      for (int node = 0; node < node_count; ++node)
        if (state[static_cast<std::size_t>(node)].layer == l)
          members.push_back(node);
      std::sort(members.begin(), members.end(), [&](int a, int b) {
        const int pa = along_x ? final_x[static_cast<std::size_t>(a)]
                               : final_z[static_cast<std::size_t>(a)];
        const int pb = along_x ? final_x[static_cast<std::size_t>(b)]
                               : final_z[static_cast<std::size_t>(b)];
        return std::tuple(pa, a) < std::tuple(pb, b);
      });
      for (std::size_t i = 0; i < members.size(); ++i) {
        const int node = members[i];
        const Vec3 d = nodes.nodes[static_cast<std::size_t>(node)].dims;
        const int my_w = along_x ? d.x : d.z;
        const int my_lo_other = along_x
                                    ? final_z[static_cast<std::size_t>(node)]
                                    : final_x[static_cast<std::size_t>(node)];
        const int my_hi_other =
            my_lo_other + (along_x ? d.z : d.x);
        int slide_to = 0;
        for (std::size_t j = 0; j < i; ++j) {
          const int other = members[j];
          const Vec3 od = nodes.nodes[static_cast<std::size_t>(other)].dims;
          const int o_lo_other =
              along_x ? final_z[static_cast<std::size_t>(other)]
                      : final_x[static_cast<std::size_t>(other)];
          const int o_hi_other = o_lo_other + (along_x ? od.z : od.x);
          if (o_hi_other <= my_lo_other || my_hi_other <= o_lo_other)
            continue;  // disjoint in the cross axis
          const int o_pos = along_x ? final_x[static_cast<std::size_t>(other)]
                                    : final_z[static_cast<std::size_t>(other)];
          slide_to = std::max(slide_to, o_pos + (along_x ? od.x : od.z));
        }
        (void)my_w;
        if (along_x)
          final_x[static_cast<std::size_t>(node)] = slide_to;
        else
          final_z[static_cast<std::size_t>(node)] = slide_to;
      }
    }
  };
  for (int pass = 0; pass < 2; ++pass) {
    compact_axis(true);
    compact_axis(false);
  }

  // Layer heights and bases.
  std::vector<int> layer_height(static_cast<std::size_t>(layer_count), 0);
  for (int node = 0; node < node_count; ++node) {
    auto& h = layer_height[static_cast<std::size_t>(
        state[static_cast<std::size_t>(node)].layer)];
    h = std::max(h, nodes.nodes[static_cast<std::size_t>(node)].dims.y);
  }
  std::vector<int> layer_base(static_cast<std::size_t>(layer_count), 0);
  int base = 0;
  for (int l = 0; l < layer_count; ++l) {
    layer_base[static_cast<std::size_t>(l)] = base;
    if (layer_height[static_cast<std::size_t>(l)] > 0)
      base += layer_height[static_cast<std::size_t>(l)] + opt.layer_y_gap;
  }

  // Assemble the Placement (no rotations in this engine).
  Placement placement;
  placement.node_origin.assign(nodes.nodes.size(), Vec3{});
  placement.node_rotated.assign(nodes.nodes.size(), false);
  for (int node = 0; node < node_count; ++node) {
    const auto& s = state[static_cast<std::size_t>(node)];
    placement.node_origin[static_cast<std::size_t>(node)] = {
        final_x[static_cast<std::size_t>(node)],
        layer_base[static_cast<std::size_t>(s.layer)],
        final_z[static_cast<std::size_t>(node)]};
  }
  placement.module_cell.assign(nodes.node_of_module.size(), Vec3{});
  for (std::size_t m = 0; m < nodes.node_of_module.size(); ++m)
    placement.module_cell[m] =
        placement.node_origin[static_cast<std::size_t>(
            nodes.node_of_module[m])] +
        nodes.module_offset[m];
  for (const PlacementNode& n : nodes.nodes)
    for (const NodeBox& box : n.boxes)
      placement.boxes.push_back(
          {box.kind,
           placement.node_origin[static_cast<std::size_t>(n.id)] + box.offset,
           box.line});

  Box3 core;
  for (const Vec3& cell : placement.module_cell) core = core.expanded(cell);
  for (const geom::DistillBox& b : placement.boxes)
    core = core.merged(b.extent());
  placement.core = core;
  placement.volume = core.volume();
  placement.layers = layer_count;
  placement.iterations_run = opt.iterations;
  TQEC_LOG_INFO("force-directed placement: nodes=" << node_count
                                                   << " layers=" << layer_count
                                                   << " volume="
                                                   << placement.volume);
  return placement;
}

}  // namespace tqec::place
