#include "decompose/decompose.h"

#include <algorithm>

#include "common/trace.h"

namespace tqec::decompose {

using qcir::Circuit;
using qcir::Gate;
using qcir::GateKind;

namespace {

/// Emit the V-chain Toffoli ladder computing AND(controls) into `target`
/// using `ancillas` (one per control beyond the second). `forward` emits the
/// compute direction; the uncompute direction is the exact reverse (each
/// Toffoli is self-inverse).
void emit_mct_chain(Circuit& out, const std::vector<int>& controls, int target,
                    const std::vector<int>& ancillas) {
  TQEC_ASSERT(controls.size() >= 3, "MCT chain needs >= 3 controls");
  TQEC_ASSERT(ancillas.size() + 2 >= controls.size(), "not enough ancillas");

  std::vector<Gate> compute;
  compute.push_back(Gate::toffoli(controls[0], controls[1], ancillas[0]));
  for (std::size_t i = 2; i + 1 < controls.size(); ++i)
    compute.push_back(
        Gate::toffoli(controls[i], ancillas[i - 2], ancillas[i - 1]));

  for (const Gate& g : compute) out.add(g);
  out.add(Gate::toffoli(controls.back(),
                        ancillas[controls.size() - 3], target));
  for (auto it = compute.rbegin(); it != compute.rend(); ++it) out.add(*it);
}

}  // namespace

Circuit lower_to_toffoli(const Circuit& circuit) {
  // First sweep: how many ancillas does the widest MCT need?
  std::size_t max_ancillas = 0;
  for (const Gate& g : circuit.gates()) {
    if (g.kind == GateKind::Mct)
      max_ancillas = std::max(max_ancillas, g.controls.size() - 2);
    if (g.kind == GateKind::Fredkin && g.controls.size() >= 2)
      max_ancillas = std::max(max_ancillas, g.controls.size() - 1);
  }

  Circuit out(circuit.num_qubits() + static_cast<int>(max_ancillas),
              circuit.name());
  const int ancilla_base = circuit.num_qubits();
  std::vector<int> ancillas(max_ancillas);
  for (std::size_t i = 0; i < max_ancillas; ++i)
    ancillas[i] = ancilla_base + static_cast<int>(i);

  for (const Gate& g : circuit.gates()) {
    switch (g.kind) {
      case GateKind::Mct:
        emit_mct_chain(out, g.controls, g.targets[0], ancillas);
        break;
      case GateKind::Swap:
        out.add(Gate::cnot(g.targets[0], g.targets[1]));
        out.add(Gate::cnot(g.targets[1], g.targets[0]));
        out.add(Gate::cnot(g.targets[0], g.targets[1]));
        break;
      case GateKind::Fredkin: {
        // CSWAP = CNOT(b,a) . C-controls-Toffoli(a -> b) . CNOT(b,a)
        const int a = g.targets[0];
        const int b = g.targets[1];
        out.add(Gate::cnot(b, a));
        std::vector<int> and_controls = g.controls;
        and_controls.push_back(a);
        if (and_controls.size() == 2)
          out.add(Gate::toffoli(and_controls[0], and_controls[1], b));
        else
          emit_mct_chain(out, and_controls, b, ancillas);
        out.add(Gate::cnot(b, a));
        break;
      }
      default:
        out.add(g);
        break;
    }
  }
  return out;
}

Circuit lower_to_clifford_t(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const Gate& g : circuit.gates()) {
    if (g.kind == GateKind::Toffoli) {
      const int a = g.controls[0];
      const int b = g.controls[1];
      const int t = g.targets[0];
      // Standard 7-T Toffoli network (Nielsen & Chuang Fig. 4.9).
      out.add(Gate::h(t));
      out.add(Gate::cnot(b, t));
      out.add(Gate::tdg(t));
      out.add(Gate::cnot(a, t));
      out.add(Gate::t(t));
      out.add(Gate::cnot(b, t));
      out.add(Gate::tdg(t));
      out.add(Gate::cnot(a, t));
      out.add(Gate::t(b));
      out.add(Gate::t(t));
      out.add(Gate::h(t));
      out.add(Gate::cnot(a, b));
      out.add(Gate::t(a));
      out.add(Gate::tdg(b));
      out.add(Gate::cnot(a, b));
    } else {
      TQEC_REQUIRE(qcir::is_clifford_t(g.kind),
                   "lower_to_clifford_t: unexpected gate " + g.to_string());
      out.add(g);
    }
  }
  return out;
}

Circuit decompose(const Circuit& circuit) {
  TQEC_TRACE_SPAN("decompose.clifford_t");
  return lower_to_clifford_t(lower_to_toffoli(circuit));
}

DecomposeStats summarize(const Circuit& original, const Circuit& decomposed) {
  const auto stats = decomposed.stats();
  DecomposeStats out;
  out.original_qubits = original.num_qubits();
  out.ancilla_qubits = decomposed.num_qubits() - original.num_qubits();
  out.cnot_count = stats.cnot;
  out.t_count = stats.t;
  out.s_count = stats.s;
  out.h_count = stats.h;
  return out;
}

}  // namespace tqec::decompose
