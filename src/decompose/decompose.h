// Gate decomposition: reversible circuits -> Clifford+T.
//
// Stage (1) of the paper's flow ("preprocess including gate decomposition").
// RevLib circuits arrive as multiple-control Toffoli / Fredkin netlists; TQEC
// synthesis needs the Clifford+T basis (the T gates are what consume the
// |A> ancillas, and S-corrections consume |Y> ancillas downstream).
//
// Two passes:
//   1. lower_to_toffoli: MCT -> Toffoli via the Barenco V-chain with clean
//      ancilla lines (2n-3 Toffolis, n-2 ancillas for n controls); Fredkin ->
//      CNOT-conjugated Toffoli; Swap -> 3 CNOTs.
//   2. lower_to_clifford_t: Toffoli -> the standard 7-T / 2-H / 6-CNOT
//      network.
// Both passes are verified unitarily equivalent in the test suite via the
// state-vector simulator.
#pragma once

#include "qcir/circuit.h"

namespace tqec::decompose {

/// Replace MCT/Fredkin/Swap gates by {X, CNOT, Toffoli}; may add ancilla
/// qubits (appended after the original register, initialized |0> and
/// returned to |0>).
qcir::Circuit lower_to_toffoli(const qcir::Circuit& circuit);

/// Replace Toffoli gates by the 7-T Clifford+T network. Precondition: the
/// circuit contains only {X, CNOT, Toffoli, H, S, Sdg, T, Tdg, Z}.
qcir::Circuit lower_to_clifford_t(const qcir::Circuit& circuit);

/// Full pipeline: lower_to_toffoli then lower_to_clifford_t.
qcir::Circuit decompose(const qcir::Circuit& circuit);

/// Summary of a decomposition (for Table-1-style statistics).
struct DecomposeStats {
  int original_qubits = 0;
  int ancilla_qubits = 0;
  std::int64_t cnot_count = 0;
  std::int64_t t_count = 0;
  std::int64_t s_count = 0;
  std::int64_t h_count = 0;
};

DecomposeStats summarize(const qcir::Circuit& original,
                         const qcir::Circuit& decomposed);

}  // namespace tqec::decompose
