#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace tqec {
namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("TQEC_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Warn;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> level{static_cast<int>(parse_env_level())};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Info: return "INFO ";
    default: return "DEBUG";
  }
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load());
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= threshold_storage().load();
}

void log_line(LogLevel level, const std::string& message) {
  std::cerr << "[tqec " << level_tag(level) << "] " << message << '\n';
}

}  // namespace tqec
