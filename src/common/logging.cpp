#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>

#include "common/trace.h"

namespace tqec {
namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("TQEC_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  // One-time by construction: this only runs from threshold_storage's
  // static initializer. A single fprintf keeps the line atomic.
  std::fprintf(stderr,
               "[tqec WARN ] unrecognized TQEC_LOG value '%s' "
               "(valid: error, warn, info, debug); defaulting to warn\n",
               env);
  return LogLevel::Warn;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> level{static_cast<int>(parse_env_level())};
  return level;
}

std::atomic<bool>& wallclock_storage() {
  static std::atomic<bool> on{trace::parse_env_enabled(
      "TQEC_LOG_WALLCLOCK", std::getenv("TQEC_LOG_WALLCLOCK"))};
  return on;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Info: return "INFO ";
    default: return "DEBUG";
  }
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load());
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= threshold_storage().load();
}

bool log_wallclock() { return wallclock_storage().load(); }

void set_log_wallclock(bool on) { wallclock_storage().store(on); }

std::string iso8601_utc_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  ::gmtime_r(&secs, &tm);
  char buf[40];
  const std::size_t n = std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf + n, sizeof buf - n, ".%03dZ", static_cast<int>(ms));
  return buf;
}

void log_line(LogLevel level, const std::string& message) {
  // Format the whole line up front and emit it with a single stream
  // insertion: under jobs>1 the per-insertion interleaving of the old
  // multi-<< form scrambled concurrent lines. The prefix carries elapsed
  // time since the process trace epoch (or ISO-8601 UTC wall-clock under
  // TQEC_LOG_WALLCLOCK=1) and the dense thread id shared with the tracer's
  // tid rows.
  char prefix[80];
  if (log_wallclock()) {
    std::snprintf(prefix, sizeof prefix, "[tqec %s T%d %s] ",
                  iso8601_utc_now().c_str(), trace::thread_id(),
                  level_tag(level));
  } else {
    std::snprintf(prefix, sizeof prefix, "[tqec %9.3fs T%d %s] ",
                  static_cast<double>(trace::now_ns()) / 1e9,
                  trace::thread_id(), level_tag(level));
  }
  std::string line;
  line.reserve(std::strlen(prefix) + message.size() + 1);
  line += prefix;
  line += message;
  line += '\n';
  std::cerr << line;
}

}  // namespace tqec
