#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/trace.h"

namespace tqec {
namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("TQEC_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  // One-time by construction: this only runs from threshold_storage's
  // static initializer. A single fprintf keeps the line atomic.
  std::fprintf(stderr,
               "[tqec WARN ] unrecognized TQEC_LOG value '%s' "
               "(valid: error, warn, info, debug); defaulting to warn\n",
               env);
  return LogLevel::Warn;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> level{static_cast<int>(parse_env_level())};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Info: return "INFO ";
    default: return "DEBUG";
  }
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load());
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= threshold_storage().load();
}

void log_line(LogLevel level, const std::string& message) {
  // Format the whole line up front and emit it with a single stream
  // insertion: under jobs>1 the per-insertion interleaving of the old
  // multi-<< form scrambled concurrent lines. The prefix carries elapsed
  // time since the process trace epoch and the dense thread id shared
  // with the tracer's tid rows.
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[tqec %9.3fs T%d %s] ",
                static_cast<double>(trace::now_ns()) / 1e9,
                trace::thread_id(), level_tag(level));
  std::string line;
  line.reserve(std::strlen(prefix) + message.size() + 1);
  line += prefix;
  line += message;
  line += '\n';
  std::cerr << line;
}

}  // namespace tqec
