#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/error.h"

namespace tqec {

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string with_commas(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

namespace {

template <typename T>
std::optional<T> from_chars_all(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  T value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size())
    return std::nullopt;
  return value;
}

[[noreturn]] void parse_throw(std::string_view what, const char* kind,
                              std::string_view text) {
  throw TqecError(std::string(what) + ": expected " + kind + ", got '" +
                  std::string(text) + "'");
}

}  // namespace

std::optional<std::int64_t> try_parse_i64(std::string_view text) {
  return from_chars_all<std::int64_t>(text);
}

std::optional<std::uint64_t> try_parse_u64(std::string_view text) {
  // from_chars<unsigned> accepts no sign; an explicit check keeps "-1"
  // from wrapping on libstdc++ variants that ever did.
  const std::string_view trimmed = trim(text);
  if (!trimmed.empty() && trimmed.front() == '-') return std::nullopt;
  return from_chars_all<std::uint64_t>(trimmed);
}

std::optional<double> try_parse_double(std::string_view text) {
  // strtod with a full-match check: std::from_chars for double is not
  // available on every libstdc++ this repo targets. The copy bounds the
  // parse (string_view is not NUL-terminated).
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return std::nullopt;
  const std::string copy(trimmed);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || errno == ERANGE ||
      !std::isfinite(value))
    return std::nullopt;
  return value;
}

int parse_int(std::string_view text, std::string_view what) {
  const auto v = try_parse_i64(text);
  if (!v || *v < std::numeric_limits<int>::min() ||
      *v > std::numeric_limits<int>::max())
    parse_throw(what, "an integer", text);
  return static_cast<int>(*v);
}

std::int64_t parse_i64(std::string_view text, std::string_view what) {
  const auto v = try_parse_i64(text);
  if (!v) parse_throw(what, "an integer", text);
  return *v;
}

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  const auto v = try_parse_u64(text);
  if (!v) parse_throw(what, "a non-negative integer", text);
  return *v;
}

double parse_double(std::string_view text, std::string_view what) {
  const auto v = try_parse_double(text);
  if (!v) parse_throw(what, "a number", text);
  return *v;
}

}  // namespace tqec
