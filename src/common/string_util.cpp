#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace tqec {

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string with_commas(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace tqec
