// Content hashing for the stage cache: FNV-1a over canonical serialized
// stage inputs. FNV is not cryptographic — the cache key doubles it into a
// 128-bit digest (two independent seeds), which makes an accidental
// collision across the lifetime of a serving process vanishingly unlikely
// while keeping hashing a few cycles per byte with zero dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <streambuf>
#include <string_view>

namespace tqec {

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// FNV-1a 64-bit hash of `s`, chainable via the seed parameter:
/// fnv1a64(b, fnv1a64(a)) == hash of the concatenation a+b.
inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t seed = kFnv1aOffset) {
  std::uint64_t h = seed;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

/// 128-bit content digest: two FNV-1a streams with decorrelated seeds.
/// Incremental — update() chunks hash identically to one concatenated call.
struct Digest128 {
  std::uint64_t lo = kFnv1aOffset;
  // Second stream seeded by hashing a domain-separation tag so the two
  // halves never agree byte-for-byte.
  std::uint64_t hi = fnv1a64("tqec.digest128.hi");

  void update(std::string_view s) {
    lo = fnv1a64(s, lo);
    hi = fnv1a64(s, hi);
  }

  friend bool operator==(const Digest128&, const Digest128&) = default;
};

/// std::streambuf that folds everything written through it into a
/// Digest128 via a fixed-size buffer. Lets a serializer stream straight
/// into a content hash — `write_x(thing, stream)` hashes identically to
/// `digest.update(to_x_text(thing))` (FNV-1a is chunking-invariant) while
/// peak memory stays O(buffer) instead of O(serialized text).
class DigestStreambuf : public std::streambuf {
 public:
  explicit DigestStreambuf(Digest128 init = {}) : digest_(init) {
    setp(buf_, buf_ + sizeof(buf_));
  }

  /// Digest of every byte written so far (flushes the pending buffer).
  Digest128 digest() {
    drain();
    return digest_;
  }

 protected:
  int overflow(int ch) override {
    drain();
    if (ch != traits_type::eof()) {
      buf_[0] = static_cast<char>(ch);
      pbump(1);
    }
    return ch;
  }
  int sync() override {
    drain();
    return 0;
  }

 private:
  void drain() {
    if (pptr() != pbase()) {
      digest_.update(std::string_view(
          pbase(), static_cast<std::size_t>(pptr() - pbase())));
      setp(buf_, buf_ + sizeof(buf_));
    }
  }

  Digest128 digest_;
  char buf_[4096];
};

}  // namespace tqec
