// Content hashing for the stage cache: FNV-1a over canonical serialized
// stage inputs. FNV is not cryptographic — the cache key doubles it into a
// 128-bit digest (two independent seeds), which makes an accidental
// collision across the lifetime of a serving process vanishingly unlikely
// while keeping hashing a few cycles per byte with zero dependencies.
#pragma once

#include <cstdint>
#include <string_view>

namespace tqec {

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// FNV-1a 64-bit hash of `s`, chainable via the seed parameter:
/// fnv1a64(b, fnv1a64(a)) == hash of the concatenation a+b.
inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t seed = kFnv1aOffset) {
  std::uint64_t h = seed;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

/// 128-bit content digest: two FNV-1a streams with decorrelated seeds.
/// Incremental — update() chunks hash identically to one concatenated call.
struct Digest128 {
  std::uint64_t lo = kFnv1aOffset;
  // Second stream seeded by hashing a domain-separation tag so the two
  // halves never agree byte-for-byte.
  std::uint64_t hi = fnv1a64("tqec.digest128.hi");

  void update(std::string_view s) {
    lo = fnv1a64(s, lo);
    hi = fnv1a64(s, hi);
  }

  friend bool operator==(const Digest128&, const Digest128&) = default;
};

}  // namespace tqec
