// Integer 3D vector and axis-aligned box primitives used throughout the
// geometric-description layer. Coordinates are lattice-cell units of the
// surface-code cluster state: x is the time axis in canonical descriptions,
// y and z span the 2D code surface.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <ostream>

namespace tqec {

/// Axis identifiers for axis-aligned geometry.
enum class Axis : std::uint8_t { X = 0, Y = 1, Z = 2 };

constexpr std::array<Axis, 3> kAllAxes{Axis::X, Axis::Y, Axis::Z};

/// Integer lattice point / displacement.
struct Vec3 {
  int x = 0;
  int y = 0;
  int z = 0;

  constexpr Vec3() = default;
  constexpr Vec3(int x_, int y_, int z_) : x(x_), y(y_), z(z_) {}

  constexpr int& operator[](Axis a) {
    switch (a) {
      case Axis::X: return x;
      case Axis::Y: return y;
      default: return z;
    }
  }
  constexpr int operator[](Axis a) const {
    switch (a) {
      case Axis::X: return x;
      case Axis::Y: return y;
      default: return z;
    }
  }

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr Vec3 operator*(int k, Vec3 v) {
    return {k * v.x, k * v.y, k * v.z};
  }
  constexpr Vec3& operator+=(Vec3 b) {
    x += b.x;
    y += b.y;
    z += b.z;
    return *this;
  }
  friend constexpr bool operator==(Vec3 a, Vec3 b) = default;
  friend constexpr auto operator<=>(Vec3 a, Vec3 b) = default;

  /// L1 (Manhattan) norm; routing distance on the lattice.
  constexpr int l1() const { return std::abs(x) + std::abs(y) + std::abs(z); }

  /// L-infinity (Chebyshev) norm; used for defect-separation checks.
  constexpr int linf() const {
    return std::max({std::abs(x), std::abs(y), std::abs(z)});
  }

  friend std::ostream& operator<<(std::ostream& os, Vec3 v) {
    return os << '(' << v.x << ',' << v.y << ',' << v.z << ')';
  }
};

constexpr int manhattan(Vec3 a, Vec3 b) { return (a - b).l1(); }
constexpr int chebyshev(Vec3 a, Vec3 b) { return (a - b).linf(); }

/// Unit step along an axis.
constexpr Vec3 unit(Axis a) {
  switch (a) {
    case Axis::X: return {1, 0, 0};
    case Axis::Y: return {0, 1, 0};
    default: return {0, 0, 1};
  }
}

/// Closed axis-aligned integer box: all lattice cells p with
/// lo <= p <= hi component-wise. A box is empty iff any lo > hi.
struct Box3 {
  Vec3 lo;
  Vec3 hi;

  constexpr Box3() : lo{0, 0, 0}, hi{-1, -1, -1} {}  // empty
  constexpr Box3(Vec3 lo_, Vec3 hi_) : lo(lo_), hi(hi_) {}

  /// Smallest box containing both endpoints (order-insensitive).
  static constexpr Box3 spanning(Vec3 a, Vec3 b) {
    return Box3{{std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)},
                {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)}};
  }

  constexpr bool empty() const {
    return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z;
  }

  /// Extent in lattice units along each axis (cell count, inclusive).
  constexpr Vec3 dims() const {
    if (empty()) return {0, 0, 0};
    return {hi.x - lo.x + 1, hi.y - lo.y + 1, hi.z - lo.z + 1};
  }

  /// Space-time volume of the box: #x * #y * #z in lattice units.
  constexpr std::int64_t volume() const {
    const Vec3 d = dims();
    return std::int64_t{d.x} * d.y * d.z;
  }

  constexpr bool contains(Vec3 p) const {
    return !empty() && lo.x <= p.x && p.x <= hi.x && lo.y <= p.y &&
           p.y <= hi.y && lo.z <= p.z && p.z <= hi.z;
  }

  constexpr bool intersects(const Box3& o) const {
    if (empty() || o.empty()) return false;
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y &&
           o.lo.y <= hi.y && lo.z <= o.hi.z && o.lo.z <= hi.z;
  }

  /// Grow the box by `m` units on every side.
  constexpr Box3 inflated(int m) const {
    if (empty()) return *this;
    return Box3{lo - Vec3{m, m, m}, hi + Vec3{m, m, m}};
  }

  /// Smallest box covering this box and `p`.
  constexpr Box3 expanded(Vec3 p) const {
    if (empty()) return Box3{p, p};
    return Box3{{std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)},
                {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)}};
  }

  /// Smallest box covering both boxes.
  constexpr Box3 merged(const Box3& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return expanded(o.lo).expanded(o.hi);
  }

  /// Chebyshev gap between two boxes (0 when touching or overlapping).
  constexpr int separation(const Box3& o) const {
    auto axis_gap = [](int alo, int ahi, int blo, int bhi) {
      if (ahi < blo) return blo - ahi - 1;
      if (bhi < alo) return alo - bhi - 1;
      return 0;
    };
    return std::max({axis_gap(lo.x, hi.x, o.lo.x, o.hi.x),
                     axis_gap(lo.y, hi.y, o.lo.y, o.hi.y),
                     axis_gap(lo.z, hi.z, o.lo.z, o.hi.z)});
  }

  friend constexpr bool operator==(const Box3&, const Box3&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Box3& b) {
    return os << '[' << b.lo << ".." << b.hi << ']';
  }
};

}  // namespace tqec

template <>
struct std::hash<tqec::Vec3> {
  std::size_t operator()(const tqec::Vec3& v) const noexcept {
    // 3D lattice hash; coordinates in practice fit comfortably in 21 bits.
    const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.x));
    const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.y));
    const auto uz = static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.z));
    std::uint64_t h = ux * 0x9E3779B97F4A7C15ull;
    h ^= uy * 0xC2B2AE3D27D4EB4Full + (h << 6) + (h >> 2);
    h ^= uz * 0x165667B19E3779F9ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};
