#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/string_util.h"

namespace tqec::trace {

namespace {

/// Hard per-thread cap so a runaway loop cannot exhaust memory; beyond it
/// events are counted as dropped instead of stored.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

struct TraceEvent {
  const char* name;  // string literal, stored by pointer
  std::string detail;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// One buffer per recording thread. Only the owning thread appends, but the
/// per-buffer mutex lets export/reset run safely while other threads trace
/// (each append takes its own uncontended lock — nanoseconds, far below
/// span granularity).
struct ThreadBuffer {
  int tid = 0;
  std::mutex mutex;
  std::vector<TraceEvent> events;
};

struct Collector {
  std::mutex mutex;  // guards the buffer list and tid assignment
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  int next_tid = 0;
  std::atomic<std::uint64_t> dropped{0};
};

Collector& collector() {
  static Collector* c = new Collector();  // leaked: usable during exit
  return *c;
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    Collector& c = collector();
    const std::lock_guard<std::mutex> lock(c.mutex);
    c.buffers.push_back(std::make_unique<ThreadBuffer>());
    c.buffers.back()->tid = c.next_tid++;
    return c.buffers.back().get();
  }();
  return *buffer;
}

struct Registry {
  std::mutex mutex;
  // std::map: snapshots come out name-sorted with no extra work.
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      series;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

bool env_enabled() {
  return parse_env_enabled("TQEC_TRACE", std::getenv("TQEC_TRACE"));
}

/// JSON string escaping for the chrome export (control characters become
/// \uXXXX so multi-line details survive a round-trip).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

namespace detail {
std::atomic<bool> g_enabled{env_enabled()};
}  // namespace detail

bool parse_env_enabled(const char* name, const char* value) {
  if (value == nullptr || *value == '\0') return false;
  const auto parsed = try_parse_i64(value);
  if (!parsed) {
    // Checked parse instead of atoi: atoi turned "TQEC_TRACE=yes" into a
    // silent 0. A single fprintf keeps the warning line atomic, and the
    // callers (static initializer, set_enabled) make it effectively
    // one-time per malformed value.
    std::fprintf(stderr,
                 "[tqec WARN ] %s='%s' is not an integer (use 0 or 1); "
                 "treating as disabled\n",
                 name, value);
    return false;
  }
  return *parsed != 0;
}

void set_enabled(bool on) {
  if (on) epoch();  // pin the epoch before the first event
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

int thread_id() { return thread_buffer().tid; }

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

void Span::arm(const char* name) {
  name_ = name;
  start_ns_ = now_ns();
  armed_ = true;
}

void Span::finish() {
  armed_ = false;
  const std::uint64_t end_ns = now_ns();
  ThreadBuffer& buffer = thread_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    collector().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back(
      {name_, std::move(detail_), start_ns_, end_ns - start_ns_});
}

std::size_t event_count() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  std::size_t n = 0;
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

std::uint64_t dropped_events() {
  return collector().dropped.load(std::memory_order_relaxed);
}

void reset_events() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  c.dropped.store(0, std::memory_order_relaxed);
}

std::string chrome_trace_json() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  std::ostringstream os;
  os << "{\"traceEvents\": [\n"
     << "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"name\": \"tqec\"}}";
  for (const auto& buffer : c.buffers) {
    os << ",\n  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
       << "\"tid\": " << buffer->tid << ", \"args\": {\"name\": \"tqec-thread-"
       << buffer->tid << "\"}}";
  }
  char num[32];
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (const TraceEvent& e : buffer->events) {
      os << ",\n  {\"name\": \"" << json_escape(e.name)
         << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << buffer->tid;
      std::snprintf(num, sizeof num, "%.3f",
                    static_cast<double>(e.start_ns) / 1000.0);
      os << ", \"ts\": " << num;
      std::snprintf(num, sizeof num, "%.3f",
                    static_cast<double>(e.dur_ns) / 1000.0);
      os << ", \"dur\": " << num;
      if (!e.detail.empty())
        os << ", \"args\": {\"detail\": \"" << json_escape(e.detail) << "\"}";
      os << "}";
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

bool write_chrome_trace_file(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

void counter_add(const char* name, long long delta) {
  if (!enabled()) return;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.counters[name] += delta;
}

void gauge_set(const char* name, double value) {
  if (!enabled()) return;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.gauges[name] = value;
}

void series_append(const char* name, double x, double y) {
  if (!enabled()) return;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  auto& channel = r.series[name];
  channel.first.push_back(x);
  channel.second.push_back(y);
}

void series_put(const char* name, std::vector<double> x,
                std::vector<double> y) {
  if (!enabled()) return;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.series[name] = {std::move(x), std::move(y)};
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot snap;
  snap.counters.assign(r.counters.begin(), r.counters.end());
  snap.gauges.assign(r.gauges.begin(), r.gauges.end());
  snap.series.reserve(r.series.size());
  for (const auto& [name, xy] : r.series)
    snap.series.push_back({name, xy.first, xy.second});
  return snap;
}

void reset_metrics() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.counters.clear();
  r.gauges.clear();
  r.series.clear();
}

}  // namespace tqec::trace
