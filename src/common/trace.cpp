#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/string_util.h"

namespace tqec::trace {

namespace {

/// Hard per-thread cap so a runaway loop cannot exhaust memory; beyond it
/// events are counted as dropped instead of stored.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

struct TraceEvent {
  const char* name;  // string literal, stored by pointer
  std::string detail;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// One buffer per recording thread. Only the owning thread appends, but the
/// per-buffer mutex lets export/reset run safely while other threads trace
/// (each append takes its own uncontended lock — nanoseconds, far below
/// span granularity). The flight-recorder ring shares the buffer (and its
/// mutex): a fixed-capacity overwrite-oldest window of completed spans,
/// lazily allocated on the first recorded span.
struct ThreadBuffer {
  int tid = 0;
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::vector<FlightRecord> ring;  // capacity kFlightRecorderCapacity
  std::size_t ring_next = 0;       // next slot to overwrite
  std::uint64_t ring_total = 0;    // lifetime spans pushed through the ring
};

struct Collector {
  std::mutex mutex;  // guards the buffer list and tid assignment
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  int next_tid = 0;
  std::atomic<std::uint64_t> dropped{0};
};

Collector& collector() {
  static Collector* c = new Collector();  // leaked: usable during exit
  return *c;
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    Collector& c = collector();
    const std::lock_guard<std::mutex> lock(c.mutex);
    c.buffers.push_back(std::make_unique<ThreadBuffer>());
    c.buffers.back()->tid = c.next_tid++;
    return c.buffers.back().get();
  }();
  return *buffer;
}

struct Registry {
  std::mutex mutex;
  // std::map: snapshots come out name-sorted with no extra work.
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      series;
  // Histogram instances are created once and never destroyed by reset
  // (their contents are zeroed instead): a concurrent recorder may still
  // hold a pointer across the registry mutex. Zero-count histograms are
  // skipped at snapshot time, so stale names never leak into reports.
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

unsigned env_surfaces() {
  unsigned mask = 0;
  if (parse_env_enabled("TQEC_TRACE", std::getenv("TQEC_TRACE")))
    mask |= detail::kSurfaceTrace;
  if (parse_env_enabled("TQEC_FLIGHT", std::getenv("TQEC_FLIGHT")))
    mask |= detail::kSurfaceFlight;
  return mask;
}

/// JSON string escaping for the chrome export (control characters become
/// \uXXXX so multi-line details survive a round-trip).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

namespace detail {
std::atomic<unsigned> g_surfaces{env_surfaces()};
}  // namespace detail

bool parse_env_enabled(const char* name, const char* value) {
  if (value == nullptr || *value == '\0') return false;
  const auto parsed = try_parse_i64(value);
  if (!parsed) {
    // Checked parse instead of atoi: atoi turned "TQEC_TRACE=yes" into a
    // silent 0. A single fprintf keeps the warning line atomic, and the
    // callers (static initializer, set_enabled) make it effectively
    // one-time per malformed value.
    std::fprintf(stderr,
                 "[tqec WARN ] %s='%s' is not an integer (use 0 or 1); "
                 "treating as disabled\n",
                 name, value);
    return false;
  }
  return *parsed != 0;
}

namespace {
void set_surface(unsigned bit, bool on) {
  if (on) {
    epoch();  // pin the epoch before the first event
    detail::g_surfaces.fetch_or(bit, std::memory_order_relaxed);
  } else {
    detail::g_surfaces.fetch_and(~bit, std::memory_order_relaxed);
  }
}
}  // namespace

void set_enabled(bool on) { set_surface(detail::kSurfaceTrace, on); }

void set_flight_recorder_enabled(bool on) {
  set_surface(detail::kSurfaceFlight, on);
}

int thread_id() { return thread_buffer().tid; }

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

namespace {

/// Parse "<Key>:  <kB> kB" from /proc/self/status; 0 when absent.
std::uint64_t proc_status_kb(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':')
      continue;
    kb = std::strtoull(line + key_len + 1, nullptr, 10);
    break;
  }
  std::fclose(f);
  return kb;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

std::uint64_t peak_rss_bytes() {
  if (const std::uint64_t kb = proc_status_kb("VmHWM")) return kb * 1024;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kB elsewhere
#endif
  }
#endif
  return 0;
}

std::uint64_t current_rss_bytes() {
  return proc_status_kb("VmRSS") * 1024;
}

void Span::arm(const char* name) {
  name_ = name;
  surfaces_ = detail::surfaces();
  start_ns_ = now_ns();
  armed_ = true;
}

void Span::finish() {
  armed_ = false;
  const std::uint64_t end_ns = now_ns();
  // The arm-time mask decides where the span lands: a surface toggled off
  // mid-span still receives it (exports stay well-formed), one toggled on
  // mid-span does not (it never saw the start).
  const unsigned mask = surfaces_;
  if (mask == 0) return;
  ThreadBuffer& buffer = thread_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (mask & detail::kSurfaceFlight) {
    if (buffer.ring.empty()) buffer.ring.resize(kFlightRecorderCapacity);
    buffer.ring[buffer.ring_next] =
        {name_, start_ns_, end_ns - start_ns_, buffer.tid};
    buffer.ring_next = (buffer.ring_next + 1) % kFlightRecorderCapacity;
    buffer.ring_total += 1;
  }
  if (mask & detail::kSurfaceTrace) {
    if (buffer.events.size() >= kMaxEventsPerThread) {
      collector().dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buffer.events.push_back(
        {name_, std::move(detail_), start_ns_, end_ns - start_ns_});
  }
}

std::size_t event_count() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  std::size_t n = 0;
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

std::uint64_t dropped_events() {
  return collector().dropped.load(std::memory_order_relaxed);
}

void reset_events() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  c.dropped.store(0, std::memory_order_relaxed);
}

namespace {

/// Ring contents of one buffer, oldest-first, filtered by start time.
/// Caller holds the buffer mutex.
void append_ring_locked(const ThreadBuffer& buffer, std::uint64_t min_start_ns,
                        std::vector<FlightRecord>& out) {
  if (buffer.ring.empty()) return;
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(
          buffer.ring_total, kFlightRecorderCapacity));
  // Oldest entry sits at ring_next once the ring has wrapped, at 0 before.
  const std::size_t first =
      buffer.ring_total > kFlightRecorderCapacity ? buffer.ring_next : 0;
  for (std::size_t k = 0; k < n; ++k) {
    const FlightRecord& r =
        buffer.ring[(first + k) % kFlightRecorderCapacity];
    if (r.start_ns >= min_start_ns) out.push_back(r);
  }
}

}  // namespace

std::vector<FlightRecord> flight_records_this_thread(
    std::uint64_t min_start_ns) {
  ThreadBuffer& buffer = thread_buffer();
  std::vector<FlightRecord> out;
  {
    const std::lock_guard<std::mutex> lock(buffer.mutex);
    append_ring_locked(buffer, min_start_ns, out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightRecord& a, const FlightRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::vector<FlightRecord> flight_records_all(std::uint64_t min_start_ns) {
  Collector& c = collector();
  std::vector<FlightRecord> out;
  {
    const std::lock_guard<std::mutex> lock(c.mutex);
    for (const auto& buffer : c.buffers) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      append_ring_locked(*buffer, min_start_ns, out);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightRecord& a, const FlightRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

void reset_flight_records() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->ring.clear();
    buffer->ring_next = 0;
    buffer->ring_total = 0;
  }
}

std::string chrome_trace_json() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  std::ostringstream os;
  os << "{\"traceEvents\": [\n"
     << "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"name\": \"tqec\"}}";
  for (const auto& buffer : c.buffers) {
    os << ",\n  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
       << "\"tid\": " << buffer->tid << ", \"args\": {\"name\": \"tqec-thread-"
       << buffer->tid << "\"}}";
  }
  char num[32];
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (const TraceEvent& e : buffer->events) {
      os << ",\n  {\"name\": \"" << json_escape(e.name)
         << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << buffer->tid;
      std::snprintf(num, sizeof num, "%.3f",
                    static_cast<double>(e.start_ns) / 1000.0);
      os << ", \"ts\": " << num;
      std::snprintf(num, sizeof num, "%.3f",
                    static_cast<double>(e.dur_ns) / 1000.0);
      os << ", \"dur\": " << num;
      if (!e.detail.empty())
        os << ", \"args\": {\"detail\": \"" << json_escape(e.detail) << "\"}";
      os << "}";
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

bool write_chrome_trace_file(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

// ---------------------------------------------------------------------------
// Histograms

double histogram_bucket_bound(std::size_t i) {
  // Log-spaced: three buckets per decade from 1us. Built once; the table is
  // identical across calls and processes (same libm, same doubles), so
  // bucket assignment is deterministic.
  static const std::array<double, kHistogramFiniteBuckets> bounds = [] {
    std::array<double, kHistogramFiniteBuckets> b{};
    for (std::size_t k = 0; k < kHistogramFiniteBuckets; ++k)
      b[k] = 1e-6 * std::pow(10.0, static_cast<double>(k) / 3.0);
    return b;
  }();
  if (i >= kHistogramFiniteBuckets)
    return std::numeric_limits<double>::infinity();
  return bounds[i];
}

/// One recording thread's slice of a histogram. All fields are relaxed
/// atomics updated with commutative RMW ops (adds, min/max folds), so any
/// interleaving of recorders — and any assignment of samples to shards —
/// merges to the same aggregate.
struct Histogram::Shard {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::int64_t> sum_ns{0};
  std::atomic<std::int64_t> min_ns{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_ns{std::numeric_limits<std::int64_t>::min()};
};

Histogram::Histogram(std::string name) : name_(std::move(name)) {}

Histogram::~Histogram() {
  for (auto& chunk : chunks_) delete[] chunk.load(std::memory_order_acquire);
}

Histogram::Shard* Histogram::shard_for_this_thread() {
  // Dense thread ids index a two-level table: chunk = tid / kChunkSize,
  // published once with a release CAS. Threads beyond the table share the
  // last shard — still correct, the ops are atomic RMW.
  const std::size_t tid = static_cast<std::size_t>(thread_id());
  const std::size_t chunk_index =
      std::min(tid / kChunkSize, kMaxChunks - 1);
  const std::size_t slot =
      chunk_index == tid / kChunkSize ? tid % kChunkSize : kChunkSize - 1;
  std::atomic<Shard*>& chunk = chunks_[chunk_index];
  Shard* shards = chunk.load(std::memory_order_acquire);
  if (shards == nullptr) {
    Shard* fresh = new Shard[kChunkSize];
    if (chunk.compare_exchange_strong(shards, fresh,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      shards = fresh;
    } else {
      delete[] fresh;  // another thread won the race; use its chunk
    }
  }
  return shards + slot;
}

void Histogram::record_s(double seconds) {
  if (!(seconds > 0)) seconds = 0;  // clamp negatives and NaN
  // Integer nanoseconds make the cross-shard sum exact and commutative
  // (double sums would depend on merge order). Saturate at ~292 years.
  const double ns_d = seconds * 1e9;
  const std::int64_t ns =
      ns_d >= static_cast<double>(std::numeric_limits<std::int64_t>::max())
          ? std::numeric_limits<std::int64_t>::max()
          : static_cast<std::int64_t>(std::llround(ns_d));
  std::size_t bucket = kHistogramFiniteBuckets;  // +Inf fallback
  for (std::size_t i = 0; i < kHistogramFiniteBuckets; ++i) {
    if (seconds <= histogram_bucket_bound(i)) {
      bucket = i;
      break;
    }
  }
  Shard* shard = shard_for_this_thread();
  shard->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard->count.fetch_add(1, std::memory_order_relaxed);
  shard->sum_ns.fetch_add(ns, std::memory_order_relaxed);
  std::int64_t seen = shard->min_ns.load(std::memory_order_relaxed);
  while (ns < seen && !shard->min_ns.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
  seen = shard->max_ns.load(std::memory_order_relaxed);
  while (ns > seen && !shard->max_ns.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.name = name_;
  std::int64_t min_ns = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ns = std::numeric_limits<std::int64_t>::min();
  for (const auto& chunk : chunks_) {
    const Shard* shards = chunk.load(std::memory_order_acquire);
    if (shards == nullptr) continue;
    for (std::size_t s = 0; s < kChunkSize; ++s) {
      const Shard& shard = shards[s];
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      snap.count += shard.count.load(std::memory_order_relaxed);
      snap.sum_ns += shard.sum_ns.load(std::memory_order_relaxed);
      min_ns = std::min(min_ns, shard.min_ns.load(std::memory_order_relaxed));
      max_ns = std::max(max_ns, shard.max_ns.load(std::memory_order_relaxed));
    }
  }
  if (snap.count > 0) {
    snap.min_ns = min_ns;
    snap.max_ns = max_ns;
  }
  return snap;
}

void Histogram::reset() {
  for (auto& chunk : chunks_) {
    Shard* shards = chunk.load(std::memory_order_acquire);
    if (shards == nullptr) continue;
    for (std::size_t s = 0; s < kChunkSize; ++s) {
      Shard& shard = shards[s];
      for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
      shard.count.store(0, std::memory_order_relaxed);
      shard.sum_ns.store(0, std::memory_order_relaxed);
      shard.min_ns.store(std::numeric_limits<std::int64_t>::max(),
                         std::memory_order_relaxed);
      shard.max_ns.store(std::numeric_limits<std::int64_t>::min(),
                         std::memory_order_relaxed);
    }
  }
}

void counter_add(const char* name, long long delta) {
  if (!enabled()) return;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.counters[name] += delta;
}

void gauge_set(const char* name, double value) {
  if (!enabled()) return;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.gauges[name] = value;
}

void series_append(const char* name, double x, double y) {
  if (!enabled()) return;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  auto& channel = r.series[name];
  channel.first.push_back(x);
  channel.second.push_back(y);
}

void series_put(const char* name, std::vector<double> x,
                std::vector<double> y) {
  if (!enabled()) return;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.series[name] = {std::move(x), std::move(y)};
}

void histogram_record(const char* name, double seconds) {
  if (!enabled()) return;
  Registry& r = registry();
  Histogram* h = nullptr;
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    auto& slot = r.histograms[name];
    if (!slot) slot = std::make_unique<Histogram>(name);
    h = slot.get();
  }
  // Instances outlive reset_metrics (contents are zeroed, never freed), so
  // recording outside the lock is safe — and the record path stays the
  // histogram's own lock-free shard update.
  h->record_s(seconds);
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot snap;
  snap.counters.assign(r.counters.begin(), r.counters.end());
  snap.gauges.assign(r.gauges.begin(), r.gauges.end());
  snap.series.reserve(r.series.size());
  for (const auto& [name, xy] : r.series)
    snap.series.push_back({name, xy.first, xy.second});
  for (const auto& [name, h] : r.histograms) {
    HistogramSnapshot hs = h->snapshot();
    if (hs.count > 0) snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void reset_metrics() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.counters.clear();
  r.gauges.clear();
  r.series.clear();
  for (const auto& [name, h] : r.histograms) h->reset();
}

// ---------------------------------------------------------------------------
// OpenMetrics text exposition

namespace {

/// Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
/// (the registry's dots, mostly) becomes '_'.
std::string openmetrics_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' ||
                    (!out.empty() && c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? "_" : out;
}

std::string openmetrics_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::string openmetrics_text(
    const std::vector<std::pair<std::string, long long>>& counters,
    const std::vector<std::pair<std::string, double>>& gauges,
    const std::vector<HistogramSnapshot>& histograms) {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    const std::string n = openmetrics_name(name);
    os << "# TYPE " << n << " counter\n" << n << "_total " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string n = openmetrics_name(name);
    os << "# TYPE " << n << " gauge\n"
       << n << " " << openmetrics_number(value) << "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string n = openmetrics_name(h.name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      cumulative += h.buckets[b];
      // Scrapers interpolate within buckets, so empty interior buckets
      // still matter; emit every bound (the layout is small and fixed).
      os << n << "_bucket{le=\"";
      if (b + 1 == kHistogramBuckets)
        os << "+Inf";
      else
        os << openmetrics_number(histogram_bucket_bound(b));
      os << "\"} " << cumulative << "\n";
    }
    os << n << "_sum " << openmetrics_number(h.sum_s()) << "\n"
       << n << "_count " << h.count << "\n";
  }
  os << "# EOF\n";
  return os.str();
}

std::string histogram_json(const HistogramSnapshot& h) {
  std::ostringstream os;
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return std::string(buf);
  };
  os << "{\"count\": " << h.count << ", \"sum_s\": " << num(h.sum_s())
     << ", \"min_s\": " << num(h.min_s()) << ", \"max_s\": " << num(h.max_s())
     << ", \"mean_s\": " << num(h.mean_s()) << ", \"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"le\": ";
    if (b + 1 == kHistogramBuckets)
      os << "\"+Inf\"";
    else
      os << num(histogram_bucket_bound(b));
    os << ", \"n\": " << h.buckets[b] << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace tqec::trace
