// Minimal JSON reader for this repo's own observability artifacts
// (stats_json reports, Chrome trace-event files). No external dependency:
// a small recursive-descent parser covering the full RFC 8259 grammar is
// all tqec_report and the round-trip tests need.
//
// Numbers are stored as double (the reports never exceed 2^53) and object
// members keep insertion order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"

namespace tqec::json {

class Value {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return type == Type::Null; }
  bool is_bool() const { return type == Type::Bool; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }
  bool is_array() const { return type == Type::Array; }
  bool is_object() const { return type == Type::Object; }

  /// Member lookup (first match); nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (type != Type::Object) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
  /// Member access; throws TqecError when absent.
  const Value& at(const std::string& key) const {
    const Value* v = find(key);
    TQEC_REQUIRE(v != nullptr, "json: missing member '" + key + "'");
    return *v;
  }

  // Typed accessors; throw TqecError on a type mismatch.
  bool as_bool() const {
    TQEC_REQUIRE(is_bool(), "json: not a bool");
    return boolean;
  }
  double as_double() const {
    TQEC_REQUIRE(is_number(), "json: not a number");
    return number;
  }
  std::int64_t as_int() const {
    TQEC_REQUIRE(is_number(), "json: not a number");
    return static_cast<std::int64_t>(number);
  }
  const std::string& as_string() const {
    TQEC_REQUIRE(is_string(), "json: not a string");
    return string;
  }
};

/// Parse one JSON document; trailing non-whitespace or malformed input
/// raises TqecError with the byte offset of the problem.
Value parse(const std::string& text);

/// Escape `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; no surrounding quotes added).
std::string escape(std::string_view s);

}  // namespace tqec::json
