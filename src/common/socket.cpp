#include "common/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tqec::net {

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixServerSocket::UnixServerSocket(const std::string& path) : path_(path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw TqecError("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  listen_fd_ = Fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!listen_fd_.valid())
    throw TqecError("socket(): " + std::string(std::strerror(errno)));
  ::unlink(path.c_str());  // remove a stale socket file from a dead server
  if (::bind(listen_fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw TqecError("bind(" + path + "): " +
                    std::string(std::strerror(errno)));
  if (::listen(listen_fd_.get(), 8) != 0)
    throw TqecError("listen(" + path + "): " +
                    std::string(std::strerror(errno)));
}

UnixServerSocket::~UnixServerSocket() { ::unlink(path_.c_str()); }

Fd UnixServerSocket::accept_client() {
  for (;;) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    return Fd();
  }
}

bool LineReader::next_line(std::string& line) {
  for (;;) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      line.assign(buffer_, 0, pos);
      buffer_.erase(0, pos + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      eof_ = true;
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace tqec::net
