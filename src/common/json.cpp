#include "common/json.h"

#include <cstdio>
#include <cstdlib>

namespace tqec::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw TqecError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value(int depth) {
    if (depth > 128) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    Value v;
    switch (c) {
      case '{': {
        v.type = Value::Type::Object;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        for (;;) {
          skip_ws();
          if (peek() != '"') fail("expected object key");
          std::string key = parse_string_body();
          skip_ws();
          expect(':');
          v.object.emplace_back(std::move(key), parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type = Value::Type::Array;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        for (;;) {
          v.array.push_back(parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.type = Value::Type::String;
        v.string = parse_string_body();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.type = Value::Type::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.type = Value::Type::Bool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return v;
      default:
        return parse_number();
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !is_digit(text_[pos_])) fail("bad number");
    while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) fail("bad number");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) fail("bad number");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    Value v;
    v.type = Value::Type::Number;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  /// Parse a string starting at the opening quote; returns the decoded body.
  std::string parse_string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs in our own
          // artifacts never occur; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).run(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace tqec::json
