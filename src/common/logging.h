// Minimal leveled logging to stderr.
//
// Verbosity is controlled by the TQEC_LOG environment variable
// ("error" | "warn" | "info" | "debug"); default is "warn" so library
// consumers, tests, and benches stay quiet unless asked. Each line is
// formatted whole and written with one stream insertion (no interleaving
// under jobs>1) and carries an elapsed-seconds + thread-id prefix:
//   [tqec     1.234s T0 INFO ] message
#pragma once

#include <sstream>
#include <string>

namespace tqec {

enum class LogLevel : int { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Current threshold (from TQEC_LOG, cached on first use).
LogLevel log_threshold();

/// Override the threshold programmatically (tests).
void set_log_threshold(LogLevel level);

bool log_enabled(LogLevel level);

/// Emit one log line; prefer the TQEC_LOG_* macros below.
void log_line(LogLevel level, const std::string& message);

#define TQEC_LOG_AT(level, stream_expr)                  \
  do {                                                   \
    if (::tqec::log_enabled(level)) {                    \
      std::ostringstream tqec_log_os;                    \
      tqec_log_os << stream_expr;                        \
      ::tqec::log_line(level, tqec_log_os.str());        \
    }                                                    \
  } while (0)

#define TQEC_LOG_ERROR(s) TQEC_LOG_AT(::tqec::LogLevel::Error, s)
#define TQEC_LOG_WARN(s) TQEC_LOG_AT(::tqec::LogLevel::Warn, s)
#define TQEC_LOG_INFO(s) TQEC_LOG_AT(::tqec::LogLevel::Info, s)
#define TQEC_LOG_DEBUG(s) TQEC_LOG_AT(::tqec::LogLevel::Debug, s)

}  // namespace tqec
