// Minimal leveled logging to stderr.
//
// Verbosity is controlled by the TQEC_LOG environment variable
// ("error" | "warn" | "info" | "debug"); default is "warn" so library
// consumers, tests, and benches stay quiet unless asked. Each line is
// formatted whole and written with one stream insertion (no interleaving
// under jobs>1) and carries an elapsed-seconds + thread-id prefix:
//   [tqec     1.234s T0 INFO ] message
//
// TQEC_LOG_WALLCLOCK=1 swaps the elapsed-seconds field for an ISO-8601 UTC
// timestamp — elapsed seconds since process start are meaningless in a
// daemon that runs for days:
//   [tqec 2026-08-08T12:34:56.789Z T0 INFO ] message
// Elapsed stays the default so existing test and CI output is unchanged.
#pragma once

#include <sstream>
#include <string>

namespace tqec {

enum class LogLevel : int { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Current threshold (from TQEC_LOG, cached on first use).
LogLevel log_threshold();

/// Override the threshold programmatically (tests).
void set_log_threshold(LogLevel level);

bool log_enabled(LogLevel level);

/// Whether log lines carry wall-clock timestamps (from TQEC_LOG_WALLCLOCK,
/// cached on first use) instead of the elapsed-seconds default.
bool log_wallclock();

/// Override the timestamp mode programmatically (tests, tqec_serve).
void set_log_wallclock(bool on);

/// Current time as ISO-8601 UTC with millisecond precision
/// ("2026-08-08T12:34:56.789Z"); shared by the log prefix and the
/// tqec_serve access log.
std::string iso8601_utc_now();

/// Emit one log line; prefer the TQEC_LOG_* macros below.
void log_line(LogLevel level, const std::string& message);

#define TQEC_LOG_AT(level, stream_expr)                  \
  do {                                                   \
    if (::tqec::log_enabled(level)) {                    \
      std::ostringstream tqec_log_os;                    \
      tqec_log_os << stream_expr;                        \
      ::tqec::log_line(level, tqec_log_os.str());        \
    }                                                    \
  } while (0)

#define TQEC_LOG_ERROR(s) TQEC_LOG_AT(::tqec::LogLevel::Error, s)
#define TQEC_LOG_WARN(s) TQEC_LOG_AT(::tqec::LogLevel::Warn, s)
#define TQEC_LOG_INFO(s) TQEC_LOG_AT(::tqec::LogLevel::Info, s)
#define TQEC_LOG_DEBUG(s) TQEC_LOG_AT(::tqec::LogLevel::Debug, s)

}  // namespace tqec
