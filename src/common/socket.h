// Minimal POSIX helpers for newline-delimited protocols (tools/tqec_serve):
// an RAII file descriptor, a Unix-domain listening socket, a buffered
// line reader, and a short-write-safe writer. Nothing here knows about
// JSON — framing only.
#pragma once

#include <string>
#include <string_view>

#include "common/error.h"

namespace tqec::net {

/// RAII file descriptor (move-only; -1 = empty).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { close(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Unix-domain stream socket bound and listening on `path`. The socket
/// file is unlinked on construction (stale leftover) and on destruction.
/// Throws TqecError when bind/listen fails (path too long, no permission).
class UnixServerSocket {
 public:
  explicit UnixServerSocket(const std::string& path);
  ~UnixServerSocket();
  UnixServerSocket(const UnixServerSocket&) = delete;
  UnixServerSocket& operator=(const UnixServerSocket&) = delete;

  /// Block until a client connects; an empty Fd means accept was
  /// interrupted or the socket was shut down.
  Fd accept_client();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Fd listen_fd_;
};

/// Buffered reader splitting an fd's byte stream into '\n'-terminated
/// lines (the terminator is stripped; a final unterminated line is
/// returned at EOF). Does not own the fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// False at end of stream (or on a read error), true with `line` filled
  /// otherwise.
  bool next_line(std::string& line);

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Write all of `data`, retrying short writes; false on error (e.g. the
/// peer hung up — callers drop the response, they must not crash the
/// server, so SIGPIPE should be ignored process-wide).
bool write_all(int fd, std::string_view data);

}  // namespace tqec::net
