// Cooperative cancellation for long-running compiles.
//
// A CancelToken is a copyable handle on a shared flag. The requester keeps
// one copy (and calls cancel() from any thread — a deadline watchdog, a
// serve-protocol cancel message, a Ctrl-C handler); core::compile carries
// another in its CompileOptions and polls it at stage boundaries, raising
// CancelledError (common/error.h) when it fires. Cancellation is
// cooperative and boundary-grained on purpose: the pipeline stages stay
// free of per-iteration checks, and an abandoned request stops within one
// stage rather than instantly.
#pragma once

#include <atomic>
#include <memory>

namespace tqec {

class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Request cancellation. Thread-safe; idempotent.
  void cancel() const { state_->store(true, std::memory_order_relaxed); }

  /// Whether cancellation has been requested (one relaxed load).
  bool cancelled() const {
    return state_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

}  // namespace tqec
