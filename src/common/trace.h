// Pipeline tracing and metrics: scoped spans, a named
// counter/gauge/series/histogram registry, a flight recorder of recent
// spans, and Chrome trace-event export.
//
// Everything is off by default and compiles down to one relaxed atomic load
// per call site when disabled, so instrumentation can stay in hot paths
// permanently. Enable with trace::set_enabled(true) (the CLI's --trace-json
// / --stats-json flags and the bench harnesses' REPRO_TRACE_JSON knob do
// this) or by setting TQEC_TRACE=1 in the environment.
//
// Collection surfaces:
//
//   Spans    — RAII scopes recorded per thread (own lock-free-in-practice
//              buffer per thread, so worker threads of the parallel stages
//              never contend). TQEC_TRACE_SPAN("route.pathfinder") at the
//              top of a scope records one complete event; names must be
//              string literals (they are stored by pointer). Export the
//              accumulated events with chrome_trace_json() /
//              write_chrome_trace_file() and open the file in Perfetto or
//              chrome://tracing; each recording thread appears as its own
//              tid row, so the jobs>1 place+route attempts separate.
//
//   Counters — named monotonic totals (trace::counter_add). Adds are
//              commutative, so concurrent attempts publishing to the same
//              counter still yield a deterministic final value.
//
//   Gauges / series — last-write named values and sampled (x, y) curves
//              (SA cost per batch, overused cells per PathFinder
//              iteration). Published from the sequential reduction in
//              core::compile so their content never depends on thread
//              scheduling.
//
//   Histograms — log-spaced latency distributions (trace::Histogram).
//              Each instance shards its buckets per recording thread and
//              merges shards with commutative integer sums at snapshot
//              time, so concurrent recorders on any thread count yield
//              identical aggregate values for the same multiset of
//              samples. Standalone instances (tqec_serve's request /
//              queue-wait / stage-latency histograms) are always on and
//              lock-free on the record path; the named-registry variant
//              (histogram_record) is gated like counters and lands in
//              MetricsSnapshot / stats_json.
//
//   Flight recorder — a bounded per-thread ring of recently *completed*
//              spans (overwrite-oldest), enabled independently of the
//              Chrome-trace event buffer so a long-running daemon can keep
//              it on forever with O(threads * capacity) memory. tqec_serve
//              uses it to attach the span tree of a slow request to the
//              response. Spans share one fast path for both surfaces: a
//              single relaxed load of a surface bitmask.
//
// Tracing is observational only: enabling it must never change any
// algorithmic result (core_test pins this down), and a compile's metrics
// are snapshotted into its CompileResult so stats_json stays a pure
// function of the result.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tqec::trace {

namespace detail {
/// Bitmask of enabled collection surfaces; a span arms when any bit is
/// set, so the disabled fast path stays one relaxed load.
inline constexpr unsigned kSurfaceTrace = 1u;   // spans + metrics registry
inline constexpr unsigned kSurfaceFlight = 2u;  // flight-recorder ring
extern std::atomic<unsigned> g_surfaces;
inline unsigned surfaces() {
  return g_surfaces.load(std::memory_order_relaxed);
}
}  // namespace detail

/// Whether trace collection (spans into the Chrome-trace buffer, registry
/// metrics) is on — one relaxed load; the fast path of every
/// instrumentation site.
inline bool enabled() {
  return (detail::surfaces() & detail::kSurfaceTrace) != 0;
}

/// Turn collection on or off. Thread-safe; spans already open keep
/// recording to their buffer so the exported file stays well-formed.
void set_enabled(bool on);

/// Checked parse of an on/off environment value (any integer; nonzero =
/// on). nullptr/empty is off; malformed text emits one stderr warning
/// naming the variable and counts as off — a bad TQEC_TRACE value must
/// never abort the process or silently enable tracing. Exposed so the
/// env-parsing contract is unit-testable without re-exec.
bool parse_env_enabled(const char* name, const char* value);

/// Small dense id of the calling thread (0, 1, 2, ... in first-use order).
/// Shared by the tracer's tid rows and the log-line prefix.
int thread_id();

/// Nanoseconds since the process-wide trace epoch (first use).
std::uint64_t now_ns();

// ---------------------------------------------------------------------------
// Process memory probes
//
// Always available (not gated on set_enabled): the sharded compiler's
// memory-ceiling claim is measured through these, and tqec_serve stamps
// them into every access-log line. Reads /proc/self/status on Linux
// (VmHWM / VmRSS) with a getrusage fallback for the high-water mark;
// returns 0 where the platform offers neither.

/// Peak resident set size of this process in bytes (high-water mark).
std::uint64_t peak_rss_bytes();
/// Current resident set size in bytes (live pages; 0 if unavailable).
std::uint64_t current_rss_bytes();

// ---------------------------------------------------------------------------
// Spans

/// RAII scoped span. Prefer the TQEC_TRACE_SPAN macro; use the class
/// directly (with end()) when a span must close before scope exit.
/// `name` must be a string literal (stored by pointer, never copied).
class Span {
 public:
  explicit Span(const char* name) {
    if (detail::surfaces() != 0) arm(name);
  }
  /// Variant with a free-form detail string, shown in the trace viewer's
  /// args pane. The detail is built by the caller even when tracing is
  /// off, so keep this overload out of per-iteration hot paths.
  Span(const char* name, std::string detail) {
    if (detail::surfaces() != 0) {
      arm(name);
      detail_ = std::move(detail);
    }
  }
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Close the span now (idempotent; the destructor becomes a no-op).
  void end() {
    if (armed_) finish();
  }

 private:
  void arm(const char* name);
  void finish();

  const char* name_ = nullptr;
  std::string detail_;
  std::uint64_t start_ns_ = 0;
  /// Surfaces enabled when the span armed; the span records to exactly
  /// these on completion, so a surface toggled mid-span keeps its stream
  /// well-formed (an armed span still lands where collection was on).
  unsigned surfaces_ = 0;
  bool armed_ = false;
};

#define TQEC_TRACE_CAT2(a, b) a##b
#define TQEC_TRACE_CAT(a, b) TQEC_TRACE_CAT2(a, b)
/// TQEC_TRACE_SPAN("stage.name") or TQEC_TRACE_SPAN("stage.name", detail).
#define TQEC_TRACE_SPAN(...) \
  ::tqec::trace::Span TQEC_TRACE_CAT(tqec_trace_span_, __LINE__)(__VA_ARGS__)

/// Number of span events currently buffered across all threads.
std::size_t event_count();
/// Events discarded because a thread buffer hit its cap (runaway guard).
std::uint64_t dropped_events();
/// Drop all buffered span events (thread ids are retained).
void reset_events();

/// Serialize every buffered span as Chrome trace-event JSON
/// ({"traceEvents": [...]}, complete "X" events in microseconds, pid 1,
/// tid = thread_id() of the recording thread, plus thread_name metadata).
std::string chrome_trace_json();
/// Write chrome_trace_json() to `path`; false on I/O error.
bool write_chrome_trace_file(const std::string& path);

// ---------------------------------------------------------------------------
// Flight recorder
//
// A bounded ring of recently completed spans per recording thread,
// overwrite-oldest. Independent of the Chrome-trace buffer: a daemon keeps
// it always on (memory is bounded by threads * kFlightRecorderCapacity *
// sizeof(FlightRecord)) and asks "what did this thread just do?" after the
// fact — e.g. to attach the span tree of a slow request to its response.

/// One completed span as remembered by the ring. `name` is the span's
/// string literal (stored by pointer, never copied).
struct FlightRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  int tid = 0;
};

/// Per-thread ring capacity (completed spans remembered per thread).
inline constexpr std::size_t kFlightRecorderCapacity = 256;

/// Turn the flight recorder on or off (independent of set_enabled).
void set_flight_recorder_enabled(bool on);
inline bool flight_recorder_enabled() {
  return (detail::surfaces() & detail::kSurfaceFlight) != 0;
}

/// Completed spans recorded by the *calling* thread with
/// start_ns >= min_start_ns, ordered oldest-first by start time. A worker
/// thread that just ran a request passes the request's admission timestamp
/// to get exactly that request's spans (inner parallel workers keep their
/// own rings).
std::vector<FlightRecord> flight_records_this_thread(
    std::uint64_t min_start_ns = 0);

/// Same, merged across every recording thread (diagnostics / tests).
std::vector<FlightRecord> flight_records_all(std::uint64_t min_start_ns = 0);

/// Drop every thread's ring contents.
void reset_flight_records();

// ---------------------------------------------------------------------------
// Histograms

/// Number of buckets: kHistogramFiniteBuckets log-spaced finite upper
/// bounds (10^(1/3) apart, 1us .. ~464s — three buckets per decade of
/// latency) plus one overflow (+Inf) bucket.
inline constexpr std::size_t kHistogramFiniteBuckets = 27;
inline constexpr std::size_t kHistogramBuckets = kHistogramFiniteBuckets + 1;

/// Upper bound (inclusive, seconds) of bucket `i`; +infinity for the last.
/// A sample lands in the first bucket whose bound is >= the value.
double histogram_bucket_bound(std::size_t i);

/// Point-in-time aggregate of one histogram, merged over all shards.
/// Sums are kept in integer nanoseconds so the merge is exact and
/// commutative: the same multiset of samples yields bit-identical totals
/// for any recording-thread count.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t sum_ns = 0;
  std::int64_t min_ns = 0;  // 0 when count == 0
  std::int64_t max_ns = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};  // per-bucket
  double sum_s() const { return static_cast<double>(sum_ns) / 1e9; }
  double min_s() const { return static_cast<double>(min_ns) / 1e9; }
  double max_s() const { return static_cast<double>(max_ns) / 1e9; }
  double mean_s() const {
    return count > 0 ? sum_s() / static_cast<double>(count) : 0.0;
  }
};

/// Fixed-layout latency histogram with per-thread shards. record_s() is
/// lock-free: it locates the calling thread's shard through an atomic
/// chunk table (allocated once per 64 thread ids) and bumps relaxed
/// atomics; no mutex is ever taken on the record path. Snapshots sum the
/// shards — commutative integer adds, so aggregates are deterministic for
/// any thread count. Standalone instances are always on (the owner decides
/// whether to call record_s); the registry variant below is gated on
/// trace::enabled().
class Histogram {
 public:
  explicit Histogram(std::string name);
  ~Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one sample (seconds; negative values clamp to 0). Safe from
  /// any thread, any time.
  void record_s(double seconds);

  HistogramSnapshot snapshot() const;
  /// Zero every shard (counts recorded concurrently with a reset may land
  /// on either side — callers reset only between measurement periods).
  void reset();
  const std::string& name() const { return name_; }

 private:
  struct Shard;
  static constexpr std::size_t kChunkSize = 64;   // shards per chunk
  static constexpr std::size_t kMaxChunks = 64;   // covers 4096 thread ids
  Shard* shard_for_this_thread();

  std::string name_;
  std::array<std::atomic<Shard*>, kMaxChunks> chunks_{};
};

// ---------------------------------------------------------------------------
// Metrics registry

/// Add `delta` to the named counter (no-op when disabled).
void counter_add(const char* name, long long delta);
/// Set the named gauge (last write wins; no-op when disabled).
void gauge_set(const char* name, double value);
/// Append one (x, y) sample to the named series (no-op when disabled).
void series_append(const char* name, double x, double y);
/// Replace the named series wholesale (no-op when disabled; x and y must
/// be the same length).
void series_put(const char* name, std::vector<double> x,
                std::vector<double> y);

/// Record one sample into the named registry histogram (no-op when
/// disabled). The histogram itself shards lock-free; only the name lookup
/// takes the registry mutex, like every other registry call.
void histogram_record(const char* name, double seconds);

struct SeriesChannel {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Point-in-time copy of the registry, sorted by name (deterministic).
/// Histograms with zero samples are omitted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, long long>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<SeriesChannel> series;
  std::vector<HistogramSnapshot> histograms;
  bool empty() const {
    return counters.empty() && gauges.empty() && series.empty() &&
           histograms.empty();
  }
};

MetricsSnapshot snapshot_metrics();
/// Clear every counter, gauge, series, and histogram (core::compile does
/// this at entry so each result snapshots only its own run).
void reset_metrics();

// ---------------------------------------------------------------------------
// OpenMetrics / Prometheus text exposition

/// Render counters, gauges, and histograms in the OpenMetrics text format
/// (one "# TYPE" line per family, cumulative `le` buckets with _sum and
/// _count, terminated by "# EOF") so a standard scraper can consume them.
/// Metric names are sanitized to [a-zA-Z0-9_:]; counter names should be
/// passed *without* the `_total` suffix (it is appended per the spec).
std::string openmetrics_text(
    const std::vector<std::pair<std::string, long long>>& counters,
    const std::vector<std::pair<std::string, double>>& gauges,
    const std::vector<HistogramSnapshot>& histograms);

/// One histogram as a JSON object (no name, no trailing newline):
///   {"count": C, "sum_s": S, "min_s": m, "max_s": M, "mean_s": A,
///    "buckets": [{"le": 0.001, "n": 2}, ..., {"le": "+Inf", "n": 1}]}
/// Zero-count buckets are omitted; the overflow bucket's bound is the
/// string "+Inf" (JSON has no infinity literal). Shared by stats_json, the
/// tqec_serve admin protocol, and the access log.
std::string histogram_json(const HistogramSnapshot& h);

}  // namespace tqec::trace
