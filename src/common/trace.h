// Pipeline tracing and metrics: scoped spans, a named counter/gauge/series
// registry, and Chrome trace-event export.
//
// Everything is off by default and compiles down to one relaxed atomic load
// per call site when disabled, so instrumentation can stay in hot paths
// permanently. Enable with trace::set_enabled(true) (the CLI's --trace-json
// / --stats-json flags and the bench harnesses' REPRO_TRACE_JSON knob do
// this) or by setting TQEC_TRACE=1 in the environment.
//
// Three collection surfaces:
//
//   Spans    — RAII scopes recorded per thread (own lock-free-in-practice
//              buffer per thread, so worker threads of the parallel stages
//              never contend). TQEC_TRACE_SPAN("route.pathfinder") at the
//              top of a scope records one complete event; names must be
//              string literals (they are stored by pointer). Export the
//              accumulated events with chrome_trace_json() /
//              write_chrome_trace_file() and open the file in Perfetto or
//              chrome://tracing; each recording thread appears as its own
//              tid row, so the jobs>1 place+route attempts separate.
//
//   Counters — named monotonic totals (trace::counter_add). Adds are
//              commutative, so concurrent attempts publishing to the same
//              counter still yield a deterministic final value.
//
//   Gauges / series — last-write named values and sampled (x, y) curves
//              (SA cost per batch, overused cells per PathFinder
//              iteration). Published from the sequential reduction in
//              core::compile so their content never depends on thread
//              scheduling.
//
// Tracing is observational only: enabling it must never change any
// algorithmic result (core_test pins this down), and a compile's metrics
// are snapshotted into its CompileResult so stats_json stays a pure
// function of the result.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tqec::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Whether collection is on (one relaxed load; the fast path of every
/// instrumentation site).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turn collection on or off. Thread-safe; spans already open keep
/// recording to their buffer so the exported file stays well-formed.
void set_enabled(bool on);

/// Checked parse of an on/off environment value (any integer; nonzero =
/// on). nullptr/empty is off; malformed text emits one stderr warning
/// naming the variable and counts as off — a bad TQEC_TRACE value must
/// never abort the process or silently enable tracing. Exposed so the
/// env-parsing contract is unit-testable without re-exec.
bool parse_env_enabled(const char* name, const char* value);

/// Small dense id of the calling thread (0, 1, 2, ... in first-use order).
/// Shared by the tracer's tid rows and the log-line prefix.
int thread_id();

/// Nanoseconds since the process-wide trace epoch (first use).
std::uint64_t now_ns();

// ---------------------------------------------------------------------------
// Spans

/// RAII scoped span. Prefer the TQEC_TRACE_SPAN macro; use the class
/// directly (with end()) when a span must close before scope exit.
/// `name` must be a string literal (stored by pointer, never copied).
class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) arm(name);
  }
  /// Variant with a free-form detail string, shown in the trace viewer's
  /// args pane. The detail is built by the caller even when tracing is
  /// off, so keep this overload out of per-iteration hot paths.
  Span(const char* name, std::string detail) {
    if (enabled()) {
      arm(name);
      detail_ = std::move(detail);
    }
  }
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Close the span now (idempotent; the destructor becomes a no-op).
  void end() {
    if (armed_) finish();
  }

 private:
  void arm(const char* name);
  void finish();

  const char* name_ = nullptr;
  std::string detail_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

#define TQEC_TRACE_CAT2(a, b) a##b
#define TQEC_TRACE_CAT(a, b) TQEC_TRACE_CAT2(a, b)
/// TQEC_TRACE_SPAN("stage.name") or TQEC_TRACE_SPAN("stage.name", detail).
#define TQEC_TRACE_SPAN(...) \
  ::tqec::trace::Span TQEC_TRACE_CAT(tqec_trace_span_, __LINE__)(__VA_ARGS__)

/// Number of span events currently buffered across all threads.
std::size_t event_count();
/// Events discarded because a thread buffer hit its cap (runaway guard).
std::uint64_t dropped_events();
/// Drop all buffered span events (thread ids are retained).
void reset_events();

/// Serialize every buffered span as Chrome trace-event JSON
/// ({"traceEvents": [...]}, complete "X" events in microseconds, pid 1,
/// tid = thread_id() of the recording thread, plus thread_name metadata).
std::string chrome_trace_json();
/// Write chrome_trace_json() to `path`; false on I/O error.
bool write_chrome_trace_file(const std::string& path);

// ---------------------------------------------------------------------------
// Metrics registry

/// Add `delta` to the named counter (no-op when disabled).
void counter_add(const char* name, long long delta);
/// Set the named gauge (last write wins; no-op when disabled).
void gauge_set(const char* name, double value);
/// Append one (x, y) sample to the named series (no-op when disabled).
void series_append(const char* name, double x, double y);
/// Replace the named series wholesale (no-op when disabled; x and y must
/// be the same length).
void series_put(const char* name, std::vector<double> x,
                std::vector<double> y);

struct SeriesChannel {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Point-in-time copy of the registry, sorted by name (deterministic).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, long long>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<SeriesChannel> series;
  bool empty() const {
    return counters.empty() && gauges.empty() && series.empty();
  }
};

MetricsSnapshot snapshot_metrics();
/// Clear every counter, gauge, and series (core::compile does this at
/// entry so each result snapshots only its own run).
void reset_metrics();

}  // namespace tqec::trace
