// Disjoint-set (union-find) with path halving and union by size.
// Used by iterative dual bridging (net merging) and by the geometry
// validator (connected-component checks on defect segments).
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace tqec {

class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(std::size_t n) { reset(n); }

  void reset(std::size_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), 0);
    size_.assign(n, 1);
    components_ = n;
  }

  std::size_t size() const { return parent_.size(); }
  std::size_t component_count() const { return components_; }

  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

  /// Merge the sets containing a and b; returns false if already merged.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  /// Number of elements in the set containing v.
  std::size_t set_size(std::size_t v) { return size_[find(v)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_ = 0;
};

}  // namespace tqec
