// Small string helpers for the RevLib parser and report formatting, plus
// checked numeric parsing for every input surface (CLI flags, environment
// variables, circuit file tokens). The checked parsers reject empty text,
// trailing garbage, and out-of-range values instead of the silent-zero /
// uncaught-std::invalid_argument behaviour of atoi/stoi.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tqec {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of whitespace; no empty tokens.
std::vector<std::string> split_ws(std::string_view s);

/// Split on a single delimiter character; keeps empty tokens.
std::vector<std::string> split(std::string_view s, char delim);

/// True if s starts with the given prefix.
bool starts_with(std::string_view s, std::string_view prefix);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Format an integer with thousands separators ("1234567" -> "1,234,567").
std::string with_commas(long long value);

// ---------------------------------------------------------------------------
// Checked numeric parsing.
//
// The try_* forms return nullopt on any defect (empty text, non-numeric
// characters, trailing garbage, overflow). The throwing forms raise
// TqecError naming the offending context and text, e.g.
//   parse_int("banana", "--jobs")
//     -> TqecError("--jobs: expected an integer, got 'banana'")
// so a malformed flag or file token becomes a diagnosable error instead of
// an uncaught std::invalid_argument abort. Leading/trailing ASCII
// whitespace is accepted; leading '+' is not (matching strtol-free
// from_chars semantics, and no input format here uses it).

/// Parse a signed 64-bit integer; nullopt on malformed/overflow.
std::optional<std::int64_t> try_parse_i64(std::string_view text);
/// Parse an unsigned 64-bit integer; nullopt on malformed/overflow/sign.
std::optional<std::uint64_t> try_parse_u64(std::string_view text);
/// Parse a finite double; nullopt on malformed text or trailing garbage.
std::optional<double> try_parse_double(std::string_view text);

/// Checked parse of a signed int; throws TqecError naming `what`.
int parse_int(std::string_view text, std::string_view what);
/// Checked parse of a signed 64-bit integer; throws TqecError naming `what`.
std::int64_t parse_i64(std::string_view text, std::string_view what);
/// Checked parse of an unsigned 64-bit integer; throws TqecError naming
/// `what`.
std::uint64_t parse_u64(std::string_view text, std::string_view what);
/// Checked parse of a finite double; throws TqecError naming `what`.
double parse_double(std::string_view text, std::string_view what);

}  // namespace tqec
