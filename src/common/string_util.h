// Small string helpers for the RevLib parser and report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tqec {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of whitespace; no empty tokens.
std::vector<std::string> split_ws(std::string_view s);

/// Split on a single delimiter character; keeps empty tokens.
std::vector<std::string> split(std::string_view s, char delim);

/// True if s starts with the given prefix.
bool starts_with(std::string_view s, std::string_view prefix);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Format an integer with thousands separators ("1234567" -> "1,234,567").
std::string with_commas(long long value);

}  // namespace tqec
