// Minimal deterministic parallelism substrate (no external dependencies).
//
// parallel_for(n, jobs, fn) runs fn(i) for every index i in [0, n) across
// up to `jobs` threads (the calling thread participates, so jobs == 1 never
// spawns). Work is handed out through a shared atomic counter, which keeps
// the scheduling dynamic while the *results* stay deterministic under the
// repo-wide reduction rule (DESIGN.md):
//
//   every parallel stage writes iteration i's result into slot i of a
//   pre-sized buffer and performs selection/reduction sequentially after
//   the join, under a total order that never depends on thread count or
//   scheduling — so `--jobs=1` and `--jobs=N` are bit-identical.
//
// Exceptions thrown by iterations are captured and the one with the lowest
// index is rethrown after all workers drain (again independent of
// scheduling); the remaining iterations still run, which is fine because
// they are independent by contract.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tqec {

/// Worker count for a `jobs` request: a positive request is taken as-is;
/// zero or negative means "auto" (the hardware concurrency, at least 1).
inline int resolve_jobs(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Run fn(i) for every i in [0, n) on up to `jobs` threads. Blocks until
/// every iteration finished; rethrows the lowest-index exception, if any.
inline void parallel_for(std::size_t n, int jobs,
                         const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers =
      std::min(n, static_cast<std::size_t>(std::max(1, jobs)));
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = n;
  auto work = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(work);
  work();
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Like parallel_for, but fn(slot, i) also receives the worker slot in
/// [0, workers) running the iteration — slot 0 is always the calling
/// thread. Slots let iterations own heavyweight per-worker scratch (e.g.
/// the router's SearchScratch) without sharing: at most one iteration runs
/// on a slot at any time. The slot an iteration lands on is scheduling-
/// dependent, so by the reduction rule it must only select *which* scratch
/// to use, never influence the iteration's result.
inline void parallel_for_slots(
    std::size_t n, int jobs,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers =
      std::min(n, static_cast<std::size_t>(std::max(1, jobs)));
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = n;
  auto work = [&](std::size_t slot) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(slot, i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t)
    threads.emplace_back(work, t);
  work(0);
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Persistent worker pool with a bounded queue — the admission-control
/// substrate of tqec_serve. Unlike parallel_for (a one-shot fork/join over
/// a fixed index range), the pool accepts independent jobs over its whole
/// lifetime and rejects new ones when the queue is full, so an overloaded
/// server degrades to fast structured "overloaded" responses instead of
/// unbounded memory growth. Jobs must not throw (wrap and report); an
/// escaped exception terminates the process by design.
class WorkerPool {
 public:
  /// `threads` >= 1 dedicated workers; `queue_limit` bounds the number of
  /// jobs admitted but not yet started (0 = unbounded).
  WorkerPool(int threads, std::size_t queue_limit)
      : queue_limit_(queue_limit) {
    const int n = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
      workers_.emplace_back([this] { run_worker(); });
  }

  ~WorkerPool() { shutdown(); }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Admit a job. Returns false — without blocking — when the queue is at
  /// its limit or the pool is shutting down; the caller owns the rejection
  /// response.
  bool submit(std::function<void()> job) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return false;
      if (queue_limit_ > 0 && queue_.size() >= queue_limit_) return false;
      queue_.push_back(std::move(job));
    }
    wake_.notify_one();
    return true;
  }

  /// Jobs admitted but not yet handed to a worker.
  std::size_t pending() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Dedicated worker threads (0 after shutdown).
  std::size_t worker_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return workers_.size();
  }

  /// Stop accepting jobs, drain the queue, run everything already
  /// admitted, and join the workers. Idempotent; called by the destructor.
  void shutdown() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

 private:
  void run_worker() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  std::size_t queue_limit_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tqec
