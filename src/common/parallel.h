// Minimal deterministic parallelism substrate (no external dependencies).
//
// parallel_for(n, jobs, fn) runs fn(i) for every index i in [0, n) across
// up to `jobs` threads (the calling thread participates, so jobs == 1 never
// spawns). Work is handed out through a shared atomic counter, which keeps
// the scheduling dynamic while the *results* stay deterministic under the
// repo-wide reduction rule (DESIGN.md):
//
//   every parallel stage writes iteration i's result into slot i of a
//   pre-sized buffer and performs selection/reduction sequentially after
//   the join, under a total order that never depends on thread count or
//   scheduling — so `--jobs=1` and `--jobs=N` are bit-identical.
//
// Exceptions thrown by iterations are captured and the one with the lowest
// index is rethrown after all workers drain (again independent of
// scheduling); the remaining iterations still run, which is fine because
// they are independent by contract.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tqec {

/// Worker count for a `jobs` request: a positive request is taken as-is;
/// zero or negative means "auto" (the hardware concurrency, at least 1).
inline int resolve_jobs(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Run fn(i) for every i in [0, n) on up to `jobs` threads. Blocks until
/// every iteration finished; rethrows the lowest-index exception, if any.
inline void parallel_for(std::size_t n, int jobs,
                         const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers =
      std::min(n, static_cast<std::size_t>(std::max(1, jobs)));
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = n;
  auto work = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(work);
  work();
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Like parallel_for, but fn(slot, i) also receives the worker slot in
/// [0, workers) running the iteration — slot 0 is always the calling
/// thread. Slots let iterations own heavyweight per-worker scratch (e.g.
/// the router's SearchScratch) without sharing: at most one iteration runs
/// on a slot at any time. The slot an iteration lands on is scheduling-
/// dependent, so by the reduction rule it must only select *which* scratch
/// to use, never influence the iteration's result.
inline void parallel_for_slots(
    std::size_t n, int jobs,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers =
      std::min(n, static_cast<std::size_t>(std::max(1, jobs)));
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = n;
  auto work = [&](std::size_t slot) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(slot, i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t)
    threads.emplace_back(work, t);
  work(0);
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tqec
