// Error handling for the TQEC compression library.
//
// Invariant violations and invalid inputs raise TqecError (derived from
// std::runtime_error). TQEC_REQUIRE is for checking preconditions on public
// API boundaries; TQEC_ASSERT documents internal invariants and is compiled
// in all build types (the algorithms here are cheap relative to SA/routing,
// so the checks cost nothing measurable).
#pragma once

#include <stdexcept>
#include <string>

namespace tqec {

class TqecError : public std::runtime_error {
 public:
  explicit TqecError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::string full = std::string(kind) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw TqecError(full);
}
}  // namespace detail

#define TQEC_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond))                                                             \
      ::tqec::detail::fail("precondition", #cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define TQEC_ASSERT(cond, msg)                                             \
  do {                                                                     \
    if (!(cond))                                                           \
      ::tqec::detail::fail("invariant", #cond, __FILE__, __LINE__, (msg)); \
  } while (0)

}  // namespace tqec
