// Error handling for the TQEC compression library.
//
// Invariant violations and invalid inputs raise TqecError (derived from
// std::runtime_error). TQEC_REQUIRE is for checking preconditions on public
// API boundaries; TQEC_ASSERT documents internal invariants and is compiled
// in all build types (the algorithms here are cheap relative to SA/routing,
// so the checks cost nothing measurable).
#pragma once

#include <stdexcept>
#include <string>

namespace tqec {

class TqecError : public std::runtime_error {
 public:
  explicit TqecError(const std::string& what) : std::runtime_error(what) {}
};

/// Structured parse failure raised by the input readers (RevLib .real, the
/// .icm deserializer, the serve request decoder). Carries the source name
/// and 1-based line number (0 when the defect is not tied to one line, e.g.
/// a missing header) so callers — the tqec::Compiler facade in particular —
/// can report a per-request diagnosis instead of a process abort.
class ParseError : public TqecError {
 public:
  ParseError(const std::string& source, int line, const std::string& message)
      : TqecError(line > 0
                      ? source + ":" + std::to_string(line) + ": " + message
                      : source + ": " + message),
        source_(source), line_(line), brief_(message) {}

  const std::string& source() const { return source_; }
  int line() const { return line_; }
  /// The message without the source:line prefix.
  const std::string& brief() const { return brief_; }

 private:
  std::string source_;
  int line_;
  std::string brief_;
};

/// Raised by core::compile when its CancelToken fires at a stage boundary
/// (cooperative cancellation; see common/cancel.h).
class CancelledError : public TqecError {
 public:
  explicit CancelledError(const std::string& stage)
      : TqecError("compile cancelled at stage '" + stage + "'"),
        stage_(stage) {}
  const std::string& stage() const { return stage_; }

 private:
  std::string stage_;
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::string full = std::string(kind) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw TqecError(full);
}
}  // namespace detail

#define TQEC_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond))                                                             \
      ::tqec::detail::fail("precondition", #cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define TQEC_ASSERT(cond, msg)                                             \
  do {                                                                     \
    if (!(cond))                                                           \
      ::tqec::detail::fail("invariant", #cond, __FILE__, __LINE__, (msg)); \
  } while (0)

}  // namespace tqec
