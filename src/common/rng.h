// Deterministic pseudo-random number generation.
//
// Every randomized stage of the flow (workload generation, greedy restarts,
// simulated annealing) takes an explicit seed so that tests and the
// table-regeneration benches are bit-reproducible across runs and platforms.
// We use xoshiro256** seeded through SplitMix64 rather than std::mt19937 to
// guarantee identical streams independent of the standard library.
#pragma once

#include <cstdint>

namespace tqec {

/// SplitMix64 step; used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x1234567ull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  constexpr std::uint64_t below(std::uint64_t n) {
    // Debiased via rejection sampling (Lemire-style threshold).
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  constexpr int range(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-restart streams).
  constexpr Rng fork() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace tqec
