// Spatially disjoint net batching for the parallel PathFinder negotiation
// loop (DESIGN.md §Routing).
//
// Within one negotiation iteration the pending nets are partitioned into
// batches such that any two nets of a batch have disjoint *declared
// regions* (the net's pin bounding box inflated by the restricted-search
// margin, widened to cover its warm search window when --route-windows is
// on — the declared region always contains the cells the net's first
// connect attempts may search). Nets of a batch route concurrently
// against a read snapshot of
// the fabric: because their searches are confined to disjoint cell sets,
// each net's result is independent of its batch-mates and therefore equal
// to what a serial execution of the same batch sequence would produce —
// the schedule, and with it the routing result, never depends on the
// worker count. A search can still escape its declared region through the
// failure-inflated retries; the commit phase detects such collisions and
// requeues the net (router.cpp).
//
// Batch formation is greedy first-fit over the deterministic net order,
// with a per-batch interval index on the x-axis so the overlap probe
// stabs only the members whose x-extent can intersect the candidate.
#pragma once

#include <vector>

#include "common/vec3.h"

namespace tqec::route {

struct BatchPlan {
  /// Batches in commit order; each batch lists components in the
  /// deterministic net order. Concatenated, the batches are a permutation
  /// of the pending nets.
  std::vector<std::vector<int>> batches;
};

/// Partition `pending` (components in deterministic net order) into
/// disjoint-region batches. `region_of[c]` is component c's declared
/// region. With `singletons` every net gets its own batch — the classic
/// serial PathFinder schedule (`--route-serial`), where each net routes
/// against the fully up-to-date fabric.
BatchPlan plan_batches(const std::vector<int>& pending,
                       const std::vector<Box3>& region_of, bool singletons);

}  // namespace tqec::route
