#include "route/search_kernel.h"

#include <cmath>

namespace tqec::route {

Fabric::Fabric(const place::NodeSet& nodes, const place::Placement& placement,
               int margin)
    : box_(placement.core.inflated(margin)) {
  dims_ = box_.dims();
  const std::size_t n = cell_count();
  blocked_.assign(n, 0);
  module_at_.assign(n, -1);
  usage_.assign(n, 0);
  capacity_.assign(n, 1);
  history_.assign(n, 0.0f);
  nets_at_.assign(n, {});

  for (const geom::DistillBox& b : placement.boxes) {
    const Box3 e = b.extent();
    for (int x = e.lo.x; x <= e.hi.x; ++x)
      for (int y = e.lo.y; y <= e.hi.y; ++y)
        for (int z = e.lo.z; z <= e.hi.z; ++z)
          blocked_[index({x, y, z})] = 1;
  }
  for (std::size_t m = 0; m < placement.module_cell.size(); ++m)
    module_at_[index(placement.module_cell[m])] = static_cast<int>(m);

  // Pin capacity: a module loop accommodates one crossing per component
  // pinned to it (the loop is spatially extended in the paper's geometry;
  // our cell model charges it one unit per threading net).
  for (const auto& pins : nodes.net_pins)
    for (pdgraph::ModuleId m : pins)
      ++capacity_[index(placement.module_cell[static_cast<std::size_t>(m)])];
  for (std::size_t i = 0; i < n; ++i)
    if (module_at_[i] >= 0)  // base 1 was counted on top
      capacity_[i] = detail::counter_add(capacity_[i], -1);
}

void BucketQueue::rebase() {
  TQEC_ASSERT(!overflow_.empty(), "bucket queue drained with live entries");
  std::int64_t min_key = overflow_.front().key;
  for (const OverflowEntry& e : overflow_)
    min_key = std::min(min_key, e.key);
  base_ = min_key;
  cursor_ = min_key;
  std::size_t kept = 0;
  for (OverflowEntry& e : overflow_) {
    if (e.key < base_ + static_cast<std::int64_t>(kWindow)) {
      const std::size_t b = static_cast<std::size_t>(e.key - base_);
      if (buckets_[b].empty()) dirty_.push_back(b);
      buckets_[b].push_back({e.g, e.cell});
    } else {
      overflow_[kept++] = e;
    }
  }
  overflow_.resize(kept);
}

namespace {

/// Admissible (and consistent) heuristic: Manhattan distance to the tree
/// bounding box.
float heuristic(Vec3 p, const Box3& tree_box) {
  auto axis = [](int v, int lo, int hi) {
    if (v < lo) return lo - v;
    if (v > hi) return v - hi;
    return 0;
  };
  return static_cast<float>(axis(p.x, tree_box.lo.x, tree_box.hi.x) +
                            axis(p.y, tree_box.lo.y, tree_box.hi.y) +
                            axis(p.z, tree_box.lo.z, tree_box.hi.z));
}

struct BucketOpenList {
  BucketQueue& q;
  void push(float f, float g, std::uint32_t cell) {
    q.push(static_cast<std::int64_t>(f), g, cell);
  }
  bool empty() const { return q.empty(); }
  BucketQueue::Entry pop() { return q.pop(); }
};

struct HeapOpenList {
  HeapQueue& q;
  void push(float f, float g, std::uint32_t cell) { q.push(f, g, cell); }
  bool empty() const { return q.empty(); }
  HeapQueue::Entry pop() { return q.pop(); }
};

/// Connect `source` to the partially built tree by A* restricted to
/// `region`. On success the backtracked path joins the tree (cells, box,
/// tree marks). The open-list policy is the only templated piece: the
/// bucket queue pops an integer-keyed lower bound (ties LIFO), the heap
/// pops exact f order (ties in std::priority_queue's order).
template <typename OpenList>
bool connect(const Fabric& fabric, SearchScratch& scratch, OpenList open,
             Vec3 source, Box3& tree_box, double present_factor,
             int region_margin, SearchStats& stats) {
  const std::size_t source_idx = fabric.index(source);
  if (scratch.on_tree(source_idx)) return true;

  const Box3 region = tree_box.expanded(source).inflated(region_margin);

  scratch.begin_search();
  scratch.set_g(source_idx, 0.0f, -1);
  open.push(heuristic(source, tree_box), 0.0f,
            static_cast<std::uint32_t>(source_idx));
  ++stats.queue_pushes;

  std::size_t goal = static_cast<std::size_t>(-1);
  while (!open.empty()) {
    const auto top = open.pop();
    ++stats.queue_pops;
    if (top.g > scratch.g[top.cell]) continue;  // stale entry
    if (scratch.on_tree(top.cell)) {
      goal = top.cell;
      break;
    }
    const Vec3 p = fabric.cell_at(top.cell);
    for (int dir = 0; dir < 6; ++dir) {
      const Vec3 q = p + kNeighbours[static_cast<std::size_t>(dir)];
      if (!fabric.inside(q) || !region.contains(q)) continue;
      const std::size_t qi = fabric.index(q);
      if (fabric.blocked(qi)) continue;
      const int mod = fabric.module_at(qi);
      if (mod >= 0 && !scratch.own_pin(qi))
        continue;  // unrelated primal module: spurious braid
      double cost = 1.0 + fabric.history(qi);
      const int over = fabric.usage(qi) - (fabric.capacity(qi) - 1);
      if (over > 0) cost += present_factor * over;
      const float ng = top.g + static_cast<float>(cost);
      if (!scratch.seen(qi) || ng < scratch.g[qi]) {
        scratch.set_g(qi, ng, dir);
        open.push(ng + heuristic(q, tree_box), ng,
                  static_cast<std::uint32_t>(qi));
        ++stats.queue_pushes;
      }
    }
  }
  if (goal == static_cast<std::size_t>(-1)) return false;

  // Backtrack from goal to source, adding the path to the tree.
  std::size_t cur = goal;
  for (;;) {
    if (!scratch.on_tree(cur)) {
      scratch.mark_tree(cur);
      scratch.tree_cells.push_back(cur);
      tree_box = tree_box.expanded(fabric.cell_at(cur));
    }
    const int dir = scratch.parent[cur];
    if (cur == source_idx || dir < 0) break;
    // parent = cell we came FROM: step back against the stored direction.
    const Vec3 p =
        fabric.cell_at(cur) - kNeighbours[static_cast<std::size_t>(dir)];
    cur = fabric.index(p);
  }
  return true;
}

/// The f-value planning (Fig. 15) assigns each chain module its access
/// cells: the free cells through which its dual segments exit. Rotated
/// nodes rotate the side; a cell claimed by a neighbouring structure drops
/// that constraint rather than failing.
std::vector<Vec3> access_cells_of(const Fabric& fabric,
                                  const place::NodeSet& nodes,
                                  const place::Placement& placement,
                                  pdgraph::ModuleId m) {
  std::vector<Vec3> cells;
  for (Vec3 off : nodes.access_offsets[static_cast<std::size_t>(m)]) {
    const int node = nodes.node_of_module[static_cast<std::size_t>(m)];
    if (!placement.node_rotated.empty() &&
        placement.node_rotated[static_cast<std::size_t>(node)])
      off = {off.z, off.y, off.x};
    const Vec3 cell = placement.module_cell[static_cast<std::size_t>(m)] + off;
    if (!fabric.inside(cell)) continue;
    const std::size_t i = fabric.index(cell);
    if (fabric.blocked(i) || fabric.module_at(i) >= 0) continue;
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace

bool route_one_net(const Fabric& fabric, SearchScratch& scratch,
                   const place::NodeSet& nodes,
                   const place::Placement& placement,
                   const RouteOptions& options, int component,
                   double present_factor, RoutedNet& out, SearchStats& stats) {
  const auto& pins = nodes.net_pins[static_cast<std::size_t>(component)];
  out.component = component;
  out.cells.clear();
  if (pins.empty()) return true;
  scratch.ensure(fabric.cell_count());

  // Mark own pins (unblocks this component's module cells).
  detail::bump_epoch(scratch.own_pin_epoch, scratch.own_pin_version);
  for (pdgraph::ModuleId m : pins)
    scratch.own_pin_version[fabric.index(
        placement.module_cell[static_cast<std::size_t>(m)])] =
        scratch.own_pin_epoch;

  // Access-cell constraints only bind components that span several
  // placement nodes: the f-value planning (Fig. 15) governs the dual
  // segments *leaving* a primal-bridging super-module, while a net wholly
  // inside one chain threads its module loops directly (Fig. 1(e)).
  bool spans_nodes = false;
  for (pdgraph::ModuleId m : pins)
    if (nodes.node_of_module[static_cast<std::size_t>(m)] !=
        nodes.node_of_module[static_cast<std::size_t>(pins.front())])
      spans_nodes = true;

  // Seed the tree at the first pin, then connect remaining pins nearest-
  // to-seed first; each pin's access cells join the tree right after it.
  struct PinEntry {
    Vec3 cell;
    std::vector<Vec3> access;
  };
  std::vector<PinEntry> entries;
  entries.reserve(pins.size());
  for (pdgraph::ModuleId m : pins)
    entries.push_back(
        {placement.module_cell[static_cast<std::size_t>(m)],
         spans_nodes ? access_cells_of(fabric, nodes, placement, m)
                     : std::vector<Vec3>{}});
  std::sort(entries.begin() + 1, entries.end(),
            [&](const PinEntry& a, const PinEntry& b) {
              return manhattan(a.cell, entries[0].cell) <
                     manhattan(b.cell, entries[0].cell);
            });

  scratch.begin_tree();
  scratch.tree_cells.clear();
  const std::size_t seed_idx = fabric.index(entries[0].cell);
  scratch.mark_tree(seed_idx);
  scratch.tree_cells.push_back(seed_idx);
  Box3 tree_box{entries[0].cell, entries[0].cell};

  auto connect_once = [&](Vec3 target, int margin) {
    if (options.bucket_queue) {
      scratch.bucket_queue.reset();
      return connect(fabric, scratch, BucketOpenList{scratch.bucket_queue},
                     target, tree_box, present_factor, margin, stats);
    }
    scratch.heap_queue.reset();
    return connect(fabric, scratch, HeapOpenList{scratch.heap_queue}, target,
                   tree_box, present_factor, margin, stats);
  };
  auto connect_with_retries = [&](Vec3 target) {
    int margin = options.region_margin;
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (connect_once(target, margin)) return true;
      margin *= 4;
    }
    // Last resort: unrestricted search over the whole fabric.
    return connect_once(target, 1 << 24);
  };

  // Ports connect before their pin: the pin then attaches to the tree
  // through its (capacity-boosted) port instead of squeezing past a
  // neighbouring structure on the unboosted side.
  bool ok = true;
  for (const Vec3& cell : entries[0].access)
    ok = ok && connect_with_retries(cell);
  for (std::size_t i = 1; ok && i < entries.size(); ++i) {
    for (const Vec3& cell : entries[i].access)
      ok = ok && connect_with_retries(cell);
    ok = ok && connect_with_retries(entries[i].cell);
  }

  out.cells.reserve(scratch.tree_cells.size());
  for (std::size_t i : scratch.tree_cells)
    out.cells.push_back(fabric.cell_at(i));
  return ok;
}

}  // namespace tqec::route
