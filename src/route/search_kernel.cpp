#include "route/search_kernel.h"

#include <cmath>

namespace tqec::route {

Fabric::Fabric(const place::NodeSet& nodes, const place::Placement& placement,
               int margin)
    : box_(placement.core.inflated(margin)) {
  dims_ = box_.dims();
  const std::size_t n = cell_count();
  blocked_.assign(n, 0);
  module_at_.assign(n, -1);
  usage_.assign(n, 0);
  capacity_.assign(n, 1);
  history_.assign(n, 0.0f);
  nets_at_.assign(n, {});

  for (const geom::DistillBox& b : placement.boxes) {
    // Clamp the rasterized extent to the fabric: with a small routing
    // margin a box edge can poke outside the margin-inflated core, and an
    // unclamped loop would index outside the fabric.
    const Box3 e = b.extent();
    const Vec3 lo{std::max(e.lo.x, box_.lo.x), std::max(e.lo.y, box_.lo.y),
                  std::max(e.lo.z, box_.lo.z)};
    const Vec3 hi{std::min(e.hi.x, box_.hi.x), std::min(e.hi.y, box_.hi.y),
                  std::min(e.hi.z, box_.hi.z)};
    for (int x = lo.x; x <= hi.x; ++x)
      for (int y = lo.y; y <= hi.y; ++y)
        for (int z = lo.z; z <= hi.z; ++z)
          blocked_[index({x, y, z})] = 1;
  }
  for (std::size_t m = 0; m < placement.module_cell.size(); ++m)
    module_at_[index(placement.module_cell[m])] = static_cast<int>(m);

  // Pin capacity: a module loop accommodates one crossing per component
  // pinned to it (the loop is spatially extended in the paper's geometry;
  // our cell model charges it one unit per threading net).
  for (const auto& pins : nodes.net_pins)
    for (pdgraph::ModuleId m : pins) {
      std::uint16_t& cap =
          capacity_[index(placement.module_cell[static_cast<std::size_t>(m)])];
      cap = detail::counter_add(cap, +1);
    }
  for (std::size_t i = 0; i < n; ++i)
    if (module_at_[i] >= 0)  // base 1 was counted on top
      capacity_[i] = detail::counter_add(capacity_[i], -1);

  // Index deltas of kNeighbours under the (y, z, x) row-major layout.
  const std::ptrdiff_t dx = 1;
  const std::ptrdiff_t dz = static_cast<std::ptrdiff_t>(dims_.x);
  const std::ptrdiff_t dy = static_cast<std::ptrdiff_t>(dims_.z) * dims_.x;
  strides_ = {dx, -dx, dy, -dy, dz, -dz};

  edge_mask_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 p = cell_at(i);
    std::uint8_t mask = 0;
    for (int d = 0; d < 6; ++d) {
      const Vec3 q = p + kNeighbours[static_cast<std::size_t>(d)];
      if (!inside(q)) continue;
      const std::size_t qi = index(q);
      if (blocked_[qi] == 0 && module_at_[qi] < 0)
        mask = static_cast<std::uint8_t>(mask | (1u << d));
    }
    edge_mask_[i] = mask;
  }
}

void Fabric::refresh_edges_into(std::size_t i) {
  const Vec3 p = cell_at(i);
  const bool passable = blocked_[i] == 0 && module_at_[i] < 0;
  for (int d = 0; d < 6; ++d) {
    const Vec3 q = p + kNeighbours[static_cast<std::size_t>(d)];
    if (!inside(q)) continue;
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << (d ^ 1));
    std::uint8_t& m = edge_mask_[index(q)];
    m = passable ? static_cast<std::uint8_t>(m | bit)
                 : static_cast<std::uint8_t>(m & ~bit);
  }
}

void BucketQueue::rebase() {
  TQEC_ASSERT(!overflow_.empty(), "bucket queue drained with live entries");
  std::int64_t min_key = overflow_.front().key;
  for (const OverflowEntry& e : overflow_)
    min_key = std::min(min_key, e.key);
  base_ = min_key;
  cursor_ = min_key;
  std::size_t kept = 0;
  for (OverflowEntry& e : overflow_) {
    if (e.key < base_ + static_cast<std::int64_t>(kWindow)) {
      const std::size_t b = static_cast<std::size_t>(e.key - base_);
      if (buckets_[b].empty()) dirty_.push_back(b);
      buckets_[b].push_back({e.g, e.cell});
    } else {
      overflow_[kept++] = e;
    }
  }
  overflow_.resize(kept);
}

ReachMap build_reach_map(const Fabric& fabric) {
  ReachMap reach;
  const std::size_t n = fabric.cell_count();
  reach.label.assign(n, -1);
  // Flood each unlabeled free cell's component. The edge mask already
  // encodes "neighbour is inside, unblocked, and not a module" — exactly
  // build-time free passability, since no repair block exists yet.
  std::vector<std::uint32_t> queue;
  for (std::size_t i = 0; i < n; ++i) {
    if (reach.label[i] >= 0 || fabric.blocked(i) || fabric.module_at(i) >= 0)
      continue;
    const std::int32_t l = reach.labels++;
    reach.label[i] = l;
    queue.clear();
    queue.push_back(static_cast<std::uint32_t>(i));
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t ci = queue[head];
      const std::uint8_t mask = fabric.edge_mask(ci);
      for (int dir = 0; dir < 6; ++dir) {
        if (!(mask & (1u << dir))) continue;
        const std::size_t qi = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(ci) + fabric.stride(dir));
        if (reach.label[qi] >= 0) continue;
        reach.label[qi] = l;
        queue.push_back(static_cast<std::uint32_t>(qi));
      }
    }
  }
  return reach;
}

LookaheadMap build_lookahead(const Fabric& fabric, const ReachMap& reach,
                             const place::NodeSet& nodes,
                             const place::Placement& placement,
                             int component) {
  LookaheadMap map;
  map.label_reachable.assign(static_cast<std::size_t>(reach.labels), 0);
  const auto& pins = nodes.net_pins[static_cast<std::size_t>(component)];
  if (pins.empty()) {
    map.built = true;
    return map;
  }

  // Candidate bridge cells: the component's unblocked own pin cells (a
  // blocked pin gets no own-pin overlay in route_one_net either, so
  // searches can never step onto it). Precompute each pin's face-adjacent
  // labels and own-pin neighbours once.
  std::vector<std::size_t> own;
  for (pdgraph::ModuleId m : pins) {
    const std::size_t pi = fabric.index(
        placement.module_cell[static_cast<std::size_t>(m)]);
    if (!fabric.blocked(pi)) own.push_back(pi);
  }
  std::sort(own.begin(), own.end());

  // Closure from the tree seed (route_one_net seeds the tree at the first
  // pin) over the bipartite label/pin graph: a label is entered only
  // through an adjacent own pin, a pin only from an adjacent label or an
  // adjacent pin (the own-pin overlay admits both).
  const std::size_t seed = fabric.index(
      placement.module_cell[static_cast<std::size_t>(pins.front())]);
  std::vector<std::uint8_t> pin_reached(own.size(), 0);
  std::vector<std::size_t> stack;  // own-pin positions to expand
  const auto push_pin = [&](std::size_t pi) {
    const auto it = std::lower_bound(own.begin(), own.end(), pi);
    if (it == own.end() || *it != pi) return;
    const std::size_t k = static_cast<std::size_t>(it - own.begin());
    if (pin_reached[k]) return;
    pin_reached[k] = 1;
    stack.push_back(k);
  };
  push_pin(seed);  // a blocked seed reaches nothing: every connect is doomed
  while (!stack.empty()) {
    const std::size_t pi = own[stack.back()];
    stack.pop_back();
    for (int dir = 0; dir < 6; ++dir) {
      const Vec3 q =
          fabric.cell_at(pi) + kNeighbours[static_cast<std::size_t>(dir)];
      if (!fabric.inside(q)) continue;
      const std::size_t qi = fabric.index(q);
      const std::int32_t l = reach.label[qi];
      if (l < 0) {
        push_pin(qi);  // an adjacent own pin (other modules won't match)
        continue;
      }
      if (map.label_reachable[static_cast<std::size_t>(l)]) continue;
      map.label_reachable[static_cast<std::size_t>(l)] = 1;
      // Entering a new label unlocks every own pin it touches.
      for (std::size_t k = 0; k < own.size(); ++k) {
        if (pin_reached[k]) continue;
        const std::uint8_t mask = fabric.edge_mask(own[k]);
        for (int d = 0; d < 6; ++d) {
          if (!(mask & (1u << d))) continue;
          const std::size_t ni = static_cast<std::size_t>(
              static_cast<std::ptrdiff_t>(own[k]) + fabric.stride(d));
          if (reach.label[ni] == l) {
            pin_reached[k] = 1;
            stack.push_back(k);
            break;
          }
        }
      }
    }
  }
  for (std::size_t k = 0; k < own.size(); ++k)
    if (pin_reached[k]) map.own.push_back(own[k]);
  map.built = true;
  return map;
}

namespace {

/// Admissible (and consistent) heuristic: Manhattan distance to the tree
/// bounding box.
float heuristic(Vec3 p, const Box3& tree_box) {
  auto axis = [](int v, int lo, int hi) {
    if (v < lo) return lo - v;
    if (v > hi) return v - hi;
    return 0;
  };
  return static_cast<float>(axis(p.x, tree_box.lo.x, tree_box.hi.x) +
                            axis(p.y, tree_box.lo.y, tree_box.hi.y) +
                            axis(p.z, tree_box.lo.z, tree_box.hi.z));
}

/// Lookahead view for the net being routed: the component's seed closure
/// (see LookaheadMap). Consulted once per connect, for the source cell —
/// a source outside the closure provably cannot reach the tree, a source
/// inside it runs the exact classic search (it can never expand a cell
/// outside the closure, so there is nothing to prune per cell).
struct TreeLookahead {
  const ReachMap* reach = nullptr;
  const LookaheadMap* map = nullptr;
  bool valid = false;
};

struct BucketOpenList {
  BucketQueue& q;
  void push(float f, float g, std::uint32_t cell) {
    q.push(static_cast<std::int64_t>(f), g, cell);
  }
  bool empty() const { return q.empty(); }
  BucketQueue::Entry pop() { return q.pop(); }
};

struct HeapOpenList {
  HeapQueue& q;
  void push(float f, float g, std::uint32_t cell) { q.push(f, g, cell); }
  bool empty() const { return q.empty(); }
  HeapQueue::Entry pop() { return q.pop(); }
};

/// Connect `source` to the partially built tree by A* restricted to
/// `region` (computed by the caller: the warm window or a ladder rung).
/// On success the backtracked path joins the tree (cells, box, tree
/// marks). Neighbour admission is one mask read — the fabric's precomputed
/// edge mask OR the per-net own-pin overlay — plus the region test; the
/// open-list policy is the only templated piece: the bucket queue pops an
/// integer-keyed lower bound (ties LIFO), the heap pops exact f order
/// (ties in std::priority_queue's order).
template <typename OpenList>
bool connect(const Fabric& fabric, SearchScratch& scratch, OpenList open,
             Vec3 source, const Box3& region, Box3& tree_box,
             double present_factor, const TreeLookahead& tl,
             SearchStats& stats) {
  const std::size_t source_idx = fabric.index(source);
  if (scratch.on_tree(source_idx)) return true;

  if (tl.valid) {
    ++stats.lookahead_connects;
    // A source outside the seed's closure cannot reach the tree in ANY
    // region (the closure is global). Failing here skips the region-
    // exhausting flood a doomed classic search would run at every rung of
    // its ladder. A source inside the closure can never expand a cell
    // outside it (free runs are entered through own pins, all in the
    // closure), so this one lookup is the lookahead's entire runtime cost.
    if (!tl.map->reachable(*tl.reach, source_idx)) return false;
  }

  scratch.begin_search();
  scratch.set_g(source_idx, 0.0f, -1);
  open.push(heuristic(source, tree_box), 0.0f,
            static_cast<std::uint32_t>(source_idx));
  ++stats.queue_pushes;

  std::size_t goal = static_cast<std::size_t>(-1);
  while (!open.empty()) {
    const auto top = open.pop();
    ++stats.queue_pops;
    if (top.g > scratch.g[top.cell]) continue;  // stale entry
    if (scratch.on_tree(top.cell)) {
      goal = top.cell;
      break;
    }
    const std::size_t ci = top.cell;
    const Vec3 p = fabric.cell_at(ci);
    const std::uint8_t mask =
        static_cast<std::uint8_t>(fabric.edge_mask(ci) | scratch.extra(ci));
    for (int dir = 0; dir < 6; ++dir) {
      if (!(mask & (1u << dir))) continue;
      const Vec3 q = p + kNeighbours[static_cast<std::size_t>(dir)];
      if (!region.contains(q)) continue;
      const std::size_t qi = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(ci) + fabric.stride(dir));
      double cost = 1.0 + fabric.history(qi);
      const int over = fabric.usage(qi) - (fabric.capacity(qi) - 1);
      if (over > 0) cost += present_factor * over;
      const float ng = top.g + static_cast<float>(cost);
      if (scratch.seen(qi) && ng >= scratch.g[qi]) continue;
      scratch.set_g(qi, ng, dir);
      open.push(ng + heuristic(q, tree_box), ng,
                static_cast<std::uint32_t>(qi));
      ++stats.queue_pushes;
    }
  }
  if (goal == static_cast<std::size_t>(-1)) return false;

  // Backtrack from goal to source, adding the path to the tree.
  std::size_t cur = goal;
  for (;;) {
    if (!scratch.on_tree(cur)) {
      scratch.mark_tree(cur);
      scratch.tree_cells.push_back(cur);
      tree_box = tree_box.expanded(fabric.cell_at(cur));
    }
    const int dir = scratch.parent[cur];
    if (cur == source_idx || dir < 0) break;
    // parent = cell we came FROM: step back against the stored direction.
    const Vec3 p =
        fabric.cell_at(cur) - kNeighbours[static_cast<std::size_t>(dir)];
    cur = fabric.index(p);
  }
  return true;
}

/// The f-value planning (Fig. 15) assigns each chain module its access
/// cells: the free cells through which its dual segments exit. Rotated
/// nodes rotate the side; a cell claimed by a neighbouring structure drops
/// that constraint rather than failing.
std::vector<Vec3> access_cells_of(const Fabric& fabric,
                                  const place::NodeSet& nodes,
                                  const place::Placement& placement,
                                  pdgraph::ModuleId m) {
  std::vector<Vec3> cells;
  for (Vec3 off : nodes.access_offsets[static_cast<std::size_t>(m)]) {
    const int node = nodes.node_of_module[static_cast<std::size_t>(m)];
    if (!placement.node_rotated.empty() &&
        placement.node_rotated[static_cast<std::size_t>(node)])
      off = {off.z, off.y, off.x};
    const Vec3 cell = placement.module_cell[static_cast<std::size_t>(m)] + off;
    if (!fabric.inside(cell)) continue;
    const std::size_t i = fabric.index(cell);
    if (fabric.blocked(i) || fabric.module_at(i) >= 0) continue;
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace

bool route_one_net(const Fabric& fabric, SearchScratch& scratch,
                   const place::NodeSet& nodes,
                   const place::Placement& placement,
                   const RouteOptions& options, int component,
                   double present_factor, const NetContext& ctx,
                   RoutedNet& out, SearchStats& stats) {
  const auto& pins = nodes.net_pins[static_cast<std::size_t>(component)];
  out.component = component;
  out.cells.clear();
  if (pins.empty()) return true;
  scratch.ensure(fabric.cell_count());

  // Own-pin overlay: extra edge-mask bits letting the search step INTO
  // this component's module cells (the shared mask excludes every module
  // cell; threading an own pin's loop is exactly what routing to it
  // means).
  scratch.begin_extra();
  for (pdgraph::ModuleId m : pins) {
    const Vec3 pc = placement.module_cell[static_cast<std::size_t>(m)];
    const std::size_t pi = fabric.index(pc);
    if (fabric.blocked(pi)) continue;
    for (int d = 0; d < 6; ++d) {
      const Vec3 nq = pc + kNeighbours[static_cast<std::size_t>(d)];
      if (!fabric.inside(nq)) continue;
      scratch.add_extra(fabric.index(nq),
                        static_cast<std::uint8_t>(1u << (d ^ 1)));
    }
  }

  // Access-cell constraints only bind components that span several
  // placement nodes: the f-value planning (Fig. 15) governs the dual
  // segments *leaving* a primal-bridging super-module, while a net wholly
  // inside one chain threads its module loops directly (Fig. 1(e)).
  bool spans_nodes = false;
  for (pdgraph::ModuleId m : pins)
    if (nodes.node_of_module[static_cast<std::size_t>(m)] !=
        nodes.node_of_module[static_cast<std::size_t>(pins.front())])
      spans_nodes = true;

  // Seed the tree at the first pin, then connect remaining pins nearest-
  // to-seed first; each pin's access cells join the tree right after it.
  struct PinEntry {
    Vec3 cell;
    std::vector<Vec3> access;
  };
  std::vector<PinEntry> entries;
  entries.reserve(pins.size());
  for (pdgraph::ModuleId m : pins)
    entries.push_back(
        {placement.module_cell[static_cast<std::size_t>(m)],
         spans_nodes ? access_cells_of(fabric, nodes, placement, m)
                     : std::vector<Vec3>{}});
  std::sort(entries.begin() + 1, entries.end(),
            [&](const PinEntry& a, const PinEntry& b) {
              return manhattan(a.cell, entries[0].cell) <
                     manhattan(b.cell, entries[0].cell);
            });

  scratch.begin_tree();
  scratch.tree_cells.clear();
  const std::size_t seed_idx = fabric.index(entries[0].cell);
  scratch.mark_tree(seed_idx);
  scratch.tree_cells.push_back(seed_idx);
  Box3 tree_box{entries[0].cell, entries[0].cell};

  TreeLookahead tl;
  if (options.lookahead && ctx.reach != nullptr && ctx.lookahead != nullptr &&
      ctx.lookahead->valid()) {
    tl.reach = ctx.reach;
    tl.map = ctx.lookahead;
    tl.valid = true;
  }

  auto connect_once = [&](Vec3 target, const Box3& region) {
    if (options.bucket_queue) {
      scratch.bucket_queue.reset();
      return connect(fabric, scratch, BucketOpenList{scratch.bucket_queue},
                     target, region, tree_box, present_factor, tl, stats);
    }
    scratch.heap_queue.reset();
    return connect(fabric, scratch, HeapOpenList{scratch.heap_queue}, target,
                   region, tree_box, present_factor, tl, stats);
  };
  auto connect_with_retries = [&](Vec3 target) {
    if (scratch.on_tree(fabric.index(target))) return true;
    if (options.windows && !ctx.window.empty()) {
      // Warm attempt: the previous successful route's bounding box (plus
      // whatever the tree already grew to) is usually where the new route
      // fits too; fall through to the classic ladder when it does not.
      const Box3 region =
          tree_box.expanded(target).merged(ctx.window).inflated(1);
      if (connect_once(target, region)) {
        ++stats.window_hits;
        return true;
      }
      ++stats.window_misses;
    }
    int margin = options.region_margin;
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (connect_once(target, tree_box.expanded(target).inflated(margin)))
        return true;
      margin *= 4;
    }
    // Last resort: unrestricted search over the whole fabric.
    return connect_once(target, tree_box.expanded(target).inflated(1 << 24));
  };

  // Ports connect before their pin: the pin then attaches to the tree
  // through its (capacity-boosted) port instead of squeezing past a
  // neighbouring structure on the unboosted side.
  bool ok = true;
  for (const Vec3& cell : entries[0].access)
    ok = ok && connect_with_retries(cell);
  for (std::size_t i = 1; ok && i < entries.size(); ++i) {
    for (const Vec3& cell : entries[i].access)
      ok = ok && connect_with_retries(cell);
    ok = ok && connect_with_retries(entries[i].cell);
  }

  out.cells.reserve(scratch.tree_cells.size());
  for (std::size_t i : scratch.tree_cells)
    out.cells.push_back(fabric.cell_at(i));
  return ok;
}

}  // namespace tqec::route
