#include "route/router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "route/net_batcher.h"
#include "route/search_kernel.h"

namespace tqec::route {

namespace {

// Negotiation orchestrator. The per-net A* kernel lives in
// search_kernel.{h,cpp}; the disjoint-region partitioner in
// net_batcher.{h,cpp}. This class owns the PathFinder outer loop:
//
//   per iteration: pending nets (deterministic order) -> batches of
//   disjoint declared regions -> per batch: rip up members, search them
//   concurrently against the now-frozen fabric, then commit serially in
//   net order with collision detection (a net whose path lands on a cell
//   an earlier commit of the same batch just filled to capacity is
//   requeued and rerouted serially at the end of the iteration).
//
// Every decision (batch composition, commit order, conflict verdicts,
// requeue order) is a pure function of the deterministic net order and
// the fabric state at batch boundaries — never of the worker count — so
// --route-threads=1 and --route-threads=N are bit-identical, and
// --route-serial (singleton batches) reproduces the classic one-net-at-a-
// time PathFinder schedule exactly.
class Router {
 public:
  Router(const place::NodeSet& nodes, const place::Placement& placement,
         const RouteOptions& opt)
      : nodes_(nodes), placement_(placement), opt_(opt),
        fabric_(nodes, placement, opt.margin),
        threads_(std::max(1, opt.threads)) {}

  RoutingResult run();

 private:
  /// Remove / install a net's route, keeping usage counters and the
  /// occupancy index in lockstep. Every rip-up and (re)install in the
  /// negotiation loop and the repair phase goes through this pair.
  void rip_up(const RoutedNet& net) {
    for (const Vec3& cell : net.cells)
      fabric_.vacate(fabric_.index(cell), net.component);
  }
  void install(const RoutedNet& net) {
    for (const Vec3& cell : net.cells)
      fabric_.occupy(fabric_.index(cell), net.component);
  }

  /// A component's declared region: its pins' bounding box inflated by
  /// twice the restricted-search margin (the extra margin absorbs the
  /// tree-box growth of multi-pin connects; escapes beyond it are caught
  /// at commit). Access cells sit face-adjacent to their pin, inside the
  /// inflation.
  Box3 declared_region(int component) const {
    Box3 box;
    for (pdgraph::ModuleId m :
         nodes_.net_pins[static_cast<std::size_t>(component)])
      box = box.expanded(
          placement_.module_cell[static_cast<std::size_t>(m)]);
    return box.inflated(2 * opt_.region_margin);
  }

  bool route_component(int component, RoutedNet& out, double present_factor) {
    SearchStats stats;
    const bool ok = route_one_net(fabric_, scratch_[0], nodes_, placement_,
                                  opt_, component, present_factor, out, stats);
    net_stats_[static_cast<std::size_t>(component)] += stats;
    return ok;
  }

  const place::NodeSet& nodes_;
  const place::Placement& placement_;
  RouteOptions opt_;
  Fabric fabric_;
  int threads_;
  /// One search scratch per worker slot; slot 0 doubles as the serial
  /// (requeue-tail and repair-phase) scratch.
  std::vector<SearchScratch> scratch_;
  /// Per-component A*-queue tallies, summed into the result in component
  /// order after routing — identical totals for any worker count.
  std::vector<SearchStats> net_stats_;
  /// Cells installed by commits of the current batch (epoch-stamped).
  std::vector<int> batch_stamp_;
  int batch_epoch_ = 0;
};

RoutingResult Router::run() {
  TQEC_TRACE_SPAN("route.pathfinder");
  RoutingResult result;
  const int components = static_cast<int>(nodes_.net_pins.size());
  result.nets.assign(static_cast<std::size_t>(components), RoutedNet{});
  scratch_.resize(static_cast<std::size_t>(threads_));
  net_stats_.assign(static_cast<std::size_t>(components), SearchStats{});
  batch_stamp_.assign(fabric_.cell_count(), 0);

  // Port-region capacity: a module loop pinned by several components must
  // admit one crossing per component not just on its own cell but through
  // its port region — the free face-adjacent cells (the same convention
  // the geometry validator's V3 exemption uses). Without this, k nets
  // forced through a module with fewer than k free neighbours would be a
  // structural overuse no negotiation can fix.
  {
    std::vector<int> pin_count(nodes_.node_of_module.size(), 0);
    for (const auto& pins : nodes_.net_pins)
      for (pdgraph::ModuleId m : pins)
        ++pin_count[static_cast<std::size_t>(m)];
    for (std::size_t m = 0; m < pin_count.size(); ++m) {
      if (pin_count[m] < 2) continue;
      const Vec3 cell = placement_.module_cell[m];
      for (const Vec3& step : kNeighbours) {
        const Vec3 q = cell + step;
        if (!fabric_.inside(q)) continue;
        const std::size_t qi = fabric_.index(q);
        if (fabric_.blocked(qi) || fabric_.module_at(qi) >= 0) continue;
        fabric_.add_capacity(qi, pin_count[m] - 1);
      }
    }
  }

  // Net order: most pins first (hardest nets claim resources early). The
  // incremental schedule reroutes a *subset* of this order each iteration,
  // so relative net order — and with it the result — is independent of
  // which nets happen to be congestion-affected.
  std::vector<int> order(static_cast<std::size_t>(components));
  for (int i = 0; i < components; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::tuple(-static_cast<int>(
                          nodes_.net_pins[static_cast<std::size_t>(a)].size()),
                      a) <
           std::tuple(-static_cast<int>(
                          nodes_.net_pins[static_cast<std::size_t>(b)].size()),
                      b);
  });

  // Declared regions are a function of the (fixed) pin placement only:
  // compute them once for the whole negotiation.
  std::vector<Box3> regions(static_cast<std::size_t>(components));
  for (int c = 0; c < components; ++c)
    regions[static_cast<std::size_t>(c)] = declared_region(c);

  double present_factor = opt_.present_base;
  int stall = 0;
  int prev_overused = -1;
  trace::Span negotiation_span("route.negotiate");
  // Nets to rip up and reroute this iteration; iteration 1 routes all.
  std::vector<std::uint8_t> dirty(static_cast<std::size_t>(components), 1);
  std::vector<int> pending;
  std::vector<RoutedNet> candidates;
  std::vector<SearchStats> candidate_stats;
  std::vector<std::uint8_t> candidate_ok;
  std::vector<int> requeued;
  for (int iter = 0; iter < opt_.max_iterations; ++iter) {
    result.iterations = iter + 1;
    pending.clear();
    for (int c : order)
      if (dirty[static_cast<std::size_t>(c)]) pending.push_back(c);
    const BatchPlan plan =
        plan_batches(pending, regions, opt_.serial_schedule);

    requeued.clear();
    for (const std::vector<int>& batch : plan.batches) {
      {
        TQEC_TRACE_SPAN("route.batch");
        for (const int c : batch)
          rip_up(result.nets[static_cast<std::size_t>(c)]);
        candidates.resize(batch.size());
        candidate_stats.assign(batch.size(), SearchStats{});
        candidate_ok.assign(batch.size(), 0);
        // Search phase: the fabric is frozen; each worker slot owns a
        // scratch, so concurrent searches never share mutable state.
        auto search_one = [&](std::size_t slot, std::size_t i) {
          candidate_ok[i] =
              route_one_net(fabric_, scratch_[slot], nodes_, placement_,
                            opt_, batch[i], present_factor, candidates[i],
                            candidate_stats[i])
                  ? 1
                  : 0;
        };
        if (threads_ == 1 || batch.size() == 1) {
          for (std::size_t i = 0; i < batch.size(); ++i) search_one(0, i);
        } else {
          parallel_for_slots(batch.size(), threads_, search_one);
        }
      }
      {
        TQEC_TRACE_SPAN("route.commit");
        detail::bump_epoch(batch_epoch_, batch_stamp_);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const int c = batch[i];
          net_stats_[static_cast<std::size_t>(c)] += candidate_stats[i];
          TQEC_REQUIRE(candidate_ok[i] != 0,
                       "router failed to connect a net component");
          // Collision: a search that escaped its declared region may have
          // priced a cell an earlier commit of this batch just filled to
          // capacity. Installing would create snapshot-artifact overuse,
          // so the net reroutes serially below instead.
          bool conflict = false;
          for (const Vec3& cell : candidates[i].cells) {
            const std::size_t idx = fabric_.index(cell);
            if (batch_stamp_[idx] == batch_epoch_ &&
                fabric_.usage(idx) >= fabric_.capacity(idx)) {
              conflict = true;
              break;
            }
          }
          if (conflict) {
            requeued.push_back(c);
            ++result.conflicts_requeued;
            continue;
          }
          RoutedNet& net = result.nets[static_cast<std::size_t>(c)];
          net = std::move(candidates[i]);
          install(net);
          for (const Vec3& cell : net.cells)
            batch_stamp_[fabric_.index(cell)] = batch_epoch_;
        }
        ++result.batches;
      }
    }
    // Requeue tail: conflicted nets (already ripped up by their batch)
    // reroute one at a time against the fully up-to-date fabric, in net
    // order — each is its own singleton batch, so no further conflicts.
    for (const int c : requeued) {
      RoutedNet& net = result.nets[static_cast<std::size_t>(c)];
      const bool ok = route_component(c, net, present_factor);
      TQEC_REQUIRE(ok, "router failed to connect a net component");
      install(net);
      ++result.batches;
    }

    const int reroutes = static_cast<int>(pending.size());
    result.reroutes_per_iter.push_back(reroutes);
    result.reroutes_total += reroutes;
    if (reroutes == components) ++result.full_sweeps;

    // Congestion accounting; overused cells seed the next iteration's
    // reroute set through the occupancy index.
    std::fill(dirty.begin(), dirty.end(), 0);
    int overused = 0;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i) {
      const int over = fabric_.usage(i) - fabric_.capacity(i);
      if (over > 0) {
        ++overused;
        fabric_.history(i) += static_cast<float>(opt_.history_increment);
        for (const int c : fabric_.nets_at(i))
          dirty[static_cast<std::size_t>(c)] = 1;
      }
    }
    result.overused_cells = overused;
    result.overused_per_iter.push_back(overused);
    if (overused == 0) {
      result.legal = true;
      break;
    }
    present_factor =
        std::min(present_factor * opt_.present_growth, opt_.present_max);
    // Negotiation stalled on persistently contested cells: stop and
    // resolve them explicitly below.
    stall = overused >= prev_overused && prev_overused >= 0 ? stall + 1 : 0;
    prev_overused = overused;
    if (stall >= 5) break;
    // Full-sweep fallback: rerouting only the contested nets stopped
    // making progress, so give every net a chance to move out of the way.
    if (!opt_.incremental || stall > 0)
      std::fill(dirty.begin(), dirty.end(), 1);
    TQEC_LOG_DEBUG("pathfinder iter " << iter + 1 << ": " << overused
                                      << " overused cells, " << reroutes
                                      << " nets rerouted");
  }
  result.present_factor_final = present_factor;
  result.parallel_efficiency =
      result.batches > 0 ? static_cast<double>(result.reroutes_total) /
                               static_cast<double>(result.batches)
                         : 0.0;
  negotiation_span.end();
  trace::Span repair_span("route.repair");

  // Hard-block repair: when negotiation leaves a handful of contested
  // cells, award each to the net with the most pins (hardest to detour)
  // and reroute the losers with the cell removed from the fabric. The free
  // margin always offers a detour unless the cell was a pin-access cut,
  // in which case the result stays honestly illegal.
  for (int scan = 0; !result.legal && scan < 20; ++scan) {
    // Collect every currently overused cell in one fabric pass.
    std::vector<std::size_t> contested;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i)
      if (fabric_.usage(i) > fabric_.capacity(i)) contested.push_back(i);
    if (contested.empty()) {
      result.legal = true;
      break;
    }
    bool progressed = false;
    for (std::size_t idx : contested) {
      if (fabric_.usage(idx) <= fabric_.capacity(idx))
        continue;  // resolved by an earlier reroute in this scan
      // The occupancy index names the contestants directly; sorting by
      // component id reproduces the order a scan over all nets would give.
      std::vector<int> users = fabric_.nets_at(idx);
      std::sort(users.begin(), users.end());
      if (users.size() < 2) continue;
      std::sort(users.begin(), users.end(), [&](int a, int b) {
        return nodes_.net_pins[static_cast<std::size_t>(a)].size() >
               nodes_.net_pins[static_cast<std::size_t>(b)].size();
      });
      // Award the cell to one user and reroute the rest with the cell
      // removed from the fabric. If a loser genuinely needs the cell (it
      // is the only access to one of its pins), restore everything and try
      // the next candidate winner; only when no award works does the cell
      // stay contested.
      std::vector<RoutedNet> saved;
      saved.reserve(users.size());
      for (int u : users)
        saved.push_back(result.nets[static_cast<std::size_t>(u)]);
      bool awarded = false;
      for (std::size_t winner = 0; winner < users.size() && !awarded;
           ++winner) {
        fabric_.hard_block(idx);
        bool all_ok = true;
        std::vector<std::size_t> rerouted;
        for (std::size_t u = 0; u < users.size(); ++u) {
          if (u == winner) continue;
          RoutedNet& net = result.nets[static_cast<std::size_t>(users[u])];
          rip_up(net);
          const bool ok = route_component(users[u], net, present_factor);
          install(net);
          rerouted.push_back(u);
          if (!ok) {
            all_ok = false;
            break;
          }
        }
        if (all_ok) {
          awarded = true;
          progressed = true;
        } else {
          // Roll back: restore every touched net's previous complete route
          // and lift the block before trying the next winner.
          for (std::size_t u : rerouted) {
            RoutedNet& net = result.nets[static_cast<std::size_t>(users[u])];
            rip_up(net);
            net = saved[u];
            install(net);
          }
          fabric_.unblock(idx);
        }
      }
      if (awarded) ++result.repair_awarded;
      else ++result.repair_failed;
      const Vec3 cell = fabric_.cell_at(idx);
      TQEC_LOG_DEBUG("hard-block repair at " << cell << " among "
                                             << users.size() << " nets"
                                             << (awarded ? "" : " FAILED"));
    }
    if (!progressed) break;  // genuine cut: stays honestly illegal
  }
  repair_span.end();

  // Invariant: after negotiation and repair (including every repair
  // rollback), usage counters and the occupancy index must both agree with
  // the final routes. A leak here would silently corrupt congestion
  // accounting, so the check runs in every build type (one O(cells) pass).
  {
    std::vector<std::uint32_t> recount(fabric_.cell_count(), 0);
    for (const RoutedNet& net : result.nets)
      for (const Vec3& cell : net.cells) ++recount[fabric_.index(cell)];
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i) {
      TQEC_ASSERT(recount[i] == static_cast<std::uint32_t>(fabric_.usage(i)),
                  "usage counters desynced from the final routes");
      TQEC_ASSERT(recount[i] == fabric_.nets_at(i).size(),
                  "occupancy index desynced from the final routes");
    }
  }

  // Final congestion census: usage histogram, top-K hottest cells, and a
  // top-down text heatmap (one O(cells) pass, same cost class as the
  // invariant check above).
  {
    int max_usage = 0;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i)
      max_usage = std::max(max_usage, fabric_.usage(i));
    result.congestion_histogram.assign(
        static_cast<std::size_t>(max_usage) + 1, 0);
    std::vector<std::size_t> used_cells;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i) {
      ++result.congestion_histogram[static_cast<std::size_t>(
          fabric_.usage(i))];
      if (fabric_.usage(i) > 0) used_cells.push_back(i);
    }
    constexpr std::size_t kTopK = 16;
    std::sort(used_cells.begin(), used_cells.end(),
              [&](std::size_t a, std::size_t b) {
                return std::pair(-fabric_.usage(a), a) <
                       std::pair(-fabric_.usage(b), b);
              });
    if (used_cells.size() > kTopK) used_cells.resize(kTopK);
    for (std::size_t i : used_cells)
      result.hottest_cells.push_back(
          {fabric_.cell_at(i), fabric_.usage(i), fabric_.capacity(i)});

    const Vec3 dims = fabric_.box().dims();
    if (dims.x <= 160 && dims.z <= 100) {
      std::string& map = result.congestion_heatmap;
      map.reserve(static_cast<std::size_t>(dims.z) * (dims.x + 1));
      for (int z = 0; z < dims.z; ++z) {
        for (int x = 0; x < dims.x; ++x) {
          int column_max = 0;
          for (int y = 0; y < dims.y; ++y)
            column_max = std::max(
                column_max,
                fabric_.usage(fabric_.index(fabric_.box().lo + Vec3{x, y, z})));
          map.push_back(column_max == 0   ? '.'
                        : column_max <= 9 ? static_cast<char>('0' + column_max)
                                          : '#');
        }
        map.push_back('\n');
      }
    }
  }

  // A*-queue totals: per-component tallies summed in component order, so
  // the totals never depend on which worker ran which search.
  for (const SearchStats& s : net_stats_) {
    result.queue_pushes += s.queue_pushes;
    result.queue_pops += s.queue_pops;
  }
  trace::counter_add("route.queue_pushes", result.queue_pushes);
  trace::counter_add("route.queue_pops", result.queue_pops);
  trace::counter_add("route.reroutes", result.reroutes_total);
  trace::counter_add("route.iterations", result.iterations);
  trace::counter_add("route.repair_awarded", result.repair_awarded);
  trace::counter_add("route.repair_failed", result.repair_failed);
  trace::counter_add("route.batches", result.batches);
  trace::counter_add("route.conflicts_requeued", result.conflicts_requeued);
  result.bounding = placement_.core;
  result.total_wire = 0;
  for (const RoutedNet& net : result.nets) {
    result.total_wire += static_cast<std::int64_t>(net.cells.size());
    for (const Vec3& cell : net.cells)
      result.bounding = result.bounding.expanded(cell);
  }
  result.volume = result.bounding.volume();
  TQEC_LOG_INFO("routing: " << components << " components, legal="
                            << result.legal << " iters=" << result.iterations
                            << " wire=" << result.total_wire
                            << " reroutes=" << result.reroutes_total
                            << " batches=" << result.batches
                            << " conflicts=" << result.conflicts_requeued
                            << " volume=" << result.volume);
  return result;
}

}  // namespace

RoutingResult route_nets(const place::NodeSet& nodes,
                         const place::Placement& placement,
                         const RouteOptions& options) {
  Router router(nodes, placement, options);
  return router.run();
}

}  // namespace tqec::route
