#include "route/router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "route/net_batcher.h"
#include "route/search_kernel.h"

namespace tqec::route {

namespace {

// Negotiation orchestrator. The per-net A* kernel lives in
// search_kernel.{h,cpp}; the disjoint-region partitioner in
// net_batcher.{h,cpp}. This class owns the PathFinder outer loop:
//
//   per iteration: pending nets (deterministic order) -> batches of
//   disjoint declared regions -> per batch: rip up members, search them
//   concurrently against the now-frozen fabric, then commit serially in
//   net order with collision detection (a net whose path lands on a cell
//   an earlier commit of the same batch just filled to capacity is
//   requeued and rerouted serially at the end of the iteration).
//
// Every decision (batch composition, commit order, conflict verdicts,
// requeue order) is a pure function of the deterministic net order and
// the fabric state at batch boundaries — never of the worker count — so
// --route-threads=1 and --route-threads=N are bit-identical, and
// --route-serial (singleton batches) reproduces the classic one-net-at-a-
// time PathFinder schedule exactly.
class Router {
 public:
  Router(const place::NodeSet& nodes, const place::Placement& placement,
         const RouteOptions& opt, const NegotiationMemory* warm,
         NegotiationMemory* memory_out)
      : nodes_(nodes), placement_(placement), opt_(opt),
        fabric_(nodes, placement, opt.margin),
        threads_(std::max(1, opt.threads)), warm_(warm),
        memory_out_(memory_out) {}

  RoutingResult run();

 private:
  /// Remove / install a net's route, keeping usage counters and the
  /// occupancy index in lockstep. Every rip-up and (re)install in the
  /// negotiation loop and the repair phase goes through this pair.
  void rip_up(const RoutedNet& net) {
    for (const Vec3& cell : net.cells)
      fabric_.vacate(fabric_.index(cell), net.component);
  }
  void install(const RoutedNet& net) {
    for (const Vec3& cell : net.cells)
      fabric_.occupy(fabric_.index(cell), net.component);
  }

  /// A component's pin bounding box.
  Box3 pin_box(int component) const {
    Box3 box;
    for (pdgraph::ModuleId m :
         nodes_.net_pins[static_cast<std::size_t>(component)])
      box = box.expanded(
          placement_.module_cell[static_cast<std::size_t>(m)]);
    return box;
  }

  /// A component's base declared region: its pin bounding box inflated by
  /// twice the restricted-search margin (the extra margin absorbs the
  /// tree-box growth of multi-pin connects; escapes beyond it are caught
  /// at commit). Access cells sit face-adjacent to their pin, inside the
  /// inflation. Under --route-windows the per-iteration declared region
  /// additionally covers the net's current warm window.
  Box3 declared_region(int component) const {
    return pin_box(component).inflated(2 * opt_.region_margin);
  }

  /// The warm search window of a component: the bounding box of its
  /// current route (its cells survive rip_up, which only touches the
  /// fabric), falling back to the window imported from NegotiationMemory
  /// for a net that has not been routed in this run yet. Empty = cold.
  Box3 window_of(int component, const RoutedNet& current) const {
    Box3 w;
    for (const Vec3& cell : current.cells) w = w.expanded(cell);
    if (w.empty() && !warm_window_.empty())
      w = warm_window_[static_cast<std::size_t>(component)];
    return w;
  }

  /// Per-search context: the component's lookahead (shared reach map +
  /// label set) and its warm window. Reads only negotiation-thread state
  /// that is frozen during a batch's search phase.
  NetContext context_of(int component, const RoutedNet& current) const {
    NetContext ctx;
    if (reach_map_.valid() &&
        lookahead_maps_[static_cast<std::size_t>(component)].valid()) {
      ctx.reach = &reach_map_;
      ctx.lookahead = &lookahead_maps_[static_cast<std::size_t>(component)];
    }
    if (opt_.windows) ctx.window = window_of(component, current);
    return ctx;
  }

  bool route_component(int component, RoutedNet& out, double present_factor) {
    const NetContext ctx = context_of(component, out);
    SearchStats stats;
    const bool ok =
        route_one_net(fabric_, scratch_[0], nodes_, placement_, opt_,
                      component, present_factor, ctx, out, stats);
    net_stats_[static_cast<std::size_t>(component)] += stats;
    return ok;
  }

  void import_memory(RoutingResult& result, int components);
  void export_memory(const RoutingResult& result, int components) const;
  void build_lookahead_maps(int components);

  const place::NodeSet& nodes_;
  const place::Placement& placement_;
  RouteOptions opt_;
  Fabric fabric_;
  int threads_;
  /// One search scratch per worker slot; slot 0 doubles as the serial
  /// (requeue-tail and repair-phase) scratch.
  std::vector<SearchScratch> scratch_;
  /// Per-component A*-queue tallies, summed into the result in component
  /// order after routing — identical totals for any worker count.
  std::vector<SearchStats> net_stats_;
  /// Cells installed by commits of the current batch (epoch-stamped).
  std::vector<int> batch_stamp_;
  int batch_epoch_ = 0;
  const NegotiationMemory* warm_;
  NegotiationMemory* memory_out_;
  /// Shared build-time free-space labeling (empty when --route-lookahead=0)
  /// plus each component's reachable-label set.
  ReachMap reach_map_;
  std::vector<LookaheadMap> lookahead_maps_;
  /// Initial warm windows imported from NegotiationMemory (empty when cold
  /// or --route-windows=0).
  std::vector<Box3> warm_window_;
};

/// Label the fabric's free space once, then derive every component's
/// reachable-label set (O(pins) each). Both read only build-time fabric
/// state — this must run before the first repair hard block — so the
/// per-component builds run freely in parallel.
void Router::build_lookahead_maps(int components) {
  if (!opt_.lookahead) return;
  reach_map_ = build_reach_map(fabric_);
  lookahead_maps_.assign(static_cast<std::size_t>(components), LookaheadMap{});
  parallel_for(static_cast<std::size_t>(components), threads_,
               [&](std::size_t c) {
                 lookahead_maps_[c] = build_lookahead(
                     fabric_, reach_map_, nodes_, placement_,
                     static_cast<int>(c));
               });
}

/// Seed this run from a previous attempt's negotiation state: history
/// costs are replayed by absolute coordinate over the fabric-box overlap
/// with a 0.5 decay (stale congestion should suggest, not dictate), and
/// each component's final route window is reconstituted by growing its new
/// pin bounding box with the remembered per-face slack.
void Router::import_memory(RoutingResult& result, int components) {
  if (warm_ == nullptr || !warm_->valid || !opt_.warm_start) return;
  if (warm_->window_slack.size() != static_cast<std::size_t>(components))
    return;
  result.warm_started = true;

  const Box3& old_box = warm_->fabric_box;
  const Vec3 old_dims = old_box.dims();
  const auto old_index = [&](Vec3 p) {
    const Vec3 rel = p - old_box.lo;
    return (static_cast<std::size_t>(rel.y) * old_dims.z + rel.z) *
               old_dims.x +
           rel.x;
  };
  for (std::size_t i = 0; i < fabric_.cell_count(); ++i) {
    const Vec3 p = fabric_.cell_at(i);
    if (!old_box.contains(p)) continue;
    fabric_.history(i) = 0.5f * warm_->history[old_index(p)];
  }

  if (opt_.windows) {
    warm_window_.assign(static_cast<std::size_t>(components), Box3{});
    for (int c = 0; c < components; ++c) {
      const auto& slack = warm_->window_slack[static_cast<std::size_t>(c)];
      if (slack[0] < 0) continue;  // component was unrouted last time
      const Box3 pins = pin_box(c);
      if (pins.empty()) continue;
      Box3 w{{pins.lo.x - slack[1], pins.lo.y - slack[3], pins.lo.z - slack[5]},
             {pins.hi.x + slack[0], pins.hi.y + slack[2],
              pins.hi.z + slack[4]}};
      w.lo = {std::max(w.lo.x, fabric_.box().lo.x),
              std::max(w.lo.y, fabric_.box().lo.y),
              std::max(w.lo.z, fabric_.box().lo.z)};
      w.hi = {std::min(w.hi.x, fabric_.box().hi.x),
              std::min(w.hi.y, fabric_.box().hi.y),
              std::min(w.hi.z, fabric_.box().hi.z)};
      warm_window_[static_cast<std::size_t>(c)] = w;
    }
  }
}

/// Export this run's final negotiation state for the next attempt.
void Router::export_memory(const RoutingResult& result,
                           int components) const {
  if (memory_out_ == nullptr) return;
  NegotiationMemory& mem = *memory_out_;
  mem.valid = true;
  mem.fabric_box = fabric_.box();
  mem.history.resize(fabric_.cell_count());
  for (std::size_t i = 0; i < fabric_.cell_count(); ++i)
    mem.history[i] = fabric_.history(i);
  mem.window_slack.assign(static_cast<std::size_t>(components),
                          {-1, 0, 0, 0, 0, 0});
  for (int c = 0; c < components; ++c) {
    const RoutedNet& net = result.nets[static_cast<std::size_t>(c)];
    if (net.cells.empty()) continue;
    Box3 route;
    for (const Vec3& cell : net.cells) route = route.expanded(cell);
    const Box3 pins = pin_box(c);
    // Per-face slack in kNeighbours face order (+x,-x,+y,-y,+z,-z); routes
    // contain their pins, so every entry is >= 0 — slack[0] == -1 is free
    // as the unrouted sentinel.
    mem.window_slack[static_cast<std::size_t>(c)] = {
        route.hi.x - pins.hi.x, pins.lo.x - route.lo.x,
        route.hi.y - pins.hi.y, pins.lo.y - route.lo.y,
        route.hi.z - pins.hi.z, pins.lo.z - route.lo.z};
  }
}

RoutingResult Router::run() {
  TQEC_TRACE_SPAN("route.pathfinder");
  RoutingResult result;
  const int components = static_cast<int>(nodes_.net_pins.size());
  result.nets.assign(static_cast<std::size_t>(components), RoutedNet{});
  scratch_.resize(static_cast<std::size_t>(threads_));
  net_stats_.assign(static_cast<std::size_t>(components), SearchStats{});
  batch_stamp_.assign(fabric_.cell_count(), 0);

  // Port-region capacity: a module loop pinned by several components must
  // admit one crossing per component not just on its own cell but through
  // its port region — the free face-adjacent cells (the same convention
  // the geometry validator's V3 exemption uses). Without this, k nets
  // forced through a module with fewer than k free neighbours would be a
  // structural overuse no negotiation can fix.
  {
    std::vector<int> pin_count(nodes_.node_of_module.size(), 0);
    for (const auto& pins : nodes_.net_pins)
      for (pdgraph::ModuleId m : pins)
        ++pin_count[static_cast<std::size_t>(m)];
    for (std::size_t m = 0; m < pin_count.size(); ++m) {
      if (pin_count[m] < 2) continue;
      const Vec3 cell = placement_.module_cell[m];
      for (const Vec3& step : kNeighbours) {
        const Vec3 q = cell + step;
        if (!fabric_.inside(q)) continue;
        const std::size_t qi = fabric_.index(q);
        if (fabric_.blocked(qi) || fabric_.module_at(qi) >= 0) continue;
        fabric_.add_capacity(qi, pin_count[m] - 1);
      }
    }
  }

  // Net order: most pins first (hardest nets claim resources early). The
  // incremental schedule reroutes a *subset* of this order each iteration,
  // so relative net order — and with it the result — is independent of
  // which nets happen to be congestion-affected.
  std::vector<int> order(static_cast<std::size_t>(components));
  for (int i = 0; i < components; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::tuple(-static_cast<int>(
                          nodes_.net_pins[static_cast<std::size_t>(a)].size()),
                      a) <
           std::tuple(-static_cast<int>(
                          nodes_.net_pins[static_cast<std::size_t>(b)].size()),
                      b);
  });

  // Warm-start import (history + windows) and lookahead maps come before
  // the first iteration so even iteration 1's searches benefit.
  import_memory(result, components);
  {
    TQEC_TRACE_SPAN("route.lookahead");
    build_lookahead_maps(components);
  }

  // Base declared regions are a function of the (fixed) pin placement
  // only: compute them once. Under --route-windows the effective region
  // additionally covers the net's current warm window (recomputed per
  // iteration below), since that is where its warm first attempt may
  // search.
  std::vector<Box3> base_regions(static_cast<std::size_t>(components));
  for (int c = 0; c < components; ++c)
    base_regions[static_cast<std::size_t>(c)] = declared_region(c);
  std::vector<Box3> regions = base_regions;

  double present_factor = opt_.present_base;
  int stall = 0;
  int prev_overused = -1;
  int stall_sweeps_left = opt_.stall_sweeps;
  trace::Span negotiation_span("route.negotiate");
  // Nets to rip up and reroute this iteration; iteration 1 routes all.
  std::vector<std::uint8_t> dirty(static_cast<std::size_t>(components), 1);
  std::vector<int> pending;
  std::vector<RoutedNet> candidates;
  std::vector<SearchStats> candidate_stats;
  std::vector<std::uint8_t> candidate_ok;
  std::vector<int> requeued;
  for (int iter = 0; iter < opt_.max_iterations; ++iter) {
    result.iterations = iter + 1;
    pending.clear();
    for (int c : order)
      if (dirty[static_cast<std::size_t>(c)]) pending.push_back(c);
    if (opt_.windows) {
      // A pending net's warm first attempt searches within its window:
      // declare that box too so batch-mates stay disjoint from it.
      for (const int c : pending) {
        const Box3 w =
            window_of(c, result.nets[static_cast<std::size_t>(c)]);
        regions[static_cast<std::size_t>(c)] =
            w.empty() ? base_regions[static_cast<std::size_t>(c)]
                      : base_regions[static_cast<std::size_t>(c)].merged(
                            w.inflated(1));
      }
    }
    const BatchPlan plan =
        plan_batches(pending, regions, opt_.serial_schedule);

    requeued.clear();
    for (const std::vector<int>& batch : plan.batches) {
      {
        TQEC_TRACE_SPAN("route.batch");
        for (const int c : batch)
          rip_up(result.nets[static_cast<std::size_t>(c)]);
        candidates.resize(batch.size());
        candidate_stats.assign(batch.size(), SearchStats{});
        candidate_ok.assign(batch.size(), 0);
        // Search phase: the fabric is frozen; each worker slot owns a
        // scratch, so concurrent searches never share mutable state. The
        // context reads the net's pre-rip-up route (rip_up only touches
        // the fabric) and the shared lookahead maps, both frozen here.
        auto search_one = [&](std::size_t slot, std::size_t i) {
          const NetContext ctx = context_of(
              batch[i], result.nets[static_cast<std::size_t>(batch[i])]);
          candidate_ok[i] =
              route_one_net(fabric_, scratch_[slot], nodes_, placement_,
                            opt_, batch[i], present_factor, ctx,
                            candidates[i], candidate_stats[i])
                  ? 1
                  : 0;
        };
        if (threads_ == 1 || batch.size() == 1) {
          for (std::size_t i = 0; i < batch.size(); ++i) search_one(0, i);
        } else {
          parallel_for_slots(batch.size(), threads_, search_one);
        }
      }
      {
        TQEC_TRACE_SPAN("route.commit");
        detail::bump_epoch(batch_epoch_, batch_stamp_);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const int c = batch[i];
          net_stats_[static_cast<std::size_t>(c)] += candidate_stats[i];
          TQEC_REQUIRE(candidate_ok[i] != 0,
                       "router failed to connect a net component");
          // Collision: a search that escaped its declared region may have
          // priced a cell an earlier commit of this batch just filled to
          // capacity. Installing would create snapshot-artifact overuse,
          // so the net reroutes serially below instead.
          bool conflict = false;
          for (const Vec3& cell : candidates[i].cells) {
            const std::size_t idx = fabric_.index(cell);
            if (batch_stamp_[idx] == batch_epoch_ &&
                fabric_.usage(idx) >= fabric_.capacity(idx)) {
              conflict = true;
              break;
            }
          }
          if (conflict) {
            requeued.push_back(c);
            ++result.conflicts_requeued;
            continue;
          }
          RoutedNet& net = result.nets[static_cast<std::size_t>(c)];
          net = std::move(candidates[i]);
          install(net);
          for (const Vec3& cell : net.cells)
            batch_stamp_[fabric_.index(cell)] = batch_epoch_;
        }
        ++result.batches;
      }
    }
    // Requeue tail: conflicted nets (already ripped up by their batch)
    // reroute one at a time against the fully up-to-date fabric, in net
    // order — each is its own singleton batch, so no further conflicts.
    for (const int c : requeued) {
      RoutedNet& net = result.nets[static_cast<std::size_t>(c)];
      const bool ok = route_component(c, net, present_factor);
      TQEC_REQUIRE(ok, "router failed to connect a net component");
      install(net);
      ++result.batches;
    }

    const int reroutes = static_cast<int>(pending.size());
    result.reroutes_per_iter.push_back(reroutes);
    result.reroutes_total += reroutes;
    if (reroutes == components) ++result.full_sweeps;

    // Congestion accounting; overused cells seed the next iteration's
    // reroute set through the occupancy index.
    std::fill(dirty.begin(), dirty.end(), 0);
    int overused = 0;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i) {
      const int over = fabric_.usage(i) - fabric_.capacity(i);
      if (over > 0) {
        ++overused;
        fabric_.history(i) += static_cast<float>(opt_.history_increment);
        for (const int c : fabric_.nets_at(i))
          dirty[static_cast<std::size_t>(c)] = 1;
      }
    }
    result.overused_cells = overused;
    result.overused_per_iter.push_back(overused);
    if (overused == 0) {
      result.legal = true;
      break;
    }
    present_factor =
        std::min(present_factor * opt_.present_growth, opt_.present_max);
    // Negotiation stalled on persistently contested cells: stop and
    // resolve them explicitly below.
    stall = overused >= prev_overused && prev_overused >= 0 ? stall + 1 : 0;
    prev_overused = overused;
    if (stall >= 5) break;
    // Full-sweep fallback: rerouting only the contested nets stopped
    // making progress, so give every net a chance to move out of the way —
    // up to the stall_sweeps budget; past it the run keeps to the
    // contested subset and lets the stall abort hand over to repair.
    if (!opt_.incremental) {
      std::fill(dirty.begin(), dirty.end(), 1);
    } else if (stall > 0 && stall_sweeps_left != 0) {
      std::fill(dirty.begin(), dirty.end(), 1);
      if (stall_sweeps_left > 0) --stall_sweeps_left;
    }
    TQEC_LOG_DEBUG("pathfinder iter " << iter + 1 << ": " << overused
                                      << " overused cells, " << reroutes
                                      << " nets rerouted");
  }
  result.present_factor_final = present_factor;
  result.parallel_efficiency =
      result.batches > 0 ? static_cast<double>(result.reroutes_total) /
                               static_cast<double>(result.batches)
                         : 0.0;
  negotiation_span.end();
  trace::Span repair_span("route.repair");

  // Hard-block repair: when negotiation leaves a handful of contested
  // cells, award each to the net with the most pins (hardest to detour)
  // and reroute the losers with the cell removed from the fabric. The free
  // margin always offers a detour unless the cell was a pin-access cut,
  // in which case the result stays honestly illegal.
  for (int scan = 0; !result.legal && scan < 20; ++scan) {
    // Collect every currently overused cell in one fabric pass.
    std::vector<std::size_t> contested;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i)
      if (fabric_.usage(i) > fabric_.capacity(i)) contested.push_back(i);
    if (contested.empty()) {
      result.legal = true;
      break;
    }
    bool progressed = false;
    // Hard blocks of cells awarded in THIS scan: they keep later reroutes
    // of the same scan off the awarded cells, but must be lifted at scan
    // end — usage/capacity already protects an awarded cell (its winner
    // occupies it), while a stale block would wall the winner off from its
    // own cell if a later scan reroutes it for a different contested cell,
    // spuriously reporting repair_failed.
    std::vector<std::size_t> awarded_blocks;
    for (std::size_t idx : contested) {
      if (fabric_.usage(idx) <= fabric_.capacity(idx))
        continue;  // resolved by an earlier reroute in this scan
      // The occupancy index names the contestants directly; sorting by
      // component id reproduces the order a scan over all nets would give.
      std::vector<int> users = fabric_.nets_at(idx);
      std::sort(users.begin(), users.end());
      if (users.size() < 2) continue;
      std::sort(users.begin(), users.end(), [&](int a, int b) {
        return nodes_.net_pins[static_cast<std::size_t>(a)].size() >
               nodes_.net_pins[static_cast<std::size_t>(b)].size();
      });
      // Award the cell to one user and reroute the rest with the cell
      // removed from the fabric. If a loser genuinely needs the cell (it
      // is the only access to one of its pins), restore everything and try
      // the next candidate winner; only when no award works does the cell
      // stay contested.
      std::vector<RoutedNet> saved;
      saved.reserve(users.size());
      for (int u : users)
        saved.push_back(result.nets[static_cast<std::size_t>(u)]);
      bool awarded = false;
      for (std::size_t winner = 0; winner < users.size() && !awarded;
           ++winner) {
        fabric_.hard_block(idx);
        bool all_ok = true;
        std::vector<std::size_t> rerouted;
        for (std::size_t u = 0; u < users.size(); ++u) {
          if (u == winner) continue;
          RoutedNet& net = result.nets[static_cast<std::size_t>(users[u])];
          rip_up(net);
          const bool ok = route_component(users[u], net, present_factor);
          install(net);
          rerouted.push_back(u);
          if (!ok) {
            all_ok = false;
            break;
          }
        }
        if (all_ok) {
          awarded = true;
          progressed = true;
          awarded_blocks.push_back(idx);
        } else {
          // Roll back: restore every touched net's previous complete route
          // and lift the block before trying the next winner.
          for (std::size_t u : rerouted) {
            RoutedNet& net = result.nets[static_cast<std::size_t>(users[u])];
            rip_up(net);
            net = saved[u];
            install(net);
          }
          fabric_.unblock(idx);
        }
      }
      if (awarded) ++result.repair_awarded;
      else ++result.repair_failed;
      const Vec3 cell = fabric_.cell_at(idx);
      TQEC_LOG_DEBUG("hard-block repair at " << cell << " among "
                                             << users.size() << " nets"
                                             << (awarded ? "" : " FAILED"));
    }
    for (const std::size_t idx : awarded_blocks) fabric_.unblock(idx);
    if (!progressed) break;  // genuine cut: stays honestly illegal
  }
  repair_span.end();

  // Invariant: after negotiation and repair (including every repair
  // rollback), usage counters and the occupancy index must both agree with
  // the final routes. A leak here would silently corrupt congestion
  // accounting, so the check runs in every build type (one O(cells) pass).
  {
    std::vector<std::uint32_t> recount(fabric_.cell_count(), 0);
    for (const RoutedNet& net : result.nets)
      for (const Vec3& cell : net.cells) ++recount[fabric_.index(cell)];
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i) {
      TQEC_ASSERT(recount[i] == static_cast<std::uint32_t>(fabric_.usage(i)),
                  "usage counters desynced from the final routes");
      TQEC_ASSERT(recount[i] == fabric_.nets_at(i).size(),
                  "occupancy index desynced from the final routes");
    }
  }

  // Final congestion census: usage histogram, top-K hottest cells, and a
  // top-down text heatmap (one O(cells) pass, same cost class as the
  // invariant check above).
  {
    int max_usage = 0;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i)
      max_usage = std::max(max_usage, fabric_.usage(i));
    result.congestion_histogram.assign(
        static_cast<std::size_t>(max_usage) + 1, 0);
    std::vector<std::size_t> used_cells;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i) {
      ++result.congestion_histogram[static_cast<std::size_t>(
          fabric_.usage(i))];
      if (fabric_.usage(i) > 0) used_cells.push_back(i);
    }
    constexpr std::size_t kTopK = 16;
    std::sort(used_cells.begin(), used_cells.end(),
              [&](std::size_t a, std::size_t b) {
                return std::pair(-fabric_.usage(a), a) <
                       std::pair(-fabric_.usage(b), b);
              });
    if (used_cells.size() > kTopK) used_cells.resize(kTopK);
    for (std::size_t i : used_cells)
      result.hottest_cells.push_back(
          {fabric_.cell_at(i), fabric_.usage(i), fabric_.capacity(i)});

    const Vec3 dims = fabric_.box().dims();
    if (dims.x <= 160 && dims.z <= 100) {
      std::string& map = result.congestion_heatmap;
      map.reserve(static_cast<std::size_t>(dims.z) * (dims.x + 1));
      for (int z = 0; z < dims.z; ++z) {
        for (int x = 0; x < dims.x; ++x) {
          int column_max = 0;
          for (int y = 0; y < dims.y; ++y)
            column_max = std::max(
                column_max,
                fabric_.usage(fabric_.index(fabric_.box().lo + Vec3{x, y, z})));
          map.push_back(column_max == 0   ? '.'
                        : column_max <= 9 ? static_cast<char>('0' + column_max)
                                          : '#');
        }
        map.push_back('\n');
      }
    }
  }

  // A*-queue totals: per-component tallies summed in component order, so
  // the totals never depend on which worker ran which search.
  for (const SearchStats& s : net_stats_) {
    result.queue_pushes += s.queue_pushes;
    result.queue_pops += s.queue_pops;
    result.window_hits += s.window_hits;
    result.window_misses += s.window_misses;
    if (s.lookahead_connects > 0) ++result.lookahead_nets;
  }
  trace::counter_add("route.queue_pushes", result.queue_pushes);
  trace::counter_add("route.queue_pops", result.queue_pops);
  trace::counter_add("route.reroutes", result.reroutes_total);
  trace::counter_add("route.iterations", result.iterations);
  trace::counter_add("route.repair_awarded", result.repair_awarded);
  trace::counter_add("route.repair_failed", result.repair_failed);
  trace::counter_add("route.batches", result.batches);
  trace::counter_add("route.conflicts_requeued", result.conflicts_requeued);
  trace::counter_add("route.lookahead_nets", result.lookahead_nets);
  trace::counter_add("route.window_hits", result.window_hits);
  trace::counter_add("route.window_misses", result.window_misses);
  export_memory(result, components);
  result.bounding = placement_.core;
  result.total_wire = 0;
  for (const RoutedNet& net : result.nets) {
    result.total_wire += static_cast<std::int64_t>(net.cells.size());
    for (const Vec3& cell : net.cells)
      result.bounding = result.bounding.expanded(cell);
  }
  result.volume = result.bounding.volume();
  TQEC_LOG_INFO("routing: " << components << " components, legal="
                            << result.legal << " iters=" << result.iterations
                            << " wire=" << result.total_wire
                            << " reroutes=" << result.reroutes_total
                            << " batches=" << result.batches
                            << " conflicts=" << result.conflicts_requeued
                            << " volume=" << result.volume);
  return result;
}

}  // namespace

RoutingResult route_nets(const place::NodeSet& nodes,
                         const place::Placement& placement,
                         const RouteOptions& options) {
  return route_nets(nodes, placement, options, nullptr, nullptr);
}

RoutingResult route_nets(const place::NodeSet& nodes,
                         const place::Placement& placement,
                         const RouteOptions& options,
                         const NegotiationMemory* warm,
                         NegotiationMemory* memory_out) {
  Router router(nodes, placement, options, warm, memory_out);
  return router.run();
}

}  // namespace tqec::route
