#include "route/router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"
#include "common/trace.h"

namespace tqec::route {

namespace {

constexpr std::array<Vec3, 6> kNeighbours{Vec3{1, 0, 0},  Vec3{-1, 0, 0},
                                          Vec3{0, 1, 0},  Vec3{0, -1, 0},
                                          Vec3{0, 0, 1},  Vec3{0, 0, -1}};

/// Advance a stamp epoch. Epochs turn per-search clears into O(1) (a cell is
/// "set" iff its stamp equals the current epoch); on the (astronomically
/// rare) wrap the backing array is cleared so stale stamps can never alias a
/// fresh epoch.
inline void bump_epoch(int& epoch, std::vector<int>& stamps) {
  if (epoch == std::numeric_limits<int>::max()) {
    std::fill(stamps.begin(), stamps.end(), 0);
    epoch = 0;
  }
  ++epoch;
}

class RoutingFabric {
 public:
  RoutingFabric(const place::NodeSet& nodes,
                const place::Placement& placement, int margin)
      : box_(placement.core.inflated(margin)) {
    dims_ = box_.dims();
    const std::size_t n = cell_count();
    blocked_.assign(n, 0);
    module_at_.assign(n, -1);
    usage_.assign(n, 0);
    capacity_.assign(n, 1);
    history_.assign(n, 0.0f);
    nets_at_.assign(n, {});
    g_.assign(n, 0.0f);
    g_version_.assign(n, 0);
    parent_.assign(n, -1);
    tree_version_.assign(n, 0);

    for (const geom::DistillBox& b : placement.boxes) {
      const Box3 e = b.extent();
      for (int x = e.lo.x; x <= e.hi.x; ++x)
        for (int y = e.lo.y; y <= e.hi.y; ++y)
          for (int z = e.lo.z; z <= e.hi.z; ++z)
            blocked_[index({x, y, z})] = 1;
    }
    for (std::size_t m = 0; m < placement.module_cell.size(); ++m)
      module_at_[index(placement.module_cell[m])] = static_cast<int>(m);

    // Pin capacity: a module loop accommodates one crossing per component
    // pinned to it (the loop is spatially extended in the paper's geometry;
    // our cell model charges it one unit per threading net).
    for (const auto& pins : nodes.net_pins)
      for (pdgraph::ModuleId m : pins)
        ++capacity_[index(
            placement.module_cell[static_cast<std::size_t>(m)])];
    for (std::size_t i = 0; i < n; ++i)
      if (module_at_[i] >= 0)  // base 1 was counted on top
        capacity_[i] = detail::counter_add(capacity_[i], -1);
  }

  std::size_t cell_count() const {
    return static_cast<std::size_t>(dims_.x) * dims_.y * dims_.z;
  }
  const Box3& box() const { return box_; }
  bool inside(Vec3 p) const { return box_.contains(p); }

  std::size_t index(Vec3 p) const {
    TQEC_ASSERT(inside(p), "cell outside routing fabric");
    const Vec3 rel = p - box_.lo;
    return (static_cast<std::size_t>(rel.y) * dims_.z + rel.z) * dims_.x +
           rel.x;
  }
  Vec3 cell_at(std::size_t i) const {
    const int x = static_cast<int>(i % static_cast<std::size_t>(dims_.x));
    const std::size_t rest = i / static_cast<std::size_t>(dims_.x);
    const int z = static_cast<int>(rest % static_cast<std::size_t>(dims_.z));
    const int y = static_cast<int>(rest / static_cast<std::size_t>(dims_.z));
    return box_.lo + Vec3{x, y, z};
  }

  bool blocked(std::size_t i) const { return blocked_[i] != 0; }
  void hard_block(std::size_t i) { blocked_[i] = 1; }
  /// Lift a hard block placed by the repair pass (never a box cell).
  void unblock(std::size_t i) { blocked_[i] = 0; }
  int module_at(std::size_t i) const { return module_at_[i]; }
  int usage(std::size_t i) const { return usage_[i]; }
  int capacity(std::size_t i) const { return capacity_[i]; }
  void add_capacity(std::size_t i, int d) {
    capacity_[i] = detail::counter_add(capacity_[i], d);
  }
  float& history(std::size_t i) { return history_[i]; }

  // Cell -> net occupancy index, kept in lockstep with the usage counters:
  // every cell lists the components currently routed through it. Powers the
  // incremental reroute schedule (which nets sit on an overused cell) and
  // the hard-block repair phase (who contests a cell) without scanning
  // every net's route.
  void occupy(std::size_t i, int component) {
    usage_[i] = detail::counter_add(usage_[i], +1);
    nets_at_[i].push_back(component);
  }
  void vacate(std::size_t i, int component) {
    usage_[i] = detail::counter_add(usage_[i], -1);
    auto& nets = nets_at_[i];
    const auto it = std::find(nets.begin(), nets.end(), component);
    TQEC_ASSERT(it != nets.end(), "occupancy index missing a routed net");
    nets.erase(it);
  }
  const std::vector<int>& nets_at(std::size_t i) const { return nets_at_[i]; }

  // Versioned per-search scratch (O(1) reset per search).
  void begin_search() { bump_epoch(search_epoch_, g_version_); }
  bool seen(std::size_t i) const { return g_version_[i] == search_epoch_; }
  float g(std::size_t i) const { return g_[i]; }
  void set_g(std::size_t i, float v, int parent_dir) {
    g_[i] = v;
    g_version_[i] = search_epoch_;
    parent_[i] = static_cast<std::int8_t>(parent_dir);
  }
  int parent_dir(std::size_t i) const { return parent_[i]; }

  void begin_tree() { bump_epoch(tree_epoch_, tree_version_); }
  bool on_tree(std::size_t i) const { return tree_version_[i] == tree_epoch_; }
  void mark_tree(std::size_t i) { tree_version_[i] = tree_epoch_; }

 private:
  Box3 box_;
  Vec3 dims_;
  std::vector<std::uint8_t> blocked_;
  std::vector<int> module_at_;
  std::vector<std::uint16_t> usage_;
  std::vector<std::uint16_t> capacity_;
  std::vector<float> history_;
  std::vector<std::vector<int>> nets_at_;
  std::vector<float> g_;
  std::vector<int> g_version_;
  std::vector<std::int8_t> parent_;
  std::vector<int> tree_version_;
  int search_epoch_ = 0;
  int tree_epoch_ = 0;
};

struct QueueEntry {
  float f;
  float g;
  std::size_t cell;
  bool operator>(const QueueEntry& o) const { return f > o.f; }
};

class Router {
 public:
  Router(const place::NodeSet& nodes, const place::Placement& placement,
         const RouteOptions& opt)
      : nodes_(nodes), placement_(placement), opt_(opt),
        fabric_(nodes, placement, opt.margin), rng_(opt.seed) {}

  RoutingResult run();

 private:
  /// Admissible heuristic: Manhattan distance to the tree bounding box.
  static float heuristic(Vec3 p, const Box3& tree_box) {
    auto axis = [](int v, int lo, int hi) {
      if (v < lo) return lo - v;
      if (v > hi) return v - hi;
      return 0;
    };
    return static_cast<float>(axis(p.x, tree_box.lo.x, tree_box.hi.x) +
                              axis(p.y, tree_box.lo.y, tree_box.hi.y) +
                              axis(p.z, tree_box.lo.z, tree_box.hi.z));
  }

  bool route_component(int component, RoutedNet& out, double present_factor);
  bool connect(int component, Vec3 source, Box3& tree_box,
               std::vector<std::size_t>& tree_cells, double present_factor,
               int region_margin);

  /// Remove / install a net's route, keeping usage counters and the
  /// occupancy index in lockstep. Every rip-up and (re)install in the
  /// negotiation loop and the repair phase goes through this pair.
  void rip_up(const RoutedNet& net) {
    for (const Vec3& cell : net.cells)
      fabric_.vacate(fabric_.index(cell), net.component);
  }
  void install(const RoutedNet& net) {
    for (const Vec3& cell : net.cells)
      fabric_.occupy(fabric_.index(cell), net.component);
  }

  bool own_pin(std::size_t i) const {
    return own_pin_version_[i] == own_pin_epoch_;
  }

  /// The f-value planning (Fig. 15) assigns each chain module its access
  /// cells: the free cells through which its dual segments exit. Rotated
  /// nodes rotate the side; a cell claimed by a neighbouring structure
  /// drops that constraint rather than failing.
  std::vector<Vec3> access_cells_of(pdgraph::ModuleId m) const {
    std::vector<Vec3> cells;
    for (Vec3 off : nodes_.access_offsets[static_cast<std::size_t>(m)]) {
      const int node = nodes_.node_of_module[static_cast<std::size_t>(m)];
      if (!placement_.node_rotated.empty() &&
          placement_.node_rotated[static_cast<std::size_t>(node)])
        off = {off.z, off.y, off.x};
      const Vec3 cell =
          placement_.module_cell[static_cast<std::size_t>(m)] + off;
      if (!fabric_.inside(cell)) continue;
      const std::size_t i = fabric_.index(cell);
      if (fabric_.blocked(i) || fabric_.module_at(i) >= 0) continue;
      cells.push_back(cell);
    }
    return cells;
  }

  const place::NodeSet& nodes_;
  const place::Placement& placement_;
  RouteOptions opt_;
  RoutingFabric fabric_;
  Rng rng_;
  /// Stamped per-component pin marks (unblocks the component's own module
  /// cells); an epoch bump replaces the per-component clear.
  std::vector<int> own_pin_version_;
  int own_pin_epoch_ = 0;
  std::int64_t queue_pushes_ = 0;
  std::int64_t queue_pops_ = 0;
};

bool Router::connect(int component, Vec3 source, Box3& tree_box,
                     std::vector<std::size_t>& tree_cells,
                     double present_factor, int region_margin) {
  const std::size_t source_idx = fabric_.index(source);
  if (fabric_.on_tree(source_idx)) return true;

  const Box3 region =
      tree_box.expanded(source).inflated(region_margin);

  fabric_.begin_search();
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>> open;
  fabric_.set_g(source_idx, 0.0f, -1);
  open.push({heuristic(source, tree_box), 0.0f, source_idx});
  ++queue_pushes_;

  std::size_t goal = static_cast<std::size_t>(-1);
  while (!open.empty()) {
    const QueueEntry top = open.top();
    open.pop();
    ++queue_pops_;
    if (top.g > fabric_.g(top.cell)) continue;  // stale entry
    if (fabric_.on_tree(top.cell)) {
      goal = top.cell;
      break;
    }
    const Vec3 p = fabric_.cell_at(top.cell);
    for (int dir = 0; dir < 6; ++dir) {
      const Vec3 q = p + kNeighbours[static_cast<std::size_t>(dir)];
      if (!fabric_.inside(q) || !region.contains(q)) continue;
      const std::size_t qi = fabric_.index(q);
      if (fabric_.blocked(qi)) continue;
      const int mod = fabric_.module_at(qi);
      if (mod >= 0 && !own_pin(qi))
        continue;  // unrelated primal module: spurious braid
      double cost = 1.0 + fabric_.history(qi);
      const int over = fabric_.usage(qi) - (fabric_.capacity(qi) - 1);
      if (over > 0) cost += present_factor * over;
      const float ng = top.g + static_cast<float>(cost);
      if (!fabric_.seen(qi) || ng < fabric_.g(qi)) {
        fabric_.set_g(qi, ng, dir);
        open.push({ng + heuristic(q, tree_box), ng, qi});
        ++queue_pushes_;
      }
    }
  }
  if (goal == static_cast<std::size_t>(-1)) return false;

  // Backtrack from goal to source, adding the path to the tree.
  std::size_t cur = goal;
  for (;;) {
    if (!fabric_.on_tree(cur)) {
      fabric_.mark_tree(cur);
      tree_cells.push_back(cur);
      tree_box = tree_box.expanded(fabric_.cell_at(cur));
    }
    const int dir = fabric_.parent_dir(cur);
    if (cur == source_idx || dir < 0) break;
    // parent = cell we came FROM: step back against the stored direction.
    const Vec3 p = fabric_.cell_at(cur) -
                   kNeighbours[static_cast<std::size_t>(dir)];
    cur = fabric_.index(p);
  }
  (void)component;
  return true;
}

bool Router::route_component(int component, RoutedNet& out,
                             double present_factor) {
  const auto& pins = nodes_.net_pins[static_cast<std::size_t>(component)];
  out.component = component;
  out.cells.clear();
  if (pins.empty()) return true;

  // Mark own pins (unblocks this component's module cells).
  bump_epoch(own_pin_epoch_, own_pin_version_);
  for (pdgraph::ModuleId m : pins)
    own_pin_version_[fabric_.index(
        placement_.module_cell[static_cast<std::size_t>(m)])] =
        own_pin_epoch_;

  // Access-cell constraints only bind components that span several
  // placement nodes: the f-value planning (Fig. 15) governs the dual
  // segments *leaving* a primal-bridging super-module, while a net wholly
  // inside one chain threads its module loops directly (Fig. 1(e)).
  bool spans_nodes = false;
  for (pdgraph::ModuleId m : pins)
    if (nodes_.node_of_module[static_cast<std::size_t>(m)] !=
        nodes_.node_of_module[static_cast<std::size_t>(pins.front())])
      spans_nodes = true;

  // Seed the tree at the first pin, then connect remaining pins nearest-
  // to-seed first; each pin's access cells join the tree right after it.
  struct PinEntry {
    Vec3 cell;
    std::vector<Vec3> access;
  };
  std::vector<PinEntry> entries;
  entries.reserve(pins.size());
  for (pdgraph::ModuleId m : pins)
    entries.push_back(
        {placement_.module_cell[static_cast<std::size_t>(m)],
         spans_nodes ? access_cells_of(m) : std::vector<Vec3>{}});
  std::sort(entries.begin() + 1, entries.end(),
            [&](const PinEntry& a, const PinEntry& b) {
              return manhattan(a.cell, entries[0].cell) <
                     manhattan(b.cell, entries[0].cell);
            });

  fabric_.begin_tree();
  std::vector<std::size_t> tree_cells;
  const std::size_t seed_idx = fabric_.index(entries[0].cell);
  fabric_.mark_tree(seed_idx);
  tree_cells.push_back(seed_idx);
  Box3 tree_box{entries[0].cell, entries[0].cell};

  auto connect_with_retries = [&](Vec3 target) {
    int margin = opt_.region_margin;
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (connect(component, target, tree_box, tree_cells, present_factor,
                  margin))
        return true;
      margin *= 4;
    }
    // Last resort: unrestricted search over the whole fabric.
    return connect(component, target, tree_box, tree_cells, present_factor,
                   1 << 24);
  };

  // Ports connect before their pin: the pin then attaches to the tree
  // through its (capacity-boosted) port instead of squeezing past a
  // neighbouring structure on the unboosted side.
  bool ok = true;
  for (const Vec3& cell : entries[0].access)
    ok = ok && connect_with_retries(cell);
  for (std::size_t i = 1; ok && i < entries.size(); ++i) {
    for (const Vec3& cell : entries[i].access)
      ok = ok && connect_with_retries(cell);
    ok = ok && connect_with_retries(entries[i].cell);
  }

  out.cells.reserve(tree_cells.size());
  for (std::size_t i : tree_cells) out.cells.push_back(fabric_.cell_at(i));
  return ok;
}

RoutingResult Router::run() {
  TQEC_TRACE_SPAN("route.pathfinder");
  RoutingResult result;
  const int components = static_cast<int>(nodes_.net_pins.size());
  result.nets.assign(static_cast<std::size_t>(components), RoutedNet{});
  own_pin_version_.assign(fabric_.cell_count(), 0);

  // Port-region capacity: a module loop pinned by several components must
  // admit one crossing per component not just on its own cell but through
  // its port region — the free face-adjacent cells (the same convention
  // the geometry validator's V3 exemption uses). Without this, k nets
  // forced through a module with fewer than k free neighbours would be a
  // structural overuse no negotiation can fix.
  {
    std::vector<int> pin_count(nodes_.node_of_module.size(), 0);
    for (const auto& pins : nodes_.net_pins)
      for (pdgraph::ModuleId m : pins)
        ++pin_count[static_cast<std::size_t>(m)];
    for (std::size_t m = 0; m < pin_count.size(); ++m) {
      if (pin_count[m] < 2) continue;
      const Vec3 cell = placement_.module_cell[m];
      for (const Vec3& step : kNeighbours) {
        const Vec3 q = cell + step;
        if (!fabric_.inside(q)) continue;
        const std::size_t qi = fabric_.index(q);
        if (fabric_.blocked(qi) || fabric_.module_at(qi) >= 0) continue;
        fabric_.add_capacity(qi, pin_count[m] - 1);
      }
    }
  }

  // Net order: most pins first (hardest nets claim resources early). The
  // incremental schedule reroutes a *subset* of this order each iteration,
  // so relative net order — and with it the result — is independent of
  // which nets happen to be congestion-affected.
  std::vector<int> order(static_cast<std::size_t>(components));
  for (int i = 0; i < components; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::tuple(-static_cast<int>(
                          nodes_.net_pins[static_cast<std::size_t>(a)].size()),
                      a) <
           std::tuple(-static_cast<int>(
                          nodes_.net_pins[static_cast<std::size_t>(b)].size()),
                      b);
  });

  double present_factor = opt_.present_base;
  int stall = 0;
  int prev_overused = -1;
  trace::Span negotiation_span("route.negotiate");
  // Nets to rip up and reroute this iteration; iteration 1 routes all.
  std::vector<std::uint8_t> dirty(static_cast<std::size_t>(components), 1);
  for (int iter = 0; iter < opt_.max_iterations; ++iter) {
    result.iterations = iter + 1;
    int reroutes = 0;
    for (int c : order) {
      if (!dirty[static_cast<std::size_t>(c)]) continue;
      RoutedNet& net = result.nets[static_cast<std::size_t>(c)];
      rip_up(net);  // previous route (no-op on iteration 1)
      const bool ok = route_component(c, net, present_factor);
      TQEC_REQUIRE(ok, "router failed to connect a net component");
      install(net);
      ++reroutes;
    }
    result.reroutes_per_iter.push_back(reroutes);
    result.reroutes_total += reroutes;
    if (reroutes == components) ++result.full_sweeps;

    // Congestion accounting; overused cells seed the next iteration's
    // reroute set through the occupancy index.
    std::fill(dirty.begin(), dirty.end(), 0);
    int overused = 0;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i) {
      const int over = fabric_.usage(i) - fabric_.capacity(i);
      if (over > 0) {
        ++overused;
        fabric_.history(i) += static_cast<float>(opt_.history_increment);
        for (const int c : fabric_.nets_at(i))
          dirty[static_cast<std::size_t>(c)] = 1;
      }
    }
    result.overused_cells = overused;
    result.overused_per_iter.push_back(overused);
    if (overused == 0) {
      result.legal = true;
      break;
    }
    present_factor =
        std::min(present_factor * opt_.present_growth, opt_.present_max);
    // Negotiation stalled on persistently contested cells: stop and
    // resolve them explicitly below.
    stall = overused >= prev_overused && prev_overused >= 0 ? stall + 1 : 0;
    prev_overused = overused;
    if (stall >= 5) break;
    // Full-sweep fallback: rerouting only the contested nets stopped
    // making progress, so give every net a chance to move out of the way.
    if (!opt_.incremental || stall > 0)
      std::fill(dirty.begin(), dirty.end(), 1);
    TQEC_LOG_DEBUG("pathfinder iter " << iter + 1 << ": " << overused
                                      << " overused cells, " << reroutes
                                      << " nets rerouted");
  }
  result.present_factor_final = present_factor;
  negotiation_span.end();
  trace::Span repair_span("route.repair");

  // Hard-block repair: when negotiation leaves a handful of contested
  // cells, award each to the net with the most pins (hardest to detour)
  // and reroute the losers with the cell removed from the fabric. The free
  // margin always offers a detour unless the cell was a pin-access cut,
  // in which case the result stays honestly illegal.
  for (int scan = 0; !result.legal && scan < 20; ++scan) {
    // Collect every currently overused cell in one fabric pass.
    std::vector<std::size_t> contested;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i)
      if (fabric_.usage(i) > fabric_.capacity(i)) contested.push_back(i);
    if (contested.empty()) {
      result.legal = true;
      break;
    }
    bool progressed = false;
    for (std::size_t idx : contested) {
      if (fabric_.usage(idx) <= fabric_.capacity(idx))
        continue;  // resolved by an earlier reroute in this scan
      // The occupancy index names the contestants directly; sorting by
      // component id reproduces the order a scan over all nets would give.
      std::vector<int> users = fabric_.nets_at(idx);
      std::sort(users.begin(), users.end());
      if (users.size() < 2) continue;
      std::sort(users.begin(), users.end(), [&](int a, int b) {
        return nodes_.net_pins[static_cast<std::size_t>(a)].size() >
               nodes_.net_pins[static_cast<std::size_t>(b)].size();
      });
      // Award the cell to one user and reroute the rest with the cell
      // removed from the fabric. If a loser genuinely needs the cell (it
      // is the only access to one of its pins), restore everything and try
      // the next candidate winner; only when no award works does the cell
      // stay contested.
      std::vector<RoutedNet> saved;
      saved.reserve(users.size());
      for (int u : users)
        saved.push_back(result.nets[static_cast<std::size_t>(u)]);
      bool awarded = false;
      for (std::size_t winner = 0; winner < users.size() && !awarded;
           ++winner) {
        fabric_.hard_block(idx);
        bool all_ok = true;
        std::vector<std::size_t> rerouted;
        for (std::size_t u = 0; u < users.size(); ++u) {
          if (u == winner) continue;
          RoutedNet& net = result.nets[static_cast<std::size_t>(users[u])];
          rip_up(net);
          const bool ok = route_component(users[u], net, present_factor);
          install(net);
          rerouted.push_back(u);
          if (!ok) {
            all_ok = false;
            break;
          }
        }
        if (all_ok) {
          awarded = true;
          progressed = true;
        } else {
          // Roll back: restore every touched net's previous complete route
          // and lift the block before trying the next winner.
          for (std::size_t u : rerouted) {
            RoutedNet& net = result.nets[static_cast<std::size_t>(users[u])];
            rip_up(net);
            net = saved[u];
            install(net);
          }
          fabric_.unblock(idx);
        }
      }
      if (awarded) ++result.repair_awarded;
      else ++result.repair_failed;
      const Vec3 cell = fabric_.cell_at(idx);
      TQEC_LOG_DEBUG("hard-block repair at " << cell << " among "
                                             << users.size() << " nets"
                                             << (awarded ? "" : " FAILED"));
    }
    if (!progressed) break;  // genuine cut: stays honestly illegal
  }
  repair_span.end();

  // Invariant: after negotiation and repair (including every repair
  // rollback), usage counters and the occupancy index must both agree with
  // the final routes. A leak here would silently corrupt congestion
  // accounting, so the check runs in every build type (one O(cells) pass).
  {
    std::vector<std::uint32_t> recount(fabric_.cell_count(), 0);
    for (const RoutedNet& net : result.nets)
      for (const Vec3& cell : net.cells) ++recount[fabric_.index(cell)];
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i) {
      TQEC_ASSERT(recount[i] == static_cast<std::uint32_t>(fabric_.usage(i)),
                  "usage counters desynced from the final routes");
      TQEC_ASSERT(recount[i] == fabric_.nets_at(i).size(),
                  "occupancy index desynced from the final routes");
    }
  }

  // Final congestion census: usage histogram, top-K hottest cells, and a
  // top-down text heatmap (one O(cells) pass, same cost class as the
  // invariant check above).
  {
    int max_usage = 0;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i)
      max_usage = std::max(max_usage, fabric_.usage(i));
    result.congestion_histogram.assign(
        static_cast<std::size_t>(max_usage) + 1, 0);
    std::vector<std::size_t> used_cells;
    for (std::size_t i = 0; i < fabric_.cell_count(); ++i) {
      ++result.congestion_histogram[static_cast<std::size_t>(
          fabric_.usage(i))];
      if (fabric_.usage(i) > 0) used_cells.push_back(i);
    }
    constexpr std::size_t kTopK = 16;
    std::sort(used_cells.begin(), used_cells.end(),
              [&](std::size_t a, std::size_t b) {
                return std::pair(-fabric_.usage(a), a) <
                       std::pair(-fabric_.usage(b), b);
              });
    if (used_cells.size() > kTopK) used_cells.resize(kTopK);
    for (std::size_t i : used_cells)
      result.hottest_cells.push_back(
          {fabric_.cell_at(i), fabric_.usage(i), fabric_.capacity(i)});

    const Vec3 dims = fabric_.box().dims();
    if (dims.x <= 160 && dims.z <= 100) {
      std::string& map = result.congestion_heatmap;
      map.reserve(static_cast<std::size_t>(dims.z) * (dims.x + 1));
      for (int z = 0; z < dims.z; ++z) {
        for (int x = 0; x < dims.x; ++x) {
          int column_max = 0;
          for (int y = 0; y < dims.y; ++y)
            column_max = std::max(
                column_max,
                fabric_.usage(fabric_.index(fabric_.box().lo + Vec3{x, y, z})));
          map.push_back(column_max == 0   ? '.'
                        : column_max <= 9 ? static_cast<char>('0' + column_max)
                                          : '#');
        }
        map.push_back('\n');
      }
    }
  }

  result.queue_pushes = queue_pushes_;
  result.queue_pops = queue_pops_;
  trace::counter_add("route.queue_pushes", queue_pushes_);
  trace::counter_add("route.queue_pops", queue_pops_);
  trace::counter_add("route.reroutes", result.reroutes_total);
  trace::counter_add("route.iterations", result.iterations);
  trace::counter_add("route.repair_awarded", result.repair_awarded);
  trace::counter_add("route.repair_failed", result.repair_failed);
  result.bounding = placement_.core;
  result.total_wire = 0;
  for (const RoutedNet& net : result.nets) {
    result.total_wire += static_cast<std::int64_t>(net.cells.size());
    for (const Vec3& cell : net.cells)
      result.bounding = result.bounding.expanded(cell);
  }
  result.volume = result.bounding.volume();
  TQEC_LOG_INFO("routing: " << components << " components, legal="
                            << result.legal << " iters=" << result.iterations
                            << " wire=" << result.total_wire
                            << " reroutes=" << result.reroutes_total
                            << " volume=" << result.volume);
  return result;
}

}  // namespace

RoutingResult route_nets(const place::NodeSet& nodes,
                         const place::Placement& placement,
                         const RouteOptions& options) {
  Router router(nodes, placement, options);
  return router.run();
}

}  // namespace tqec::route
