// Per-net A* search kernel for the dual-defect router, factored out of the
// PathFinder negotiation loop so that
//   (a) the shared routing fabric (occupancy, history, capacities) is
//       cleanly separated from per-search scratch — a prerequisite for
//       routing spatially disjoint nets concurrently against a read
//       snapshot of the fabric (see net_batcher.h and DESIGN.md §Routing);
//   (b) all per-search state (open queue storage, g/parent/tree stamp
//       arrays) lives in a reusable per-worker SearchScratch, so the hot
//       loop performs zero heap allocations after warm-up;
//   (c) the open list is a monotone bucket (Dial) queue keyed on the
//       integer lower bound of f — O(1) push/pop against the
//       std::priority_queue's O(log n) — with the classic binary heap kept
//       behind RouteOptions::bucket_queue for A/B benchmarking
//       (bench/micro_route_kernel.cpp).
//
// Thread-safety contract: during a batch's search phase every worker holds
// a distinct SearchScratch and treats the Fabric as read-only; all fabric
// mutation (occupy/vacate/history/hard blocks) happens on the negotiation
// thread between search phases. Searches are pure functions of
// (fabric snapshot, net, options), which is what makes the batched
// schedule's results independent of the worker count.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "place/nodes.h"
#include "place/placer.h"
#include "route/router.h"

namespace tqec::route {

inline constexpr std::array<Vec3, 6> kNeighbours{
    Vec3{1, 0, 0}, Vec3{-1, 0, 0}, Vec3{0, 1, 0},
    Vec3{0, -1, 0}, Vec3{0, 0, 1}, Vec3{0, 0, -1}};

namespace detail {

/// Advance a stamp epoch. Epochs turn per-search clears into O(1) (a cell
/// is "set" iff its stamp equals the current epoch); on the
/// (astronomically rare) wrap the backing array is cleared so stale stamps
/// can never alias a fresh epoch.
inline void bump_epoch(int& epoch, std::vector<int>& stamps) {
  if (epoch == std::numeric_limits<int>::max()) {
    std::fill(stamps.begin(), stamps.end(), 0);
    epoch = 0;
  }
  ++epoch;
}

}  // namespace detail

/// Shared routing fabric: the lattice-cell grid spanning the placement
/// core plus a margin, with per-cell obstacle, capacity, usage, history,
/// and occupancy-index state laid out as parallel SoA arrays (the search
/// hot loop touches blocked/module/usage/capacity/history; keeping each in
/// its own dense array maximizes cache-line utility for the 6-neighbour
/// scans). Per-search state deliberately lives elsewhere (SearchScratch).
class Fabric {
 public:
  Fabric(const place::NodeSet& nodes, const place::Placement& placement,
         int margin);

  std::size_t cell_count() const {
    return static_cast<std::size_t>(dims_.x) * dims_.y * dims_.z;
  }
  const Box3& box() const { return box_; }
  bool inside(Vec3 p) const { return box_.contains(p); }

  std::size_t index(Vec3 p) const {
    TQEC_ASSERT(inside(p), "cell outside routing fabric");
    const Vec3 rel = p - box_.lo;
    return (static_cast<std::size_t>(rel.y) * dims_.z + rel.z) * dims_.x +
           rel.x;
  }
  Vec3 cell_at(std::size_t i) const {
    const int x = static_cast<int>(i % static_cast<std::size_t>(dims_.x));
    const std::size_t rest = i / static_cast<std::size_t>(dims_.x);
    const int z = static_cast<int>(rest % static_cast<std::size_t>(dims_.z));
    const int y = static_cast<int>(rest / static_cast<std::size_t>(dims_.z));
    return box_.lo + Vec3{x, y, z};
  }

  bool blocked(std::size_t i) const { return blocked_[i] != 0; }
  void hard_block(std::size_t i) { blocked_[i] = 1; }
  /// Lift a hard block placed by the repair pass (never a box cell).
  void unblock(std::size_t i) { blocked_[i] = 0; }
  int module_at(std::size_t i) const { return module_at_[i]; }
  int usage(std::size_t i) const { return usage_[i]; }
  int capacity(std::size_t i) const { return capacity_[i]; }
  void add_capacity(std::size_t i, int d) {
    capacity_[i] = detail::counter_add(capacity_[i], d);
  }
  float& history(std::size_t i) { return history_[i]; }
  float history(std::size_t i) const { return history_[i]; }

  // Cell -> net occupancy index, kept in lockstep with the usage counters:
  // every cell lists the components currently routed through it. Powers
  // the incremental reroute schedule (which nets sit on an overused cell)
  // and the hard-block repair phase (who contests a cell) without scanning
  // every net's route. Mutation is negotiation-thread-only.
  void occupy(std::size_t i, int component) {
    usage_[i] = detail::counter_add(usage_[i], +1);
    nets_at_[i].push_back(component);
  }
  void vacate(std::size_t i, int component) {
    usage_[i] = detail::counter_add(usage_[i], -1);
    auto& nets = nets_at_[i];
    const auto it = std::find(nets.begin(), nets.end(), component);
    TQEC_ASSERT(it != nets.end(), "occupancy index missing a routed net");
    nets.erase(it);
  }
  const std::vector<int>& nets_at(std::size_t i) const { return nets_at_[i]; }

 private:
  Box3 box_;
  Vec3 dims_;
  std::vector<std::uint8_t> blocked_;
  std::vector<int> module_at_;
  std::vector<std::uint16_t> usage_;
  std::vector<std::uint16_t> capacity_;
  std::vector<float> history_;
  std::vector<std::vector<int>> nets_at_;
};

/// Monotone bucket (Dial) queue: entries are keyed on the integer lower
/// bound of their f-value, popped lowest-bucket-first, LIFO within a
/// bucket (deterministic, and ties broken toward larger g reach the goal
/// sooner). Pop keys never decrease — guaranteed by the consistent
/// heuristic (every edge costs >= 1 while h drops by <= 1 per step); a
/// push below the current pop front is clamped to it as float-rounding
/// defense. Keys more than kWindow above the current base park in an
/// overflow tier (PathFinder present-costs reach 1e9, far beyond any
/// dense array) and are redistributed when the window drains. All storage
/// is retained across reset() so steady-state searches allocate nothing.
class BucketQueue {
 public:
  struct Entry {
    float g;
    std::uint32_t cell;
  };

  void reset() {
    for (const std::size_t b : dirty_) buckets_[b].clear();
    dirty_.clear();
    overflow_.clear();
    live_ = 0;
    base_ = 0;
    cursor_ = 0;
    primed_ = false;
  }

  void push(std::int64_t key, float g, std::uint32_t cell) {
    if (!primed_) {
      base_ = key;
      cursor_ = key;
      primed_ = true;
    }
    if (key < cursor_) key = cursor_;  // float-rounding defense
    ++live_;
    if (key >= base_ + static_cast<std::int64_t>(kWindow)) {
      overflow_.push_back({key, g, cell});
      return;
    }
    const std::size_t b = static_cast<std::size_t>(key - base_);
    if (buckets_[b].empty()) dirty_.push_back(b);
    buckets_[b].push_back({g, cell});
  }

  bool empty() const { return live_ == 0; }

  Entry pop() {
    --live_;
    for (;;) {
      while (cursor_ < base_ + static_cast<std::int64_t>(kWindow)) {
        auto& bucket = buckets_[static_cast<std::size_t>(cursor_ - base_)];
        if (!bucket.empty()) {
          const Entry e = bucket.back();
          bucket.pop_back();
          return e;
        }
        ++cursor_;
      }
      rebase();
    }
  }

 private:
  /// The dense window drained into the overflow tier: rebase the window at
  /// the smallest parked key and redistribute what now fits. Entries keep
  /// their relative order (stable partition), so results do not depend on
  /// how often rebasing happens.
  void rebase();

  static constexpr std::size_t kWindow = 2048;
  struct OverflowEntry {
    std::int64_t key;
    float g;
    std::uint32_t cell;
  };
  std::vector<std::vector<Entry>> buckets_ =
      std::vector<std::vector<Entry>>(kWindow);
  std::vector<std::size_t> dirty_;
  std::vector<OverflowEntry> overflow_;
  std::size_t live_ = 0;
  std::int64_t base_ = 0;
  std::int64_t cursor_ = 0;
  bool primed_ = false;
};

/// Classic binary-heap open list over a reused backing vector. Push/pop
/// use std::push_heap/std::pop_heap with the same f-only comparator the
/// original std::priority_queue had, so pop order (ties included) matches
/// the pre-bucket-queue router exactly; only the allocation churn is gone.
class HeapQueue {
 public:
  struct Entry {
    float f;
    float g;
    std::uint32_t cell;
  };

  void reset() { heap_.clear(); }

  void push(float f, float g, std::uint32_t cell) {
    heap_.push_back({f, g, cell});
    std::push_heap(heap_.begin(), heap_.end(), Greater{});
  }

  bool empty() const { return heap_.empty(); }

  Entry pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Greater{});
    const Entry e = heap_.back();
    heap_.pop_back();
    return e;
  }

 private:
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const { return a.f > b.f; }
  };
  std::vector<Entry> heap_;
};

/// A*-queue traffic of one or more searches; summed into the routing
/// result on the negotiation thread in deterministic net order, so the
/// totals are identical for any worker count.
struct SearchStats {
  std::int64_t queue_pushes = 0;
  std::int64_t queue_pops = 0;

  SearchStats& operator+=(const SearchStats& o) {
    queue_pushes += o.queue_pushes;
    queue_pops += o.queue_pops;
    return *this;
  }
};

/// Per-worker search scratch: open queues plus the g/parent/tree/own-pin
/// stamp arrays. One instance per routing worker, reused across every
/// search that worker runs; epoch stamps make per-search clears O(1) and
/// the retained capacity makes them allocation-free.
struct SearchScratch {
  BucketQueue bucket_queue;
  HeapQueue heap_queue;
  std::vector<float> g;
  std::vector<int> g_version;
  std::vector<std::int8_t> parent;
  std::vector<int> tree_version;
  std::vector<int> own_pin_version;
  int search_epoch = 0;
  int tree_epoch = 0;
  int own_pin_epoch = 0;
  /// Tree cells of the net currently being routed (fabric indices).
  std::vector<std::size_t> tree_cells;

  /// Size the arrays for a fabric of `cells` cells (idempotent).
  void ensure(std::size_t cells) {
    if (g.size() == cells) return;
    g.assign(cells, 0.0f);
    g_version.assign(cells, 0);
    parent.assign(cells, -1);
    tree_version.assign(cells, 0);
    own_pin_version.assign(cells, 0);
    search_epoch = tree_epoch = own_pin_epoch = 0;
  }

  void begin_search() { detail::bump_epoch(search_epoch, g_version); }
  bool seen(std::size_t i) const { return g_version[i] == search_epoch; }
  void set_g(std::size_t i, float v, int parent_dir) {
    g[i] = v;
    g_version[i] = search_epoch;
    parent[i] = static_cast<std::int8_t>(parent_dir);
  }

  void begin_tree() { detail::bump_epoch(tree_epoch, tree_version); }
  bool on_tree(std::size_t i) const { return tree_version[i] == tree_epoch; }
  void mark_tree(std::size_t i) { tree_version[i] = tree_epoch; }

  bool own_pin(std::size_t i) const {
    return own_pin_version[i] == own_pin_epoch;
  }
};

/// Route one merged net component as a Steiner tree over the fabric
/// snapshot: pins join the partially built tree one at a time by A* within
/// a restricted (failure-inflated) region. Pure function of
/// (fabric, nodes, placement, options, component, present_factor) — the
/// fabric is only read. Returns false when some pin could not be connected
/// even by an unrestricted search; `out.cells` then holds the partial
/// tree. Queue traffic is accumulated into `stats`.
bool route_one_net(const Fabric& fabric, SearchScratch& scratch,
                   const place::NodeSet& nodes,
                   const place::Placement& placement,
                   const RouteOptions& options, int component,
                   double present_factor, RoutedNet& out, SearchStats& stats);

}  // namespace tqec::route
