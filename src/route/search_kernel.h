// Per-net A* search kernel for the dual-defect router, factored out of the
// PathFinder negotiation loop so that
//   (a) the shared routing fabric (occupancy, history, capacities) is
//       cleanly separated from per-search scratch — a prerequisite for
//       routing spatially disjoint nets concurrently against a read
//       snapshot of the fabric (see net_batcher.h and DESIGN.md §Routing);
//   (b) all per-search state (open queue storage, g/parent/tree stamp
//       arrays) lives in a reusable per-worker SearchScratch, so the hot
//       loop performs zero heap allocations after warm-up;
//   (c) the open list is a monotone bucket (Dial) queue keyed on the
//       integer lower bound of f — O(1) push/pop against the
//       std::priority_queue's O(log n) — with the classic binary heap kept
//       behind RouteOptions::bucket_queue for A/B benchmarking
//       (bench/micro_route_kernel.cpp).
//
// Thread-safety contract: during a batch's search phase every worker holds
// a distinct SearchScratch and treats the Fabric as read-only; all fabric
// mutation (occupy/vacate/history/hard blocks) happens on the negotiation
// thread between search phases. Searches are pure functions of
// (fabric snapshot, net, options), which is what makes the batched
// schedule's results independent of the worker count.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "place/nodes.h"
#include "place/placer.h"
#include "route/router.h"

namespace tqec::route {

inline constexpr std::array<Vec3, 6> kNeighbours{
    Vec3{1, 0, 0}, Vec3{-1, 0, 0}, Vec3{0, 1, 0},
    Vec3{0, -1, 0}, Vec3{0, 0, 1}, Vec3{0, 0, -1}};

namespace detail {

/// Advance a stamp epoch. Epochs turn per-search clears into O(1) (a cell
/// is "set" iff its stamp equals the current epoch); on the
/// (astronomically rare) wrap the backing array is cleared so stale stamps
/// can never alias a fresh epoch.
inline void bump_epoch(int& epoch, std::vector<int>& stamps) {
  if (epoch == std::numeric_limits<int>::max()) {
    std::fill(stamps.begin(), stamps.end(), 0);
    epoch = 0;
  }
  ++epoch;
}

}  // namespace detail

/// Shared routing fabric: the lattice-cell grid spanning the placement
/// core plus a margin, with per-cell obstacle, capacity, usage, history,
/// and occupancy-index state laid out as parallel SoA arrays (the search
/// hot loop touches blocked/module/usage/capacity/history; keeping each in
/// its own dense array maximizes cache-line utility for the 6-neighbour
/// scans). Per-search state deliberately lives elsewhere (SearchScratch).
///
/// The per-cell edge mask folds the 6-direction bounds/blocked/module
/// checks into one precomputed byte: bit d of edge_mask(i) is set iff the
/// neighbour i + kNeighbours[d] is inside the fabric, not blocked, and not
/// a module cell — i.e. generically passable. Own-pin module cells (legal
/// for the net being routed only) are layered on top per search via
/// SearchScratch's extra mask, so the shared mask never depends on which
/// net is searching. hard_block/unblock keep the masks in lockstep.
class Fabric {
 public:
  Fabric(const place::NodeSet& nodes, const place::Placement& placement,
         int margin);

  std::size_t cell_count() const {
    return static_cast<std::size_t>(dims_.x) * dims_.y * dims_.z;
  }
  const Box3& box() const { return box_; }
  bool inside(Vec3 p) const { return box_.contains(p); }

  std::size_t index(Vec3 p) const {
    TQEC_ASSERT(inside(p), "cell outside routing fabric");
    const Vec3 rel = p - box_.lo;
    return (static_cast<std::size_t>(rel.y) * dims_.z + rel.z) * dims_.x +
           rel.x;
  }
  Vec3 cell_at(std::size_t i) const {
    const int x = static_cast<int>(i % static_cast<std::size_t>(dims_.x));
    const std::size_t rest = i / static_cast<std::size_t>(dims_.x);
    const int z = static_cast<int>(rest % static_cast<std::size_t>(dims_.z));
    const int y = static_cast<int>(rest / static_cast<std::size_t>(dims_.z));
    return box_.lo + Vec3{x, y, z};
  }

  bool blocked(std::size_t i) const { return blocked_[i] != 0; }
  void hard_block(std::size_t i) {
    blocked_[i] = 1;
    refresh_edges_into(i);
  }
  /// Lift a hard block placed by the repair pass (never a box cell).
  void unblock(std::size_t i) {
    blocked_[i] = 0;
    refresh_edges_into(i);
  }
  int module_at(std::size_t i) const { return module_at_[i]; }

  /// Bit d set iff i + kNeighbours[d] is inside, unblocked, and not a
  /// module cell. Stride(d) is the index delta of kNeighbours[d]; only
  /// valid to apply when the corresponding mask bit is set.
  std::uint8_t edge_mask(std::size_t i) const { return edge_mask_[i]; }
  std::ptrdiff_t stride(int dir) const {
    return strides_[static_cast<std::size_t>(dir)];
  }
  int usage(std::size_t i) const { return usage_[i]; }
  int capacity(std::size_t i) const { return capacity_[i]; }
  void add_capacity(std::size_t i, int d) {
    capacity_[i] = detail::counter_add(capacity_[i], d);
  }
  float& history(std::size_t i) { return history_[i]; }
  float history(std::size_t i) const { return history_[i]; }

  // Cell -> net occupancy index, kept in lockstep with the usage counters:
  // every cell lists the components currently routed through it. Powers
  // the incremental reroute schedule (which nets sit on an overused cell)
  // and the hard-block repair phase (who contests a cell) without scanning
  // every net's route. Mutation is negotiation-thread-only.
  void occupy(std::size_t i, int component) {
    usage_[i] = detail::counter_add(usage_[i], +1);
    nets_at_[i].push_back(component);
  }
  void vacate(std::size_t i, int component) {
    usage_[i] = detail::counter_add(usage_[i], -1);
    auto& nets = nets_at_[i];
    const auto it = std::find(nets.begin(), nets.end(), component);
    TQEC_ASSERT(it != nets.end(), "occupancy index missing a routed net");
    nets.erase(it);
  }
  const std::vector<int>& nets_at(std::size_t i) const { return nets_at_[i]; }

 private:
  /// Recompute the mask bits that point INTO cell i (one bit in each
  /// inside neighbour) after its blocked state changed.
  void refresh_edges_into(std::size_t i);

  Box3 box_;
  Vec3 dims_;
  std::vector<std::uint8_t> blocked_;
  std::vector<int> module_at_;
  std::vector<std::uint16_t> usage_;
  std::vector<std::uint16_t> capacity_;
  std::vector<float> history_;
  std::vector<std::vector<int>> nets_at_;
  std::vector<std::uint8_t> edge_mask_;
  std::array<std::ptrdiff_t, 6> strides_{};
};

/// Global obstacle-aware reachability labeling: every cell that is free at
/// build time (unblocked, no module) gets the id of its 6-connected
/// free-space component; module and box cells get -1. One O(fabric) BFS
/// shared by every net — the per-component lookahead below reduces to a
/// label-set membership test, so the whole lookahead layer costs
/// milliseconds instead of a per-component window BFS.
struct ReachMap {
  std::vector<std::int32_t> label;  // per fabric cell, -1 = not free
  std::int32_t labels = 0;

  bool valid() const { return !label.empty(); }
};

/// Label the fabric's build-time free space. Reads only build-time state
/// (obstacles and module cells, never usage/history); must run before any
/// repair hard block is placed.
ReachMap build_reach_map(const Fabric& fabric);

/// Per-component lookahead: the cells connected to the component's tree
/// seed (its first pin) in the build-time passable graph — free cells plus
/// the component's own pin cells, which bridge free-space pockets. Because
/// free-space labels are maximal, the connected set is a closure over a
/// tiny bipartite graph of labels and own pins (a label is entered only
/// through an own pin, a pin only from an adjacent label or pin), so it is
/// computed in O(pins) and queried in O(1): a search source outside the
/// closure provably cannot reach the tree in ANY region, so its connect —
/// the whole region-exhausting flood plus ladder escalation a doomed
/// classic search would run — collapses to one lookup. A source inside
/// the closure can, by the same maximality argument, never expand a cell
/// outside it, so no per-cell pruning is needed (or possible): the live
/// search is untouched and routes are bit-identical with the lookahead on
/// or off (DESIGN.md §Routing gives the argument).
struct LookaheadMap {
  std::vector<std::uint8_t> label_reachable;  // indexed by ReachMap label
  /// Sorted fabric indices of the own pin cells inside the closure.
  std::vector<std::size_t> own;
  bool built = false;

  bool valid() const { return built; }
  /// True when a search for this component starting at fabric cell `fi`
  /// (free cell or own pin cell) could ever reach the tree.
  bool reachable(const ReachMap& reach, std::size_t fi) const {
    const std::int32_t l = reach.label[fi];
    if (l >= 0) return label_reachable[static_cast<std::size_t>(l)] != 0;
    return std::binary_search(own.begin(), own.end(), fi);
  }
};

/// Build a component's lookahead from the shared reach map: O(pins), reads
/// only build-time fabric state, so per-component builds can run
/// concurrently.
LookaheadMap build_lookahead(const Fabric& fabric, const ReachMap& reach,
                             const place::NodeSet& nodes,
                             const place::Placement& placement, int component);

/// Monotone bucket (Dial) queue: entries are keyed on the integer lower
/// bound of their f-value, popped lowest-bucket-first, LIFO within a
/// bucket (deterministic, and ties broken toward larger g reach the goal
/// sooner). Pop keys never decrease — guaranteed by the consistent
/// heuristic (every edge costs >= 1 while h drops by <= 1 per step); a
/// push below the current pop front is clamped to it as float-rounding
/// defense. Keys more than kWindow above the current base park in an
/// overflow tier (PathFinder present-costs reach 1e9, far beyond any
/// dense array) and are redistributed when the window drains. All storage
/// is retained across reset() so steady-state searches allocate nothing.
class BucketQueue {
 public:
  struct Entry {
    float g;
    std::uint32_t cell;
  };

  void reset() {
    for (const std::size_t b : dirty_) buckets_[b].clear();
    dirty_.clear();
    overflow_.clear();
    live_ = 0;
    base_ = 0;
    cursor_ = 0;
    primed_ = false;
  }

  void push(std::int64_t key, float g, std::uint32_t cell) {
    if (!primed_) {
      base_ = key;
      cursor_ = key;
      primed_ = true;
    }
    if (key < cursor_) key = cursor_;  // float-rounding defense
    ++live_;
    if (key >= base_ + static_cast<std::int64_t>(kWindow)) {
      overflow_.push_back({key, g, cell});
      return;
    }
    const std::size_t b = static_cast<std::size_t>(key - base_);
    if (buckets_[b].empty()) dirty_.push_back(b);
    buckets_[b].push_back({g, cell});
  }

  bool empty() const { return live_ == 0; }

  Entry pop() {
    --live_;
    for (;;) {
      while (cursor_ < base_ + static_cast<std::int64_t>(kWindow)) {
        auto& bucket = buckets_[static_cast<std::size_t>(cursor_ - base_)];
        if (!bucket.empty()) {
          const Entry e = bucket.back();
          bucket.pop_back();
          return e;
        }
        ++cursor_;
      }
      rebase();
    }
  }

 private:
  /// The dense window drained into the overflow tier: rebase the window at
  /// the smallest parked key and redistribute what now fits. Entries keep
  /// their relative order (stable partition), so results do not depend on
  /// how often rebasing happens.
  void rebase();

  static constexpr std::size_t kWindow = 2048;
  struct OverflowEntry {
    std::int64_t key;
    float g;
    std::uint32_t cell;
  };
  std::vector<std::vector<Entry>> buckets_ =
      std::vector<std::vector<Entry>>(kWindow);
  std::vector<std::size_t> dirty_;
  std::vector<OverflowEntry> overflow_;
  std::size_t live_ = 0;
  std::int64_t base_ = 0;
  std::int64_t cursor_ = 0;
  bool primed_ = false;
};

/// Classic binary-heap open list over a reused backing vector. Push/pop
/// use std::push_heap/std::pop_heap with the same f-only comparator the
/// original std::priority_queue had, so pop order (ties included) matches
/// the pre-bucket-queue router exactly; only the allocation churn is gone.
class HeapQueue {
 public:
  struct Entry {
    float f;
    float g;
    std::uint32_t cell;
  };

  void reset() { heap_.clear(); }

  void push(float f, float g, std::uint32_t cell) {
    heap_.push_back({f, g, cell});
    std::push_heap(heap_.begin(), heap_.end(), Greater{});
  }

  bool empty() const { return heap_.empty(); }

  Entry pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Greater{});
    const Entry e = heap_.back();
    heap_.pop_back();
    return e;
  }

 private:
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const { return a.f > b.f; }
  };
  std::vector<Entry> heap_;
};

/// A*-queue traffic of one or more searches; summed into the routing
/// result on the negotiation thread in deterministic net order, so the
/// totals are identical for any worker count.
struct SearchStats {
  std::int64_t queue_pushes = 0;
  std::int64_t queue_pops = 0;
  /// connect() calls that used the obstacle-aware lookahead term.
  std::int64_t lookahead_connects = 0;
  /// Warm-window first attempts that succeeded / fell through to the
  /// classic margin ladder.
  std::int64_t window_hits = 0;
  std::int64_t window_misses = 0;

  SearchStats& operator+=(const SearchStats& o) {
    queue_pushes += o.queue_pushes;
    queue_pops += o.queue_pops;
    lookahead_connects += o.lookahead_connects;
    window_hits += o.window_hits;
    window_misses += o.window_misses;
    return *this;
  }
};

/// Per-worker search scratch: open queues plus the g/parent/tree/extra-
/// mask stamp arrays. One instance per routing worker, reused across every
/// search that worker runs; epoch stamps make per-search clears O(1) and
/// the retained capacity makes them allocation-free.
struct SearchScratch {
  BucketQueue bucket_queue;
  HeapQueue heap_queue;
  std::vector<float> g;
  std::vector<int> g_version;
  std::vector<std::int8_t> parent;
  std::vector<int> tree_version;
  /// Per-net edge-mask overlay: extra passable-direction bits (own-pin
  /// module cells) OR-ed onto Fabric::edge_mask in the hot loop.
  std::vector<std::uint8_t> extra_mask;
  std::vector<int> extra_version;
  int search_epoch = 0;
  int tree_epoch = 0;
  int extra_epoch = 0;
  /// Tree cells of the net currently being routed (fabric indices).
  std::vector<std::size_t> tree_cells;

  /// Size the arrays for a fabric of `cells` cells (idempotent).
  void ensure(std::size_t cells) {
    if (g.size() == cells) return;
    g.assign(cells, 0.0f);
    g_version.assign(cells, 0);
    parent.assign(cells, -1);
    tree_version.assign(cells, 0);
    extra_mask.assign(cells, 0);
    extra_version.assign(cells, 0);
    search_epoch = tree_epoch = extra_epoch = 0;
  }

  void begin_search() { detail::bump_epoch(search_epoch, g_version); }
  bool seen(std::size_t i) const { return g_version[i] == search_epoch; }
  void set_g(std::size_t i, float v, int parent_dir) {
    g[i] = v;
    g_version[i] = search_epoch;
    parent[i] = static_cast<std::int8_t>(parent_dir);
  }

  void begin_tree() { detail::bump_epoch(tree_epoch, tree_version); }
  bool on_tree(std::size_t i) const { return tree_version[i] == tree_epoch; }
  void mark_tree(std::size_t i) { tree_version[i] = tree_epoch; }

  void begin_extra() { detail::bump_epoch(extra_epoch, extra_version); }
  void add_extra(std::size_t i, std::uint8_t bits) {
    if (extra_version[i] != extra_epoch) {
      extra_mask[i] = 0;
      extra_version[i] = extra_epoch;
    }
    extra_mask[i] = static_cast<std::uint8_t>(extra_mask[i] | bits);
  }
  std::uint8_t extra(std::size_t i) const {
    return extra_version[i] == extra_epoch ? extra_mask[i] : 0;
  }
};

/// Per-component routing context handed to route_one_net by the
/// negotiation loop: the (optional) lookahead — shared reach map plus the
/// component's label set — and the warm search window for the first
/// connect attempt (empty box = cold, ladder only).
struct NetContext {
  const ReachMap* reach = nullptr;
  const LookaheadMap* lookahead = nullptr;
  Box3 window;
};

/// Route one merged net component as a Steiner tree over the fabric
/// snapshot: pins join the partially built tree one at a time by A* within
/// a restricted region — the warm window from `ctx` first (when set), then
/// the classic failure-inflated margin ladder. Pure function of
/// (fabric, nodes, placement, options, component, present_factor, ctx) —
/// the fabric is only read. Returns false when some pin could not be
/// connected even by an unrestricted search; `out.cells` then holds the
/// partial tree. Queue traffic is accumulated into `stats`.
bool route_one_net(const Fabric& fabric, SearchScratch& scratch,
                   const place::NodeSet& nodes,
                   const place::Placement& placement,
                   const RouteOptions& options, int component,
                   double present_factor, const NetContext& ctx,
                   RoutedNet& out, SearchStats& stats);

}  // namespace tqec::route
