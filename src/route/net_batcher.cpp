#include "route/net_batcher.h"

#include <algorithm>

namespace tqec::route {

namespace {

/// Per-batch interval index: members sorted by their region's lo.x, so an
/// overlap probe for a candidate region only visits members whose x-extent
/// starts at or before the candidate's end; those are confirmed with the
/// full 3D intersection test (x overlap alone does not conflict — 2.5D
/// layouts stack nets with identical x-extents on different layers).
struct BatchIndex {
  struct Member {
    Box3 region;
  };
  std::vector<Member> by_lo_x;  // sorted by region.lo.x (ties by insertion)
  std::vector<int> components;  // in insertion (= net) order

  bool overlaps(const Box3& region) const {
    const auto end = std::upper_bound(
        by_lo_x.begin(), by_lo_x.end(), region.hi.x,
        [](int probe, const Member& m) { return probe < m.region.lo.x; });
    for (auto it = by_lo_x.begin(); it != end; ++it)
      if (it->region.intersects(region)) return true;
    return false;
  }

  void insert(int component, const Box3& region) {
    by_lo_x.insert(
        std::upper_bound(by_lo_x.begin(), by_lo_x.end(), region.lo.x,
                         [](int lo, const Member& o) {
                           return lo < o.region.lo.x;
                         }),
        Member{region});
    components.push_back(component);
  }
};

}  // namespace

BatchPlan plan_batches(const std::vector<int>& pending,
                       const std::vector<Box3>& region_of, bool singletons) {
  BatchPlan plan;
  if (singletons) {
    plan.batches.reserve(pending.size());
    for (const int c : pending) plan.batches.push_back({c});
    return plan;
  }

  std::vector<BatchIndex> batches;
  for (const int c : pending) {
    const Box3& region = region_of[static_cast<std::size_t>(c)];
    bool placed = false;
    for (BatchIndex& b : batches) {
      if (b.overlaps(region)) continue;
      b.insert(c, region);
      placed = true;
      break;
    }
    if (!placed) {
      batches.emplace_back();
      batches.back().insert(c, region);
    }
  }

  plan.batches.reserve(batches.size());
  for (BatchIndex& b : batches) plan.batches.push_back(std::move(b.components));
  return plan;
}

}  // namespace tqec::route
