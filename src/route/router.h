// Dual-defect net routing (paper Sec. 3.6): A*-search within restricted
// regions plus PathFinder-style negotiated congestion rip-up-and-reroute
// (McMurchie & Ebeling, FPGA'95).
//
// The routing fabric is the lattice-cell grid spanning the placement core
// plus a margin. Obstacles:
//   - distillation-box extents (no defect may enter a box, validator V5);
//   - every primal module cell that is NOT a pin of the net being routed —
//     a dual defect sharing a cell with a primal module is exactly what
//     "threading that module's loop" means in the plumbing-cell model, so
//     passing through an unrelated module would add a spurious braid.
// Capacity: one dual net per cell (disjoint dual defects must occupy
// distinct cells, validator V3). Congestion is negotiated: overused cells
// get growing present- and history-cost until every net is legally routed.
//
// Each merged net component is routed as a Steiner tree: pins are connected
// one at a time by A* toward the partially built tree (admissible heuristic:
// Manhattan distance to the tree's bounding box).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "place/nodes.h"
#include "place/placer.h"

namespace tqec::route {

namespace detail {

/// Occupancy-counter update for the routing fabric's uint16 usage/capacity
/// arrays. A plain cast would wrap a negative result to 65535 (a cell that
/// looks maximally used is never chosen) or wrap a saturated counter to 0
/// (a maximally pinned module suddenly looks free and negotiation
/// deadlocks on phantom capacity); assert on both ends and clamp as
/// defense in depth.
inline std::uint16_t counter_add(std::uint16_t value, int delta) {
  const int next = static_cast<int>(value) + delta;
  TQEC_ASSERT(next >= 0, "routing-fabric counter underflow");
  TQEC_ASSERT(next <= 65535, "routing-fabric counter overflow");
  return static_cast<std::uint16_t>(std::clamp(next, 0, 65535));
}

}  // namespace detail

struct RouteOptions {
  std::uint64_t seed = 1;
  /// Free cells added around the placement core on every side.
  int margin = 4;
  /// Maximum PathFinder iterations before giving up.
  int max_iterations = 40;
  /// History cost added to each overused cell per iteration.
  double history_increment = 1.0;
  /// Present-congestion multiplier; grows by `present_growth` per iteration,
  /// clamped at `present_max` (unbounded growth reaches inf, making every
  /// congested cell's cost equal and stalling negotiation).
  double present_base = 2.0;
  double present_growth = 1.6;
  double present_max = 1e9;
  /// Incremental rip-up-and-reroute: from iteration 2 onward only nets that
  /// occupy at least one overused cell are rerouted (in the same
  /// deterministic net order as a full sweep), falling back to a full sweep
  /// whenever the overused-cell count stalls. Disable to force the classic
  /// full rip-up of every net on every iteration.
  bool incremental = true;
  /// Budget of stall-triggered full-sweep fallbacks per negotiation run.
  /// The first sweeps after a stall regularly shake out another contested
  /// cell or two, but a negotiation that is still stuck after `stall_sweeps`
  /// of them essentially never recovers by sweeping more — it either needs
  /// hard-block repair or a whitespace escalation — while every extra
  /// sweep rips up and reroutes all nets. Once the budget is spent, stalls
  /// keep rerouting only the contested subset until the stall abort ends
  /// the run. Converging runs never stall, so this budget cannot change
  /// their result. Negative = unlimited (the classic schedule, for A/B).
  int stall_sweeps = 2;
  /// Initial half-width of the restricted search region around a
  /// connection's bounding box; grows when a connection fails.
  int region_margin = 6;
  /// Worker threads for the batched negotiation schedule (CLI
  /// `--route-threads`). Results are bit-identical for any value: batch
  /// composition, commit order, and conflict decisions are pure functions
  /// of the deterministic net order, never of the worker count. 0 = let
  /// the caller decide (core::compile divides its `--jobs` budget across
  /// concurrent place+route attempts; plain route_nets treats 0 as 1).
  int threads = 0;
  /// Classic serial PathFinder schedule (CLI `--route-serial`): every net
  /// rips up and reroutes one at a time against the fully up-to-date
  /// fabric — i.e. the batched schedule degenerated to singleton batches.
  /// Escape hatch for A/B against the disjoint-region batched schedule.
  bool serial_schedule = false;
  /// Monotone bucket (Dial) open list in the A* kernel; disable to fall
  /// back to the binary-heap open list (identical pop order to the
  /// original std::priority_queue router — bench/micro_route_kernel.cpp
  /// A/Bs the two).
  bool bucket_queue = true;
  /// Obstacle-aware A* lookahead (CLI `--route-lookahead`): one global
  /// labeling of the fabric's free-space components (around distillation
  /// boxes and module walls) plus each net's reachable-label set. Searches
  /// prune cells that provably cannot reach the tree and fail doomed
  /// connects with one lookup instead of flooding their region. Pruning
  /// only removes provably dead work — pop order, g-values, and
  /// tie-breaking of the live search are untouched — so routes are
  /// bit-identical with the flag on or off (DESIGN.md §Routing gives the
  /// argument).
  bool lookahead = true;
  /// Warm per-net search windows (CLI `--route-windows`): a net's first
  /// connect attempt is restricted to its previous successful route's
  /// bounding box (kept across negotiation iterations) before falling back
  /// to the classic failure-inflated margin ladder.
  bool windows = true;
  /// Warm-start negotiation across core::compile's restart attempts (CLI
  /// `--route-warm-start`): carry PathFinder history costs and final route
  /// windows from one attempt into the next via NegotiationMemory.
  bool warm_start = true;
};

/// Negotiation state carried between route_nets calls (core::compile's
/// multi-seed restart loop): decayed PathFinder history costs addressed by
/// absolute fabric coordinates, plus each component's final route window
/// encoded as per-face slack beyond its pin bounding box (kNeighbours face
/// order: +x,-x,+y,-y,+z,-z). slack[0] == -1 marks a component that had no
/// routed cells. A default-constructed memory (valid == false) warms
/// nothing; route_nets never reads placement-specific indices from it —
/// only absolute coordinates intersected with the new fabric box — so it
/// is safe to replay against a different placement.
struct NegotiationMemory {
  bool valid = false;
  Box3 fabric_box;
  std::vector<float> history;
  std::vector<std::array<int, 6>> window_slack;
};

struct RoutedNet {
  int component = -1;  // index into NodeSet::net_pins
  std::vector<Vec3> cells;  // all cells of the routed tree (pins included)
};

struct RoutingResult {
  std::vector<RoutedNet> nets;
  bool legal = false;
  int iterations = 0;
  int overused_cells = 0;
  std::int64_t total_wire = 0;  // summed route cells
  /// Bounding box over placement core and all routed cells.
  Box3 bounding;
  std::int64_t volume = 0;

  // PathFinder observability (serialized via core::stats_json).
  /// Nets ripped up and rerouted in each negotiation iteration; the first
  /// entry always equals the component count (iteration 1 routes all).
  std::vector<int> reroutes_per_iter;
  std::int64_t reroutes_total = 0;
  /// Iterations that rerouted every net (iteration 1 plus stall fallbacks).
  int full_sweeps = 0;
  /// A*-queue traffic summed over all searches (negotiation + repair).
  std::int64_t queue_pushes = 0;
  std::int64_t queue_pops = 0;
  /// Hard-block repair outcomes: contested cells awarded to one net vs.
  /// cells where every candidate winner failed (left honestly overused).
  int repair_awarded = 0;
  int repair_failed = 0;
  /// Present-congestion factor after the last negotiation iteration
  /// (clamped at RouteOptions::present_max, hence always finite).
  double present_factor_final = 0;

  // Batched-negotiation observability (see net_batcher.h). All three are
  // pure functions of the schedule, not of the worker count, so they are
  // identical for any --route-threads value.
  /// Disjoint-region batches committed across all negotiation iterations
  /// (== reroutes_total under --route-serial, where every batch is one
  /// net).
  int batches = 0;
  /// Nets requeued because their committed path collided with a cell an
  /// earlier commit of the same batch had just filled to capacity (a
  /// search that escaped its declared region through the failure-inflated
  /// retries).
  int conflicts_requeued = 0;
  /// Mean nets per batch: the spatial parallelism the batcher exposed, an
  /// upper bound on the speedup any worker count can realize. 1.0 under
  /// --route-serial.
  double parallel_efficiency = 0;

  // Lookahead / warm-window observability. Like the stats above, all of
  // these are summed per component in deterministic component order, so
  // they are identical for any --route-threads value.
  /// Components whose searches used the obstacle-aware lookahead at least
  /// once (0 when --route-lookahead=0).
  int lookahead_nets = 0;
  /// Warm-window connect attempts that succeeded within the previous
  /// route's bounding box vs. fell through to the classic margin ladder.
  std::int64_t window_hits = 0;
  std::int64_t window_misses = 0;
  /// Whether this run consumed a valid NegotiationMemory.
  bool warm_started = false;

  // Congestion observability (always computed; one O(cells) pass at the
  // end of routing, serialized via core::stats_json and rendered by
  // tools/tqec_report).
  /// Overused-cell count after each negotiation iteration (same indexing
  /// as reroutes_per_iter; the last entry of a legal route is 0).
  std::vector<int> overused_per_iter;
  /// congestion_histogram[u] = number of fabric cells with final usage u
  /// (index 0 counts the free cells).
  std::vector<std::int64_t> congestion_histogram;
  /// The most-used fabric cells (highest usage first, ties by cell index),
  /// capped at 16 — the report tool's "congestion top-K".
  struct HotCell {
    Vec3 cell;
    int usage = 0;
    int capacity = 0;
  };
  std::vector<HotCell> hottest_cells;
  /// Top-down text heatmap: one row per z, one column per x, each char the
  /// max usage over y ('.' free, '1'-'9', '#' above 9). Empty when the
  /// fabric footprint exceeds 160x100 cells.
  std::string congestion_heatmap;
};

/// Route all merged dual-net components of a placed design.
RoutingResult route_nets(const place::NodeSet& nodes,
                         const place::Placement& placement,
                         const RouteOptions& options);

/// Warm-startable variant: when `warm` is non-null, valid, and
/// options.warm_start is set, the run seeds its history costs and initial
/// per-net windows from it; when `memory_out` is non-null the run's final
/// negotiation state is exported for the next attempt. Either pointer may
/// be null (the plain overload passes both as null).
RoutingResult route_nets(const place::NodeSet& nodes,
                         const place::Placement& placement,
                         const RouteOptions& options,
                         const NegotiationMemory* warm,
                         NegotiationMemory* memory_out);

}  // namespace tqec::route
