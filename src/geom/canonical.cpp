#include "geom/canonical.h"

#include <algorithm>

namespace tqec::geom {

std::int64_t canonical_volume(const icm::IcmStats& stats) {
  return std::int64_t{6} * stats.qubits * stats.cnots +
         box_volume(BoxKind::YBox) * stats.y_states +
         box_volume(BoxKind::ABox) * stats.a_states;
}

GeomDescription build_canonical(const icm::IcmCircuit& circuit) {
  GeomDescription g(circuit.name() + ".canonical");
  const int lines = circuit.num_lines();
  const int cnots = static_cast<int>(circuit.cnots().size());
  const int x_extent = std::max(3 * cnots, 3);

  // Primal rail pair per line: z = 0 and z = 1 at y = line.
  std::vector<int> rail_defect(static_cast<std::size_t>(lines), -1);
  for (int line = 0; line < lines; ++line) {
    Defect rails;
    rails.type = DefectType::Primal;
    rails.source_id = line;
    rails.segments.push_back(
        {{0, line, 0}, {x_extent - 1, line, 0}});
    rails.segments.push_back(
        {{0, line, 1}, {x_extent - 1, line, 1}});
    // Close the pair at both ends so each line is one connected structure
    // terminated by its I/M components.
    rails.segments.push_back({{0, line, 0}, {0, line, 1}});
    rails.segments.push_back(
        {{x_extent - 1, line, 0}, {x_extent - 1, line, 1}});
    rail_defect[static_cast<std::size_t>(line)] = g.add_defect(rails);
  }

  // One dual ring per CNOT in its own 3-unit x slot.
  for (int k = 0; k < cnots; ++k) {
    const icm::IcmCnot cnot = circuit.cnots()[static_cast<std::size_t>(k)];
    const int y_lo = std::min(cnot.control, cnot.target);
    const int y_hi = std::max(cnot.control, cnot.target);
    const int x = 3 * k + 1;
    Defect ring;
    ring.type = DefectType::Dual;
    ring.source_id = k;
    ring.segments.push_back({{x, y_lo, 0}, {x, y_hi, 0}});
    ring.segments.push_back({{x, y_lo, 1}, {x, y_hi, 1}});
    ring.segments.push_back({{x, y_lo, 0}, {x, y_lo, 1}});
    ring.segments.push_back({{x, y_hi, 0}, {x, y_hi, 1}});
    g.add_defect(ring);
  }

  // I/M components at the rail ends.
  for (int line = 0; line < lines; ++line) {
    const int defect = rail_defect[static_cast<std::size_t>(line)];
    ComponentKind init_kind = ComponentKind::InitZ;
    switch (circuit.init_basis(line)) {
      case icm::InitBasis::Zero: init_kind = ComponentKind::InitZ; break;
      case icm::InitBasis::Plus: init_kind = ComponentKind::InitX; break;
      case icm::InitBasis::YState: init_kind = ComponentKind::InjectY; break;
      case icm::InitBasis::AState: init_kind = ComponentKind::InjectA; break;
    }
    g.add_component({init_kind, {0, line, 0}, defect});
    const ComponentKind meas_kind =
        circuit.meas_basis(line) == icm::MeasBasis::Z ? ComponentKind::MeasZ
                                                      : ComponentKind::MeasX;
    g.add_component({meas_kind, {x_extent - 1, line, 0}, defect});
  }

  // Distillation boxes: stacked beside the core (canonical accounting is
  // additive, so only non-overlap matters here). One column of A boxes and
  // one of Y boxes, each box separated by a 1-unit gap.
  int a_cursor = 0;
  int y_cursor = 0;
  const int box_y = lines + 2;
  for (int line = 0; line < lines; ++line) {
    const icm::InitBasis basis = circuit.init_basis(line);
    if (basis == icm::InitBasis::AState) {
      g.add_box({BoxKind::ABox, {a_cursor, box_y, 0}, line});
      a_cursor += kABoxDims.x + 1;
    } else if (basis == icm::InitBasis::YState) {
      g.add_box({BoxKind::YBox, {y_cursor, box_y + kABoxDims.y + 1, 0}, line});
      y_cursor += kYBoxDims.x + 1;
    }
  }

  return g;
}

}  // namespace tqec::geom
