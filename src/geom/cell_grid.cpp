#include "geom/cell_grid.h"

#include <algorithm>
#include <bit>
#include <chrono>

namespace tqec::geom {

// ---------------------------------------------------------------------------
// CellGrid

void CellGrid::reset(const Box3& bounds, int planes) {
  TQEC_REQUIRE(planes > 0, "CellGrid: need at least one plane");
  bounds_ = bounds;
  planes_ = planes;
  if (bounds.empty()) {
    dy_ = dz_ = words_per_row_ = 0;
    words_.clear();
    return;
  }
  const Vec3 d = bounds.dims();
  dy_ = static_cast<std::size_t>(d.y);
  dz_ = static_cast<std::size_t>(d.z);
  words_per_row_ = (static_cast<std::size_t>(d.x) + 63) / 64;
  words_.assign(static_cast<std::size_t>(planes) * dy_ * dz_ * words_per_row_,
                0);
}

std::int64_t CellGrid::projected_bytes(const Box3& bounds, int planes) {
  if (bounds.empty()) return 0;
  const Vec3 d = bounds.dims();
  const std::int64_t words_per_row = (static_cast<std::int64_t>(d.x) + 63) / 64;
  return static_cast<std::int64_t>(planes) * d.y * d.z * words_per_row * 8;
}

std::int64_t CellGrid::set_segment(int plane, const Segment& s,
                                   std::vector<Vec3>* collisions) {
  TQEC_REQUIRE(s.axis_aligned(), "CellGrid: segment not axis-aligned");
  TQEC_REQUIRE(bounds_.contains(s.a) && bounds_.contains(s.b),
               "CellGrid::set_segment out of bounds");
  std::int64_t fresh = 0;
  if (s.a.y == s.b.y && s.a.z == s.b.z) {
    // x-run: whole word masks per 64-cell chunk.
    const int xlo = std::min(s.a.x, s.b.x);
    const int xhi = std::max(s.a.x, s.b.x);
    const std::size_t base = row_base(plane, s.a.y, s.a.z);
    const std::size_t lo = static_cast<std::size_t>(xlo - bounds_.lo.x);
    const std::size_t hi = static_cast<std::size_t>(xhi - bounds_.lo.x);
    for (std::size_t w = lo >> 6; w <= hi >> 6; ++w) {
      const std::size_t wlo = std::max(lo, w << 6);
      const std::size_t whi = std::min(hi, (w << 6) + 63);
      std::uint64_t mask = ~std::uint64_t{0};
      mask >>= 63 - (whi - (w << 6));
      mask &= ~std::uint64_t{0} << (wlo - (w << 6));
      std::uint64_t& word = words_[base + w];
      std::uint64_t hit = word & mask;
      fresh += std::popcount(mask) - std::popcount(hit);
      if (collisions != nullptr) {
        while (hit != 0) {
          const int bit = std::countr_zero(hit);
          hit &= hit - 1;
          collisions->push_back({bounds_.lo.x +
                                     static_cast<int>((w << 6)) + bit,
                                 s.a.y, s.a.z});
        }
      }
      word |= mask;
    }
  } else {
    // y- or z-run: one bit per row.
    const Vec3 d = s.b - s.a;
    const Vec3 step{0, (d.y > 0) - (d.y < 0), (d.z > 0) - (d.z < 0)};
    for (Vec3 p = s.a;; p += step) {
      if (set(plane, p)) {
        ++fresh;
      } else if (collisions != nullptr) {
        collisions->push_back(p);
      }
      if (p == s.b) break;
    }
  }
  return fresh;
}

void CellGrid::clear_segment(int plane, const Segment& s) {
  TQEC_REQUIRE(s.axis_aligned(), "CellGrid: segment not axis-aligned");
  if (s.a.y == s.b.y && s.a.z == s.b.z) {
    const int xlo = std::min(s.a.x, s.b.x);
    const int xhi = std::max(s.a.x, s.b.x);
    const std::size_t base = row_base(plane, s.a.y, s.a.z);
    const std::size_t lo = static_cast<std::size_t>(xlo - bounds_.lo.x);
    const std::size_t hi = static_cast<std::size_t>(xhi - bounds_.lo.x);
    for (std::size_t w = lo >> 6; w <= hi >> 6; ++w) {
      const std::size_t wlo = std::max(lo, w << 6);
      const std::size_t whi = std::min(hi, (w << 6) + 63);
      std::uint64_t mask = ~std::uint64_t{0};
      mask >>= 63 - (whi - (w << 6));
      mask &= ~std::uint64_t{0} << (wlo - (w << 6));
      words_[base + w] &= ~mask;
    }
  } else {
    const Vec3 d = s.b - s.a;
    const Vec3 step{0, (d.y > 0) - (d.y < 0), (d.z > 0) - (d.z < 0)};
    for (Vec3 p = s.a;; p += step) {
      clear(plane, p);
      if (p == s.b) break;
    }
  }
}

std::int64_t CellGrid::popcount(int plane) const {
  const std::size_t per_plane = dy_ * dz_ * words_per_row_;
  const std::size_t base = static_cast<std::size_t>(plane) * per_plane;
  std::int64_t n = 0;
  for (std::size_t w = 0; w < per_plane; ++w)
    n += std::popcount(words_[base + w]);
  return n;
}

void CellGrid::clear_all() {
  std::fill(words_.begin(), words_.end(), 0);
}

// ---------------------------------------------------------------------------
// IntervalOccupancy

namespace {

std::uint64_t row_key(int plane, int y, int z) {
  // (plane, y, z) packed so ordering is lexicographic: plane in the top
  // two bits, then 31-bit biased y and z (reset() rejects bounds beyond
  // +/-2^30, so the bias never saturates and the fields never collide).
  const auto yb = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(y) + (std::int64_t{1} << 30));
  const auto zb = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(z) + (std::int64_t{1} << 30));
  return (static_cast<std::uint64_t>(plane) << 62) | (yb << 31) | zb;
}

}  // namespace

void IntervalOccupancy::reset(const Box3& bounds, int planes) {
  TQEC_REQUIRE(planes > 0, "IntervalOccupancy: need at least one plane");
  constexpr int kCoordCap = 1 << 30;  // row_key packs y/z into 31 bits
  TQEC_REQUIRE(bounds.empty() ||
                   (bounds.lo.y > -kCoordCap && bounds.hi.y < kCoordCap &&
                    bounds.lo.z > -kCoordCap && bounds.hi.z < kCoordCap),
               "IntervalOccupancy: bounds exceed the row-key coordinate range");
  bounds_ = bounds;
  planes_ = planes;
  keys_.clear();
  rows_.clear();
}

IntervalOccupancy::Row& IntervalOccupancy::row(int plane, int y, int z) {
  const std::uint64_t key = row_key(plane, y, z);
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  const std::size_t at = static_cast<std::size_t>(it - keys_.begin());
  if (it == keys_.end() || *it != key) {
    keys_.insert(it, key);
    rows_.insert(rows_.begin() + static_cast<std::ptrdiff_t>(at), Row{});
  }
  return rows_[at];
}

const IntervalOccupancy::Row* IntervalOccupancy::find_row(int plane, int y,
                                                          int z) const {
  const std::uint64_t key = row_key(plane, y, z);
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return nullptr;
  return &rows_[static_cast<std::size_t>(it - keys_.begin())];
}

bool IntervalOccupancy::test(int plane, Vec3 p) const {
  if (!bounds_.contains(p)) return false;
  const Row* r = find_row(plane, p.y, p.z);
  if (r == nullptr) return false;
  // First interval with hi >= x.
  const auto it = std::lower_bound(
      r->begin(), r->end(), p.x,
      [](const std::pair<int, int>& iv, int x) { return iv.second < x; });
  return it != r->end() && it->first <= p.x;
}

std::int64_t IntervalOccupancy::insert_run(Row& r, int y, int z, int lo,
                                           int hi,
                                           std::vector<Vec3>* collisions) {
  // Find the overlap window [first, last) of intervals touching [lo, hi].
  auto first = std::lower_bound(
      r.begin(), r.end(), lo,
      [](const std::pair<int, int>& iv, int x) { return iv.second < x - 1; });
  auto last = first;
  std::int64_t already = 0;
  int merged_lo = lo, merged_hi = hi;
  while (last != r.end() && last->first <= hi + 1) {
    const int olo = std::max(lo, last->first);
    const int ohi = std::min(hi, last->second);
    if (olo <= ohi) {
      already += ohi - olo + 1;
      if (collisions != nullptr)
        for (int x = olo; x <= ohi; ++x) collisions->push_back({x, y, z});
    }
    merged_lo = std::min(merged_lo, last->first);
    merged_hi = std::max(merged_hi, last->second);
    ++last;
  }
  first = r.erase(first, last);
  r.insert(first, {merged_lo, merged_hi});
  return (hi - lo + 1) - already;
}

bool IntervalOccupancy::set(int plane, Vec3 p) {
  TQEC_REQUIRE(bounds_.contains(p), "IntervalOccupancy::set out of bounds");
  return insert_run(row(plane, p.y, p.z), p.y, p.z, p.x, p.x, nullptr) > 0;
}

std::int64_t IntervalOccupancy::set_segment(int plane, const Segment& s,
                                            std::vector<Vec3>* collisions) {
  TQEC_REQUIRE(s.axis_aligned(), "IntervalOccupancy: segment not aligned");
  TQEC_REQUIRE(bounds_.contains(s.a) && bounds_.contains(s.b),
               "IntervalOccupancy::set_segment out of bounds");
  if (s.a.y == s.b.y && s.a.z == s.b.z) {
    return insert_run(row(plane, s.a.y, s.a.z), s.a.y, s.a.z,
                      std::min(s.a.x, s.b.x), std::max(s.a.x, s.b.x),
                      collisions);
  }
  std::int64_t fresh = 0;
  const Vec3 d = s.b - s.a;
  const Vec3 step{0, (d.y > 0) - (d.y < 0), (d.z > 0) - (d.z < 0)};
  for (Vec3 p = s.a;; p += step) {
    if (insert_run(row(plane, p.y, p.z), p.y, p.z, p.x, p.x, nullptr) > 0) {
      ++fresh;
    } else if (collisions != nullptr) {
      collisions->push_back(p);
    }
    if (p == s.b) break;
  }
  return fresh;
}

std::int64_t IntervalOccupancy::popcount(int plane) const {
  std::int64_t n = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (static_cast<int>(keys_[i] >> 62) != plane) continue;
    for (const auto& [lo, hi] : rows_[i]) n += hi - lo + 1;
  }
  return n;
}

std::int64_t IntervalOccupancy::byte_size() const {
  std::int64_t bytes = static_cast<std::int64_t>(
      keys_.size() * sizeof(std::uint64_t) + rows_.size() * sizeof(Row));
  for (const Row& r : rows_)
    bytes += static_cast<std::int64_t>(r.capacity() * sizeof(r[0]));
  return bytes;
}

// ---------------------------------------------------------------------------
// OccupancyGrid

OccupancyGrid::OccupancyGrid(const Box3& bounds, int planes,
                             std::int64_t dense_byte_cap) {
  dense_ = CellGrid::projected_bytes(bounds, planes) <= dense_byte_cap;
  if (dense_) {
    grid_.reset(bounds, planes);
  } else {
    sparse_.reset(bounds, planes);
  }
}

OccupancyGrid build_occupancy(const GeomDescription& g, GridBuildStats* stats,
                              std::int64_t dense_byte_cap) {
  const auto t0 = std::chrono::steady_clock::now();
  Box3 bb;
  for (const DefectView d : g.defects()) bb = bb.merged(d.bounding_box());
  OccupancyGrid occ(bb, 2, dense_byte_cap);
  for (const DefectView d : g.defects()) {
    const int plane = plane_of(d.type);
    for (const Segment& s : d.segments) occ.set_segment(plane, s);
  }
  if (stats != nullptr) {
    stats->build_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    stats->bytes = occ.byte_size();
    stats->dense = occ.dense();
  }
  return occ;
}

}  // namespace tqec::geom
