// Dense bit-grid occupancy for geometric descriptions.
//
// Every downstream consumer of a geometric description (validation,
// seam stitching, verify's occupancy checks, exports) needs the same
// primitive: "is lattice cell p occupied, and by which sublattice?".
// Before this engine each consumer re-materialized the answer into its
// own node-based hash container (`std::unordered_set<Vec3>` and friends),
// paying an allocation plus a hash per *cell* of every segment. A
// CellGrid answers the same queries from a word-packed bitset anchored at
// the geometry's bounding box:
//
//   - one bit plane per sublattice (plane 0 = primal, plane 1 = dual;
//     primal and dual structures live on half-offset sublattices, so a
//     cell may legally be set in both planes at once);
//   - rows run along x, so rasterizing an axis-aligned x-run writes whole
//     64-bit word masks instead of per-cell inserts;
//   - test/set/clear are O(1) loads with no hashing and no pointer chase.
//
// For geometries whose bounding box is huge but sparsely occupied (a few
// tall distillation-box pillars in an otherwise empty frame) the dense
// plane would waste memory, so `OccupancyGrid` transparently falls back
// to `IntervalOccupancy`: per-(plane, y, z) rows of sorted disjoint
// x-intervals with the same operation set. Callers pick the wrapper and
// never care which representation is live.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/vec3.h"
#include "geom/geometry.h"

namespace tqec::geom {

/// Sublattice -> bit-plane index (see DESIGN.md section 13).
inline constexpr int kPrimalPlane = 0;
inline constexpr int kDualPlane = 1;
constexpr int plane_of(DefectType t) {
  return t == DefectType::Primal ? kPrimalPlane : kDualPlane;
}

/// Dense word-packed bitset over a closed Box3, `planes` planes deep.
/// Coordinates outside the bounds test as unoccupied; setting them is a
/// programming error (callers anchor the grid at the geometry's bounding
/// box, which by construction contains every cell they will write).
class CellGrid {
 public:
  CellGrid() = default;
  CellGrid(const Box3& bounds, int planes) { reset(bounds, planes); }

  /// Reallocate for new bounds and zero every plane.
  void reset(const Box3& bounds, int planes);

  const Box3& bounds() const { return bounds_; }
  int planes() const { return planes_; }
  bool empty() const { return words_.empty(); }

  bool in_bounds(Vec3 p) const { return bounds_.contains(p); }

  /// False for out-of-bounds cells (they can never be occupied).
  bool test(int plane, Vec3 p) const {
    if (!bounds_.contains(p)) return false;
    const std::size_t xr = static_cast<std::size_t>(p.x - bounds_.lo.x);
    return (words_[row_base(plane, p.y, p.z) + (xr >> 6)] >>
            (xr & 63)) & 1u;
  }

  /// Set one cell; returns true when it was newly set.
  bool set(int plane, Vec3 p) {
    TQEC_REQUIRE(bounds_.contains(p), "CellGrid::set out of bounds");
    const std::size_t xr = static_cast<std::size_t>(p.x - bounds_.lo.x);
    std::uint64_t& w = words_[row_base(plane, p.y, p.z) + (xr >> 6)];
    const std::uint64_t m = std::uint64_t{1} << (xr & 63);
    const bool fresh = (w & m) == 0;
    w |= m;
    return fresh;
  }

  void clear(int plane, Vec3 p) {
    TQEC_REQUIRE(bounds_.contains(p), "CellGrid::clear out of bounds");
    const std::size_t xr = static_cast<std::size_t>(p.x - bounds_.lo.x);
    words_[row_base(plane, p.y, p.z) + (xr >> 6)] &=
        ~(std::uint64_t{1} << (xr & 63));
  }

  /// Rasterize an axis-aligned segment (endpoints inclusive). x-runs are
  /// written as whole word masks; y/z runs touch one bit per row. Returns
  /// the number of newly set cells; when `collisions` is non-null, every
  /// already-set cell is appended to it — x-runs in ascending x (the word
  /// scan direction, whatever the endpoint order), y/z runs in run order
  /// from a to b. IntervalOccupancy follows the same convention.
  std::int64_t set_segment(int plane, const Segment& s,
                           std::vector<Vec3>* collisions = nullptr);

  /// Clear every cell of an axis-aligned segment.
  void clear_segment(int plane, const Segment& s);

  /// Population count of one plane.
  std::int64_t popcount(int plane) const;

  /// Heap bytes held by the bit planes.
  std::int64_t byte_size() const {
    return static_cast<std::int64_t>(words_.size() * sizeof(std::uint64_t));
  }

  /// Zero every plane, keeping the allocation.
  void clear_all();

  /// Word footprint a dense grid over `bounds` with `planes` planes would
  /// need, in bytes (0 for an empty box). Used by OccupancyGrid to decide
  /// dense vs interval representation without allocating.
  static std::int64_t projected_bytes(const Box3& bounds, int planes);

 private:
  std::size_t row_base(int plane, int y, int z) const {
    const std::size_t yr = static_cast<std::size_t>(y - bounds_.lo.y);
    const std::size_t zr = static_cast<std::size_t>(z - bounds_.lo.z);
    return (static_cast<std::size_t>(plane) * dy_ * dz_ + yr * dz_ + zr) *
           words_per_row_;
  }

  Box3 bounds_;
  int planes_ = 0;
  std::size_t dy_ = 0, dz_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Sparse fallback with CellGrid's operation set: per-(plane, y, z) rows
/// of sorted, disjoint, closed x-intervals. Memory is O(intervals), so a
/// geometry of a few tall pillars in a huge bounding box stays small; the
/// per-op cost is a binary search instead of a word load.
class IntervalOccupancy {
 public:
  IntervalOccupancy() = default;
  IntervalOccupancy(const Box3& bounds, int planes) { reset(bounds, planes); }

  void reset(const Box3& bounds, int planes);

  const Box3& bounds() const { return bounds_; }
  int planes() const { return planes_; }

  bool test(int plane, Vec3 p) const;
  bool set(int plane, Vec3 p);
  std::int64_t set_segment(int plane, const Segment& s,
                           std::vector<Vec3>* collisions = nullptr);
  std::int64_t popcount(int plane) const;
  std::int64_t byte_size() const;

 private:
  using Row = std::vector<std::pair<int, int>>;  // sorted closed [lo, hi]
  Row& row(int plane, int y, int z);
  const Row* find_row(int plane, int y, int z) const;
  /// Insert [lo, hi] into `r`, merging/deduping; appends already-set
  /// cells at fixed (y, z) to `collisions` and returns newly set count.
  static std::int64_t insert_run(Row& r, int y, int z, int lo, int hi,
                                 std::vector<Vec3>* collisions);

  Box3 bounds_;
  int planes_ = 0;
  // Row index keyed by (plane, y, z), sorted; rows are created lazily so
  // an empty tall box costs nothing.
  std::vector<std::uint64_t> keys_;
  std::vector<Row> rows_;
};

/// Dense-or-interval occupancy: picks the dense CellGrid when its plane
/// bytes fit `dense_byte_cap`, the interval rows otherwise. This is the
/// representation validate/exact_cell_count build once per description.
class OccupancyGrid {
 public:
  static constexpr std::int64_t kDefaultDenseByteCap = std::int64_t{64}
                                                       << 20;  // 64 MiB

  OccupancyGrid() = default;
  OccupancyGrid(const Box3& bounds, int planes,
                std::int64_t dense_byte_cap = kDefaultDenseByteCap);

  bool dense() const { return dense_; }
  const Box3& bounds() const { return dense_ ? grid_.bounds() : sparse_.bounds(); }

  bool test(int plane, Vec3 p) const {
    return dense_ ? grid_.test(plane, p) : sparse_.test(plane, p);
  }
  bool set(int plane, Vec3 p) {
    return dense_ ? grid_.set(plane, p) : sparse_.set(plane, p);
  }
  std::int64_t set_segment(int plane, const Segment& s,
                           std::vector<Vec3>* collisions = nullptr) {
    return dense_ ? grid_.set_segment(plane, s, collisions)
                  : sparse_.set_segment(plane, s, collisions);
  }
  std::int64_t popcount(int plane) const {
    return dense_ ? grid_.popcount(plane) : sparse_.popcount(plane);
  }
  std::int64_t byte_size() const {
    return dense_ ? grid_.byte_size() : sparse_.byte_size();
  }

 private:
  bool dense_ = true;
  CellGrid grid_;
  IntervalOccupancy sparse_;
};

/// Build stats published as `geom.grid_build_s` / `geom.grid_bytes`.
struct GridBuildStats {
  double build_s = 0;
  std::int64_t bytes = 0;
  bool dense = true;
};

/// Rasterize every defect of `g` (plane 0 primal, plane 1 dual) into an
/// occupancy grid anchored at the merged defect bounding box. `stats`,
/// when non-null, receives the wall time and byte footprint of the build.
OccupancyGrid build_occupancy(
    const GeomDescription& g, GridBuildStats* stats = nullptr,
    std::int64_t dense_byte_cap = OccupancyGrid::kDefaultDenseByteCap);

}  // namespace tqec::geom
