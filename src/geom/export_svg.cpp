#include "geom/export_svg.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

namespace tqec::geom {

namespace {

template <typename Fn>
void for_each_cell(const Segment& s, Fn&& fn) {
  Vec3 step{0, 0, 0};
  const Vec3 d = s.b - s.a;
  if (d.x != 0) step = {d.x > 0 ? 1 : -1, 0, 0};
  else if (d.y != 0) step = {0, d.y > 0 ? 1 : -1, 0};
  else if (d.z != 0) step = {0, 0, d.z > 0 ? 1 : -1};
  Vec3 p = s.a;
  for (;;) {
    fn(p);
    if (p == s.b) break;
    p += step;
  }
}

}  // namespace

int export_svg(const GeomDescription& g, std::ostream& out,
               const SvgExportOptions& opt) {
  TQEC_REQUIRE(opt.cell_px > 0, "cell size must be positive");
  const Box3 bb = g.bounding_box();
  if (bb.empty()) {
    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"1\" "
           "height=\"1\"/>\n";
    return 0;
  }

  // Collect cells grouped by y layer: one flat vector in defect-traversal
  // order, stable-sorted by y (so within a layer the traversal order — and
  // therefore the emitted bytes — match the per-layer map this replaced),
  // plus a sorted-unique list of panel ys including box-only layers.
  std::vector<std::pair<Vec3, bool>> cells;  // (cell, is_primal)
  for (const DefectView d : g.defects()) {
    const bool primal = d.type == DefectType::Primal;
    for (const Segment& s : d.segments)
      for_each_cell(s, [&](Vec3 p) { cells.push_back({p, primal}); });
  }
  std::stable_sort(cells.begin(), cells.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.y < b.first.y;
                   });
  std::vector<int> layer_ys;
  layer_ys.reserve(cells.size());
  for (const auto& [cell, primal] : cells) layer_ys.push_back(cell.y);
  if (opt.include_boxes) {
    for (const DistillBox& b : g.boxes()) {
      const Box3 e = b.extent();
      for (int y = e.lo.y; y <= e.hi.y; ++y)
        layer_ys.push_back(y);  // ensure the panel exists
    }
  }
  std::sort(layer_ys.begin(), layer_ys.end());
  layer_ys.erase(std::unique(layer_ys.begin(), layer_ys.end()),
                 layer_ys.end());

  const int panels =
      std::min(static_cast<int>(layer_ys.size()), opt.max_layers);
  const int panel_w = bb.dims().x * opt.cell_px;
  const int panel_h = bb.dims().z * opt.cell_px;
  const int total_w = panel_w + 2 * opt.cell_px;
  const int total_h = panels * (panel_h + opt.panel_gap_px) + opt.cell_px;

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << total_w
      << "\" height=\"" << total_h << "\">\n";
  out << "<style>.primal{fill:#c0392b}.dual{fill:#2980b9}"
         ".box{fill:none;stroke:#27ae60;stroke-width:2}"
         ".label{font:10px monospace;fill:#333}</style>\n";

  int panel_index = 0;
  auto cell_it = cells.begin();
  for (const int y : layer_ys) {
    if (panel_index >= panels) break;
    // Cells are sorted by y, so each panel's run starts where the previous
    // one ended (box-only layers have an empty run).
    while (cell_it != cells.end() && cell_it->first.y < y) ++cell_it;
    const auto run_begin = cell_it;
    while (cell_it != cells.end() && cell_it->first.y == y) ++cell_it;
    const int oy = panel_index * (panel_h + opt.panel_gap_px) + opt.cell_px;
    out << "<text class=\"label\" x=\"2\" y=\"" << oy - 4 << "\">y=" << y
        << "</text>\n";
    auto px = [&](int x) { return (x - bb.lo.x) * opt.cell_px + opt.cell_px; };
    auto pz = [&](int z) { return (z - bb.lo.z) * opt.cell_px + oy; };
    for (auto it = run_begin; it != cell_it; ++it) {
      const auto& [cell, primal] = *it;
      if (primal) {
        out << "<rect class=\"primal\" x=\"" << px(cell.x) << "\" y=\""
            << pz(cell.z) << "\" width=\"" << opt.cell_px << "\" height=\""
            << opt.cell_px << "\"/>\n";
      } else {
        // Dual cells drawn inset (half-offset sublattice).
        const int inset = opt.cell_px / 3;
        out << "<rect class=\"dual\" x=\"" << px(cell.x) + inset << "\" y=\""
            << pz(cell.z) + inset << "\" width=\"" << opt.cell_px - inset
            << "\" height=\"" << opt.cell_px - inset << "\"/>\n";
      }
    }
    if (opt.include_boxes) {
      for (const DistillBox& b : g.boxes()) {
        const Box3 e = b.extent();
        if (y < e.lo.y || y > e.hi.y) continue;
        out << "<rect class=\"box\" x=\"" << px(e.lo.x) << "\" y=\""
            << pz(e.lo.z) << "\" width=\""
            << (e.dims().x) * opt.cell_px << "\" height=\""
            << (e.dims().z) * opt.cell_px << "\"/>\n";
      }
    }
    ++panel_index;
  }
  out << "</svg>\n";
  return panel_index;
}

std::string to_svg(const GeomDescription& g, const SvgExportOptions& options) {
  std::ostringstream os;
  export_svg(g, os, options);
  return os.str();
}

void write_svg_file(const GeomDescription& g, const std::string& path,
                    const SvgExportOptions& options) {
  std::ofstream out(path);
  if (!out) throw TqecError("cannot open " + path + " for writing");
  export_svg(g, out, options);
  if (!out) throw TqecError("write failed: " + path);
}

}  // namespace tqec::geom
