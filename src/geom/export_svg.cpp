#include "geom/export_svg.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace tqec::geom {

namespace {

template <typename Fn>
void for_each_cell(const Segment& s, Fn&& fn) {
  Vec3 step{0, 0, 0};
  const Vec3 d = s.b - s.a;
  if (d.x != 0) step = {d.x > 0 ? 1 : -1, 0, 0};
  else if (d.y != 0) step = {0, d.y > 0 ? 1 : -1, 0};
  else if (d.z != 0) step = {0, 0, d.z > 0 ? 1 : -1};
  Vec3 p = s.a;
  for (;;) {
    fn(p);
    if (p == s.b) break;
    p += step;
  }
}

}  // namespace

int export_svg(const GeomDescription& g, std::ostream& out,
               const SvgExportOptions& opt) {
  TQEC_REQUIRE(opt.cell_px > 0, "cell size must be positive");
  const Box3 bb = g.bounding_box();
  if (bb.empty()) {
    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"1\" "
           "height=\"1\"/>\n";
    return 0;
  }

  // Collect cells per y layer.
  struct LayerCells {
    std::vector<std::pair<Vec3, bool>> cells;  // (cell, is_primal)
  };
  std::map<int, LayerCells> layers;
  for (const Defect& d : g.defects()) {
    const bool primal = d.type == DefectType::Primal;
    for (const Segment& s : d.segments)
      for_each_cell(s, [&](Vec3 p) { layers[p.y].cells.push_back({p, primal}); });
  }
  if (opt.include_boxes) {
    for (const DistillBox& b : g.boxes()) {
      const Box3 e = b.extent();
      for (int y = e.lo.y; y <= e.hi.y; ++y)
        layers.try_emplace(y);  // ensure the panel exists
    }
  }

  const int panels =
      std::min(static_cast<int>(layers.size()), opt.max_layers);
  const int panel_w = bb.dims().x * opt.cell_px;
  const int panel_h = bb.dims().z * opt.cell_px;
  const int total_w = panel_w + 2 * opt.cell_px;
  const int total_h = panels * (panel_h + opt.panel_gap_px) + opt.cell_px;

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << total_w
      << "\" height=\"" << total_h << "\">\n";
  out << "<style>.primal{fill:#c0392b}.dual{fill:#2980b9}"
         ".box{fill:none;stroke:#27ae60;stroke-width:2}"
         ".label{font:10px monospace;fill:#333}</style>\n";

  int panel_index = 0;
  for (const auto& [y, layer] : layers) {
    if (panel_index >= panels) break;
    const int oy = panel_index * (panel_h + opt.panel_gap_px) + opt.cell_px;
    out << "<text class=\"label\" x=\"2\" y=\"" << oy - 4 << "\">y=" << y
        << "</text>\n";
    auto px = [&](int x) { return (x - bb.lo.x) * opt.cell_px + opt.cell_px; };
    auto pz = [&](int z) { return (z - bb.lo.z) * opt.cell_px + oy; };
    for (const auto& [cell, primal] : layer.cells) {
      if (primal) {
        out << "<rect class=\"primal\" x=\"" << px(cell.x) << "\" y=\""
            << pz(cell.z) << "\" width=\"" << opt.cell_px << "\" height=\""
            << opt.cell_px << "\"/>\n";
      } else {
        // Dual cells drawn inset (half-offset sublattice).
        const int inset = opt.cell_px / 3;
        out << "<rect class=\"dual\" x=\"" << px(cell.x) + inset << "\" y=\""
            << pz(cell.z) + inset << "\" width=\"" << opt.cell_px - inset
            << "\" height=\"" << opt.cell_px - inset << "\"/>\n";
      }
    }
    if (opt.include_boxes) {
      for (const DistillBox& b : g.boxes()) {
        const Box3 e = b.extent();
        if (y < e.lo.y || y > e.hi.y) continue;
        out << "<rect class=\"box\" x=\"" << px(e.lo.x) << "\" y=\""
            << pz(e.lo.z) << "\" width=\""
            << (e.dims().x) * opt.cell_px << "\" height=\""
            << (e.dims().z) * opt.cell_px << "\"/>\n";
      }
    }
    ++panel_index;
  }
  out << "</svg>\n";
  return panel_index;
}

std::string to_svg(const GeomDescription& g, const SvgExportOptions& options) {
  std::ostringstream os;
  export_svg(g, os, options);
  return os.str();
}

void write_svg_file(const GeomDescription& g, const std::string& path,
                    const SvgExportOptions& options) {
  std::ofstream out(path);
  if (!out) throw TqecError("cannot open " + path + " for writing");
  export_svg(g, out, options);
  if (!out) throw TqecError("write failed: " + path);
}

}  // namespace tqec::geom
