// Canonical geometric descriptions (paper Fig. 1(b), Table 2 column 1).
//
// The canonical form places one ICM line per y-unit as a pair of primal
// rails (z = 0 and z = 1) running along the time axis, and realizes each
// CNOT as a dual ring in a dedicated 3-x-unit slot. Distillation boxes are
// not embedded in the core region; following the note under the paper's
// Table 2, the canonical volume is the core volume plus the summed box
// volumes:
//
//     V_canonical = (3 * #CNOTs) * #Qubits * 2  +  18 * #|Y>  +  192 * #|A>
//                 =  6 * Q * G  +  18 * N_Y  +  192 * N_A
//
// This formula reproduces every canonical volume in the paper's Table 2
// exactly (see DESIGN.md). The emitted dual rings are the Figure-1(b)
// visual shape (a ring spanning the control..target lines in the CNOT's x
// slot); braid selectivity around intermediate lines is tracked exactly in
// the PD graph, which is the authoritative braiding record for all
// compression stages.
#pragma once

#include "geom/geometry.h"
#include "icm/icm.h"

namespace tqec::geom {

/// Closed-form canonical volume (additive box accounting).
std::int64_t canonical_volume(const icm::IcmStats& stats);

/// Build the canonical geometric description of an ICM circuit. The result
/// passes validate() and satisfies
/// additive_volume() == canonical_volume(circuit.stats()).
GeomDescription build_canonical(const icm::IcmCircuit& circuit);

}  // namespace tqec::geom
