#include "geom/geometry.h"

#include <sstream>

namespace tqec::geom {

int GeomDescription::add_defect(Defect defect) {
  for (const Segment& s : defect.segments)
    TQEC_REQUIRE(s.axis_aligned(), "defect segment not axis-aligned");
  defects_.push_back(std::move(defect));
  return static_cast<int>(defects_.size()) - 1;
}

int GeomDescription::add_box(DistillBox box) {
  boxes_.push_back(box);
  return static_cast<int>(boxes_.size()) - 1;
}

void GeomDescription::add_component(ImComponent component) {
  TQEC_REQUIRE(component.defect_index >= -1 &&
                   component.defect_index < static_cast<int>(defects_.size()),
               "component defect index out of range");
  components_.push_back(component);
}

Box3 GeomDescription::bounding_box() const {
  Box3 box;
  for (const Defect& d : defects_) box = box.merged(d.bounding_box());
  for (const DistillBox& b : boxes_) box = box.merged(b.extent());
  return box;
}

std::int64_t GeomDescription::additive_volume() const {
  Box3 core;
  for (const Defect& d : defects_) core = core.merged(d.bounding_box());
  std::int64_t total = core.volume();
  for (const DistillBox& b : boxes_) total += box_volume(b.kind);
  return total;
}

void GeomDescription::translate(Vec3 delta) {
  for (Defect& d : defects_) {
    for (Segment& s : d.segments) {
      s.a += delta;
      s.b += delta;
    }
  }
  for (DistillBox& b : boxes_) b.origin += delta;
  for (ImComponent& c : components_) c.position += delta;
}

void GeomDescription::absorb(GeomDescription other) {
  const int defect_shift = static_cast<int>(defects_.size());
  for (Defect& d : other.defects_) defects_.push_back(std::move(d));
  for (const DistillBox& b : other.boxes_) boxes_.push_back(b);
  for (ImComponent c : other.components_) {
    if (c.defect_index >= 0) c.defect_index += defect_shift;
    components_.push_back(c);
  }
}

std::int64_t GeomDescription::defect_cell_count() const {
  std::int64_t n = 0;
  for (const Defect& d : defects_) n += d.cell_count();
  return n;
}

namespace {
const char* component_kind_name(ComponentKind k) {
  switch (k) {
    case ComponentKind::InitZ: return "init_z";
    case ComponentKind::InitX: return "init_x";
    case ComponentKind::MeasZ: return "meas_z";
    case ComponentKind::MeasX: return "meas_x";
    case ComponentKind::InjectY: return "inject_y";
    case ComponentKind::InjectA: return "inject_a";
  }
  return "?";
}
}  // namespace

std::string describe(const GeomDescription& g) {
  std::ostringstream os;
  const Box3 bb = g.bounding_box();
  const Vec3 d = bb.dims();
  os << "geometric description";
  if (!g.name().empty()) os << " '" << g.name() << "'";
  os << ": " << g.defects().size() << " defects, " << g.boxes().size()
     << " boxes, volume " << d.x << "x" << d.y << "x" << d.z << " = "
     << g.volume() << "\n";
  for (std::size_t i = 0; i < g.defects().size(); ++i) {
    const Defect& def = g.defects()[i];
    os << "  defect " << i << " (" << defect_type_name(def.type) << ", src "
       << def.source_id << "): ";
    for (const Segment& s : def.segments) os << s.a << "->" << s.b << ' ';
    os << "\n";
  }
  for (const DistillBox& b : g.boxes()) {
    os << "  box " << (b.kind == BoxKind::YBox ? 'Y' : 'A') << " at "
       << b.origin << " line " << b.line << "\n";
  }
  return os.str();
}

std::string to_json(const GeomDescription& g) {
  std::ostringstream os;
  auto vec = [&](Vec3 v) {
    std::ostringstream o;
    o << '[' << v.x << ',' << v.y << ',' << v.z << ']';
    return o.str();
  };
  os << "{\"name\":\"" << g.name() << "\",\"defects\":[";
  for (std::size_t i = 0; i < g.defects().size(); ++i) {
    const Defect& d = g.defects()[i];
    if (i) os << ',';
    os << "{\"type\":\"" << defect_type_name(d.type) << "\",\"source\":"
       << d.source_id << ",\"segments\":[";
    for (std::size_t j = 0; j < d.segments.size(); ++j) {
      if (j) os << ',';
      os << "{\"a\":" << vec(d.segments[j].a) << ",\"b\":"
         << vec(d.segments[j].b) << '}';
    }
    os << "]}";
  }
  os << "],\"boxes\":[";
  for (std::size_t i = 0; i < g.boxes().size(); ++i) {
    const DistillBox& b = g.boxes()[i];
    if (i) os << ',';
    os << "{\"kind\":\"" << (b.kind == BoxKind::YBox ? "Y" : "A")
       << "\",\"origin\":" << vec(b.origin) << ",\"line\":" << b.line << '}';
  }
  os << "],\"components\":[";
  for (std::size_t i = 0; i < g.components().size(); ++i) {
    const ImComponent& c = g.components()[i];
    if (i) os << ',';
    os << "{\"kind\":\"" << component_kind_name(c.kind) << "\",\"position\":"
       << vec(c.position) << ",\"defect\":" << c.defect_index << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace tqec::geom
