#include "geom/geometry.h"

#include <sstream>

#include "geom/cell_grid.h"

namespace tqec::geom {

int GeomDescription::add_defect(DefectType type, int source_id,
                                std::span<const Segment> segments) {
  for (const Segment& s : segments)
    TQEC_REQUIRE(s.axis_aligned(), "defect segment not axis-aligned");
  DefectRec rec;
  rec.first = static_cast<std::uint32_t>(arena_.size());
  rec.count = static_cast<std::uint32_t>(segments.size());
  rec.type = type;
  rec.source_id = source_id;
  arena_.insert(arena_.end(), segments.begin(), segments.end());
  recs_.push_back(rec);
  return static_cast<int>(recs_.size()) - 1;
}

int GeomDescription::begin_defect(DefectType type, int source_id) {
  DefectRec rec;
  rec.first = static_cast<std::uint32_t>(arena_.size());
  rec.count = 0;
  rec.type = type;
  rec.source_id = source_id;
  recs_.push_back(rec);
  return static_cast<int>(recs_.size()) - 1;
}

void GeomDescription::append_segment(const Segment& s) {
  TQEC_REQUIRE(!recs_.empty(), "append_segment: no open defect");
  TQEC_REQUIRE(s.axis_aligned(), "defect segment not axis-aligned");
  arena_.push_back(s);
  recs_.back().count += 1;
}

int GeomDescription::add_box(DistillBox box) {
  boxes_.push_back(box);
  return static_cast<int>(boxes_.size()) - 1;
}

void GeomDescription::add_component(ImComponent component) {
  TQEC_REQUIRE(component.defect_index >= -1 &&
                   component.defect_index < static_cast<int>(recs_.size()),
               "component defect index out of range");
  components_.push_back(component);
}

Box3 GeomDescription::bounding_box() const {
  Box3 box;
  for (const Segment& s : arena_) box = box.merged(s.box());
  for (const DistillBox& b : boxes_) box = box.merged(b.extent());
  return box;
}

std::int64_t GeomDescription::additive_volume() const {
  Box3 core;
  for (const Segment& s : arena_) core = core.merged(s.box());
  std::int64_t total = core.volume();
  for (const DistillBox& b : boxes_) total += box_volume(b.kind);
  return total;
}

void GeomDescription::translate(Vec3 delta) {
  for (Segment& s : arena_) {
    s.a += delta;
    s.b += delta;
  }
  for (DistillBox& b : boxes_) b.origin += delta;
  for (ImComponent& c : components_) c.position += delta;
}

void GeomDescription::absorb(GeomDescription other) {
  const int defect_shift = static_cast<int>(recs_.size());
  const std::uint32_t seg_shift = static_cast<std::uint32_t>(arena_.size());
  arena_.insert(arena_.end(), other.arena_.begin(), other.arena_.end());
  for (DefectRec r : other.recs_) {
    r.first += seg_shift;
    recs_.push_back(r);
  }
  for (const DistillBox& b : other.boxes_) boxes_.push_back(b);
  for (ImComponent c : other.components_) {
    if (c.defect_index >= 0) c.defect_index += defect_shift;
    components_.push_back(c);
  }
}

std::int64_t GeomDescription::defect_cell_count() const {
  std::int64_t n = 0;
  for (const Segment& s : arena_) n += s.length();
  return n;
}

std::int64_t GeomDescription::exact_cell_count() const {
  const OccupancyGrid occ = build_occupancy(*this);
  return occ.popcount(kPrimalPlane) + occ.popcount(kDualPlane);
}

namespace {
const char* component_kind_name(ComponentKind k) {
  switch (k) {
    case ComponentKind::InitZ: return "init_z";
    case ComponentKind::InitX: return "init_x";
    case ComponentKind::MeasZ: return "meas_z";
    case ComponentKind::MeasX: return "meas_x";
    case ComponentKind::InjectY: return "inject_y";
    case ComponentKind::InjectA: return "inject_a";
  }
  return "?";
}
}  // namespace

std::string describe(const GeomDescription& g) {
  std::ostringstream os;
  const Box3 bb = g.bounding_box();
  const Vec3 d = bb.dims();
  os << "geometric description";
  if (!g.name().empty()) os << " '" << g.name() << "'";
  os << ": " << g.defects().size() << " defects, " << g.boxes().size()
     << " boxes, volume " << d.x << "x" << d.y << "x" << d.z << " = "
     << g.volume() << "\n";
  for (std::size_t i = 0; i < g.defects().size(); ++i) {
    const DefectView def = g.defect(i);
    os << "  defect " << i << " (" << defect_type_name(def.type) << ", src "
       << def.source_id << "): ";
    for (const Segment& s : def.segments) os << s.a << "->" << s.b << ' ';
    os << "\n";
  }
  for (const DistillBox& b : g.boxes()) {
    os << "  box " << (b.kind == BoxKind::YBox ? 'Y' : 'A') << " at "
       << b.origin << " line " << b.line << "\n";
  }
  return os.str();
}

std::string to_json(const GeomDescription& g) {
  std::ostringstream os;
  auto vec = [&](Vec3 v) {
    std::ostringstream o;
    o << '[' << v.x << ',' << v.y << ',' << v.z << ']';
    return o.str();
  };
  os << "{\"name\":\"" << g.name() << "\",\"defects\":[";
  for (std::size_t i = 0; i < g.defects().size(); ++i) {
    const DefectView d = g.defect(i);
    if (i) os << ',';
    os << "{\"type\":\"" << defect_type_name(d.type) << "\",\"source\":"
       << d.source_id << ",\"segments\":[";
    for (std::size_t j = 0; j < d.segments.size(); ++j) {
      if (j) os << ',';
      os << "{\"a\":" << vec(d.segments[j].a) << ",\"b\":"
         << vec(d.segments[j].b) << '}';
    }
    os << "]}";
  }
  os << "],\"boxes\":[";
  for (std::size_t i = 0; i < g.boxes().size(); ++i) {
    const DistillBox& b = g.boxes()[i];
    if (i) os << ',';
    os << "{\"kind\":\"" << (b.kind == BoxKind::YBox ? "Y" : "A")
       << "\",\"origin\":" << vec(b.origin) << ",\"line\":" << b.line << '}';
  }
  os << "],\"components\":[";
  for (std::size_t i = 0; i < g.components().size(); ++i) {
    const ImComponent& c = g.components()[i];
    if (i) os << ',';
    os << "{\"kind\":\"" << component_kind_name(c.kind) << "\",\"position\":"
       << vec(c.position) << ",\"defect\":" << c.defect_index << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace tqec::geom
