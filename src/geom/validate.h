// Structural validation of geometric descriptions.
//
// Rules enforced (paper Sec. 1 and 2.4, in plumbing-piece units — see
// geometry.h for the coordinate convention):
//   V1. every segment is axis-aligned;
//   V2. the segments of one defect form a single connected structure
//       (touching or overlapping cells);
//   V3. two *disjoint* defects of the same type never share a cell
//       ("two disjoint defects cannot overlap and are separated by one
//       unit", where the unit separation is part of the cell pitch).
//       Exception for dual defects: a cell on a primal module loop or in
//       its port region (face-adjacent to a primal cell) may carry several
//       dual nets — the loop is spatially extended and each threading net
//       passes through its own sub-cell slot (see route/router.h);
//   V4. distillation boxes do not overlap each other;
//   V5. defect cells do not enter distillation-box interiors (boxes hold
//       the place for the distillation sub-circuit).
// Cross-type sharing of a cell is legal (half-offset sublattices).
//
// Engines: the default V3 pass rasterizes each defect into a dense
// bit-grid (geom/cell_grid.h) and inspects word-level collisions, so a
// legal geometry never hashes a single Vec3. When a cross-defect
// collision *is* detected, the pass re-runs the original hash-map
// reference for that sublattice so the emitted issues (text and order)
// are byte-identical to the reference engine. `ValidateOptions.use_grid
// = false` forces the reference engine throughout — kept for A/B tests
// and benchmarks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geometry.h"

namespace tqec::geom {

struct ValidationIssue {
  std::string rule;   // "V1".."V5"
  std::string detail;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  /// Occupancy-grid build cost of the V3 pass (0 for the reference
  /// engine); surfaced as the geom.grid_build_s / geom.grid_bytes gauges.
  double grid_build_s = 0;
  std::int64_t grid_bytes = 0;
  bool ok() const { return issues.empty(); }
  std::string summary() const;
};

struct ValidateOptions {
  /// false: force the hash-map reference engine (A/B testing).
  bool use_grid = true;
};

ValidationReport validate(const GeomDescription& g,
                          const ValidateOptions& options = {});

/// Convenience: throws TqecError with the report summary when invalid.
void validate_or_throw(const GeomDescription& g);

}  // namespace tqec::geom
