// Structural validation of geometric descriptions.
//
// Rules enforced (paper Sec. 1 and 2.4, in plumbing-piece units — see
// geometry.h for the coordinate convention):
//   V1. every segment is axis-aligned;
//   V2. the segments of one defect form a single connected structure
//       (touching or overlapping cells);
//   V3. two *disjoint* defects of the same type never share a cell
//       ("two disjoint defects cannot overlap and are separated by one
//       unit", where the unit separation is part of the cell pitch).
//       Exception for dual defects: a cell on a primal module loop or in
//       its port region (face-adjacent to a primal cell) may carry several
//       dual nets — the loop is spatially extended and each threading net
//       passes through its own sub-cell slot (see route/router.h);
//   V4. distillation boxes do not overlap each other;
//   V5. defect cells do not enter distillation-box interiors (boxes hold
//       the place for the distillation sub-circuit).
// Cross-type sharing of a cell is legal (half-offset sublattices).
#pragma once

#include <string>
#include <vector>

#include "geom/geometry.h"

namespace tqec::geom {

struct ValidationIssue {
  std::string rule;   // "V1".."V5"
  std::string detail;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  bool ok() const { return issues.empty(); }
  std::string summary() const;
};

ValidationReport validate(const GeomDescription& g);

/// Convenience: throws TqecError with the report summary when invalid.
void validate_or_throw(const GeomDescription& g);

}  // namespace tqec::geom
