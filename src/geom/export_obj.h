// Wavefront OBJ export of geometric descriptions for 3D visualization.
//
// Every defect segment becomes a cuboid (primal and dual in separate OBJ
// groups with their own material names, matching the paper's red/blue
// convention), distillation boxes become translucent cuboids, and dual
// geometry is drawn on the half-offset sublattice so threading is visible.
// The output loads in any mesh viewer (Blender, MeshLab, three.js).
#pragma once

#include <iosfwd>
#include <string>

#include "geom/geometry.h"

namespace tqec::geom {

struct ObjExportOptions {
  /// Cuboid side length as a fraction of the cell pitch (gap makes the
  /// individual segments distinguishable).
  double defect_thickness = 0.6;
  /// Offset applied to dual geometry (the half-offset sublattice).
  double dual_offset = 0.5;
  bool include_boxes = true;
};

/// Write the OBJ document to a stream; returns the number of cuboids.
int export_obj(const GeomDescription& g, std::ostream& out,
               const ObjExportOptions& options = {});

/// Convenience: OBJ text in a string.
std::string to_obj(const GeomDescription& g,
                   const ObjExportOptions& options = {});

/// Write an OBJ file; throws TqecError on I/O failure.
void write_obj_file(const GeomDescription& g, const std::string& path,
                    const ObjExportOptions& options = {});

}  // namespace tqec::geom
