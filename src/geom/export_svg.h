// SVG export of geometric descriptions as per-layer (y-slice) maps.
//
// Each y plane of the bounding box becomes one panel: primal cells are
// drawn red, dual cells blue (half-offset within the cell, so threading is
// visible as an inset square), distillation boxes as outlined rectangles.
// The output is a single self-contained SVG document — the 2D companion of
// the OBJ mesh export, convenient for quick inspection in a browser.
#pragma once

#include <iosfwd>
#include <string>

#include "geom/geometry.h"

namespace tqec::geom {

struct SvgExportOptions {
  int cell_px = 12;        // pixels per lattice cell
  int panel_gap_px = 24;   // gap between layer panels
  int max_layers = 64;     // safety cap on emitted panels
  bool include_boxes = true;
};

/// Write the SVG document; returns the number of layer panels emitted.
int export_svg(const GeomDescription& g, std::ostream& out,
               const SvgExportOptions& options = {});

std::string to_svg(const GeomDescription& g,
                   const SvgExportOptions& options = {});

void write_svg_file(const GeomDescription& g, const std::string& path,
                    const SvgExportOptions& options = {});

}  // namespace tqec::geom
