#include "geom/steiner.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace tqec::geom {

std::int64_t hpwl(const std::vector<Vec3>& pins) {
  if (pins.size() < 2) return 0;
  Box3 box;
  for (const Vec3& p : pins) box = box.expanded(p);
  const Vec3 d = box.dims();
  return std::int64_t{d.x - 1} + (d.y - 1) + (d.z - 1);
}

std::int64_t rectilinear_mst_length(const std::vector<Vec3>& pins) {
  const std::size_t n = pins.size();
  if (n < 2) return 0;
  // Prim with O(n^2) distance scans; fine for routing-net pin counts.
  std::vector<bool> in_tree(n, false);
  std::vector<std::int64_t> best(n, std::numeric_limits<std::int64_t>::max());
  in_tree[0] = true;
  for (std::size_t v = 1; v < n; ++v) best[v] = manhattan(pins[0], pins[v]);
  std::int64_t total = 0;
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = 0;
    std::int64_t pick_cost = std::numeric_limits<std::int64_t>::max();
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < pick_cost) {
        pick = v;
        pick_cost = best[v];
      }
    }
    in_tree[pick] = true;
    total += pick_cost;
    for (std::size_t v = 0; v < n; ++v)
      if (!in_tree[v])
        best[v] = std::min(best[v],
                           static_cast<std::int64_t>(manhattan(pins[pick],
                                                               pins[v])));
  }
  return total;
}

SteinerTree rectilinear_steiner_tree(const std::vector<Vec3>& pins,
                                     int max_points) {
  TQEC_REQUIRE(max_points >= 0, "negative Steiner point budget");
  SteinerTree tree;
  tree.length = rectilinear_mst_length(pins);
  if (pins.size() < 3 || max_points == 0) return tree;

  // Hanan grid coordinates.
  std::vector<int> xs, ys, zs;
  for (const Vec3& p : pins) {
    xs.push_back(p.x);
    ys.push_back(p.y);
    zs.push_back(p.z);
  }
  auto dedup = [](std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedup(xs);
  dedup(ys);
  dedup(zs);

  std::vector<Vec3> terminals = pins;
  // Sorted shadow of `terminals` for the membership test — the Hanan scan
  // probes |xs|*|ys|*|zs| candidates per round, so a binary search beats
  // the linear std::find it replaced.
  std::vector<Vec3> sorted_terminals = pins;
  std::sort(sorted_terminals.begin(), sorted_terminals.end());
  for (int round = 0; round < max_points; ++round) {
    const std::int64_t base = rectilinear_mst_length(terminals);
    std::int64_t best_len = base;
    Vec3 best_point;
    bool found = false;
    for (int x : xs) {
      for (int y : ys) {
        for (int z : zs) {
          const Vec3 candidate{x, y, z};
          if (std::binary_search(sorted_terminals.begin(),
                                 sorted_terminals.end(), candidate))
            continue;
          terminals.push_back(candidate);
          const std::int64_t len = rectilinear_mst_length(terminals);
          terminals.pop_back();
          if (len < best_len) {
            best_len = len;
            best_point = candidate;
            found = true;
          }
        }
      }
    }
    if (!found) break;
    terminals.push_back(best_point);
    sorted_terminals.insert(
        std::lower_bound(sorted_terminals.begin(), sorted_terminals.end(),
                         best_point),
        best_point);
    tree.steiner_points.push_back(best_point);
    tree.length = best_len;
  }
  // Drop Steiner points that ended up degree<=2 refinements with no gain is
  // unnecessary: the loop only ever added strictly improving points.
  return tree;
}

}  // namespace tqec::geom
