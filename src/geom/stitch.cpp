#include "geom/stitch.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "geom/cell_grid.h"

namespace tqec::geom {

namespace {

/// Visit every lattice cell of an axis-aligned segment, a -> b inclusive.
template <typename Fn>
void for_each_cell(const Segment& s, Fn&& fn) {
  TQEC_REQUIRE(s.axis_aligned(), "stitch: non-axis-aligned segment");
  const Vec3 d = s.b - s.a;
  const Vec3 step{(d.x > 0) - (d.x < 0), (d.y > 0) - (d.y < 0),
                  (d.z > 0) - (d.z < 0)};
  for (Vec3 p = s.a;; p += step) {
    fn(p);
    if (p == s.b) break;
  }
}

/// Occupancy + A* bookkeeping, reference flavor: the original node-based
/// hash containers. Kept verbatim behind the policy interface so
/// `StitchOptions.use_grid = false` reproduces the pre-grid engine
/// bit-for-bit (A/B tests compare the two end to end).
class HashSpace {
 public:
  static constexpr bool kGrid = false;

  bool init_frame(const Box3&) { return true; }
  bool occupy(Vec3 c) { return occupied_.insert(c).second; }
  void release(Vec3 c) { occupied_.erase(c); }
  bool is_occupied(Vec3 c) const { return occupied_.count(c) != 0; }
  bool is_pass(Vec3 c) const { return pass_.count(c) != 0; }
  void pass_insert(Vec3 c) { pass_.insert(c); }
  void pass_remove(Vec3 c) { pass_.erase(c); }

  void begin_search(const Box3&) { best_.clear(); }
  int g_of(Vec3 c) const {
    const auto it = best_.find(c);
    return it == best_.end() ? -1 : it->second.first;
  }
  Vec3 parent_of(Vec3 c) const { return best_.at(c).second; }
  void set_node(Vec3 c, int g, Vec3 parent) { best_[c] = {g, parent}; }

  std::int64_t byte_size() const { return 0; }

 private:
  std::unordered_set<Vec3> occupied_;
  std::unordered_set<Vec3> pass_;
  std::unordered_map<Vec3, std::pair<int, Vec3>> best_;
};

/// Occupancy + A* bookkeeping, grid flavor: occupancy and pass-through
/// cells are bit planes of one CellGrid over the merged frame, and the
/// search keeps g/parent in dense scratch arrays over the carve region
/// (reset with a fill per search, allocation reused across carves). Every
/// operation has the exact semantics of HashSpace, so seam paths — and
/// therefore the stitched geometry — are bit-identical; only the cost per
/// cell changes (a word load instead of a hash + pointer chase).
class GridSpace {
 public:
  static constexpr bool kGrid = true;
  /// Fall back to HashSpace above this dense-frame footprint (the frame
  /// spans every window, so a pathological input could ask for gigabytes).
  static constexpr std::int64_t kFrameByteCap = std::int64_t{64} << 20;

  bool init_frame(const Box3& frame) {
    if (CellGrid::projected_bytes(frame, 2) > kFrameByteCap) return false;
    grid_.reset(frame, 2);
    return true;
  }
  bool occupy(Vec3 c) { return grid_.set(kOccupiedPlane, c); }
  void release(Vec3 c) { grid_.clear(kOccupiedPlane, c); }
  bool is_occupied(Vec3 c) const { return grid_.test(kOccupiedPlane, c); }
  bool is_pass(Vec3 c) const { return grid_.test(kPassPlane, c); }
  void pass_insert(Vec3 c) { grid_.set(kPassPlane, c); }
  void pass_remove(Vec3 c) { grid_.clear(kPassPlane, c); }

  /// Callers guarantee the search's start and goal lie inside `region`
  /// (the carve region is expanded around both endpoints and the pin).
  void begin_search(const Box3& region) {
    const std::int64_t n = region.volume();
    TQEC_REQUIRE(n <= std::numeric_limits<std::int32_t>::max(),
                 "stitch: carve region too large");
    rlo_ = region.lo;
    const Vec3 d = region.dims();
    rdy_ = static_cast<std::size_t>(d.y);
    rdz_ = static_cast<std::size_t>(d.z);
    g_.assign(static_cast<std::size_t>(n), -1);
    parent_.resize(static_cast<std::size_t>(n));
  }
  int g_of(Vec3 c) const { return g_[idx(c)]; }
  Vec3 parent_of(Vec3 c) const { return cell(parent_[idx(c)]); }
  void set_node(Vec3 c, int g, Vec3 parent) {
    const std::size_t i = idx(c);
    g_[i] = g;
    parent_[i] = static_cast<std::int32_t>(idx(parent));
  }

  std::int64_t byte_size() const {
    return grid_.byte_size() +
           static_cast<std::int64_t>((g_.capacity() + parent_.capacity()) *
                                     sizeof(std::int32_t));
  }

 private:
  static constexpr int kOccupiedPlane = 0;
  static constexpr int kPassPlane = 1;

  std::size_t idx(Vec3 c) const {
    return (static_cast<std::size_t>(c.x - rlo_.x) * rdy_ +
            static_cast<std::size_t>(c.y - rlo_.y)) *
               rdz_ +
           static_cast<std::size_t>(c.z - rlo_.z);
  }
  Vec3 cell(std::int32_t i) const {
    const auto u = static_cast<std::size_t>(i);
    return {rlo_.x + static_cast<int>(u / (rdy_ * rdz_)),
            rlo_.y + static_cast<int>((u / rdz_) % rdy_),
            rlo_.z + static_cast<int>(u % rdz_)};
  }

  CellGrid grid_;
  Vec3 rlo_;
  std::size_t rdy_ = 1, rdz_ = 1;
  std::vector<std::int32_t> g_;        // settled cost, -1 = unreached
  std::vector<std::int32_t> parent_;   // region index of the parent cell
};

/// Deterministic A* (unit edge costs, Manhattan heuristic) from `start` to
/// `goal` through cells of `region` not occupied in `space` (the endpoints
/// themselves are exempt, as is every pass-through cell — the carve's own
/// endpoint defects, whose rails the seam path may legally ride since they
/// all merge into one final defect). Returns a shortest cell path
/// start..goal inclusive, or empty when unreachable. Ties on f = g + h
/// break by insertion order and the neighbor order is fixed, so the path
/// is a pure function of the inputs. Goal-directed search matters here:
/// seam regions span two whole windows, and a breadth-first flood visits
/// every free cell of that box per carve (tens of millions of cells across
/// a long circuit's seams) where A* walks essentially straight to the pin.
template <typename Space>
std::vector<Vec3> seam_path(Vec3 start, Vec3 goal, const Box3& region,
                            Space& space) {
  if (start == goal) return {start};
  static constexpr Vec3 kSteps[6] = {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0},
                                     {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
  // Weighted heuristic (W > 1): the path need not be shortest, only legal
  // and deterministic, and the extra goal bias cuts expansions sharply in
  // cluttered regions at the cost of slightly longer seams.
  constexpr int kWeight = 3;
  const auto h = [goal](Vec3 v) {
    return kWeight * (std::abs(v.x - goal.x) + std::abs(v.y - goal.y) +
                      std::abs(v.z - goal.z));
  };
  // (f, insertion order, cell): lazy-deletion open list; the space holds
  // the settled g and the parent of every reached cell.
  using OpenEntry = std::tuple<int, long, Vec3>;
  std::priority_queue<OpenEntry, std::vector<OpenEntry>,
                      std::greater<OpenEntry>>
      open;
  space.begin_search(region);
  long order = 0;
  space.set_node(start, 0, start);
  open.emplace(h(start), order++, start);
  while (!open.empty()) {
    const auto [f, tie, p] = open.top();
    open.pop();
    const int gp = space.g_of(p);
    if (f != gp + h(p)) continue;  // stale entry
    if (p == goal) {
      std::vector<Vec3> path;
      for (Vec3 c = goal;; c = space.parent_of(c)) {
        path.push_back(c);
        if (c == start) break;
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const Vec3 s : kSteps) {
      const Vec3 n = p + s;
      if (!region.contains(n)) continue;
      if (n != goal && space.is_occupied(n) && !space.is_pass(n)) continue;
      const int gn = gp + 1;
      const int cur = space.g_of(n);
      if (cur >= 0 && cur <= gn) continue;
      space.set_node(n, gn, p);
      open.emplace(gn + h(n), order++, n);
    }
  }
  return {};
}

/// Collapse a cell path into maximal straight segments.
std::vector<Segment> path_to_segments(const std::vector<Vec3>& path) {
  std::vector<Segment> segments;
  if (path.empty()) return segments;
  Vec3 run_start = path[0];
  Vec3 prev = path[0];
  Vec3 dir{0, 0, 0};
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Vec3 step = path[i] - prev;
    if (dir != Vec3{0, 0, 0} && step != dir) {
      segments.push_back({run_start, prev});
      run_start = prev;
    }
    dir = step;
    prev = path[i];
  }
  segments.push_back({run_start, prev});
  return segments;
}

/// Union-find over staged defect indices; roots stay the smallest member,
/// so merge results are independent of merge order.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// One staged (translated) defect: an index range into the staging arena
/// plus the metadata the emit step needs. The bounding box pre-filters the
/// carry-cell -> defect resolution scan.
struct StagedRec {
  std::size_t first = 0;
  std::size_t count = 0;
  DefectType type = DefectType::Primal;
  int source_id = -1;
  Box3 bb;
};

/// The whole stitch, parameterized over the occupancy engine. Returns
/// false when the engine declines the frame (grid too large) *before any
/// work happened*, so the caller can rerun with the reference engine.
template <typename Space>
bool stitch_impl(const std::vector<StitchWindow>& windows,
                 const StitchOptions& options, Space& space,
                 StitchResult& res) {
  const int gap = std::max(1, options.seam_gap);

  // Window layout along +x and global extents for the pin plane.
  std::vector<int> off(windows.size(), 0);
  int cursor = 0;
  int max_y = 0, min_z = 0, max_z = 0;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const Box3 bb = windows[w].geometry->bounding_box();
    off[w] = cursor - std::min(0, bb.lo.x);
    cursor = off[w] + (bb.empty() ? 1 : bb.hi.x + 1) + gap;
    if (!bb.empty()) {
      max_y = std::max(max_y, bb.hi.y);
      min_z = std::min(min_z, bb.lo.z);
      max_z = std::max(max_z, bb.hi.z);
    }
  }
  const int pin_y = max_y + 1;
  const int max_up = options.max_attempts - 1;

  // Frame: a box containing every cell the occupancy may ever hold or
  // test-and-carve — the staged windows (boxes included), every seam pin
  // and carry endpoint, and the widest per-line search region.
  Box3 frame;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    Box3 bb = windows[w].geometry->bounding_box();
    if (bb.empty()) continue;
    bb.lo += Vec3{off[w], 0, 0};
    bb.hi += Vec3{off[w], 0, 0};
    frame = frame.merged(bb);
  }
  for (std::size_t w = 0; w + 1 < windows.size(); ++w) {
    for (const auto& [line, cell] : windows[w].carry_out)
      frame = frame.expanded(cell + Vec3{off[w], 0, 0});
    const auto& ins = windows[w + 1].carry_in;
    for (std::size_t r = 0; r < ins.size(); ++r) {
      const Vec3 pin{off[w + 1] - gap + gap / 2, pin_y,
                     2 * static_cast<int>(r)};
      const Box3 mr{
          {off[w], -1 - max_up, std::min(min_z, pin.z) - 1 - max_up},
          {off[w + 1] + windows[w + 1].geometry->bounding_box().hi.x,
           pin_y + 1 + 2 * max_up, std::max(max_z, pin.z) + 1 + max_up}};
      frame = frame.merged(mr).expanded(pin).expanded(
          ins[r].second + Vec3{off[w + 1], 0, 0});
    }
  }
  if (!space.init_frame(frame)) return false;
  res.window_offsets = off;

  const auto t0 = std::chrono::steady_clock::now();

  // Stage all window geometry in the merged frame. The occupancy blocks
  // seam carving; `find_primal` below resolves a carry cell to its staged
  // defect (a primal module cell can legally coincide with dual net cells,
  // so the primal resolution ignores dual defects). Staged segments live
  // in one flat arena — laying out a thousand windows appends to two
  // vectors instead of allocating a Defect per structure.
  std::vector<Segment> sarena;
  std::vector<StagedRec> srecs;
  std::vector<DistillBox> boxes;
  std::vector<ImComponent> components;
  std::vector<std::size_t> defect_base(windows.size(), 0);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const Vec3 delta{off[w], 0, 0};
    const GeomDescription& g = *windows[w].geometry;
    defect_base[w] = srecs.size();
    for (const DefectView d : g.defects()) {
      StagedRec rec;
      rec.first = sarena.size();
      rec.count = d.segments.size();
      rec.type = d.type;
      rec.source_id = d.source_id;
      for (const Segment& s : d.segments) {
        const Segment t{s.a + delta, s.b + delta};
        sarena.push_back(t);
        rec.bb = rec.bb.merged(t.box());
        for_each_cell(t, [&](Vec3 c) { space.occupy(c); });
      }
      srecs.push_back(rec);
    }
    for (const DistillBox& b : g.boxes()) {
      DistillBox t = b;
      t.origin += delta;
      const Box3 e = t.extent();
      for (int x = e.lo.x; x <= e.hi.x; ++x)
        for (int y = e.lo.y; y <= e.hi.y; ++y)
          for (int z = e.lo.z; z <= e.hi.z; ++z) space.occupy({x, y, z});
      boxes.push_back(t);
    }
    for (const ImComponent& c : g.components()) {
      ImComponent t = c;
      t.position += delta;
      if (t.defect_index >= 0)
        t.defect_index += static_cast<int>(defect_base[w]);
      components.push_back(t);
    }
  }
  if constexpr (Space::kGrid) {
    res.grid_build_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  // Resolve a carry cell to the first staged *primal* defect containing it
  // (first in staging order — windows are disjoint along x, so at most one
  // window's defects can match, and within a window the first-declared
  // defect wins, matching the first-wins cell map this scan replaced).
  const auto find_primal = [&](Vec3 c) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < srecs.size(); ++i) {
      const StagedRec& r = srecs[i];
      if (r.type != DefectType::Primal || !r.bb.contains(c)) continue;
      for (std::size_t j = 0; j < r.count; ++j)
        if (sarena[r.first + j].box().contains(c))
          return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };

  // Carve seams serially in (seam, line-rank) order. `comp_cells` keeps
  // every component's cell list at its DSU root (seam paths included),
  // merged small-into-root on unite, so building a carve's pass-through
  // set costs O(|component|) instead of rescanning every staged cell —
  // the difference between seconds and minutes at hundreds of crossings.
  Dsu dsu(srecs.size());
  std::vector<std::pair<std::size_t, std::vector<Segment>>> stitch_segs;
  std::vector<std::vector<Vec3>> comp_cells(srecs.size());
  for (std::size_t d = 0; d < srecs.size(); ++d)
    for (std::size_t j = 0; j < srecs[d].count; ++j)
      for_each_cell(sarena[srecs[d].first + j],
                    [&](Vec3 c) { comp_cells[d].push_back(c); });
  std::vector<Vec3> pass_list;
  for (std::size_t w = 0; w + 1 < windows.size(); ++w) {
    std::unordered_map<int, Vec3> outs;
    for (const auto& [line, cell] : windows[w].carry_out)
      outs.emplace(line, cell + Vec3{off[w], 0, 0});

    std::vector<std::pair<int, Vec3>> ins = windows[w + 1].carry_in;
    std::sort(ins.begin(), ins.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    // Reserve every pin cell of this seam up front: the search goal cell
    // is exempt from the occupancy, so without the reservation an earlier
    // rank's path could run along the pin column and squat on a later
    // rank's pin — two distinct final defects sharing a cell.
    for (std::size_t r = 0; r < ins.size(); ++r)
      space.occupy(
          {off[w + 1] - gap + gap / 2, pin_y, 2 * static_cast<int>(r)});

    std::unordered_set<int> seen_in;
    int rank = 0;
    for (const auto& [line, cell_in] : ins) {
      seen_in.insert(line);
      const auto it = outs.find(line);
      std::ostringstream where;
      where << "seam " << w << "->" << w + 1 << " line " << line;
      if (it == outs.end()) {
        res.issues.push_back(where.str() + ": carried in with no carry-out");
        continue;
      }
      const Vec3 P = it->second;
      const Vec3 Q = cell_in + Vec3{off[w + 1], 0, 0};
      const Vec3 pin{off[w + 1] - gap + gap / 2, pin_y, 2 * rank};
      ++rank;
      const std::ptrdiff_t pi = find_primal(P);
      const std::ptrdiff_t qi = find_primal(Q);
      if (pi < 0 || qi < 0) {
        res.issues.push_back(where.str() +
                             ": carry cell not on a primal defect");
        continue;
      }

      // The seam path may ride the rails of its own endpoint defects'
      // merged components — every such cell (staged segments and already
      // carved seams alike) ends up in the same final defect, which
      // matters when a carry cell sits enclosed by its module's own loop.
      // The components chain across every seam stitched so far, but the
      // search never leaves the widest attempt's region, so only cells
      // inside it are kept (the rest of a chain can be arbitrarily long).
      Box3 max_region{
          {off[w], -1 - max_up, std::min(min_z, pin.z) - 1 - max_up},
          {off[w + 1] + windows[w + 1].geometry->bounding_box().hi.x,
           pin_y + 1 + 2 * max_up, std::max(max_z, pin.z) + 1 + max_up}};
      max_region = max_region.expanded(P).expanded(Q).expanded(pin);
      const std::size_t rp = dsu.find(static_cast<std::size_t>(pi));
      const std::size_t rq = dsu.find(static_cast<std::size_t>(qi));
      pass_list.clear();
      for (const std::size_t r : {rp, rq}) {
        for (const Vec3 c : comp_cells[r])
          if (max_region.contains(c)) pass_list.push_back(c);
        if (rq == rp) break;
      }
      for (const Vec3 c : pass_list) space.pass_insert(c);

      bool carved = false;
      bool q_side_failed = false;
      for (int attempt = 0; attempt < options.max_attempts && !carved;
           ++attempt) {
        // The y floor dips below the windows (they are normalized to
        // y >= 0), so a carry module sealed in by its neighbors at the
        // floor plane can always escape under the structure.
        Box3 region{
            {off[w], -1 - attempt, std::min(min_z, pin.z) - 1 - attempt},
            {off[w + 1] + windows[w + 1].geometry->bounding_box().hi.x,
             pin_y + 1 + 2 * attempt, std::max(max_z, pin.z) + 1 + attempt}};
        region = region.expanded(P).expanded(Q).expanded(pin);

        const std::vector<Vec3> leg1 = seam_path(P, pin, region, space);
        if (leg1.empty()) {
          q_side_failed = false;
          continue;
        }
        std::vector<Vec3> added;
        for (const Vec3 c : leg1)
          if (space.occupy(c)) added.push_back(c);
        const std::vector<Vec3> leg2 = seam_path(pin, Q, region, space);
        if (leg2.empty()) {
          q_side_failed = true;
          for (const Vec3 c : added) space.release(c);
          continue;
        }
        for (const Vec3 c : leg2)
          if (space.occupy(c)) added.push_back(c);

        std::vector<Vec3> path = leg1;
        path.insert(path.end(), leg2.begin() + 1, leg2.end());
        stitch_segs.emplace_back(static_cast<std::size_t>(pi),
                                 path_to_segments(path));
        dsu.unite(static_cast<std::size_t>(pi), static_cast<std::size_t>(qi));
        const std::size_t root = dsu.find(static_cast<std::size_t>(pi));
        for (const std::size_t r : {rp, rq})
          if (r != root) {
            comp_cells[root].insert(comp_cells[root].end(),
                                    comp_cells[r].begin(),
                                    comp_cells[r].end());
            comp_cells[r].clear();
            comp_cells[r].shrink_to_fit();
          }
        comp_cells[root].insert(comp_cells[root].end(), path.begin(),
                                path.end());
        res.seam_cells += static_cast<std::int64_t>(added.size());
        res.interface_pins.push_back(pin);
        ++res.stitches;
        carved = true;
      }
      for (const Vec3 c : pass_list) space.pass_remove(c);
      if (!carved) {
        res.issues.push_back(where.str() + ": seam path blocked after " +
                             std::to_string(options.max_attempts) +
                             " attempts");
        res.blocked.push_back(
            {static_cast<int>(w), line,
             static_cast<int>(q_side_failed ? w + 1 : w)});
      }
    }
    for (const auto& [line, cell] : outs) {
      (void)cell;
      if (!seen_in.count(line)) {
        std::ostringstream os;
        os << "seam " << w << "->" << w + 1 << " line " << line
           << ": carried out with no carry-in";
        res.issues.push_back(os.str());
      }
    }
  }
  if constexpr (Space::kGrid) res.grid_bytes = space.byte_size();

  // Emit merged defects in first-member order so the output is stable.
  std::vector<int> final_of(srecs.size(), -1);
  std::vector<Defect> finals;
  for (std::size_t i = 0; i < srecs.size(); ++i) {
    const std::size_t r = dsu.find(i);
    if (final_of[r] < 0) {
      Defect d;
      d.type = srecs[r].type;
      d.source_id = srecs[r].source_id;
      final_of[r] = static_cast<int>(finals.size());
      finals.push_back(std::move(d));
    }
    final_of[i] = final_of[r];
    auto& out = finals[static_cast<std::size_t>(final_of[i])];
    out.segments.insert(out.segments.end(), sarena.data() + srecs[i].first,
                        sarena.data() + srecs[i].first + srecs[i].count);
  }
  for (auto& [member, segs] : stitch_segs) {
    auto& out = finals[static_cast<std::size_t>(
        final_of[dsu.find(member)])];
    out.segments.insert(out.segments.end(), segs.begin(), segs.end());
  }

  for (const Defect& d : finals) res.geometry.add_defect(d);
  for (const DistillBox& b : boxes) res.geometry.add_box(b);
  for (ImComponent c : components) {
    if (c.defect_index >= 0)
      c.defect_index = final_of[static_cast<std::size_t>(c.defect_index)];
    res.geometry.add_component(c);
  }
  return true;
}

}  // namespace

StitchResult stitch_windows(const std::vector<StitchWindow>& windows,
                            const std::string& name,
                            const StitchOptions& options) {
  StitchResult res;
  res.geometry = GeomDescription(name);
  if (windows.empty()) return res;
  for (const StitchWindow& w : windows)
    TQEC_REQUIRE(w.geometry != nullptr, "stitch: window without geometry");
  if (options.use_grid) {
    GridSpace space;
    if (stitch_impl(windows, options, space, res)) return res;
    // Frame too large for the dense grid: fall back to the reference
    // engine (which declined nothing and left `res` untouched).
  }
  HashSpace space;
  stitch_impl(windows, options, space, res);
  return res;
}

}  // namespace tqec::geom
