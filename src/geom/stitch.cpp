#include "geom/stitch.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace tqec::geom {

namespace {

/// Visit every lattice cell of an axis-aligned segment, a -> b inclusive.
template <typename Fn>
void for_each_cell(const Segment& s, Fn&& fn) {
  TQEC_REQUIRE(s.axis_aligned(), "stitch: non-axis-aligned segment");
  const Vec3 d = s.b - s.a;
  const Vec3 step{(d.x > 0) - (d.x < 0), (d.y > 0) - (d.y < 0),
                  (d.z > 0) - (d.z < 0)};
  for (Vec3 p = s.a;; p += step) {
    fn(p);
    if (p == s.b) break;
  }
}

/// Deterministic A* (unit edge costs, Manhattan heuristic) from `start` to
/// `goal` through cells of `region` not in `blocked` (the endpoints
/// themselves are exempt, as is every cell of `pass` — the carve's own
/// endpoint defects, whose rails the seam path may legally ride since they
/// all merge into one final defect). Returns a shortest cell path
/// start..goal inclusive, or empty when unreachable. Ties on f = g + h
/// break by insertion order and the neighbor order is fixed, so the path
/// is a pure function of the inputs. Goal-directed search matters here:
/// seam regions span two whole windows, and a breadth-first flood visits
/// every free cell of that box per carve (tens of millions of cells across
/// a long circuit's seams) where A* walks essentially straight to the pin.
std::vector<Vec3> seam_path(Vec3 start, Vec3 goal, const Box3& region,
                            const std::unordered_set<Vec3>& blocked,
                            const std::unordered_set<Vec3>& pass) {
  if (start == goal) return {start};
  static constexpr Vec3 kSteps[6] = {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0},
                                     {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
  // Weighted heuristic (W > 1): the path need not be shortest, only legal
  // and deterministic, and the extra goal bias cuts expansions sharply in
  // cluttered regions at the cost of slightly longer seams.
  constexpr int kWeight = 3;
  const auto h = [goal](Vec3 v) {
    return kWeight * (std::abs(v.x - goal.x) + std::abs(v.y - goal.y) +
                      std::abs(v.z - goal.z));
  };
  // (f, insertion order, cell): lazy-deletion open list; `best` holds the
  // settled g and the parent of every reached cell.
  using OpenEntry = std::tuple<int, long, Vec3>;
  std::priority_queue<OpenEntry, std::vector<OpenEntry>,
                      std::greater<OpenEntry>>
      open;
  std::unordered_map<Vec3, std::pair<int, Vec3>> best;
  long order = 0;
  best.emplace(start, std::pair<int, Vec3>{0, start});
  open.emplace(h(start), order++, start);
  while (!open.empty()) {
    const auto [f, tie, p] = open.top();
    open.pop();
    const int gp = best.at(p).first;
    if (f != gp + h(p)) continue;  // stale entry
    if (p == goal) {
      std::vector<Vec3> path;
      for (Vec3 c = goal;; c = best.at(c).second) {
        path.push_back(c);
        if (c == start) break;
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const Vec3 s : kSteps) {
      const Vec3 n = p + s;
      if (!region.contains(n)) continue;
      if (n != goal && blocked.count(n) && !pass.count(n)) continue;
      const int gn = gp + 1;
      const auto it = best.find(n);
      if (it != best.end() && it->second.first <= gn) continue;
      if (it == best.end()) {
        best.emplace(n, std::pair<int, Vec3>{gn, p});
      } else {
        it->second = {gn, p};
      }
      open.emplace(gn + h(n), order++, n);
    }
  }
  return {};
}

/// Collapse a cell path into maximal straight segments.
std::vector<Segment> path_to_segments(const std::vector<Vec3>& path) {
  std::vector<Segment> segments;
  if (path.empty()) return segments;
  Vec3 run_start = path[0];
  Vec3 prev = path[0];
  Vec3 dir{0, 0, 0};
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Vec3 step = path[i] - prev;
    if (dir != Vec3{0, 0, 0} && step != dir) {
      segments.push_back({run_start, prev});
      run_start = prev;
    }
    dir = step;
    prev = path[i];
  }
  segments.push_back({run_start, prev});
  return segments;
}

/// Union-find over staged defect indices; roots stay the smallest member,
/// so merge results are independent of merge order.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

StitchResult stitch_windows(const std::vector<StitchWindow>& windows,
                            const std::string& name,
                            const StitchOptions& options) {
  StitchResult res;
  res.geometry = GeomDescription(name);
  if (windows.empty()) return res;

  const int gap = std::max(1, options.seam_gap);

  // Window layout along +x and global extents for the pin plane.
  std::vector<int> off(windows.size(), 0);
  int cursor = 0;
  int max_y = 0, min_z = 0, max_z = 0;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const Box3 bb = windows[w].geometry.bounding_box();
    off[w] = cursor - std::min(0, bb.lo.x);
    cursor = off[w] + (bb.empty() ? 1 : bb.hi.x + 1) + gap;
    if (!bb.empty()) {
      max_y = std::max(max_y, bb.hi.y);
      min_z = std::min(min_z, bb.lo.z);
      max_z = std::max(max_z, bb.hi.z);
    }
  }
  res.window_offsets = off;
  const int pin_y = max_y + 1;

  // Stage all window geometry in the merged frame. `occupied` blocks seam
  // carving; `primal_at` resolves a carry cell to its staged defect (a
  // primal module cell can legally coincide with dual net cells, so the
  // primal index is tracked separately).
  std::vector<Defect> staged;
  std::vector<DistillBox> boxes;
  std::vector<ImComponent> components;
  std::unordered_set<Vec3> occupied;
  std::unordered_map<Vec3, std::size_t> primal_at;
  std::vector<std::size_t> defect_base(windows.size(), 0);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const Vec3 delta{off[w], 0, 0};
    defect_base[w] = staged.size();
    for (const Defect& d : windows[w].geometry.defects()) {
      Defect t = d;
      for (Segment& s : t.segments) {
        s.a += delta;
        s.b += delta;
      }
      const std::size_t idx = staged.size();
      for (const Segment& s : t.segments)
        for_each_cell(s, [&](Vec3 c) {
          occupied.insert(c);
          if (t.type == DefectType::Primal) primal_at.emplace(c, idx);
        });
      staged.push_back(std::move(t));
    }
    for (const DistillBox& b : windows[w].geometry.boxes()) {
      DistillBox t = b;
      t.origin += delta;
      const Box3 e = t.extent();
      for (int x = e.lo.x; x <= e.hi.x; ++x)
        for (int y = e.lo.y; y <= e.hi.y; ++y)
          for (int z = e.lo.z; z <= e.hi.z; ++z)
            occupied.insert({x, y, z});
      boxes.push_back(t);
    }
    for (const ImComponent& c : windows[w].geometry.components()) {
      ImComponent t = c;
      t.position += delta;
      if (t.defect_index >= 0)
        t.defect_index += static_cast<int>(defect_base[w]);
      components.push_back(t);
    }
  }

  // Carve seams serially in (seam, line-rank) order. `comp_cells` keeps
  // every component's cell list at its DSU root (seam paths included),
  // merged small-into-root on unite, so building a carve's pass-through
  // set costs O(|component|) instead of rescanning every staged cell —
  // the difference between seconds and minutes at hundreds of crossings.
  Dsu dsu(staged.size());
  std::vector<std::pair<std::size_t, std::vector<Segment>>> stitch_segs;
  std::vector<std::vector<Vec3>> comp_cells(staged.size());
  for (std::size_t d = 0; d < staged.size(); ++d)
    for (const Segment& s : staged[d].segments)
      for_each_cell(s, [&](Vec3 c) { comp_cells[d].push_back(c); });
  for (std::size_t w = 0; w + 1 < windows.size(); ++w) {
    std::unordered_map<int, Vec3> outs;
    for (const auto& [line, cell] : windows[w].carry_out)
      outs.emplace(line, cell + Vec3{off[w], 0, 0});

    std::vector<std::pair<int, Vec3>> ins = windows[w + 1].carry_in;
    std::sort(ins.begin(), ins.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    // Reserve every pin cell of this seam up front: the BFS goal cell is
    // exempt from the blocked set, so without the reservation an earlier
    // rank's path could run along the pin column and squat on a later
    // rank's pin — two distinct final defects sharing a cell.
    for (std::size_t r = 0; r < ins.size(); ++r)
      occupied.insert(
          {off[w + 1] - gap + gap / 2, pin_y, 2 * static_cast<int>(r)});

    std::unordered_set<int> seen_in;
    int rank = 0;
    for (const auto& [line, cell_in] : ins) {
      seen_in.insert(line);
      const auto it = outs.find(line);
      std::ostringstream where;
      where << "seam " << w << "->" << w + 1 << " line " << line;
      if (it == outs.end()) {
        res.issues.push_back(where.str() + ": carried in with no carry-out");
        continue;
      }
      const Vec3 P = it->second;
      const Vec3 Q = cell_in + Vec3{off[w + 1], 0, 0};
      const Vec3 pin{off[w + 1] - gap + gap / 2, pin_y, 2 * rank};
      ++rank;
      const auto pit = primal_at.find(P);
      const auto qit = primal_at.find(Q);
      if (pit == primal_at.end() || qit == primal_at.end()) {
        res.issues.push_back(where.str() +
                             ": carry cell not on a primal defect");
        continue;
      }

      // The seam path may ride the rails of its own endpoint defects'
      // merged components — every such cell (staged segments and already
      // carved seams alike) ends up in the same final defect, which
      // matters when a carry cell sits enclosed by its module's own loop.
      // The components chain across every seam stitched so far, but the
      // search never leaves the widest attempt's region, so only cells
      // inside it are kept (the rest of a chain can be arbitrarily long).
      const int max_up = options.max_attempts - 1;
      Box3 max_region{
          {off[w], -1 - max_up, std::min(min_z, pin.z) - 1 - max_up},
          {off[w + 1] + windows[w + 1].geometry.bounding_box().hi.x,
           pin_y + 1 + 2 * max_up, std::max(max_z, pin.z) + 1 + max_up}};
      max_region = max_region.expanded(P).expanded(Q).expanded(pin);
      const std::size_t rp = dsu.find(pit->second);
      const std::size_t rq = dsu.find(qit->second);
      std::unordered_set<Vec3> pass;
      for (const std::size_t r : {rp, rq}) {
        for (const Vec3 c : comp_cells[r])
          if (max_region.contains(c)) pass.insert(c);
        if (rq == rp) break;
      }

      bool carved = false;
      bool q_side_failed = false;
      for (int attempt = 0; attempt < options.max_attempts && !carved;
           ++attempt) {
        // The y floor dips below the windows (they are normalized to
        // y >= 0), so a carry module sealed in by its neighbors at the
        // floor plane can always escape under the structure.
        Box3 region{
            {off[w], -1 - attempt, std::min(min_z, pin.z) - 1 - attempt},
            {off[w + 1] + windows[w + 1].geometry.bounding_box().hi.x,
             pin_y + 1 + 2 * attempt, std::max(max_z, pin.z) + 1 + attempt}};
        region = region.expanded(P).expanded(Q).expanded(pin);

        const std::vector<Vec3> leg1 =
            seam_path(P, pin, region, occupied, pass);
        if (leg1.empty()) {
          q_side_failed = false;
          continue;
        }
        std::vector<Vec3> added;
        for (const Vec3 c : leg1)
          if (occupied.insert(c).second) added.push_back(c);
        const std::vector<Vec3> leg2 =
            seam_path(pin, Q, region, occupied, pass);
        if (leg2.empty()) {
          q_side_failed = true;
          for (const Vec3 c : added) occupied.erase(c);
          continue;
        }
        for (const Vec3 c : leg2)
          if (occupied.insert(c).second) added.push_back(c);

        std::vector<Vec3> path = leg1;
        path.insert(path.end(), leg2.begin() + 1, leg2.end());
        stitch_segs.emplace_back(pit->second, path_to_segments(path));
        dsu.unite(pit->second, qit->second);
        const std::size_t root = dsu.find(pit->second);
        for (const std::size_t r : {rp, rq})
          if (r != root) {
            comp_cells[root].insert(comp_cells[root].end(),
                                    comp_cells[r].begin(),
                                    comp_cells[r].end());
            comp_cells[r].clear();
            comp_cells[r].shrink_to_fit();
          }
        comp_cells[root].insert(comp_cells[root].end(), path.begin(),
                                path.end());
        res.seam_cells += static_cast<std::int64_t>(added.size());
        res.interface_pins.push_back(pin);
        ++res.stitches;
        carved = true;
      }
      if (!carved) {
        res.issues.push_back(where.str() + ": seam path blocked after " +
                             std::to_string(options.max_attempts) +
                             " attempts");
        res.blocked.push_back(
            {static_cast<int>(w), line,
             static_cast<int>(q_side_failed ? w + 1 : w)});
      }
    }
    for (const auto& [line, cell] : outs) {
      (void)cell;
      if (!seen_in.count(line)) {
        std::ostringstream os;
        os << "seam " << w << "->" << w + 1 << " line " << line
           << ": carried out with no carry-in";
        res.issues.push_back(os.str());
      }
    }
  }

  // Emit merged defects in first-member order so the output is stable.
  std::vector<int> final_of(staged.size(), -1);
  std::vector<Defect> finals;
  for (std::size_t i = 0; i < staged.size(); ++i) {
    const std::size_t r = dsu.find(i);
    if (final_of[r] < 0) {
      Defect d;
      d.type = staged[r].type;
      d.source_id = staged[r].source_id;
      final_of[r] = static_cast<int>(finals.size());
      finals.push_back(std::move(d));
    }
    final_of[i] = final_of[r];
    auto& out = finals[static_cast<std::size_t>(final_of[i])];
    out.segments.insert(out.segments.end(), staged[i].segments.begin(),
                        staged[i].segments.end());
  }
  for (auto& [member, segs] : stitch_segs) {
    auto& out = finals[static_cast<std::size_t>(
        final_of[dsu.find(member)])];
    out.segments.insert(out.segments.end(), segs.begin(), segs.end());
  }

  for (Defect& d : finals) res.geometry.add_defect(std::move(d));
  for (const DistillBox& b : boxes) res.geometry.add_box(b);
  for (ImComponent c : components) {
    if (c.defect_index >= 0)
      c.defect_index = final_of[static_cast<std::size_t>(c.defect_index)];
    res.geometry.add_component(c);
  }
  return res;
}

}  // namespace tqec::geom
