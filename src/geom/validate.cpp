#include "geom/validate.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/union_find.h"

namespace tqec::geom {

namespace {

/// Enumerate the cells of a segment.
template <typename Fn>
void for_each_cell(const Segment& s, Fn&& fn) {
  Vec3 step{0, 0, 0};
  const Vec3 d = s.b - s.a;
  if (d.x != 0) step = {d.x > 0 ? 1 : -1, 0, 0};
  else if (d.y != 0) step = {0, d.y > 0 ? 1 : -1, 0};
  else if (d.z != 0) step = {0, 0, d.z > 0 ? 1 : -1};
  Vec3 p = s.a;
  for (;;) {
    fn(p);
    if (p == s.b) break;
    p += step;
  }
}

bool boxes_touch_or_overlap(const Box3& a, const Box3& b) {
  return a.inflated(1).intersects(b);
}

}  // namespace

std::string ValidationReport::summary() const {
  if (ok()) return "valid";
  std::ostringstream os;
  os << issues.size() << " issue(s):";
  for (const auto& issue : issues)
    os << "\n  [" << issue.rule << "] " << issue.detail;
  return os.str();
}

ValidationReport validate(const GeomDescription& g) {
  ValidationReport report;
  auto fail = [&](const char* rule, const std::string& detail) {
    report.issues.push_back({rule, detail});
  };

  // V1 + V2: per-defect checks.
  for (std::size_t i = 0; i < g.defects().size(); ++i) {
    const Defect& d = g.defects()[i];
    if (d.segments.empty()) {
      fail("V2", "defect " + std::to_string(i) + " has no segments");
      continue;
    }
    bool aligned = true;
    for (const Segment& s : d.segments) {
      if (!s.axis_aligned()) {
        aligned = false;
        std::ostringstream os;
        os << "defect " << i << " segment " << s.a << "->" << s.b
           << " not axis-aligned";
        fail("V1", os.str());
      }
    }
    if (!aligned) continue;
    // Connectivity: segments whose boxes touch (Chebyshev gap 0) or overlap
    // belong to the same connected structure.
    UnionFind uf(d.segments.size());
    for (std::size_t a = 0; a < d.segments.size(); ++a)
      for (std::size_t b = a + 1; b < d.segments.size(); ++b)
        if (boxes_touch_or_overlap(d.segments[a].box(), d.segments[b].box()))
          uf.unite(a, b);
    if (uf.component_count() != 1)
      fail("V2", "defect " + std::to_string(i) + " is disconnected (" +
                     std::to_string(uf.component_count()) + " pieces)");
  }

  // V3: same-type cell-sharing across distinct defects. Exception: two
  // dual defects may share a cell that also hosts a primal defect — that
  // cell is a primal module loop, which is spatially extended and offers
  // one crossing slot per threading net (see route/router.h).
  std::unordered_map<Vec3, int> primal_cells;
  std::unordered_map<Vec3, int> dual_cells;
  for (std::size_t i = 0; i < g.defects().size(); ++i) {
    const Defect& d = g.defects()[i];
    if (d.type != DefectType::Primal) continue;
    for (const Segment& s : d.segments) {
      for_each_cell(s, [&](Vec3 p) {
        const auto [it, inserted] = primal_cells.emplace(p, static_cast<int>(i));
        if (!inserted && it->second != static_cast<int>(i)) {
          std::ostringstream os;
          os << "primal defects " << it->second << " and " << i
             << " share cell " << p;
          fail("V3", os.str());
          it->second = static_cast<int>(i);  // report each pair once
        }
      });
    }
  }
  // A dual-dual shared cell is legal on a primal module loop itself or in
  // its port region (the face-adjacent cells): the loop is spatially
  // extended and guides each threading net through its own sub-cell slot.
  auto in_port_region = [&](Vec3 p) {
    if (primal_cells.find(p) != primal_cells.end()) return true;
    for (const Vec3 step : {Vec3{1, 0, 0}, Vec3{-1, 0, 0}, Vec3{0, 1, 0},
                            Vec3{0, -1, 0}, Vec3{0, 0, 1}, Vec3{0, 0, -1}})
      if (primal_cells.find(p + step) != primal_cells.end()) return true;
    return false;
  };
  for (std::size_t i = 0; i < g.defects().size(); ++i) {
    const Defect& d = g.defects()[i];
    if (d.type != DefectType::Dual) continue;
    for (const Segment& s : d.segments) {
      for_each_cell(s, [&](Vec3 p) {
        const auto [it, inserted] = dual_cells.emplace(p, static_cast<int>(i));
        if (!inserted && it->second != static_cast<int>(i) &&
            !in_port_region(p)) {
          std::ostringstream os;
          os << "dual defects " << it->second << " and " << i
             << " share cell " << p;
          fail("V3", os.str());
        }
        it->second = static_cast<int>(i);
      });
    }
  }

  // V4: box overlap.
  for (std::size_t a = 0; a < g.boxes().size(); ++a) {
    for (std::size_t b = a + 1; b < g.boxes().size(); ++b) {
      if (g.boxes()[a].extent().intersects(g.boxes()[b].extent())) {
        std::ostringstream os;
        os << "boxes " << a << " and " << b << " overlap";
        fail("V4", os.str());
      }
    }
  }

  // V5: defect cells inside box interiors (the cell adjacent to the box
  // face where the injected state exits is outside the extent, so plain
  // containment is the right test).
  for (std::size_t i = 0; i < g.defects().size(); ++i) {
    for (const Segment& s : g.defects()[i].segments) {
      for (std::size_t b = 0; b < g.boxes().size(); ++b) {
        if (g.boxes()[b].extent().intersects(s.box())) {
          std::ostringstream os;
          os << "defect " << i << " enters box " << b;
          fail("V5", os.str());
        }
      }
    }
  }

  return report;
}

void validate_or_throw(const GeomDescription& g) {
  const ValidationReport report = validate(g);
  if (!report.ok())
    throw TqecError("invalid geometric description: " + report.summary());
}

}  // namespace tqec::geom
