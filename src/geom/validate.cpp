#include "geom/validate.h"

#include <chrono>
#include <sstream>
#include <unordered_map>

#include "common/union_find.h"
#include "geom/cell_grid.h"

namespace tqec::geom {

namespace {

/// Enumerate the cells of a segment.
template <typename Fn>
void for_each_cell(const Segment& s, Fn&& fn) {
  Vec3 step{0, 0, 0};
  const Vec3 d = s.b - s.a;
  if (d.x != 0) step = {d.x > 0 ? 1 : -1, 0, 0};
  else if (d.y != 0) step = {0, d.y > 0 ? 1 : -1, 0};
  else if (d.z != 0) step = {0, 0, d.z > 0 ? 1 : -1};
  Vec3 p = s.a;
  for (;;) {
    fn(p);
    if (p == s.b) break;
    p += step;
  }
}

bool boxes_touch_or_overlap(const Box3& a, const Box3& b) {
  return a.inflated(1).intersects(b);
}

/// True when `p` lies on one of the first `upto` segments of `d` — i.e.
/// the collision is the defect overlapping *itself* (shared corner cells
/// of adjacent segments), which is legal and common (canonical rails,
/// stitched seams).
bool cell_on_earlier_segment(const DefectView& d, std::size_t upto, Vec3 p) {
  for (std::size_t j = 0; j < upto; ++j)
    if (d.segments[j].box().contains(p)) return true;
  return false;
}

/// Reference V3 for one sublattice: the original hash-map pass. Emits the
/// exact issue text/order the pre-grid validator produced; also fills
/// `cells` (cell -> owning defect) for the dual pass's port-region test.
template <typename PortExempt, typename Fail>
void v3_reference_pass(const GeomDescription& g, DefectType type,
                       std::unordered_map<Vec3, int>& cells,
                       PortExempt&& exempt, Fail&& fail) {
  const bool primal = type == DefectType::Primal;
  for (std::size_t i = 0; i < g.defects().size(); ++i) {
    const DefectView d = g.defect(i);
    if (d.type != type) continue;
    for (const Segment& s : d.segments) {
      for_each_cell(s, [&](Vec3 p) {
        const auto [it, inserted] = cells.emplace(p, static_cast<int>(i));
        if (primal) {
          if (!inserted && it->second != static_cast<int>(i)) {
            std::ostringstream os;
            os << "primal defects " << it->second << " and " << i
               << " share cell " << p;
            fail("V3", os.str());
            it->second = static_cast<int>(i);  // report each pair once
          }
        } else {
          if (!inserted && it->second != static_cast<int>(i) && !exempt(p)) {
            std::ostringstream os;
            os << "dual defects " << it->second << " and " << i
               << " share cell " << p;
            fail("V3", os.str());
          }
          it->second = static_cast<int>(i);
        }
      });
    }
  }
}

/// Grid V3 for one sublattice: rasterize every defect into `occ`'s plane,
/// inspecting collisions. A collision against an *earlier segment of the
/// same defect* is legal self-overlap; anything else is a cross-defect
/// conflict (for duals, unless port-exempt). Returns true when a conflict
/// was found — the caller then re-runs the reference pass for identical
/// issue output. Legal geometries complete without hashing a single cell.
template <typename PortExempt>
bool v3_grid_pass(const GeomDescription& g, DefectType type,
                  OccupancyGrid& occ, std::vector<Vec3>& collisions,
                  PortExempt&& exempt) {
  const int plane = plane_of(type);
  bool conflict = false;
  for (std::size_t i = 0; i < g.defects().size() && !conflict; ++i) {
    const DefectView d = g.defect(i);
    if (d.type != type) continue;
    for (std::size_t j = 0; j < d.segments.size() && !conflict; ++j) {
      collisions.clear();
      occ.set_segment(plane, d.segments[j], &collisions);
      for (const Vec3 p : collisions) {
        if (cell_on_earlier_segment(d, j, p)) continue;
        if (type == DefectType::Dual && exempt(p)) continue;
        conflict = true;
        break;
      }
    }
  }
  return conflict;
}

}  // namespace

std::string ValidationReport::summary() const {
  if (ok()) return "valid";
  std::ostringstream os;
  os << issues.size() << " issue(s):";
  for (const auto& issue : issues)
    os << "\n  [" << issue.rule << "] " << issue.detail;
  return os.str();
}

ValidationReport validate(const GeomDescription& g,
                          const ValidateOptions& options) {
  ValidationReport report;
  const auto fail = [&](const char* rule, const std::string& detail) {
    report.issues.push_back({rule, detail});
  };

  // V1 + V2: per-defect checks.
  for (std::size_t i = 0; i < g.defects().size(); ++i) {
    const DefectView d = g.defect(i);
    if (d.segments.empty()) {
      fail("V2", "defect " + std::to_string(i) + " has no segments");
      continue;
    }
    bool aligned = true;
    for (const Segment& s : d.segments) {
      if (!s.axis_aligned()) {
        aligned = false;
        std::ostringstream os;
        os << "defect " << i << " segment " << s.a << "->" << s.b
           << " not axis-aligned";
        fail("V1", os.str());
      }
    }
    if (!aligned) continue;
    // Connectivity: segments whose boxes touch (Chebyshev gap 0) or overlap
    // belong to the same connected structure.
    UnionFind uf(d.segments.size());
    for (std::size_t a = 0; a < d.segments.size(); ++a)
      for (std::size_t b = a + 1; b < d.segments.size(); ++b)
        if (boxes_touch_or_overlap(d.segments[a].box(), d.segments[b].box()))
          uf.unite(a, b);
    if (uf.component_count() != 1)
      fail("V2", "defect " + std::to_string(i) + " is disconnected (" +
                     std::to_string(uf.component_count()) + " pieces)");
  }

  // V3: same-type cell-sharing across distinct defects. Exception: two
  // dual defects may share a cell that also hosts a primal defect — that
  // cell is a primal module loop, which is spatially extended and offers
  // one crossing slot per threading net (see route/router.h).
  if (options.use_grid) {
    const auto t0 = std::chrono::steady_clock::now();
    Box3 bb;
    for (const DefectView d : g.defects()) bb = bb.merged(d.bounding_box());
    OccupancyGrid occ(bb, 2);
    std::vector<Vec3> collisions;
    const auto no_exempt = [](Vec3) { return false; };
    const bool primal_conflict =
        v3_grid_pass(g, DefectType::Primal, occ, collisions, no_exempt);
    // A dual-dual shared cell is legal on a primal module loop itself or
    // in its port region (the face-adjacent cells).
    const auto grid_exempt = [&](Vec3 p) {
      if (occ.test(kPrimalPlane, p)) return true;
      for (const Vec3 step : {Vec3{1, 0, 0}, Vec3{-1, 0, 0}, Vec3{0, 1, 0},
                              Vec3{0, -1, 0}, Vec3{0, 0, 1}, Vec3{0, 0, -1}})
        if (occ.test(kPrimalPlane, p + step)) return true;
      return false;
    };
    const bool dual_conflict =
        !primal_conflict &&
        v3_grid_pass(g, DefectType::Dual, occ, collisions, grid_exempt);
    report.grid_build_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    report.grid_bytes = occ.byte_size();
    if (primal_conflict || dual_conflict) {
      // Conflict found: re-run the reference engine for both sublattices
      // so issue text and order match it byte-for-byte (the primal map
      // also feeds the dual pass's port-region test).
      std::unordered_map<Vec3, int> primal_cells;
      std::unordered_map<Vec3, int> dual_cells;
      v3_reference_pass(g, DefectType::Primal, primal_cells,
                        [](Vec3) { return false; }, fail);
      const auto map_exempt = [&](Vec3 p) {
        if (primal_cells.find(p) != primal_cells.end()) return true;
        for (const Vec3 step :
             {Vec3{1, 0, 0}, Vec3{-1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, -1, 0},
              Vec3{0, 0, 1}, Vec3{0, 0, -1}})
          if (primal_cells.find(p + step) != primal_cells.end()) return true;
        return false;
      };
      v3_reference_pass(g, DefectType::Dual, dual_cells, map_exempt, fail);
    }
  } else {
    std::unordered_map<Vec3, int> primal_cells;
    std::unordered_map<Vec3, int> dual_cells;
    v3_reference_pass(g, DefectType::Primal, primal_cells,
                      [](Vec3) { return false; }, fail);
    const auto map_exempt = [&](Vec3 p) {
      if (primal_cells.find(p) != primal_cells.end()) return true;
      for (const Vec3 step :
           {Vec3{1, 0, 0}, Vec3{-1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, -1, 0},
            Vec3{0, 0, 1}, Vec3{0, 0, -1}})
        if (primal_cells.find(p + step) != primal_cells.end()) return true;
      return false;
    };
    v3_reference_pass(g, DefectType::Dual, dual_cells, map_exempt, fail);
  }

  // V4: box overlap.
  for (std::size_t a = 0; a < g.boxes().size(); ++a) {
    for (std::size_t b = a + 1; b < g.boxes().size(); ++b) {
      if (g.boxes()[a].extent().intersects(g.boxes()[b].extent())) {
        std::ostringstream os;
        os << "boxes " << a << " and " << b << " overlap";
        fail("V4", os.str());
      }
    }
  }

  // V5: defect cells inside box interiors (the cell adjacent to the box
  // face where the injected state exits is outside the extent, so plain
  // containment is the right test).
  for (std::size_t i = 0; i < g.defects().size(); ++i) {
    for (const Segment& s : g.defect(i).segments) {
      for (std::size_t b = 0; b < g.boxes().size(); ++b) {
        if (g.boxes()[b].extent().intersects(s.box())) {
          std::ostringstream os;
          os << "defect " << i << " enters box " << b;
          fail("V5", os.str());
        }
      }
    }
  }

  return report;
}

void validate_or_throw(const GeomDescription& g) {
  const ValidationReport report = validate(g);
  if (!report.ok())
    throw TqecError("invalid geometric description: " + report.summary());
}

}  // namespace tqec::geom
