// 3D geometric descriptions of TQEC circuits (paper Sec. 2.1).
//
// A geometric description is the 3D visual representation of a braided TQEC
// computation: primal and dual defects (chains of axis-aligned cuboid
// segments) moving through the code surface along the time axis, plus the
// qubit initialization/measurement components and the |Y> / |A> state
// distillation boxes.
//
// Coordinate convention ("plumbing-piece" units, calibrated to the paper's
// published volumes — see DESIGN.md): one lattice cell is one unit; the
// required one-unit separation between disjoint defects is part of the cell
// pitch, so disjoint same-type defects must simply occupy distinct cells.
// Primal and dual structures live on half-offset sublattices, so a primal
// and a dual element may legally share a cell. The space-time volume of a
// description is #x * #y * #z of its bounding box, and distillation boxes
// either fall inside the bounding box (after placement) or are accounted
// additively (canonical forms, matching the paper's Table 2 note).
//
// Storage layout: a description owns one pooled segment arena (SoA-style:
// all segments contiguous, in defect order) and per-defect records holding
// {first, count, type, source_id} index ranges into it. Defects are read
// through lightweight `DefectView`s (a span over the arena), so iterating
// every segment of every defect is one linear scan of one allocation, and
// copying/translating/absorbing descriptions moves flat arrays instead of
// a vector-of-vectors. `Defect` remains as the builder type callers fill
// and hand to `add_defect`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/vec3.h"

namespace tqec::geom {

enum class DefectType : std::uint8_t { Primal, Dual };

inline const char* defect_type_name(DefectType t) {
  return t == DefectType::Primal ? "primal" : "dual";
}

/// One axis-aligned run of defect cells from a to b inclusive.
/// a == b encodes a single-cell segment.
struct Segment {
  Vec3 a;
  Vec3 b;

  /// True when the endpoints differ in at most one coordinate.
  bool axis_aligned() const {
    const Vec3 d = b - a;
    return (d.x == 0 && d.y == 0) || (d.x == 0 && d.z == 0) ||
           (d.y == 0 && d.z == 0);
  }

  Box3 box() const { return Box3::spanning(a, b); }
  int length() const { return manhattan(a, b) + 1; }  // cell count

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Builder for one connected primal or dual structure; `add_defect` moves
/// its segments into the description's arena.
struct Defect {
  DefectType type = DefectType::Primal;
  std::vector<Segment> segments;
  /// Back-reference into the PD graph (module id for primal structures,
  /// net id for dual structures); -1 when not applicable.
  int source_id = -1;

  Box3 bounding_box() const {
    Box3 box;
    for (const Segment& s : segments) box = box.merged(s.box());
    return box;
  }

  /// Total segment length in cells. Double-counts cells where segments
  /// overlap — canonical rails/rings and stitched seams intentionally
  /// share corner cells between adjacent segments — so this is an upper
  /// bound; see GeomDescription::exact_cell_count() for the exact count.
  std::int64_t cell_count() const {
    std::int64_t n = 0;
    for (const Segment& s : segments) n += s.length();
    return n;
  }
};

/// Read-only view of one defect stored in a description's segment arena.
/// Cheap to copy (a span plus two scalars); never outlives mutation of
/// the owning GeomDescription.
struct DefectView {
  DefectType type = DefectType::Primal;
  int source_id = -1;
  std::span<const Segment> segments;

  Box3 bounding_box() const {
    Box3 box;
    for (const Segment& s : segments) box = box.merged(s.box());
    return box;
  }

  /// Sum of segment lengths (upper bound; see Defect::cell_count).
  std::int64_t cell_count() const {
    std::int64_t n = 0;
    for (const Segment& s : segments) n += s.length();
    return n;
  }
};

/// Kinds of distillation boxes (paper Sec. 2.1; sizes from Fowler-Devitt).
enum class BoxKind : std::uint8_t { YBox, ABox };

/// |Y> distillation box: 3 x 3 x 2 = 18 units.
constexpr Vec3 kYBoxDims{3, 3, 2};
/// |A> distillation box: 16 x 6 x 2 = 192 units.
constexpr Vec3 kABoxDims{16, 6, 2};

constexpr Vec3 box_dims(BoxKind kind) {
  return kind == BoxKind::YBox ? kYBoxDims : kABoxDims;
}
constexpr std::int64_t box_volume(BoxKind kind) {
  const Vec3 d = box_dims(kind);
  return std::int64_t{d.x} * d.y * d.z;
}

struct DistillBox {
  BoxKind kind = BoxKind::YBox;
  Vec3 origin;  // minimum corner
  /// ICM line fed by this box (-1 if unbound).
  int line = -1;

  Box3 extent() const { return Box3{origin, origin + box_dims(kind) - Vec3{1, 1, 1}}; }
};

/// Qubit I/M and injection components attached to defect ends (Fig. 2).
enum class ComponentKind : std::uint8_t {
  InitZ,     // Z-basis initialization of a primal defect pair
  InitX,     // X-basis initialization
  MeasZ,     // Z-basis measurement
  MeasX,     // X-basis measurement
  InjectY,   // |Y> state injection point
  InjectA,   // |A> state injection point
};

struct ImComponent {
  ComponentKind kind = ComponentKind::InitZ;
  Vec3 position;
  int defect_index = -1;  // defect this component terminates
};

class GeomDescription {
 public:
  /// Random-access range of DefectViews over the arena (see defects()).
  class DefectList {
   public:
    class iterator {
     public:
      using value_type = DefectView;
      using difference_type = std::ptrdiff_t;

      iterator() = default;
      iterator(const GeomDescription* g, std::size_t i) : g_(g), i_(i) {}
      DefectView operator*() const { return g_->defect(i_); }
      iterator& operator++() { ++i_; return *this; }
      iterator operator++(int) { iterator t = *this; ++i_; return t; }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.i_ == b.i_;
      }

     private:
      const GeomDescription* g_ = nullptr;
      std::size_t i_ = 0;
    };

    explicit DefectList(const GeomDescription* g) : g_(g) {}
    std::size_t size() const { return g_->defect_count(); }
    bool empty() const { return size() == 0; }
    DefectView operator[](std::size_t i) const { return g_->defect(i); }
    iterator begin() const { return {g_, 0}; }
    iterator end() const { return {g_, size()}; }

   private:
    const GeomDescription* g_;
  };

  GeomDescription() = default;
  explicit GeomDescription(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  DefectList defects() const { return DefectList(this); }
  std::size_t defect_count() const { return recs_.size(); }
  DefectView defect(std::size_t i) const {
    const DefectRec& r = recs_[i];
    return {r.type, r.source_id,
            std::span<const Segment>(arena_.data() + r.first, r.count)};
  }

  const std::vector<DistillBox>& boxes() const { return boxes_; }
  const std::vector<ImComponent>& components() const { return components_; }

  /// Append a defect (builder form); returns its index.
  int add_defect(const Defect& defect) {
    return add_defect(defect.type, defect.source_id, defect.segments);
  }
  /// Append a defect directly from a segment range; returns its index.
  int add_defect(DefectType type, int source_id,
                 std::span<const Segment> segments);

  /// Streaming construction (checkpoint reads): open a defect, then append
  /// its segments one at a time. The defect closes when the next one opens
  /// or any other mutation happens; no explicit end call is needed.
  int begin_defect(DefectType type, int source_id);
  void append_segment(const Segment& s);

  int add_box(DistillBox box);
  void add_component(ImComponent component);

  /// Bounding box over all defect cells and all box extents.
  Box3 bounding_box() const;

  /// Space-time volume of the bounding box (#x * #y * #z).
  std::int64_t volume() const { return bounding_box().volume(); }

  /// Canonical-form volume accounting (paper Table 2 note): core bounding
  /// box volume plus the sum of distillation-box volumes, for descriptions
  /// whose boxes are not placed inside the core region.
  std::int64_t additive_volume() const;

  /// Translate all geometry by `delta`.
  void translate(Vec3 delta);

  /// Merge another description into this one (defect/box indices shift).
  void absorb(GeomDescription other);

  /// Sum of per-defect cell_count()s: fast, but an *upper bound* (segments
  /// may overlap at shared corners; canonical builders and the stitcher do
  /// this on purpose).
  std::int64_t defect_cell_count() const;

  /// Exact number of occupied (cell, sublattice) sites, from the occupancy
  /// grid's population count. A cell hosting both a primal and a dual
  /// structure counts once per sublattice.
  std::int64_t exact_cell_count() const;

  /// Total segments across all defects (the arena length).
  std::size_t segment_count() const { return arena_.size(); }
  /// Heap bytes held by the segment arena and defect records.
  std::int64_t arena_bytes() const {
    return static_cast<std::int64_t>(arena_.capacity() * sizeof(Segment) +
                                     recs_.capacity() * sizeof(DefectRec));
  }

 private:
  struct DefectRec {
    std::uint32_t first = 0;  // index of the defect's first arena segment
    std::uint32_t count = 0;
    DefectType type = DefectType::Primal;
    int source_id = -1;
  };

  std::string name_;
  std::vector<Segment> arena_;   // all segments, in defect order
  std::vector<DefectRec> recs_;  // index ranges into arena_
  std::vector<DistillBox> boxes_;
  std::vector<ImComponent> components_;
};

/// Human-readable multi-line dump (examples, debugging).
std::string describe(const GeomDescription& g);

/// JSON export for external visualization tooling.
std::string to_json(const GeomDescription& g);

}  // namespace tqec::geom
