// 3D geometric descriptions of TQEC circuits (paper Sec. 2.1).
//
// A geometric description is the 3D visual representation of a braided TQEC
// computation: primal and dual defects (chains of axis-aligned cuboid
// segments) moving through the code surface along the time axis, plus the
// qubit initialization/measurement components and the |Y> / |A> state
// distillation boxes.
//
// Coordinate convention ("plumbing-piece" units, calibrated to the paper's
// published volumes — see DESIGN.md): one lattice cell is one unit; the
// required one-unit separation between disjoint defects is part of the cell
// pitch, so disjoint same-type defects must simply occupy distinct cells.
// Primal and dual structures live on half-offset sublattices, so a primal
// and a dual element may legally share a cell. The space-time volume of a
// description is #x * #y * #z of its bounding box, and distillation boxes
// either fall inside the bounding box (after placement) or are accounted
// additively (canonical forms, matching the paper's Table 2 note).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/vec3.h"

namespace tqec::geom {

enum class DefectType : std::uint8_t { Primal, Dual };

inline const char* defect_type_name(DefectType t) {
  return t == DefectType::Primal ? "primal" : "dual";
}

/// One axis-aligned run of defect cells from a to b inclusive.
/// a == b encodes a single-cell segment.
struct Segment {
  Vec3 a;
  Vec3 b;

  /// True when the endpoints differ in at most one coordinate.
  bool axis_aligned() const {
    const Vec3 d = b - a;
    return (d.x == 0 && d.y == 0) || (d.x == 0 && d.z == 0) ||
           (d.y == 0 && d.z == 0);
  }

  Box3 box() const { return Box3::spanning(a, b); }
  int length() const { return manhattan(a, b) + 1; }  // cell count

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// A defect: one connected primal or dual structure.
struct Defect {
  DefectType type = DefectType::Primal;
  std::vector<Segment> segments;
  /// Back-reference into the PD graph (module id for primal structures,
  /// net id for dual structures); -1 when not applicable.
  int source_id = -1;

  Box3 bounding_box() const {
    Box3 box;
    for (const Segment& s : segments) box = box.merged(s.box());
    return box;
  }

  /// Total number of defect cells (double-counts shared corner cells of
  /// adjacent segments only if segments overlap; builders avoid overlap).
  std::int64_t cell_count() const {
    std::int64_t n = 0;
    for (const Segment& s : segments) n += s.length();
    return n;
  }
};

/// Kinds of distillation boxes (paper Sec. 2.1; sizes from Fowler-Devitt).
enum class BoxKind : std::uint8_t { YBox, ABox };

/// |Y> distillation box: 3 x 3 x 2 = 18 units.
constexpr Vec3 kYBoxDims{3, 3, 2};
/// |A> distillation box: 16 x 6 x 2 = 192 units.
constexpr Vec3 kABoxDims{16, 6, 2};

constexpr Vec3 box_dims(BoxKind kind) {
  return kind == BoxKind::YBox ? kYBoxDims : kABoxDims;
}
constexpr std::int64_t box_volume(BoxKind kind) {
  const Vec3 d = box_dims(kind);
  return std::int64_t{d.x} * d.y * d.z;
}

struct DistillBox {
  BoxKind kind = BoxKind::YBox;
  Vec3 origin;  // minimum corner
  /// ICM line fed by this box (-1 if unbound).
  int line = -1;

  Box3 extent() const { return Box3{origin, origin + box_dims(kind) - Vec3{1, 1, 1}}; }
};

/// Qubit I/M and injection components attached to defect ends (Fig. 2).
enum class ComponentKind : std::uint8_t {
  InitZ,     // Z-basis initialization of a primal defect pair
  InitX,     // X-basis initialization
  MeasZ,     // Z-basis measurement
  MeasX,     // X-basis measurement
  InjectY,   // |Y> state injection point
  InjectA,   // |A> state injection point
};

struct ImComponent {
  ComponentKind kind = ComponentKind::InitZ;
  Vec3 position;
  int defect_index = -1;  // defect this component terminates
};

class GeomDescription {
 public:
  GeomDescription() = default;
  explicit GeomDescription(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  const std::vector<Defect>& defects() const { return defects_; }
  const std::vector<DistillBox>& boxes() const { return boxes_; }
  const std::vector<ImComponent>& components() const { return components_; }

  /// Append a defect; returns its index.
  int add_defect(Defect defect);
  int add_box(DistillBox box);
  void add_component(ImComponent component);

  /// Bounding box over all defect cells and all box extents.
  Box3 bounding_box() const;

  /// Space-time volume of the bounding box (#x * #y * #z).
  std::int64_t volume() const { return bounding_box().volume(); }

  /// Canonical-form volume accounting (paper Table 2 note): core bounding
  /// box volume plus the sum of distillation-box volumes, for descriptions
  /// whose boxes are not placed inside the core region.
  std::int64_t additive_volume() const;

  /// Translate all geometry by `delta`.
  void translate(Vec3 delta);

  /// Merge another description into this one (defect/box indices shift).
  void absorb(GeomDescription other);

  std::int64_t defect_cell_count() const;

 private:
  std::string name_;
  std::vector<Defect> defects_;
  std::vector<DistillBox> boxes_;
  std::vector<ImComponent> components_;
};

/// Human-readable multi-line dump (examples, debugging).
std::string describe(const GeomDescription& g);

/// JSON export for external visualization tooling.
std::string to_json(const GeomDescription& g);

}  // namespace tqec::geom
