#include "geom/linking.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"

namespace tqec::geom {

namespace {

Vec3d sub(Vec3d a, Vec3d b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
Vec3d cross(Vec3d a, Vec3d b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}
double dot(Vec3d a, Vec3d b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
double norm(Vec3d a) { return std::sqrt(dot(a, a)); }

/// Normalize; returns false when the vector is (numerically) zero.
bool normalize(Vec3d& v) {
  const double n = norm(v);
  if (n < 1e-12) return false;
  v = {v.x / n, v.y / n, v.z / n};
  return true;
}

double safe_asin(double x) { return std::asin(std::clamp(x, -1.0, 1.0)); }

/// Signed solid-angle contribution of segment pair (p1->p2, p3->p4) to the
/// Gauss integral (Klenin & Langowski 2000, method 1a).
double segment_pair_omega(Vec3d p1, Vec3d p2, Vec3d p3, Vec3d p4) {
  const Vec3d r12 = sub(p2, p1);
  const Vec3d r34 = sub(p4, p3);
  const Vec3d r13 = sub(p3, p1);
  const Vec3d r14 = sub(p4, p1);
  const Vec3d r23 = sub(p3, p2);
  const Vec3d r24 = sub(p4, p2);

  Vec3d n1 = cross(r13, r14);
  Vec3d n2 = cross(r14, r24);
  Vec3d n3 = cross(r24, r23);
  Vec3d n4 = cross(r23, r13);
  if (!normalize(n1) || !normalize(n2) || !normalize(n3) || !normalize(n4))
    return 0.0;  // degenerate (coplanar through an endpoint): no solid angle

  const double omega_star = safe_asin(dot(n1, n2)) + safe_asin(dot(n2, n3)) +
                            safe_asin(dot(n3, n4)) + safe_asin(dot(n4, n1));
  const double orientation = dot(cross(r34, r12), r13);
  if (orientation > 0) return omega_star;
  if (orientation < 0) return -omega_star;
  return 0.0;  // parallel segments contribute nothing
}

}  // namespace

Loop loop_from_lattice(const std::vector<Vec3>& vertices) {
  TQEC_REQUIRE(vertices.size() >= 3, "loop needs >= 3 vertices");
  Loop loop;
  loop.points.reserve(vertices.size());
  for (const Vec3& v : vertices)
    loop.points.push_back({static_cast<double>(v.x),
                           static_cast<double>(v.y),
                           static_cast<double>(v.z)});
  return loop;
}

Loop rectangle_loop(Vec3 corner, Axis u, int u_len, Axis v, int v_len) {
  TQEC_REQUIRE(u != v, "rectangle axes must differ");
  TQEC_REQUIRE(u_len >= 1 && v_len >= 1, "rectangle extents must be >= 1");
  const Vec3 du = u_len * unit(u);
  const Vec3 dv = v_len * unit(v);
  return loop_from_lattice({corner, corner + du, corner + du + dv,
                            corner + dv});
}

Loop offset_loop(const Loop& loop, double dx, double dy, double dz) {
  Loop out = loop;
  for (Vec3d& p : out.points) {
    p.x += dx;
    p.y += dy;
    p.z += dz;
  }
  return out;
}

int linking_number(const Loop& a, const Loop& b) {
  TQEC_REQUIRE(a.points.size() >= 3 && b.points.size() >= 3,
               "degenerate loop");
  double total = 0.0;
  const std::size_t na = a.points.size();
  const std::size_t nb = b.points.size();
  for (std::size_t i = 0; i < na; ++i) {
    const Vec3d p1 = a.points[i];
    const Vec3d p2 = a.points[(i + 1) % na];
    for (std::size_t j = 0; j < nb; ++j) {
      const Vec3d p3 = b.points[j];
      const Vec3d p4 = b.points[(j + 1) % nb];
      total += segment_pair_omega(p1, p2, p3, p4);
    }
  }
  const double lk = total / (4.0 * std::numbers::pi);
  const double rounded = std::round(lk);
  TQEC_ASSERT(std::abs(lk - rounded) < 1e-6,
              "linking number did not converge to an integer "
              "(curves not in general position?)");
  return static_cast<int>(rounded);
}

}  // namespace tqec::geom
