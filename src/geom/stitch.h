// Seam stitching for time-axis sharded compilation.
//
// The sharded compiler (core/shard.h) cuts an ICM circuit into windows
// along the time (x) axis, compiles each window to an independent
// GeomDescription, and hands the per-window geometries here. Every line
// crossing a cut appears twice: as a carry-*out* primal module in the
// earlier window (its row-final module, compiled without a measurement)
// and as a carry-*in* module in the later window (its row-initial module,
// compiled without an initialization). Stitching restores each cut line's
// single continuous primal defect:
//
//   1. Windows are laid out left-to-right along +x with a `seam_gap`-cell
//      free slab between consecutive windows.
//   2. Each crossing line gets a pinned *interface cell* in the seam slab
//      at deterministic coordinates: x mid-seam, y one above the tallest
//      window (a plane no window geometry can occupy), z on a 2-cell lane
//      grid ordered by global line id. The pins depend only on the window
//      geometries and crossing sets — never on thread count or timing.
//   3. A goal-directed path (deterministic weighted A*) is carved from the
//      carry-out cell up through the pin and down to the carry-in cell,
//      avoiding every occupied cell (defect cells and distillation-box
//      extents of all windows plus the seams stitched so far). Seams are
//      carved serially in (seam, line) order, so the result is identical
//      for any --shard-threads.
//   4. The two window defects and the seam path are merged into one defect
//      (union-find), keeping geometry components pointed at the right
//      defect, so the structural validator's connectivity rule (V2) sees
//      one connected structure per cut line.
//
// Exactness: within a window the compiled geometry is byte-for-byte what
// the unsharded pipeline would produce for that window's sub-circuit; the
// stitch only *adds* cells in the seam slabs and the empty plane above,
// never moves or removes window cells. A seam that cannot be carved (the
// search region is exhausted after retries with taller headroom) is
// reported as an issue and fails the compile's legality, not silently
// dropped.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "geom/geometry.h"

namespace tqec::geom {

/// One compiled window, normalized so its bounding box starts at the
/// origin. Carry cells are (global ICM line, cell) pairs in the window's
/// own (normalized) frame; they must lie on a primal defect of
/// `*geometry`. The window only *points at* its geometry (owned by the
/// caller, e.g. the shard compiler's per-window outcomes): stitching
/// reads it, so retry loops re-stitch without deep-copying a single
/// segment vector.
struct StitchWindow {
  const GeomDescription* geometry = nullptr;
  std::vector<std::pair<int, Vec3>> carry_in;   // line -> row-initial cell
  std::vector<std::pair<int, Vec3>> carry_out;  // line -> row-final cell
};

struct StitchOptions {
  /// Free cells inserted between consecutive windows along x.
  int seam_gap = 3;
  /// Extra y headroom added per retry when a seam path is blocked.
  int max_attempts = 4;
  /// false: hash-set reference occupancy (A/B testing). The grid engine
  /// keeps occupancy, pass-through cells, and the A* bookkeeping in dense
  /// bit planes / scratch arrays (geom/cell_grid.h) and is bit-identical
  /// to the reference on every input.
  bool use_grid = true;
};

struct StitchResult {
  GeomDescription geometry;
  /// Occupancy-grid build cost (staging every window into the merged
  /// frame); 0 for the hash reference engine.
  double grid_build_s = 0;
  std::int64_t grid_bytes = 0;
  /// Seam paths carved (one per crossing line per cut).
  int stitches = 0;
  /// New cells added by seam paths (excludes the carry endpoints).
  std::int64_t seam_cells = 0;
  /// Pinned interface cells, one per stitch, in (seam, line-rank) order.
  std::vector<Vec3> interface_pins;
  /// x offset applied to each window in the merged frame.
  std::vector<int> window_offsets;
  /// Human-readable seam failures; empty iff every seam was carved.
  std::vector<std::string> issues;
  /// Structured record of every seam path that stayed blocked after all
  /// attempts: `window` is the window whose endpoint the final failed BFS
  /// leg could not reach (a placement can seal a carry module inside a
  /// pocket of neighboring cells). Callers can recompile that window with
  /// a different seed and re-stitch.
  struct BlockedSeam {
    int seam = 0;    // between windows `seam` and `seam + 1`
    int line = 0;    // global ICM line id
    int window = 0;  // blamed window index
  };
  std::vector<BlockedSeam> blocked;
  bool ok() const { return issues.empty(); }
};

/// Stitch windows into one geometry named `name`. Windows must be
/// normalized (bounding box lo == origin); window order is time order.
/// Deterministic: a pure function of its inputs.
StitchResult stitch_windows(const std::vector<StitchWindow>& windows,
                            const std::string& name,
                            const StitchOptions& options = {});

}  // namespace tqec::geom
