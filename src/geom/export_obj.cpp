#include "geom/export_obj.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace tqec::geom {

namespace {

struct Cuboid {
  double x0, y0, z0, x1, y1, z1;
};

/// Emit one cuboid as 8 vertices + 6 quad faces. `base` is the 1-based OBJ
/// vertex index of the first vertex; returns the next free index.
int emit_cuboid(std::ostream& out, const Cuboid& c, int base) {
  out << "v " << c.x0 << ' ' << c.y0 << ' ' << c.z0 << '\n'
      << "v " << c.x1 << ' ' << c.y0 << ' ' << c.z0 << '\n'
      << "v " << c.x1 << ' ' << c.y1 << ' ' << c.z0 << '\n'
      << "v " << c.x0 << ' ' << c.y1 << ' ' << c.z0 << '\n'
      << "v " << c.x0 << ' ' << c.y0 << ' ' << c.z1 << '\n'
      << "v " << c.x1 << ' ' << c.y0 << ' ' << c.z1 << '\n'
      << "v " << c.x1 << ' ' << c.y1 << ' ' << c.z1 << '\n'
      << "v " << c.x0 << ' ' << c.y1 << ' ' << c.z1 << '\n';
  const int v = base;
  // Quad faces with outward orientation.
  out << "f " << v << ' ' << v + 3 << ' ' << v + 2 << ' ' << v + 1 << '\n'
      << "f " << v + 4 << ' ' << v + 5 << ' ' << v + 6 << ' ' << v + 7 << '\n'
      << "f " << v << ' ' << v + 1 << ' ' << v + 5 << ' ' << v + 4 << '\n'
      << "f " << v + 1 << ' ' << v + 2 << ' ' << v + 6 << ' ' << v + 5 << '\n'
      << "f " << v + 2 << ' ' << v + 3 << ' ' << v + 7 << ' ' << v + 6 << '\n'
      << "f " << v + 3 << ' ' << v << ' ' << v + 4 << ' ' << v + 7 << '\n';
  return base + 8;
}

Cuboid segment_cuboid(const Segment& s, double thickness, double offset) {
  const Box3 box = s.box();
  const double pad = (1.0 - thickness) / 2.0;
  return {box.lo.x + pad + offset, box.lo.y + pad + offset,
          box.lo.z + pad + offset, box.hi.x + 1 - pad + offset,
          box.hi.y + 1 - pad + offset, box.hi.z + 1 - pad + offset};
}

}  // namespace

int export_obj(const GeomDescription& g, std::ostream& out,
               const ObjExportOptions& options) {
  TQEC_REQUIRE(options.defect_thickness > 0 && options.defect_thickness <= 1,
               "defect thickness must be in (0, 1]");
  out << "# TQEC geometric description";
  if (!g.name().empty()) out << ": " << g.name();
  out << "\n# primal = red defects, dual = blue defects (half-offset "
         "sublattice)\n";

  int cuboids = 0;
  int vertex = 1;

  out << "g primal_defects\nusemtl primal\n";
  for (const DefectView d : g.defects()) {
    if (d.type != DefectType::Primal) continue;
    for (const Segment& s : d.segments) {
      vertex = emit_cuboid(
          out, segment_cuboid(s, options.defect_thickness, 0.0), vertex);
      ++cuboids;
    }
  }

  out << "g dual_defects\nusemtl dual\n";
  for (const DefectView d : g.defects()) {
    if (d.type != DefectType::Dual) continue;
    for (const Segment& s : d.segments) {
      vertex = emit_cuboid(
          out,
          segment_cuboid(s, options.defect_thickness, options.dual_offset),
          vertex);
      ++cuboids;
    }
  }

  if (options.include_boxes && !g.boxes().empty()) {
    out << "g distillation_boxes\nusemtl box\n";
    for (const DistillBox& b : g.boxes()) {
      const Box3 e = b.extent();
      vertex = emit_cuboid(out,
                           {static_cast<double>(e.lo.x),
                            static_cast<double>(e.lo.y),
                            static_cast<double>(e.lo.z),
                            static_cast<double>(e.hi.x + 1),
                            static_cast<double>(e.hi.y + 1),
                            static_cast<double>(e.hi.z + 1)},
                           vertex);
      ++cuboids;
    }
  }
  return cuboids;
}

std::string to_obj(const GeomDescription& g, const ObjExportOptions& options) {
  std::ostringstream os;
  export_obj(g, os, options);
  return os.str();
}

void write_obj_file(const GeomDescription& g, const std::string& path,
                    const ObjExportOptions& options) {
  std::ofstream out(path);
  if (!out) throw TqecError("cannot open " + path + " for writing");
  export_obj(g, out, options);
  if (!out) throw TqecError("write failed: " + path);
}

}  // namespace tqec::geom
