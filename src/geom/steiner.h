// Rectilinear spanning/Steiner tree estimation on the lattice.
//
// The SA placer scores candidate placements by net wirelength. HPWL
// (bounding-box half-perimeter) is the classic cheap estimate but
// undershoots for multi-pin nets; the rectilinear MST is exact for what a
// sequential two-pin router achieves without sharing, and the iterated
// 1-Steiner heuristic (Kahng-Robins) over the 3D Hanan grid approximates
// the rectilinear Steiner minimal tree that a sharing router can reach.
// bench/estimators compares all three against the actually routed wire.
#pragma once

#include <cstdint>
#include <vector>

#include "common/vec3.h"

namespace tqec::geom {

/// Half-perimeter wirelength of the pin bounding box.
std::int64_t hpwl(const std::vector<Vec3>& pins);

/// Rectilinear (L1) minimum spanning tree length over the pins.
/// O(k^2) Prim; exact.
std::int64_t rectilinear_mst_length(const std::vector<Vec3>& pins);

struct SteinerTree {
  std::vector<Vec3> steiner_points;  // added branch points
  std::int64_t length = 0;           // MST length over pins + points
};

/// Iterated 1-Steiner heuristic over the 3D Hanan grid: repeatedly add the
/// candidate point reducing the MST length most, until no candidate helps
/// or `max_points` were added. Deterministic. Intended for small pin sets
/// (the Hanan grid has |X|*|Y|*|Z| candidates).
SteinerTree rectilinear_steiner_tree(const std::vector<Vec3>& pins,
                                     int max_points = 8);

}  // namespace tqec::geom
