// Gauss linking numbers between closed defect loops.
//
// The functionality of a braided TQEC circuit is fixed by the braiding
// relationships between primal and dual defect loops — which dual loops
// thread which primal loops, and how many times. Topological deformation
// and bridge compression must preserve these linking numbers (paper
// Sec. 2.4: "the relationship between loops remains unchanged"). This
// module computes the linking number of two closed polygonal curves with
// the Gauss double sum over segment pairs (Klenin & Langowski 2000, method
// 1a), which the test suite uses to verify that compression stages preserve
// braiding.
//
// Dual curves live on the half-offset sublattice; offset_loop() shifts a
// lattice loop by (+0.5,+0.5,+0.5) before the computation so curves are in
// general position.
#pragma once

#include <vector>

#include "common/vec3.h"

namespace tqec::geom {

struct Vec3d {
  double x = 0;
  double y = 0;
  double z = 0;
};

/// Closed polygonal curve: consecutive points are edges, and the last point
/// connects back to the first. Points must be distinct (no repeated vertex).
struct Loop {
  std::vector<Vec3d> points;
};

/// Build a loop from integer lattice vertices.
Loop loop_from_lattice(const std::vector<Vec3>& vertices);

/// Axis-aligned rectangular loop: corner, then extents along two distinct
/// axes (in cells; extent >= 1).
Loop rectangle_loop(Vec3 corner, Axis u, int u_len, Axis v, int v_len);

/// Shift every vertex by (dx, dy, dz) — use (0.5, 0.5, 0.5) for dual loops.
Loop offset_loop(const Loop& loop, double dx, double dy, double dz);

/// Gauss linking number of two disjoint closed curves (exact integer for
/// curves in general position; the double sum is rounded).
int linking_number(const Loop& a, const Loop& b);

}  // namespace tqec::geom
