#include "compress/dual_bridging.h"

#include <algorithm>

#include "common/trace.h"

namespace tqec::compress {

using pdgraph::ModuleId;
using pdgraph::NetId;
using pdgraph::PdGraph;

namespace {

/// Closed range of measurement levels a net (or merged component) touches.
struct LevelRange {
  int lo = 0;
  int hi = -1;  // empty when hi < lo
  bool empty() const { return hi < lo; }

  void absorb(const LevelRange& o) {
    if (o.empty()) return;
    if (empty()) {
      *this = o;
    } else {
      lo = std::min(lo, o.lo);
      hi = std::max(hi, o.hi);
    }
  }
};

/// Merged structures become time-rigid; their measurement-level ranges must
/// stay orderable: equal, disjoint/touching, or unconstrained.
bool ranges_compatible(const LevelRange& a, const LevelRange& b) {
  if (a.empty() || b.empty()) return true;
  if (a.lo == b.lo && a.hi == b.hi) return true;
  return a.hi <= b.lo || b.hi <= a.lo;
}

std::vector<LevelRange> net_level_ranges(const PdGraph& graph) {
  std::vector<LevelRange> ranges(static_cast<std::size_t>(graph.net_count()));
  for (const pdgraph::DualNet& net : graph.nets()) {
    LevelRange& r = ranges[static_cast<std::size_t>(net.id)];
    for (ModuleId m : net.path()) {
      const pdgraph::PrimalModule& mod = graph.module(m);
      if (mod.meas_constrained)
        r.absorb({mod.meas_level, mod.meas_level});
    }
  }
  return ranges;
}

DualBridging run_bridging(const PdGraph& graph,
                          const std::vector<std::vector<NetId>>& zones) {
  DualBridging out(graph.net_count());
  std::vector<LevelRange> range = net_level_ranges(graph);

  // Component-representative range lookup.
  auto rep_range = [&](NetId n) -> LevelRange& {
    return range[static_cast<std::size_t>(out.component_of(n))];
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t m = 0; m < zones.size(); ++m) {
      const auto& zone = zones[m];
      if (zone.size() < 2) continue;
      for (std::size_t i = 0; i < zone.size(); ++i) {
        for (std::size_t j = i + 1; j < zone.size(); ++j) {
          const NetId a = zone[i];
          const NetId b = zone[j];
          if (out.components().same(static_cast<std::size_t>(a),
                                    static_cast<std::size_t>(b)))
            continue;  // second bridge would create an extra loop
          const LevelRange ra = rep_range(a);
          const LevelRange rb = rep_range(b);
          if (!ranges_compatible(ra, rb)) continue;
          LevelRange merged = ra;
          merged.absorb(rb);
          out.components().unite(static_cast<std::size_t>(a),
                                 static_cast<std::size_t>(b));
          rep_range(a) = merged;
          out.record_bridge({static_cast<ModuleId>(m), a, b});
          changed = true;
        }
      }
    }
  }
  return out;
}

}  // namespace

DualBridging bridge_dual(const PdGraph& graph, const IshapeResult& ishape) {
  TQEC_TRACE_SPAN("compress.dual_bridge");
  return run_bridging(graph, ishape.zone_nets());
}

DualBridging bridge_dual_without_ishape(const PdGraph& graph) {
  TQEC_TRACE_SPAN("compress.dual_bridge");
  std::vector<std::vector<NetId>> zones;
  zones.reserve(static_cast<std::size_t>(graph.module_count()));
  for (const pdgraph::PrimalModule& m : graph.modules())
    zones.push_back(m.nets);
  return run_bridging(graph, zones);
}

}  // namespace tqec::compress
