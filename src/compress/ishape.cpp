#include "compress/ishape.h"

#include <algorithm>

#include "common/trace.h"

namespace tqec::compress {

using pdgraph::ModuleId;
using pdgraph::NetId;
using pdgraph::PdGraph;
using pdgraph::PrimalModule;

IshapeResult::IshapeResult(const PdGraph& graph)
    : x_groups_(static_cast<std::size_t>(graph.module_count())) {
  group_of_.resize(static_cast<std::size_t>(graph.module_count()));
  for (std::size_t m = 0; m < group_of_.size(); ++m)
    group_of_[m] = static_cast<ModuleId>(m);  // identity before any merge
  zone_nets_.reserve(static_cast<std::size_t>(graph.module_count()));
  for (const PrimalModule& m : graph.modules()) zone_nets_.push_back(m.nets);
}

std::vector<std::vector<ModuleId>> IshapeResult::group_members() const {
  std::vector<std::vector<ModuleId>> members(group_of_.size());
  for (std::size_t m = 0; m < group_of_.size(); ++m)
    members[static_cast<std::size_t>(group_of_[m])].push_back(
        static_cast<ModuleId>(m));
  std::erase_if(members, [](const auto& v) { return v.empty(); });
  return members;
}

IshapeResult simplify_ishape(const PdGraph& graph) {
  TQEC_TRACE_SPAN("compress.ishape");
  IshapeResult result(graph);

  auto remove_net = [&](ModuleId m, NetId n) {
    auto& zone = result.zone_nets_[static_cast<std::size_t>(m)];
    const auto it = std::find(zone.begin(), zone.end(), n);
    TQEC_ASSERT(it != zone.end(), "net missing from zone during I-shape");
    zone.erase(it);
  };

  // Whether a module already spent its I/M end segment on a merge.
  std::vector<bool> im_used(static_cast<std::size_t>(graph.module_count()),
                            false);

  for (const pdgraph::DualNet& net : graph.nets()) {
    const PrimalModule& a = graph.module(net.control_a);
    const PrimalModule& b = graph.module(net.control_b);

    // Constrained measurements are placed inside time-dependent
    // super-modules (paper Sec. 3.5), so their modules never join an
    // x-axis bridge group.
    if (a.meas_constrained || b.meas_constrained) continue;

    // Initialization-side merge: the current module carries the row's I/M.
    if (a.has_init && !im_used[static_cast<std::size_t>(a.id)]) {
      im_used[static_cast<std::size_t>(a.id)] = true;
      result.x_groups_.unite(static_cast<std::size_t>(a.id),
                             static_cast<std::size_t>(b.id));
      remove_net(a.id, net.id);
      remove_net(b.id, net.id);
      result.merges_.push_back({a.id, b.id, net.id});
      continue;
    }

    // Measurement-side merge: the innovative module is row-final and
    // carries the measurement I/M.
    if (b.has_meas && !im_used[static_cast<std::size_t>(b.id)]) {
      im_used[static_cast<std::size_t>(b.id)] = true;
      result.x_groups_.unite(static_cast<std::size_t>(a.id),
                             static_cast<std::size_t>(b.id));
      remove_net(a.id, net.id);
      remove_net(b.id, net.id);
      result.merges_.push_back({b.id, a.id, net.id});
    }
  }

  for (std::size_t m = 0; m < result.group_of_.size(); ++m)
    result.group_of_[m] =
        static_cast<ModuleId>(result.x_groups_.find(m));
  return result;
}

}  // namespace tqec::compress
