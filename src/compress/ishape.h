// I-shaped simplification (paper Sec. 3.2, Figs. 7-10).
//
// When a dual net's control-side *current* module carries an I/M terminal
// (initialization, measurement, or state injection), that module and the
// net's control-side *innovative* module can be merged by an x-axis primal
// bridge: the two primal loops share a maximally extended common segment
// (Fig. 9). Symmetrically, when the innovative module is the row-final
// module carrying the measurement I/M, it merges with the current module.
//
// Split semantics (Fig. 14): after the merge, the shared common segment
// carries only the merging net d, and each module's remainder keeps its
// other nets. For iterative dual bridging this means d no longer shares a
// bridgeable zone with the other nets of either merged module — bridging
// them there would create an extra loop and change the computation. We
// realize this by removing d from both modules' *zone* net lists while the
// full braiding records in the PD graph stay untouched.
//
// Each module participates in at most one x-axis merge on each side of its
// row position, and merges chain through a row (a module that absorbed its
// row-initial neighbour can still merge with the row-final one), which the
// x-group union-find captures. Complexity: O(#nets).
#pragma once

#include <vector>

#include "common/union_find.h"
#include "pdgraph/pd_graph.h"

namespace tqec::compress {

struct IshapeMerge {
  pdgraph::ModuleId im_module = -1;     // module carrying the I/M terminal
  pdgraph::ModuleId partner = -1;       // the other control-side module
  pdgraph::NetId net = -1;              // net whose control side merged
};

class IshapeResult {
 public:
  explicit IshapeResult(const pdgraph::PdGraph& graph);

  const std::vector<IshapeMerge>& merges() const { return merges_; }

  /// X-axis merge groups over module ids.
  UnionFind& x_groups() { return x_groups_; }
  const std::vector<pdgraph::ModuleId>& group_of() const { return group_of_; }

  /// Zone nets per module: the nets still able to dual-bridge there.
  const std::vector<std::vector<pdgraph::NetId>>& zone_nets() const {
    return zone_nets_;
  }

  /// Modules merged into each x-group (group representative -> members).
  std::vector<std::vector<pdgraph::ModuleId>> group_members() const;

  int merge_count() const { return static_cast<int>(merges_.size()); }

 private:
  friend IshapeResult simplify_ishape(const pdgraph::PdGraph& graph);

  UnionFind x_groups_;
  std::vector<pdgraph::ModuleId> group_of_;  // representative per module
  std::vector<std::vector<pdgraph::NetId>> zone_nets_;
  std::vector<IshapeMerge> merges_;
};

/// Run I-shaped simplification on a PD graph (paper stage 3).
IshapeResult simplify_ishape(const pdgraph::PdGraph& graph);

}  // namespace tqec::compress
