// Iterative dual bridging (paper Sec. 3.4, Fig. 14), extending the
// dual-only bridging of Hsu et al. (DAC'21) with I-shape split awareness.
//
// Two dual nets crossing the same primal module may be merged by a dual
// bridge there, sharing one continuous common segment. Constraints:
//   - never merge two nets already in the same merged structure (a second
//     bridge between the same structures would create an extra loop and
//     change the computation, Sec. 2.4);
//   - respect the I-shape splits: a net whose control side was absorbed
//     into an x-axis bridge no longer shares a bridgeable zone with the
//     other nets of the merged modules (Fig. 14) — we consume the *zone*
//     net lists computed by the I-shape stage;
//   - respect time-ordered measurement constraints: merged nets become one
//     rigid structure, so the measurement levels they touch must not
//     interleave (equal, disjoint, or unconstrained level ranges are
//     allowed; partial overlap is rejected). This is our concrete reading
//     of the constraint handling in [Hsu DAC'21], documented in DESIGN.md.
//
// The algorithm sweeps all zones, greedily merging candidate pairs, and
// iterates until a fixpoint (hence *iterative* dual bridging).
#pragma once

#include <vector>

#include "common/union_find.h"
#include "compress/ishape.h"

namespace tqec::compress {

struct DualBridge {
  pdgraph::ModuleId site = -1;  // module whose zone hosts the bridge
  pdgraph::NetId net_a = -1;
  pdgraph::NetId net_b = -1;
};

class DualBridging {
 public:
  explicit DualBridging(int net_count) : components_(
      static_cast<std::size_t>(net_count)) {}

  const std::vector<DualBridge>& bridges() const { return bridges_; }

  /// Merged-net components (union-find over net ids).
  UnionFind& components() { return components_; }
  const UnionFind& components() const { return components_; }

  /// Representative net id per net.
  pdgraph::NetId component_of(pdgraph::NetId n) {
    return static_cast<pdgraph::NetId>(
        components_.find(static_cast<std::size_t>(n)));
  }

  int component_count() const {
    return static_cast<int>(components_.component_count());
  }
  int bridge_count() const { return static_cast<int>(bridges_.size()); }

  /// Record a performed bridge (used by the bridging drivers).
  void record_bridge(DualBridge bridge) { bridges_.push_back(bridge); }

 private:
  UnionFind components_;
  std::vector<DualBridge> bridges_;
};

/// Run iterative dual bridging on the I-shape-aware zones (paper stage 5).
DualBridging bridge_dual(const pdgraph::PdGraph& graph,
                         const IshapeResult& ishape);

/// Dual-only baseline variant ([Hsu DAC'21]): bridging on the raw module
/// pass-through records, without I-shape splits.
DualBridging bridge_dual_without_ishape(const pdgraph::PdGraph& graph);

}  // namespace tqec::compress
