// Flipping operation and greedy primal bridging (paper Sec. 3.3, Figs. 11-13).
//
// Direct primal bridging blocks dual bridging and vice versa (Fig. 11). The
// flipping operation first flips primal modules onto a common layer so that
// primal bridges run along the z axis while the I-shape bridges run along
// the x axis — the two never conflict — and dual segments stay routable
// (Fig. 12). Flipping a module mirrors it; it does not change which dual
// nets pass through it, so the braiding relationship is preserved.
//
// The bridging itself is the paper's greedy chain construction on the PD
// graph: every I-shape group is a *point*; two points are connectable when
// a dual net passes through modules of both; each point may bridge with at
// most two neighbours on the z axis (chain predecessor/successor). From the
// current point the greedy picks the unvisited connectable point M
// maximizing
//     Phi(M) = sum over M's dual nets of |{untraversed points reachable
//              through that net}|                         (paper eqs. 3-4)
// and restarts on a fresh point until every point is traversed.
//
// Each chain becomes one primal-bridging super-module (one 2.5D B*-tree
// node). Dual-segment directionality is planned with the Boolean flip value
// of eq. (5): f(first point) = 0 and f(next) = 1 - f(previous), since each
// z-bridge mirrors the module it attaches to.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/ishape.h"

namespace tqec::compress {

using PointId = int;

struct Chain {
  /// Points in z order; each consecutive pair is a primal bridge.
  std::vector<PointId> points;
};

struct PrimalBridging {
  /// Point's member modules (points are I-shape groups). Injection modules
  /// are excluded (they bind to their distillation boxes) and so are
  /// order-constrained measurement modules (they go into time-dependent
  /// super-modules).
  std::vector<std::vector<pdgraph::ModuleId>> point_members;
  /// Point of each module; -1 for modules excluded from bridging.
  std::vector<PointId> point_of_module;
  /// Chains (z-axis primal bridging super-modules), singletons included.
  std::vector<Chain> chains;
  /// Flip value per point (eq. 5), defined by its chain position.
  std::vector<std::uint8_t> flip_of_point;
  /// Chain of each point.
  std::vector<int> chain_of_point;

  int point_count() const { return static_cast<int>(point_members.size()); }
  int chain_count() const { return static_cast<int>(chains.size()); }

  /// Number of z-axis bridges added (sum over chains of |points| - 1).
  int bridge_count() const;
};

/// Run the flipping operation + greedy primal bridging (paper stage 4).
/// `seed` selects the greedy starting points (the paper starts "randomly on
/// an edge"); the default reproduces the documented tables.
PrimalBridging bridge_primal(const pdgraph::PdGraph& graph,
                             const IshapeResult& ishape,
                             std::uint64_t seed = 1);

/// Per-restart observability for bridge_primal_best (one entry per
/// restart, in restart order regardless of thread count).
struct RestartReport {
  std::vector<double> restart_s;  // wall time of each greedy run
  std::vector<int> chain_counts;
  std::vector<int> bridge_counts;
  int selected = 0;  // index of the winning restart
};

/// Multi-restart variant: run the greedy `restarts` times with derived
/// seeds and keep the cover with the fewest chains (ties broken toward
/// more total bridges, then toward the earliest restart). The paper's
/// greedy is randomized exactly so that restarts can escape bad start
/// choices. Restarts run on up to `jobs` threads; selection is a
/// sequential scan over the restart-indexed candidates, so the result is
/// bit-identical for any thread count and deterministic for a fixed base
/// seed. `report`, when non-null, receives per-restart statistics.
PrimalBridging bridge_primal_best(const pdgraph::PdGraph& graph,
                                  const IshapeResult& ishape,
                                  std::uint64_t seed = 1, int restarts = 4,
                                  int jobs = 1,
                                  RestartReport* report = nullptr);

}  // namespace tqec::compress
