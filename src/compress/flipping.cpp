#include "compress/flipping.h"

#include <algorithm>
#include <chrono>
#include <tuple>
#include <utility>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/trace.h"

namespace tqec::compress {

using pdgraph::ModuleId;
using pdgraph::NetId;
using pdgraph::PdGraph;

int PrimalBridging::bridge_count() const {
  int n = 0;
  for (const Chain& c : chains) n += static_cast<int>(c.points.size()) - 1;
  return n;
}

PrimalBridging bridge_primal(const PdGraph& graph, const IshapeResult& ishape,
                             std::uint64_t seed) {
  TQEC_TRACE_SPAN("compress.primal_bridge");
  PrimalBridging out;
  out.point_of_module.assign(static_cast<std::size_t>(graph.module_count()),
                             -1);

  // Points = I-shape groups over bridgeable modules. Injection modules
  // bind to their distillation boxes and order-constrained measurement
  // modules go into time-dependent super-modules (paper Sec. 3.5), so
  // neither participates in primal bridging.
  for (const auto& members : ishape.group_members()) {
    std::vector<ModuleId> kept;
    for (ModuleId m : members) {
      const pdgraph::PrimalModule& mod = graph.module(m);
      if (mod.origin != pdgraph::ModuleOrigin::Injection &&
          !mod.meas_constrained)
        kept.push_back(m);
    }
    if (kept.empty()) continue;
    const PointId p = static_cast<PointId>(out.point_members.size());
    for (ModuleId m : kept)
      out.point_of_module[static_cast<std::size_t>(m)] = p;
    out.point_members.push_back(std::move(kept));
  }
  const int num_points = out.point_count();

  // Candidate bridge edges: point pairs connected by a dual net (a common
  // segment exists exactly where a net passes through modules of both
  // points). Deduplicated.
  std::vector<std::pair<PointId, PointId>> edges;
  {
    std::vector<std::vector<PointId>> net_points(
        static_cast<std::size_t>(graph.net_count()));
    for (const pdgraph::DualNet& net : graph.nets()) {
      auto& pts = net_points[static_cast<std::size_t>(net.id)];
      for (ModuleId m : net.path()) {
        const PointId p = out.point_of_module[static_cast<std::size_t>(m)];
        if (p >= 0 && std::find(pts.begin(), pts.end(), p) == pts.end())
          pts.push_back(p);
      }
      for (std::size_t i = 0; i < pts.size(); ++i)
        for (std::size_t j = i + 1; j < pts.size(); ++j)
          edges.emplace_back(std::min(pts[i], pts[j]),
                             std::max(pts[i], pts[j]));
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  // Greedy chain construction as a degree-ordered path matching — the edge
  // form of the paper's Phi cost (eqs. 3-4): a point's candidate degree is
  // how many other points its dual nets reach, and scarce points must claim
  // their z-neighbours first while hub points keep capacity to stitch
  // chains together. Each point accepts at most two bridges (one per z
  // direction) and a cycle would close a loop, which bridging forbids.
  std::vector<int> degree(static_cast<std::size_t>(num_points), 0);
  for (const auto& [u, v] : edges) {
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  }
  // The paper seeds its greedy with a random starting point; we use the
  // seed to permute equal-priority edges, which plays the same role for
  // restart-style exploration while staying reproducible.
  Rng rng(seed);
  std::vector<std::uint32_t> salt(edges.size());
  for (auto& s : salt) s = static_cast<std::uint32_t>(rng());
  std::vector<std::size_t> order(edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto key = [&](std::size_t e) {
      const auto [u, v] = edges[e];
      const int du = degree[static_cast<std::size_t>(u)];
      const int dv = degree[static_cast<std::size_t>(v)];
      return std::tuple(std::min(du, dv), std::max(du, dv), salt[e], e);
    };
    return key(a) < key(b);
  });

  UnionFind components(static_cast<std::size_t>(num_points));
  std::vector<int> path_degree(static_cast<std::size_t>(num_points), 0);
  std::vector<std::vector<PointId>> path_nbrs(
      static_cast<std::size_t>(num_points));
  auto try_add = [&](PointId u, PointId v) {
    if (path_degree[static_cast<std::size_t>(u)] >= 2) return false;
    if (path_degree[static_cast<std::size_t>(v)] >= 2) return false;
    if (!components.unite(static_cast<std::size_t>(u),
                          static_cast<std::size_t>(v)))
      return false;  // would close a loop
    ++path_degree[static_cast<std::size_t>(u)];
    ++path_degree[static_cast<std::size_t>(v)];
    path_nbrs[static_cast<std::size_t>(u)].push_back(v);
    path_nbrs[static_cast<std::size_t>(v)].push_back(u);
    return true;
  };
  // Two passes: legality only shrinks as degrees fill, so a second sweep
  // picks up edges that became the best remaining option.
  for (int pass = 0; pass < 2; ++pass)
    for (std::size_t e : order) try_add(edges[e].first, edges[e].second);

  // Extract chains by walking the degree-<=2 forest from its leaves.
  out.chain_of_point.assign(static_cast<std::size_t>(num_points), -1);
  std::vector<bool> emitted(static_cast<std::size_t>(num_points), false);
  auto emit_chain_from = [&](PointId start) {
    Chain chain;
    PointId prev = -1;
    PointId cur = start;
    for (;;) {
      chain.points.push_back(cur);
      emitted[static_cast<std::size_t>(cur)] = true;
      PointId next = -1;
      for (PointId n : path_nbrs[static_cast<std::size_t>(cur)])
        if (n != prev && !emitted[static_cast<std::size_t>(n)]) next = n;
      if (next < 0) break;
      prev = cur;
      cur = next;
    }
    const int chain_id = static_cast<int>(out.chains.size());
    for (PointId p : chain.points)
      out.chain_of_point[static_cast<std::size_t>(p)] = chain_id;
    out.chains.push_back(std::move(chain));
  };
  for (int p = 0; p < num_points; ++p)
    if (!emitted[static_cast<std::size_t>(p)] &&
        path_degree[static_cast<std::size_t>(p)] <= 1)
      emit_chain_from(p);
  // All degree-2 vertices belong to some path with leaf endpoints, so
  // everything is emitted; assert the invariant.
  for (int p = 0; p < num_points; ++p)
    TQEC_ASSERT(emitted[static_cast<std::size_t>(p)],
                "primal bridging left a point unemitted (cycle?)");

  // Flip planning (eq. 5): each z-bridge mirrors the attached module.
  out.flip_of_point.assign(static_cast<std::size_t>(num_points), 0);
  for (const Chain& chain : out.chains) {
    std::uint8_t f = 0;
    for (PointId p : chain.points) {
      out.flip_of_point[static_cast<std::size_t>(p)] = f;
      f = static_cast<std::uint8_t>(1 - f);
    }
  }

  return out;
}

PrimalBridging bridge_primal_best(const PdGraph& graph,
                                  const IshapeResult& ishape,
                                  std::uint64_t seed, int restarts, int jobs,
                                  RestartReport* report) {
  TQEC_TRACE_SPAN("compress.primal_best");
  TQEC_REQUIRE(restarts >= 1, "need at least one restart");
  // Restart 0 reuses the base seed (single-restart calls stay identical to
  // bridge_primal); the rest draw derived seeds up front so every restart
  // is an independent, index-addressed task.
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(restarts));
  seeds[0] = seed;
  Rng seeder(seed);
  for (int r = 1; r < restarts; ++r)
    seeds[static_cast<std::size_t>(r)] = seeder();

  std::vector<PrimalBridging> candidates(static_cast<std::size_t>(restarts));
  std::vector<double> restart_s(static_cast<std::size_t>(restarts), 0.0);
  parallel_for(static_cast<std::size_t>(restarts), jobs, [&](std::size_t r) {
    const auto t0 = std::chrono::steady_clock::now();
    candidates[r] = bridge_primal(graph, ishape, seeds[r]);
    restart_s[r] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  });

  // Deterministic reduction: scan in restart order with a strict-less key,
  // so ties keep the earliest restart — bit-identical for any job count.
  const auto key = [](const PrimalBridging& b) {
    return std::pair(b.chain_count(), -b.bridge_count());
  };
  std::size_t best = 0;
  for (std::size_t r = 1; r < candidates.size(); ++r)
    if (key(candidates[r]) < key(candidates[best])) best = r;

  if (report != nullptr) {
    report->restart_s = std::move(restart_s);
    report->chain_counts.clear();
    report->bridge_counts.clear();
    for (const PrimalBridging& c : candidates) {
      report->chain_counts.push_back(c.chain_count());
      report->bridge_counts.push_back(c.bridge_count());
    }
    report->selected = static_cast<int>(best);
  }
  return std::move(candidates[best]);
}

}  // namespace tqec::compress
