// Gate model for reversible / Clifford+T circuits.
//
// The input side of the flow deals with reversible circuits in the RevLib
// sense (multiple-control Toffoli and Fredkin gates) and with their
// Clifford+T decompositions. Gates are value types: a kind plus control and
// target qubit indices.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/error.h"

namespace tqec::qcir {

enum class GateKind : std::uint8_t {
  X,        // NOT (t1 in RevLib)
  Cnot,     // controlled NOT (t2)
  Toffoli,  // doubly-controlled NOT (t3)
  Mct,      // multiple-control Toffoli (t4+)
  Fredkin,  // controlled swap (f3+)
  Swap,     // uncontrolled swap (f2)
  H,
  S,
  Sdg,
  T,
  Tdg,
  Z,
};

/// Human-readable mnemonic ("CNOT", "T", ...).
const char* gate_kind_name(GateKind kind);

/// True for kinds in the Clifford+T basis {X, CNOT, H, S, Sdg, T, Tdg, Z}.
bool is_clifford_t(GateKind kind);

/// True for the non-Clifford kinds (T, Tdg).
inline bool is_t_like(GateKind kind) {
  return kind == GateKind::T || kind == GateKind::Tdg;
}

struct Gate {
  GateKind kind = GateKind::X;
  std::vector<int> controls;  // control qubit indices (empty if none)
  std::vector<int> targets;   // target qubit indices (1, or 2 for swap kinds)

  Gate() = default;
  Gate(GateKind kind_, std::vector<int> controls_, std::vector<int> targets_)
      : kind(kind_), controls(std::move(controls_)),
        targets(std::move(targets_)) {}

  static Gate x(int target) { return {GateKind::X, {}, {target}}; }
  static Gate cnot(int control, int target) {
    return {GateKind::Cnot, {control}, {target}};
  }
  static Gate toffoli(int c0, int c1, int target) {
    return {GateKind::Toffoli, {c0, c1}, {target}};
  }
  static Gate mct(std::vector<int> controls, int target) {
    TQEC_REQUIRE(controls.size() >= 3, "MCT requires >= 3 controls");
    return {GateKind::Mct, std::move(controls), {target}};
  }
  static Gate fredkin(std::vector<int> controls, int a, int b) {
    return {GateKind::Fredkin, std::move(controls), {a, b}};
  }
  static Gate swap(int a, int b) { return {GateKind::Swap, {}, {a, b}}; }
  static Gate h(int target) { return {GateKind::H, {}, {target}}; }
  static Gate s(int target) { return {GateKind::S, {}, {target}}; }
  static Gate sdg(int target) { return {GateKind::Sdg, {}, {target}}; }
  static Gate t(int target) { return {GateKind::T, {}, {target}}; }
  static Gate tdg(int target) { return {GateKind::Tdg, {}, {target}}; }
  static Gate z(int target) { return {GateKind::Z, {}, {target}}; }

  /// All qubits the gate touches (controls then targets).
  std::vector<int> qubits() const {
    std::vector<int> out = controls;
    out.insert(out.end(), targets.begin(), targets.end());
    return out;
  }

  friend bool operator==(const Gate&, const Gate&) = default;

  /// Compact textual form, e.g. "CNOT(1;3)" with controls before ';'.
  std::string to_string() const;
};

}  // namespace tqec::qcir
