#include "qcir/generator.h"

#include <algorithm>

namespace tqec::qcir {

Circuit make_random_reversible(const RandomReversibleSpec& spec) {
  TQEC_REQUIRE(spec.num_qubits >= 3, "need at least 3 qubits");
  TQEC_REQUIRE(spec.num_gates >= 0, "negative gate count");
  TQEC_REQUIRE(spec.locality_window >= 1, "locality window must be >= 1");

  Rng rng(spec.seed);
  Circuit circuit(spec.num_qubits, "random");

  // Pick a gate's qubits inside a window anchored at a random line, so the
  // interaction graph has the banded structure typical of arithmetic
  // circuits rather than being a uniform random graph.
  auto pick_distinct = [&](int count) {
    const int window =
        std::min(spec.num_qubits, std::max(count, spec.locality_window));
    const int base = rng.range(0, spec.num_qubits - window);
    std::vector<int> qubits;
    while (static_cast<int>(qubits.size()) < count) {
      const int q = base + rng.range(0, window - 1);
      if (std::find(qubits.begin(), qubits.end(), q) == qubits.end())
        qubits.push_back(q);
    }
    return qubits;
  };

  for (int g = 0; g < spec.num_gates; ++g) {
    const double roll = rng.uniform();
    if (roll < spec.toffoli_fraction) {
      const auto q = pick_distinct(3);
      circuit.add(Gate::toffoli(q[0], q[1], q[2]));
    } else if (roll < spec.toffoli_fraction +
                          (1.0 - spec.toffoli_fraction) * 0.8) {
      const auto q = pick_distinct(2);
      circuit.add(Gate::cnot(q[0], q[1]));
    } else {
      const auto q = pick_distinct(1);
      circuit.add(Gate::x(q[0]));
    }
  }
  return circuit;
}

}  // namespace tqec::qcir
