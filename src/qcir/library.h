// A library of parameterized reversible/quantum circuit families, used as
// realistic example workloads beyond the RevLib benchmarks. All reversible
// constructions are verified against their arithmetic specification in the
// test suite (classically on every input for small widths).
#pragma once

#include "qcir/circuit.h"

namespace tqec::qcir {

/// Cuccaro ripple-carry adder (quant-ph/0410184): computes
/// b <- (a + b + cin) mod 2^n with the carry-out on a dedicated line.
/// Register layout: qubit 0 = cin, then interleaved (b_i, a_i) pairs, and
/// the last qubit is the carry-out z. Uses 2n + 2 qubits, no ancillas.
Circuit make_ripple_adder(int bits);

/// Qubit index helpers for the adder layout.
int adder_cin_qubit();
int adder_b_qubit(int i);
int adder_a_qubit(int i);
int adder_carry_qubit(int bits);

/// Controlled increment: adds 1 to the n-bit register (q0 = LSB) modulo
/// 2^n, via a cascade of multiple-control Toffolis.
Circuit make_increment(int bits);

/// Grover diffusion operator on n qubits: H^n X^n (multi-controlled Z)
/// X^n H^n. The inner MCZ is realized as H-conjugated MCT on the last
/// qubit; for n == 2 it degenerates to CZ via H+CNOT.
Circuit make_grover_diffusion(int qubits);

/// Boolean majority-of-three into a target ancilla (a common RevLib
/// motif): target ^= MAJ(a, b, c).
Circuit make_majority_vote();

}  // namespace tqec::qcir
