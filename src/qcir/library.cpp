#include "qcir/library.h"

namespace tqec::qcir {

namespace {

/// Cuccaro MAJ block on (c, b, a): after it, a holds MAJ(c, b, a) and the
/// other two lines hold partial sums.
void maj(Circuit& circuit, int c, int b, int a) {
  circuit.add(Gate::cnot(a, b));
  circuit.add(Gate::cnot(a, c));
  circuit.add(Gate::toffoli(c, b, a));
}

/// Cuccaro UMA block (2-CNOT variant), the inverse companion of MAJ that
/// leaves the sum on b and restores a and c.
void uma(Circuit& circuit, int c, int b, int a) {
  circuit.add(Gate::toffoli(c, b, a));
  circuit.add(Gate::cnot(a, c));
  circuit.add(Gate::cnot(c, b));
}

}  // namespace

int adder_cin_qubit() { return 0; }
int adder_b_qubit(int i) { return 1 + 2 * i; }
int adder_a_qubit(int i) { return 2 + 2 * i; }
int adder_carry_qubit(int bits) { return 2 * bits + 1; }

Circuit make_ripple_adder(int bits) {
  TQEC_REQUIRE(bits >= 1, "adder needs at least one bit");
  Circuit circuit(2 * bits + 2,
                  "cuccaro-adder-" + std::to_string(bits));
  const int cin = adder_cin_qubit();
  const int z = adder_carry_qubit(bits);

  // Forward MAJ ladder.
  maj(circuit, cin, adder_b_qubit(0), adder_a_qubit(0));
  for (int i = 1; i < bits; ++i)
    maj(circuit, adder_a_qubit(i - 1), adder_b_qubit(i), adder_a_qubit(i));
  // Carry out.
  circuit.add(Gate::cnot(adder_a_qubit(bits - 1), z));
  // Backward UMA ladder.
  for (int i = bits - 1; i >= 1; --i)
    uma(circuit, adder_a_qubit(i - 1), adder_b_qubit(i), adder_a_qubit(i));
  uma(circuit, cin, adder_b_qubit(0), adder_a_qubit(0));
  return circuit;
}

Circuit make_increment(int bits) {
  TQEC_REQUIRE(bits >= 1, "increment needs at least one bit");
  Circuit circuit(bits, "increment-" + std::to_string(bits));
  // Most-significant flip first: q_k flips when q_0..q_{k-1} are all 1.
  for (int k = bits - 1; k >= 1; --k) {
    std::vector<int> controls;
    for (int i = 0; i < k; ++i) controls.push_back(i);
    switch (controls.size()) {
      case 1: circuit.add(Gate::cnot(controls[0], k)); break;
      case 2: circuit.add(Gate::toffoli(controls[0], controls[1], k)); break;
      default: circuit.add(Gate::mct(controls, k)); break;
    }
  }
  circuit.add(Gate::x(0));
  return circuit;
}

Circuit make_grover_diffusion(int qubits) {
  TQEC_REQUIRE(qubits >= 2, "diffusion needs at least two qubits");
  Circuit circuit(qubits, "grover-diffusion-" + std::to_string(qubits));
  for (int q = 0; q < qubits; ++q) circuit.add(Gate::h(q));
  for (int q = 0; q < qubits; ++q) circuit.add(Gate::x(q));
  // Multi-controlled Z on the last qubit, H-conjugated MCT.
  const int target = qubits - 1;
  circuit.add(Gate::h(target));
  std::vector<int> controls;
  for (int q = 0; q < target; ++q) controls.push_back(q);
  switch (controls.size()) {
    case 1: circuit.add(Gate::cnot(controls[0], target)); break;
    case 2: circuit.add(Gate::toffoli(controls[0], controls[1], target)); break;
    default: circuit.add(Gate::mct(controls, target)); break;
  }
  circuit.add(Gate::h(target));
  for (int q = 0; q < qubits; ++q) circuit.add(Gate::x(q));
  for (int q = 0; q < qubits; ++q) circuit.add(Gate::h(q));
  return circuit;
}

Circuit make_majority_vote() {
  // target ^= ab + bc + ca  ==  (a AND b) XOR (b AND c) XOR (c AND a).
  Circuit circuit(4, "majority-vote");
  circuit.add(Gate::toffoli(0, 1, 3));
  circuit.add(Gate::toffoli(1, 2, 3));
  circuit.add(Gate::toffoli(2, 0, 3));
  return circuit;
}

}  // namespace tqec::qcir
