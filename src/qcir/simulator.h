// Dense state-vector simulator for small circuits (<= ~16 qubits).
//
// Used by the test suite to verify that gate decompositions (MCT -> Toffoli,
// Toffoli -> Clifford+T) are exactly unitarily equivalent, rather than
// trusting the algebra. Not part of the compression flow itself.
#pragma once

#include <complex>
#include <vector>

#include "qcir/circuit.h"

namespace tqec::qcir {

using Amplitude = std::complex<double>;

class StateVector {
 public:
  /// |0...0> on n qubits. Qubit 0 is the least-significant index bit.
  explicit StateVector(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<Amplitude>& amplitudes() const { return amps_; }

  /// Prepare the computational-basis state |bits>.
  void set_basis_state(const std::vector<bool>& bits);

  void apply(const Gate& gate);
  void apply(const Circuit& circuit);

  /// Global-phase-insensitive fidelity |<a|b>|^2 with another state.
  static double fidelity(const StateVector& a, const StateVector& b);

 private:
  void apply_single(int target, Amplitude u00, Amplitude u01, Amplitude u10,
                    Amplitude u11, const std::vector<int>& controls);
  void apply_swap(int a, int b, const std::vector<int>& controls);
  bool controls_satisfied(std::size_t index,
                          const std::vector<int>& controls) const;

  int num_qubits_;
  std::vector<Amplitude> amps_;
};

/// True when the two circuits implement the same unitary up to global phase,
/// tested on the full computational basis (exact for these dimensions).
bool circuits_equivalent(const Circuit& a, const Circuit& b,
                         double tolerance = 1e-9);

}  // namespace tqec::qcir
