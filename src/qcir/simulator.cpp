#include "qcir/simulator.h"

#include <cmath>
#include <numbers>

namespace tqec::qcir {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
}

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  TQEC_REQUIRE(num_qubits >= 0 && num_qubits <= 24, "state too large");
  amps_.assign(std::size_t{1} << num_qubits, Amplitude{0.0, 0.0});
  amps_[0] = Amplitude{1.0, 0.0};
}

void StateVector::set_basis_state(const std::vector<bool>& bits) {
  TQEC_REQUIRE(static_cast<int>(bits.size()) == num_qubits_,
               "basis state size mismatch");
  std::fill(amps_.begin(), amps_.end(), Amplitude{0.0, 0.0});
  std::size_t index = 0;
  for (int q = 0; q < num_qubits_; ++q) {
    if (bits[static_cast<std::size_t>(q)]) index |= std::size_t{1} << q;
  }
  amps_[index] = Amplitude{1.0, 0.0};
}

bool StateVector::controls_satisfied(std::size_t index,
                                     const std::vector<int>& controls) const {
  for (int c : controls) {
    if ((index & (std::size_t{1} << c)) == 0) return false;
  }
  return true;
}

void StateVector::apply_single(int target, Amplitude u00, Amplitude u01,
                               Amplitude u10, Amplitude u11,
                               const std::vector<int>& controls) {
  const std::size_t bit = std::size_t{1} << target;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if ((i & bit) != 0) continue;  // visit each pair once via the |0> index
    if (!controls_satisfied(i | bit, controls)) continue;
    const Amplitude a0 = amps_[i];
    const Amplitude a1 = amps_[i | bit];
    amps_[i] = u00 * a0 + u01 * a1;
    amps_[i | bit] = u10 * a0 + u11 * a1;
  }
}

void StateVector::apply_swap(int a, int b, const std::vector<int>& controls) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    // Swap amplitudes between ...a=1,b=0... and ...a=0,b=1...; visit once.
    if ((i & bit_a) == 0 || (i & bit_b) != 0) continue;
    if (!controls_satisfied(i, controls)) continue;
    std::swap(amps_[i], amps_[(i & ~bit_a) | bit_b]);
  }
}

void StateVector::apply(const Gate& g) {
  for (int q : g.qubits())
    TQEC_REQUIRE(q >= 0 && q < num_qubits_, "qubit out of range");
  const Amplitude one{1.0, 0.0};
  const Amplitude zero{0.0, 0.0};
  const Amplitude i_unit{0.0, 1.0};
  switch (g.kind) {
    case GateKind::X:
    case GateKind::Cnot:
    case GateKind::Toffoli:
    case GateKind::Mct:
      apply_single(g.targets[0], zero, one, one, zero, g.controls);
      break;
    case GateKind::H:
      apply_single(g.targets[0], Amplitude{kInvSqrt2, 0}, Amplitude{kInvSqrt2, 0},
                   Amplitude{kInvSqrt2, 0}, Amplitude{-kInvSqrt2, 0},
                   g.controls);
      break;
    case GateKind::S:
      apply_single(g.targets[0], one, zero, zero, i_unit, g.controls);
      break;
    case GateKind::Sdg:
      apply_single(g.targets[0], one, zero, zero, -i_unit, g.controls);
      break;
    case GateKind::T:
      apply_single(g.targets[0], one, zero, zero,
                   std::polar(1.0, std::numbers::pi / 4.0), g.controls);
      break;
    case GateKind::Tdg:
      apply_single(g.targets[0], one, zero, zero,
                   std::polar(1.0, -std::numbers::pi / 4.0), g.controls);
      break;
    case GateKind::Z:
      apply_single(g.targets[0], one, zero, zero, -one, g.controls);
      break;
    case GateKind::Swap:
    case GateKind::Fredkin:
      apply_swap(g.targets[0], g.targets[1], g.controls);
      break;
  }
}

void StateVector::apply(const Circuit& circuit) {
  TQEC_REQUIRE(circuit.num_qubits() == num_qubits_, "qubit count mismatch");
  for (const Gate& g : circuit.gates()) apply(g);
}

double StateVector::fidelity(const StateVector& a, const StateVector& b) {
  TQEC_REQUIRE(a.num_qubits_ == b.num_qubits_, "qubit count mismatch");
  Amplitude inner{0.0, 0.0};
  for (std::size_t i = 0; i < a.amps_.size(); ++i)
    inner += std::conj(a.amps_[i]) * b.amps_[i];
  return std::norm(inner);
}

bool circuits_equivalent(const Circuit& a, const Circuit& b,
                         double tolerance) {
  TQEC_REQUIRE(a.num_qubits() == b.num_qubits(), "qubit count mismatch");
  const int n = a.num_qubits();
  TQEC_REQUIRE(n <= 12, "equivalence check limited to small circuits");

  // Compare columns of the two unitaries up to one shared global phase.
  Amplitude phase{0.0, 0.0};
  bool have_phase = false;
  for (std::size_t basis = 0; basis < (std::size_t{1} << n); ++basis) {
    std::vector<bool> bits(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q) bits[static_cast<std::size_t>(q)] =
        (basis & (std::size_t{1} << q)) != 0;
    StateVector sa(n), sb(n);
    sa.set_basis_state(bits);
    sb.set_basis_state(bits);
    sa.apply(a);
    sb.apply(b);
    for (std::size_t i = 0; i < sa.amplitudes().size(); ++i) {
      const Amplitude va = sa.amplitudes()[i];
      const Amplitude vb = sb.amplitudes()[i];
      if (std::abs(va) < tolerance && std::abs(vb) < tolerance) continue;
      if (std::abs(va) < tolerance || std::abs(vb) < tolerance) return false;
      const Amplitude ratio = vb / va;
      if (!have_phase) {
        phase = ratio;
        have_phase = true;
        if (std::abs(std::abs(phase) - 1.0) > tolerance) return false;
      } else if (std::abs(ratio - phase) > tolerance) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace tqec::qcir
