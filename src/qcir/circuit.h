// Circuit container: an ordered gate list over a fixed qubit count, with
// optional qubit names (RevLib variable names) and constant-input /
// garbage-output annotations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "qcir/gate.h"

namespace tqec::qcir {

/// Per-kind gate census plus derived Clifford+T statistics.
struct CircuitStats {
  int num_qubits = 0;
  std::int64_t total_gates = 0;
  std::int64_t x = 0;
  std::int64_t cnot = 0;
  std::int64_t toffoli = 0;
  std::int64_t mct = 0;
  std::int64_t fredkin = 0;
  std::int64_t swap_ = 0;
  std::int64_t h = 0;
  std::int64_t s = 0;  // S + Sdg
  std::int64_t t = 0;  // T + Tdg
  std::int64_t z = 0;
};

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int num_qubits, std::string name = {})
      : name_(std::move(name)), num_qubits_(num_qubits) {
    TQEC_REQUIRE(num_qubits >= 0, "negative qubit count");
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int num_qubits() const { return num_qubits_; }

  /// Grow the register; existing gates are unaffected. Returns the index of
  /// the first newly added qubit.
  int add_qubits(int count) {
    TQEC_REQUIRE(count >= 0, "negative qubit count");
    const int first = num_qubits_;
    num_qubits_ += count;
    return first;
  }

  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }

  /// Append a gate; validates qubit indices and control/target disjointness.
  void add(Gate gate);

  /// Qubit names (empty when unnamed; parser fills these from .variables).
  const std::vector<std::string>& qubit_names() const { return qubit_names_; }
  void set_qubit_names(std::vector<std::string> names);

  /// Constant-input values per qubit (nullopt = primary input).
  const std::vector<std::optional<bool>>& constant_inputs() const {
    return constant_inputs_;
  }
  void set_constant_inputs(std::vector<std::optional<bool>> constants);

  /// Garbage flags per qubit (true = output is don't-care).
  const std::vector<bool>& garbage_outputs() const { return garbage_outputs_; }
  void set_garbage_outputs(std::vector<bool> garbage);

  CircuitStats stats() const;

  /// True if every gate kind is in the Clifford+T basis.
  bool is_clifford_t() const;

  /// Classical simulation on computational-basis states: applies the
  /// reversible kinds (X/CNOT/Toffoli/MCT/Fredkin/Swap) to a bit vector.
  /// Precondition: the circuit contains only reversible kinds and
  /// input.size() == num_qubits(). Used by decomposition equivalence tests.
  std::vector<bool> simulate_classical(std::vector<bool> input) const;

 private:
  void check_gate(const Gate& gate) const;

  std::string name_;
  int num_qubits_ = 0;
  std::vector<Gate> gates_;
  std::vector<std::string> qubit_names_;
  std::vector<std::optional<bool>> constant_inputs_;
  std::vector<bool> garbage_outputs_;
};

}  // namespace tqec::qcir
