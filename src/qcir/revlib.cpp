#include "qcir/revlib.h"

#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace tqec::qcir {
namespace {

[[noreturn]] void parse_fail(const std::string& source, int line,
                             const std::string& message) {
  throw ParseError(source, line, message);
}

/// Sanity bound on .numvars: far above any real RevLib netlist, low enough
/// that a corrupt count cannot drive a multi-gigabyte allocation.
constexpr int kMaxNumvars = 1 << 20;

/// Checked non-negative integer token; malformed or out-of-range text
/// becomes a line-numbered ParseError instead of an uncaught
/// std::invalid_argument from stoi.
int parse_count(const std::string& source, int line_no,
                const std::string& token, const char* what) {
  const auto v = try_parse_i64(token);
  if (!v || *v < 0 || *v > kMaxNumvars)
    parse_fail(source, line_no,
               std::string(what) + ": expected a count in [0, " +
                   std::to_string(kMaxNumvars) + "], got '" + token + "'");
  return static_cast<int>(*v);
}

struct ParserState {
  std::string source;
  int numvars = -1;
  std::vector<std::string> variables;
  std::unordered_map<std::string, int> var_index;
  std::vector<std::optional<bool>> constants;
  std::vector<bool> garbage;
  bool in_gates = false;
  bool done = false;
  Circuit circuit;
};

void handle_directive(ParserState& st, const std::vector<std::string>& tokens,
                      int line_no) {
  const std::string key = to_lower(tokens[0]);
  if (key == ".version" || key == ".inputs" || key == ".outputs" ||
      key == ".inputbus" || key == ".outputbus" || key == ".state" ||
      key == ".module") {
    return;  // informational; not needed for synthesis
  }
  if (key == ".numvars") {
    if (tokens.size() != 2)
      parse_fail(st.source, line_no, ".numvars expects one argument");
    st.numvars = parse_count(st.source, line_no, tokens[1], ".numvars");
    if (st.numvars <= 0)
      parse_fail(st.source, line_no, ".numvars must be positive");
    return;
  }
  if (key == ".variables") {
    if (st.numvars < 0)
      parse_fail(st.source, line_no, ".variables before .numvars");
    if (static_cast<int>(tokens.size()) - 1 != st.numvars)
      parse_fail(st.source, line_no, ".variables count != .numvars");
    st.variables.assign(tokens.begin() + 1, tokens.end());
    for (int i = 0; i < st.numvars; ++i) {
      if (!st.var_index.emplace(st.variables[static_cast<std::size_t>(i)], i)
               .second)
        parse_fail(st.source, line_no, "duplicate variable name");
    }
    return;
  }
  if (key == ".constants") {
    if (tokens.size() != 2)
      parse_fail(st.source, line_no, ".constants expects one token");
    st.constants.clear();
    for (char c : tokens[1]) {
      if (c == '-')
        st.constants.emplace_back(std::nullopt);
      else if (c == '0')
        st.constants.emplace_back(false);
      else if (c == '1')
        st.constants.emplace_back(true);
      else
        parse_fail(st.source, line_no, ".constants: bad character");
    }
    return;
  }
  if (key == ".garbage") {
    if (tokens.size() != 2)
      parse_fail(st.source, line_no, ".garbage expects one token");
    st.garbage.clear();
    for (char c : tokens[1]) {
      if (c == '-')
        st.garbage.push_back(false);
      else if (c == '1')
        st.garbage.push_back(true);
      else
        parse_fail(st.source, line_no, ".garbage: bad character");
    }
    return;
  }
  if (key == ".begin") {
    if (st.numvars < 0) parse_fail(st.source, line_no, ".begin before .numvars");
    st.circuit = Circuit(st.numvars);
    if (!st.variables.empty()) st.circuit.set_qubit_names(st.variables);
    if (!st.constants.empty()) {
      if (static_cast<int>(st.constants.size()) != st.numvars)
        parse_fail(st.source, line_no, ".constants length != .numvars");
      st.circuit.set_constant_inputs(st.constants);
    }
    if (!st.garbage.empty()) {
      if (static_cast<int>(st.garbage.size()) != st.numvars)
        parse_fail(st.source, line_no, ".garbage length != .numvars");
      st.circuit.set_garbage_outputs(st.garbage);
    }
    st.in_gates = true;
    return;
  }
  if (key == ".end") {
    st.done = true;
    return;
  }
  parse_fail(st.source, line_no, "unknown directive " + tokens[0]);
}

int resolve_qubit(ParserState& st, const std::string& token, int line_no) {
  const auto it = st.var_index.find(token);
  if (it != st.var_index.end()) return it->second;
  // Some RevLib files reference qubits positionally (x0, x1, ...). The
  // checked parse bounds the index against the declared register, so a
  // truncated or corrupt token ("x", "x99999999999") diagnoses instead of
  // indexing out of range or throwing std::out_of_range.
  if (st.variables.empty() && token.size() >= 2 &&
      (token[0] == 'x' || token[0] == 'q')) {
    const auto q = try_parse_i64(std::string_view(token).substr(1));
    if (q && *q >= 0 && *q < st.numvars) return static_cast<int>(*q);
    if (q)
      parse_fail(st.source, line_no,
                 "qubit " + token + " out of range (register has " +
                     std::to_string(st.numvars) + " variables)");
  }
  parse_fail(st.source, line_no, "unknown qubit name " + token);
}

void handle_gate(ParserState& st, const std::vector<std::string>& tokens,
                 int line_no) {
  const std::string mnemonic = to_lower(tokens[0]);
  if (mnemonic.empty())
    parse_fail(st.source, line_no, "empty gate mnemonic");

  std::vector<int> qubits;
  qubits.reserve(tokens.size() - 1);
  for (std::size_t i = 1; i < tokens.size(); ++i)
    qubits.push_back(resolve_qubit(st, tokens[i], line_no));

  const char family = mnemonic[0];
  const auto arity_parsed = try_parse_i64(std::string_view(mnemonic).substr(1));
  if (!arity_parsed || *arity_parsed < 0 || *arity_parsed > kMaxNumvars)
    parse_fail(st.source, line_no, "unsupported gate " + tokens[0]);
  const int arity = static_cast<int>(*arity_parsed);
  // A declared arity of zero ("t0") would leave the operand list empty and
  // the target lookup below out of bounds; reject it up front.
  if (arity < 1)
    parse_fail(st.source, line_no,
               "gate " + tokens[0] + " declares zero operands");
  if (arity != static_cast<int>(qubits.size()))
    parse_fail(st.source, line_no,
               "gate arity mismatch: " + tokens[0] + " with " +
                   std::to_string(qubits.size()) + " operands");

  // Circuit::add re-validates ranges and duplicate operands; translate its
  // context-free TqecError into a line-numbered parse diagnosis.
  const auto add_gate = [&](Gate gate) {
    try {
      st.circuit.add(std::move(gate));
    } catch (const TqecError& e) {
      parse_fail(st.source, line_no, e.what());
    }
  };

  if (family == 't') {
    const int target = qubits.back();
    std::vector<int> controls(qubits.begin(), qubits.end() - 1);
    switch (controls.size()) {
      case 0: add_gate(Gate::x(target)); break;
      case 1: add_gate(Gate::cnot(controls[0], target)); break;
      case 2: add_gate(Gate::toffoli(controls[0], controls[1], target));
        break;
      default: add_gate(Gate::mct(std::move(controls), target)); break;
    }
    return;
  }
  if (family == 'f') {
    if (qubits.size() < 2)
      parse_fail(st.source, line_no, "fredkin needs >= 2 operands");
    const int b = qubits.back();
    const int a = qubits[qubits.size() - 2];
    std::vector<int> controls(qubits.begin(), qubits.end() - 2);
    if (controls.empty())
      add_gate(Gate::swap(a, b));
    else
      add_gate(Gate::fredkin(std::move(controls), a, b));
    return;
  }
  parse_fail(st.source, line_no, "unsupported gate family " + tokens[0]);
}

}  // namespace

Circuit parse_real(std::istream& in, const std::string& source_name) {
  ParserState st;
  st.source = source_name;
  std::string raw_line;
  int line_no = 0;
  while (std::getline(in, raw_line)) {
    ++line_no;
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) continue;
    if (tokens[0][0] == '.') {
      handle_directive(st, tokens, line_no);
      if (st.done) break;
    } else {
      if (!st.in_gates)
        parse_fail(st.source, line_no, "gate before .begin");
      handle_gate(st, tokens, line_no);
    }
  }
  if (!st.in_gates) throw ParseError(source_name, 0, "no .begin section found");
  if (!st.done)
    throw ParseError(source_name, 0,
                     "no .end directive (truncated document?)");
  return std::move(st.circuit);
}

Circuit parse_real_string(const std::string& text,
                          const std::string& source_name) {
  std::istringstream in(text);
  return parse_real(in, source_name);
}

Circuit parse_real_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TqecError("cannot open " + path);
  return parse_real(in, path);
}

std::string write_real(const Circuit& circuit) {
  std::ostringstream os;
  os << ".version 1.0\n";
  os << ".numvars " << circuit.num_qubits() << "\n";
  os << ".variables";
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    if (!circuit.qubit_names().empty())
      os << ' ' << circuit.qubit_names()[static_cast<std::size_t>(q)];
    else
      os << " x" << q;
  }
  os << "\n.begin\n";
  auto name_of = [&](int q) {
    if (!circuit.qubit_names().empty())
      return circuit.qubit_names()[static_cast<std::size_t>(q)];
    return "x" + std::to_string(q);
  };
  for (const Gate& g : circuit.gates()) {
    char family = 0;
    switch (g.kind) {
      case GateKind::X:
      case GateKind::Cnot:
      case GateKind::Toffoli:
      case GateKind::Mct:
        family = 't';
        break;
      case GateKind::Swap:
      case GateKind::Fredkin:
        family = 'f';
        break;
      default:
        throw TqecError("write_real: non-reversible gate " + g.to_string());
    }
    const std::size_t arity = g.controls.size() + g.targets.size();
    os << family << arity;
    for (int q : g.controls) os << ' ' << name_of(q);
    for (int q : g.targets) os << ' ' << name_of(q);
    os << "\n";
  }
  os << ".end\n";
  return os.str();
}

}  // namespace tqec::qcir
