// Synthetic reversible-circuit generation.
//
// RevLib benchmark files are not redistributable with this repository, so
// the benchmark suite is driven by (a) small hand-written .real circuits in
// examples/data and (b) randomly generated reversible circuits with a
// locality knob that mimics the arithmetic/kernel structure of the RevLib
// suite (gates mostly touch nearby lines). See icm/workload.h for the
// generator that reproduces the paper's post-decomposition statistics
// directly at the ICM level.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "qcir/circuit.h"

namespace tqec::qcir {

struct RandomReversibleSpec {
  int num_qubits = 8;
  int num_gates = 32;
  /// Fraction of gates that are Toffoli (the rest split CNOT/NOT).
  double toffoli_fraction = 0.5;
  /// Mean distance between a gate's qubits; small = local structure.
  int locality_window = 4;
  std::uint64_t seed = 1;
};

/// Generate a random reversible circuit of NOT/CNOT/Toffoli gates.
Circuit make_random_reversible(const RandomReversibleSpec& spec);

}  // namespace tqec::qcir
