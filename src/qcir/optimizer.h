// Reversible-circuit peephole optimization for the preprocess stage.
//
// RevLib netlists and naive syntheses contain trivially removable gate
// pairs; eliminating them before decomposition shrinks every downstream
// quantity (T count, ICM lines, PD-graph modules). Rules applied to
// fixpoint, with commutation awareness (a gate pair can cancel across
// gates that act on disjoint qubit sets):
//   O1  G . G = I          for self-inverse kinds (X, CNOT, Toffoli, MCT,
//                          Fredkin, Swap, H, Z)
//   O2  T.Tdg = Tdg.T = I,  S.Sdg = Sdg.S = I
//   O3  T.T -> S, Tdg.Tdg -> Sdg, S.S -> Z (gate-count reducing fusions)
// The pass never reorders gates that share a qubit, so functional
// equivalence is syntactic; the tests double-check with the state-vector
// simulator.
#pragma once

#include "qcir/circuit.h"

namespace tqec::qcir {

struct OptimizeStats {
  int cancelled_pairs = 0;
  int fused_pairs = 0;
  std::int64_t gates_before = 0;
  std::int64_t gates_after = 0;
};

/// Run the peephole pass to fixpoint; returns the optimized circuit.
Circuit optimize(const Circuit& circuit, OptimizeStats* stats = nullptr);

}  // namespace tqec::qcir
