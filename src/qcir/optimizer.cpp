#include "qcir/optimizer.h"

#include <algorithm>
#include <optional>

namespace tqec::qcir {

namespace {

bool self_inverse(GateKind kind) {
  switch (kind) {
    case GateKind::X:
    case GateKind::Cnot:
    case GateKind::Toffoli:
    case GateKind::Mct:
    case GateKind::Fredkin:
    case GateKind::Swap:
    case GateKind::H:
    case GateKind::Z:
      return true;
    default:
      return false;
  }
}

bool same_operands(const Gate& a, const Gate& b) {
  return a.controls == b.controls && a.targets == b.targets;
}

bool disjoint(const Gate& a, const Gate& b) {
  for (int q : a.qubits())
    for (int r : b.qubits())
      if (q == r) return false;
  return true;
}

/// If a and b (a before b, possibly with disjoint gates between) combine,
/// return the replacement (nullopt_gate = annihilate to identity).
struct Combine {
  bool cancels = false;                // both gates vanish
  std::optional<Gate> fused;           // both gates replaced by one
};

Combine try_combine(const Gate& a, const Gate& b) {
  Combine result;
  if (!same_operands(a, b)) return result;
  // O1: self-inverse pair.
  if (a.kind == b.kind && self_inverse(a.kind)) {
    result.cancels = true;
    return result;
  }
  // O2: inverse phase pairs.
  const auto inverse_pair = [&](GateKind x, GateKind y) {
    return (a.kind == x && b.kind == y) || (a.kind == y && b.kind == x);
  };
  if (inverse_pair(GateKind::T, GateKind::Tdg) ||
      inverse_pair(GateKind::S, GateKind::Sdg)) {
    result.cancels = true;
    return result;
  }
  // O3: phase fusions.
  if (a.kind == b.kind) {
    switch (a.kind) {
      case GateKind::T: result.fused = Gate::s(a.targets[0]); break;
      case GateKind::Tdg: result.fused = Gate::sdg(a.targets[0]); break;
      case GateKind::S:
      case GateKind::Sdg: result.fused = Gate::z(a.targets[0]); break;
      default: break;
    }
  }
  return result;
}

}  // namespace

Circuit optimize(const Circuit& circuit, OptimizeStats* stats) {
  OptimizeStats local;
  local.gates_before = static_cast<std::int64_t>(circuit.size());

  std::vector<Gate> gates(circuit.gates());
  std::vector<bool> dead(gates.size(), false);

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (dead[i]) continue;
      // Scan forward for a partner; stop at the first live gate sharing a
      // qubit (commutation barrier).
      for (std::size_t j = i + 1; j < gates.size(); ++j) {
        if (dead[j]) continue;
        const Combine combine = try_combine(gates[i], gates[j]);
        if (combine.cancels) {
          dead[i] = dead[j] = true;
          ++local.cancelled_pairs;
          changed = true;
          break;
        }
        if (combine.fused) {
          gates[i] = *combine.fused;
          dead[j] = true;
          ++local.fused_pairs;
          changed = true;
          break;
        }
        if (!disjoint(gates[i], gates[j])) break;
      }
    }
  }

  Circuit out(circuit.num_qubits(), circuit.name());
  if (!circuit.qubit_names().empty())
    out.set_qubit_names(circuit.qubit_names());
  if (!circuit.constant_inputs().empty())
    out.set_constant_inputs(circuit.constant_inputs());
  if (!circuit.garbage_outputs().empty())
    out.set_garbage_outputs(circuit.garbage_outputs());
  for (std::size_t i = 0; i < gates.size(); ++i)
    if (!dead[i]) out.add(gates[i]);

  local.gates_after = static_cast<std::int64_t>(out.size());
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace tqec::qcir
