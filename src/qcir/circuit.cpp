#include "qcir/circuit.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace tqec::qcir {

const char* gate_kind_name(GateKind kind) {
  switch (kind) {
    case GateKind::X: return "X";
    case GateKind::Cnot: return "CNOT";
    case GateKind::Toffoli: return "TOFFOLI";
    case GateKind::Mct: return "MCT";
    case GateKind::Fredkin: return "FREDKIN";
    case GateKind::Swap: return "SWAP";
    case GateKind::H: return "H";
    case GateKind::S: return "S";
    case GateKind::Sdg: return "Sdg";
    case GateKind::T: return "T";
    case GateKind::Tdg: return "Tdg";
    case GateKind::Z: return "Z";
  }
  return "?";
}

bool is_clifford_t(GateKind kind) {
  switch (kind) {
    case GateKind::X:
    case GateKind::Cnot:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::Z:
      return true;
    default:
      return false;
  }
}

std::string Gate::to_string() const {
  std::ostringstream os;
  os << gate_kind_name(kind) << '(';
  for (std::size_t i = 0; i < controls.size(); ++i) {
    if (i != 0) os << ',';
    os << controls[i];
  }
  os << ';';
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (i != 0) os << ',';
    os << targets[i];
  }
  os << ')';
  return os.str();
}

void Circuit::check_gate(const Gate& gate) const {
  std::unordered_set<int> seen;
  for (int q : gate.qubits()) {
    TQEC_REQUIRE(q >= 0 && q < num_qubits_,
                 "gate qubit out of range: " + gate.to_string());
    TQEC_REQUIRE(seen.insert(q).second,
                 "gate qubits must be distinct: " + gate.to_string());
  }
  const std::size_t nc = gate.controls.size();
  const std::size_t nt = gate.targets.size();
  switch (gate.kind) {
    case GateKind::X:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::Z:
      TQEC_REQUIRE(nc == 0 && nt == 1,
                   "single-qubit gate arity: " + gate.to_string());
      break;
    case GateKind::Cnot:
      TQEC_REQUIRE(nc == 1 && nt == 1, "CNOT arity: " + gate.to_string());
      break;
    case GateKind::Toffoli:
      TQEC_REQUIRE(nc == 2 && nt == 1, "Toffoli arity: " + gate.to_string());
      break;
    case GateKind::Mct:
      TQEC_REQUIRE(nc >= 3 && nt == 1, "MCT arity: " + gate.to_string());
      break;
    case GateKind::Swap:
      TQEC_REQUIRE(nc == 0 && nt == 2, "SWAP arity: " + gate.to_string());
      break;
    case GateKind::Fredkin:
      TQEC_REQUIRE(nc >= 1 && nt == 2, "Fredkin arity: " + gate.to_string());
      break;
  }
}

void Circuit::add(Gate gate) {
  check_gate(gate);
  gates_.push_back(std::move(gate));
}

void Circuit::set_qubit_names(std::vector<std::string> names) {
  TQEC_REQUIRE(static_cast<int>(names.size()) == num_qubits_,
               "qubit name count mismatch");
  qubit_names_ = std::move(names);
}

void Circuit::set_constant_inputs(std::vector<std::optional<bool>> constants) {
  TQEC_REQUIRE(static_cast<int>(constants.size()) == num_qubits_,
               "constant-input count mismatch");
  constant_inputs_ = std::move(constants);
}

void Circuit::set_garbage_outputs(std::vector<bool> garbage) {
  TQEC_REQUIRE(static_cast<int>(garbage.size()) == num_qubits_,
               "garbage-output count mismatch");
  garbage_outputs_ = std::move(garbage);
}

CircuitStats Circuit::stats() const {
  CircuitStats s;
  s.num_qubits = num_qubits_;
  s.total_gates = static_cast<std::int64_t>(gates_.size());
  for (const Gate& g : gates_) {
    switch (g.kind) {
      case GateKind::X: ++s.x; break;
      case GateKind::Cnot: ++s.cnot; break;
      case GateKind::Toffoli: ++s.toffoli; break;
      case GateKind::Mct: ++s.mct; break;
      case GateKind::Fredkin: ++s.fredkin; break;
      case GateKind::Swap: ++s.swap_; break;
      case GateKind::H: ++s.h; break;
      case GateKind::S:
      case GateKind::Sdg: ++s.s; break;
      case GateKind::T:
      case GateKind::Tdg: ++s.t; break;
      case GateKind::Z: ++s.z; break;
    }
  }
  return s;
}

bool Circuit::is_clifford_t() const {
  return std::all_of(gates_.begin(), gates_.end(),
                     [](const Gate& g) { return qcir::is_clifford_t(g.kind); });
}

std::vector<bool> Circuit::simulate_classical(std::vector<bool> state) const {
  TQEC_REQUIRE(static_cast<int>(state.size()) == num_qubits_,
               "input size mismatch");
  for (const Gate& g : gates_) {
    const bool controls_on =
        std::all_of(g.controls.begin(), g.controls.end(),
                    [&](int c) { return state[static_cast<std::size_t>(c)]; });
    switch (g.kind) {
      case GateKind::X:
      case GateKind::Cnot:
      case GateKind::Toffoli:
      case GateKind::Mct:
        if (controls_on) {
          auto t = static_cast<std::size_t>(g.targets[0]);
          state[t] = !state[t];
        }
        break;
      case GateKind::Swap:
      case GateKind::Fredkin:
        if (controls_on) {
          auto a = static_cast<std::size_t>(g.targets[0]);
          auto b = static_cast<std::size_t>(g.targets[1]);
          const bool tmp = state[a];
          state[a] = state[b];
          state[b] = tmp;
        }
        break;
      default:
        throw TqecError("simulate_classical: non-reversible gate " +
                        g.to_string());
    }
  }
  return state;
}

}  // namespace tqec::qcir
