// RevLib .real format parser and writer.
//
// The paper's benchmarks come from RevLib [Wille et al., ISMVL'08], whose
// circuits are distributed in the .real format: a header (.version,
// .numvars, .variables, .inputs, .outputs, .constants, .garbage) followed by
// a gate list between .begin and .end. Gate lines are
//   t<k> q1 ... qk     multiple-control Toffoli (k-1 controls, last is target)
//   f<k> q1 ... qk     multiple-control Fredkin (k-2 controls, last two swap)
// This parser accepts the common subset used by the benchmark suite and
// rejects malformed input with a line-numbered TqecError.
#pragma once

#include <iosfwd>
#include <string>

#include "qcir/circuit.h"

namespace tqec::qcir {

/// Parse a .real document from a stream. `source_name` is used in errors.
Circuit parse_real(std::istream& in, const std::string& source_name = "<real>");

/// Parse a .real document from a string.
Circuit parse_real_string(const std::string& text,
                          const std::string& source_name = "<string>");

/// Parse a .real file from disk.
Circuit parse_real_file(const std::string& path);

/// Serialize a reversible circuit (X/CNOT/Toffoli/MCT/Fredkin/Swap kinds
/// only) back to the .real format.
std::string write_real(const Circuit& circuit);

}  // namespace tqec::qcir
