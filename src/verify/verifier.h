// End-to-end verification of a compressed TQEC design.
//
// Compression is only useful if it provably did not change the computation.
// The paper argues this stage by stage (topological deformation preserves
// loop relationships, bridges merge structures through one continuous
// common segment, flipping does not change pass-through records); this
// module checks the final artifact directly against the PD graph, which is
// the authoritative braiding record:
//
//   B1 braid threading   — every original dual net's routed component
//                          passes through the cells of exactly the primal
//                          modules recorded in the PD graph (no module
//                          missed, no unrelated module threaded);
//   B2 structure merging — primal cells are claimed by exactly one
//                          placement node and dual cells by one component
//                          outside the loop-port regions;
//   B3 measurement order — every time-ordered measurement constraint holds
//                          on the final geometry (the x coordinate of the
//                          module carrying the earlier measurement is
//                          strictly smaller);
//   B4 geometry validity — the emitted geometric description passes the
//                          structural validator (geom/validate.h);
//   B5 volume accounting — the reported volume equals the bounding box of
//                          the emitted geometry.
//
// verify_design() runs all checks and returns a report; tests and the CLI
// gate on it.
#pragma once

#include <string>
#include <vector>

#include "core/compiler.h"

namespace tqec::verify {

struct VerifyIssue {
  std::string check;  // "B1".."B5"
  std::string detail;
};

struct VerifyReport {
  std::vector<VerifyIssue> issues;
  int braids_checked = 0;
  int constraints_checked = 0;
  bool ok() const { return issues.empty(); }
  std::string summary() const;
};

/// Inputs needed beyond the CompileResult: the PD graph and net-component
/// structures the pipeline used (reconstructable from the ICM circuit).
struct VerifyInputs {
  const pdgraph::PdGraph* graph = nullptr;
  const place::NodeSet* nodes = nullptr;
  const place::Placement* placement = nullptr;
  const route::RoutingResult* routing = nullptr;
  compress::DualBridging* dual = nullptr;
};

VerifyReport verify_design(const VerifyInputs& inputs,
                           const geom::GeomDescription& geometry);

/// Convenience: verify a compile result produced with
/// CompileOptions::keep_internals (and emit_geometry) enabled.
VerifyReport verify_result(const core::CompileResult& result);

}  // namespace tqec::verify
