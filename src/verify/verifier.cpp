#include "verify/verifier.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "geom/validate.h"

namespace tqec::verify {

namespace {

void check_braid_threading(const VerifyInputs& in, VerifyReport& report) {
  // Component -> routed cells.
  std::unordered_map<pdgraph::NetId, std::size_t> component_index;
  for (const pdgraph::DualNet& net : in.graph->nets())
    component_index.emplace(in.dual->component_of(net.id),
                            component_index.size());

  std::vector<std::unordered_set<Vec3>> component_cells(
      in.routing->nets.size());
  for (const route::RoutedNet& net : in.routing->nets) {
    auto& cells = component_cells[static_cast<std::size_t>(net.component)];
    cells.insert(net.cells.begin(), net.cells.end());
  }

  // Module cell -> module id (for the unrelated-threading check).
  std::unordered_map<Vec3, pdgraph::ModuleId> module_at;
  for (std::size_t m = 0; m < in.placement->module_cell.size(); ++m)
    module_at.emplace(in.placement->module_cell[m],
                      static_cast<pdgraph::ModuleId>(m));

  // Pin sets per component (what the braid record allows).
  std::vector<std::unordered_set<pdgraph::ModuleId>> allowed(
      in.nodes->net_pins.size());
  for (std::size_t c = 0; c < in.nodes->net_pins.size(); ++c)
    allowed[c].insert(in.nodes->net_pins[c].begin(),
                      in.nodes->net_pins[c].end());

  for (const pdgraph::DualNet& net : in.graph->nets()) {
    const std::size_t c = component_index.at(in.dual->component_of(net.id));
    const auto& cells = component_cells[c];
    for (pdgraph::ModuleId m : net.path()) {
      ++report.braids_checked;
      const Vec3 pin = in.placement->module_cell[static_cast<std::size_t>(m)];
      if (!cells.count(pin)) {
        std::ostringstream os;
        os << "net " << net.id << " no longer threads module " << m;
        report.issues.push_back({"B1", os.str()});
      }
    }
  }
  for (std::size_t c = 0; c < component_cells.size(); ++c) {
    for (const Vec3& cell : component_cells[c]) {
      const auto it = module_at.find(cell);
      if (it == module_at.end()) continue;
      if (!allowed[c].count(it->second)) {
        std::ostringstream os;
        os << "component " << c << " threads unrelated module "
           << it->second << " at " << cell;
        report.issues.push_back({"B1", os.str()});
      }
    }
  }
}

void check_structure_claims(const VerifyInputs& in, VerifyReport& report) {
  // Each primal cell belongs to exactly one module (already implied by the
  // module-cell map being injective).
  std::unordered_set<Vec3> seen;
  for (std::size_t m = 0; m < in.placement->module_cell.size(); ++m) {
    if (!seen.insert(in.placement->module_cell[m]).second) {
      std::ostringstream os;
      os << "two modules placed at " << in.placement->module_cell[m];
      report.issues.push_back({"B2", os.str()});
    }
  }
  // Boxes must not cover module cells.
  for (const geom::DistillBox& box : in.placement->boxes) {
    for (const Vec3& cell : in.placement->module_cell) {
      if (box.extent().contains(cell)) {
        std::ostringstream os;
        os << "distillation box covers module cell " << cell;
        report.issues.push_back({"B2", os.str()});
      }
    }
  }
}

void check_measurement_order(const VerifyInputs& in, VerifyReport& report) {
  for (const auto& [before, after] : in.graph->meas_order()) {
    ++report.constraints_checked;
    const int xa =
        in.placement->module_cell[static_cast<std::size_t>(before)].x;
    const int xb =
        in.placement->module_cell[static_cast<std::size_t>(after)].x;
    if (xa >= xb) {
      std::ostringstream os;
      os << "measurement order violated: module " << before << " at x="
         << xa << " must precede module " << after << " at x=" << xb;
      report.issues.push_back({"B3", os.str()});
    }
  }
}

}  // namespace

std::string VerifyReport::summary() const {
  std::ostringstream os;
  os << braids_checked << " braid records, " << constraints_checked
     << " order constraints checked: ";
  if (ok()) {
    os << "all preserved";
  } else {
    os << issues.size() << " issue(s)";
    for (const auto& issue : issues)
      os << "\n  [" << issue.check << "] " << issue.detail;
  }
  return os.str();
}

VerifyReport verify_design(const VerifyInputs& inputs,
                           const geom::GeomDescription& geometry) {
  TQEC_REQUIRE(inputs.graph != nullptr && inputs.nodes != nullptr &&
                   inputs.placement != nullptr && inputs.routing != nullptr &&
                   inputs.dual != nullptr,
               "verify_design: incomplete inputs");
  VerifyReport report;
  check_braid_threading(inputs, report);
  check_structure_claims(inputs, report);
  check_measurement_order(inputs, report);

  // B4: structural validity of the emitted geometry.
  const geom::ValidationReport g = geom::validate(geometry);
  for (const geom::ValidationIssue& issue : g.issues)
    report.issues.push_back({"B4", "[" + issue.rule + "] " + issue.detail});

  // B5: volume accounting.
  if (geometry.volume() != inputs.routing->volume) {
    std::ostringstream os;
    os << "geometry bounding volume " << geometry.volume()
       << " != reported routing volume " << inputs.routing->volume;
    report.issues.push_back({"B5", os.str()});
  }
  return report;
}

VerifyReport verify_result(const core::CompileResult& result) {
  TQEC_REQUIRE(result.internals != nullptr,
               "verify_result: compile with keep_internals = true");
  VerifyInputs inputs;
  inputs.graph = &result.internals->graph;
  inputs.nodes = &result.internals->nodes;
  inputs.placement = &result.placement;
  inputs.routing = &result.routing;
  inputs.dual = &result.internals->dual;
  return verify_design(inputs, result.geometry);
}

}  // namespace tqec::verify
