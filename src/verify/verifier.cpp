#include "verify/verifier.h"

#include <algorithm>
#include <sstream>

#include "geom/validate.h"

namespace tqec::verify {

namespace {

/// Sort + dedup, leaving a vector std::binary_search can probe. The
/// verifier's occupancy checks ran on node-based hash sets before the
/// data-oriented geometry engine; sorted flat vectors keep the memory in
/// three contiguous runs and make every membership probe a branchy-but-
/// cache-resident binary search.
template <typename T>
void sort_unique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

void check_braid_threading(const VerifyInputs& in, VerifyReport& report) {
  // Component representative -> dense index, in first-seen order.
  std::vector<std::pair<pdgraph::NetId, std::size_t>> component_index;
  for (const pdgraph::DualNet& net : in.graph->nets()) {
    const pdgraph::NetId rep = in.dual->component_of(net.id);
    bool known = false;
    for (const auto& [seen_rep, idx] : component_index)
      if (seen_rep == rep) {
        known = true;
        break;
      }
    if (!known) component_index.emplace_back(rep, component_index.size());
  }
  std::sort(component_index.begin(), component_index.end());
  const auto index_of = [&](pdgraph::NetId rep) {
    const auto it = std::lower_bound(
        component_index.begin(), component_index.end(), rep,
        [](const auto& e, pdgraph::NetId key) { return e.first < key; });
    TQEC_REQUIRE(it != component_index.end() && it->first == rep,
                 "verify: unknown dual component");
    return it->second;
  };

  // Component -> routed cells, sorted-unique.
  std::vector<std::vector<Vec3>> component_cells(in.routing->nets.size());
  for (const route::RoutedNet& net : in.routing->nets) {
    auto& cells = component_cells[static_cast<std::size_t>(net.component)];
    cells.insert(cells.end(), net.cells.begin(), net.cells.end());
  }
  for (auto& cells : component_cells) sort_unique(cells);

  // Module cell -> module id (for the unrelated-threading check); ties on
  // a cell resolve to the smallest module id, matching the first-wins map
  // this replaced (module ids were inserted in ascending order).
  std::vector<std::pair<Vec3, pdgraph::ModuleId>> module_at;
  module_at.reserve(in.placement->module_cell.size());
  for (std::size_t m = 0; m < in.placement->module_cell.size(); ++m)
    module_at.emplace_back(in.placement->module_cell[m],
                           static_cast<pdgraph::ModuleId>(m));
  std::sort(module_at.begin(), module_at.end());
  const auto module_of = [&](Vec3 cell) -> const pdgraph::ModuleId* {
    const auto it = std::lower_bound(
        module_at.begin(), module_at.end(), cell,
        [](const auto& e, Vec3 key) { return e.first < key; });
    if (it == module_at.end() || it->first != cell) return nullptr;
    return &it->second;
  };

  // Pin sets per component (what the braid record allows).
  std::vector<std::vector<pdgraph::ModuleId>> allowed(
      in.nodes->net_pins.size());
  for (std::size_t c = 0; c < in.nodes->net_pins.size(); ++c) {
    allowed[c].assign(in.nodes->net_pins[c].begin(),
                      in.nodes->net_pins[c].end());
    sort_unique(allowed[c]);
  }

  for (const pdgraph::DualNet& net : in.graph->nets()) {
    const std::size_t c = index_of(in.dual->component_of(net.id));
    const auto& cells = component_cells[c];
    for (pdgraph::ModuleId m : net.path()) {
      ++report.braids_checked;
      const Vec3 pin = in.placement->module_cell[static_cast<std::size_t>(m)];
      if (!std::binary_search(cells.begin(), cells.end(), pin)) {
        std::ostringstream os;
        os << "net " << net.id << " no longer threads module " << m;
        report.issues.push_back({"B1", os.str()});
      }
    }
  }
  for (std::size_t c = 0; c < component_cells.size(); ++c) {
    for (const Vec3& cell : component_cells[c]) {
      const pdgraph::ModuleId* m = module_of(cell);
      if (m == nullptr) continue;
      if (!std::binary_search(allowed[c].begin(), allowed[c].end(), *m)) {
        std::ostringstream os;
        os << "component " << c << " threads unrelated module "
           << *m << " at " << cell;
        report.issues.push_back({"B1", os.str()});
      }
    }
  }
}

void check_structure_claims(const VerifyInputs& in, VerifyReport& report) {
  // Each primal cell belongs to exactly one module (already implied by the
  // module-cell map being injective). Sort a (cell, module) index and
  // report every member of a duplicate run but its first, in ascending
  // module order — the same issues the incremental hash-set scan emitted.
  std::vector<std::pair<Vec3, std::size_t>> by_cell;
  by_cell.reserve(in.placement->module_cell.size());
  for (std::size_t m = 0; m < in.placement->module_cell.size(); ++m)
    by_cell.emplace_back(in.placement->module_cell[m], m);
  std::sort(by_cell.begin(), by_cell.end());
  std::vector<std::pair<std::size_t, Vec3>> dup_modules;
  for (std::size_t i = 1; i < by_cell.size(); ++i)
    if (by_cell[i].first == by_cell[i - 1].first)
      dup_modules.emplace_back(by_cell[i].second, by_cell[i].first);
  std::sort(dup_modules.begin(), dup_modules.end());
  for (const auto& [m, cell] : dup_modules) {
    (void)m;
    std::ostringstream os;
    os << "two modules placed at " << cell;
    report.issues.push_back({"B2", os.str()});
  }
  // Boxes must not cover module cells.
  for (const geom::DistillBox& box : in.placement->boxes) {
    for (const Vec3& cell : in.placement->module_cell) {
      if (box.extent().contains(cell)) {
        std::ostringstream os;
        os << "distillation box covers module cell " << cell;
        report.issues.push_back({"B2", os.str()});
      }
    }
  }
}

void check_measurement_order(const VerifyInputs& in, VerifyReport& report) {
  for (const auto& [before, after] : in.graph->meas_order()) {
    ++report.constraints_checked;
    const int xa =
        in.placement->module_cell[static_cast<std::size_t>(before)].x;
    const int xb =
        in.placement->module_cell[static_cast<std::size_t>(after)].x;
    if (xa >= xb) {
      std::ostringstream os;
      os << "measurement order violated: module " << before << " at x="
         << xa << " must precede module " << after << " at x=" << xb;
      report.issues.push_back({"B3", os.str()});
    }
  }
}

}  // namespace

std::string VerifyReport::summary() const {
  std::ostringstream os;
  os << braids_checked << " braid records, " << constraints_checked
     << " order constraints checked: ";
  if (ok()) {
    os << "all preserved";
  } else {
    os << issues.size() << " issue(s)";
    for (const auto& issue : issues)
      os << "\n  [" << issue.check << "] " << issue.detail;
  }
  return os.str();
}

VerifyReport verify_design(const VerifyInputs& inputs,
                           const geom::GeomDescription& geometry) {
  TQEC_REQUIRE(inputs.graph != nullptr && inputs.nodes != nullptr &&
                   inputs.placement != nullptr && inputs.routing != nullptr &&
                   inputs.dual != nullptr,
               "verify_design: incomplete inputs");
  VerifyReport report;
  check_braid_threading(inputs, report);
  check_structure_claims(inputs, report);
  check_measurement_order(inputs, report);

  // B4: structural validity of the emitted geometry.
  const geom::ValidationReport g = geom::validate(geometry);
  for (const geom::ValidationIssue& issue : g.issues)
    report.issues.push_back({"B4", "[" + issue.rule + "] " + issue.detail});

  // B5: volume accounting.
  if (geometry.volume() != inputs.routing->volume) {
    std::ostringstream os;
    os << "geometry bounding volume " << geometry.volume()
       << " != reported routing volume " << inputs.routing->volume;
    report.issues.push_back({"B5", os.str()});
  }
  return report;
}

VerifyReport verify_result(const core::CompileResult& result) {
  TQEC_REQUIRE(result.internals != nullptr,
               "verify_result: compile with keep_internals = true");
  VerifyInputs inputs;
  inputs.graph = &result.internals->graph;
  inputs.nodes = &result.internals->nodes;
  inputs.placement = &result.placement;
  inputs.routing = &result.routing;
  inputs.dual = &result.internals->dual;
  return verify_design(inputs, result.geometry);
}

}  // namespace tqec::verify
