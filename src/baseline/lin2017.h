// Reimplementation of the layout-synthesis baseline of Lin et al.,
// "Layout synthesis for topological quantum circuits with 1-D and 2-D
// architectures" (TCAD'17) — the comparison rows of the paper's Table 2.
//
// Lin et al. fix the primal-defect qubit placement in a 1-D row or a 2-D
// grid and compress only along the time axis: CNOTs whose dual-defect
// routing patterns do not conflict share a time step (selected via a
// maximum-weight-independent-set formulation; we use the standard greedy
// equivalent). Volumes follow the same canonical normalization as Table 2
// (3 x-units per step, one y-unit per line, z-depth 2, distillation boxes
// accounted additively):
//
//   1-D: conflict when the qubit intervals [min(c,t), max(c,t)] of two
//        CNOTs intersect (their braids would cross on the row);
//        V = 3*S1 * Q * 2 + boxes.
//   2-D: lines arranged on a ceil(sqrt(Q))-wide grid; conflict when the
//        L-shaped routing bounding boxes intersect;
//        V = 3*S2 * gx * 2*gy + boxes.
//
// Gate dependencies (two CNOTs sharing a line keep their order) are
// respected, so the schedule is a legal topological compaction.
#pragma once

#include <cstdint>

#include "icm/icm.h"

namespace tqec::baseline {

struct LinResult {
  int time_steps = 0;      // S: scheduled step count
  std::int64_t volume = 0; // canonical-normalized space-time volume
  int grid_x = 0;          // 2-D: grid width (1-D: Q)
  int grid_y = 0;          // 2-D: grid height (1-D: 1)
};

/// 1-D architecture schedule + volume.
LinResult lin_1d(const icm::IcmCircuit& circuit);

/// 2-D architecture schedule + volume.
LinResult lin_2d(const icm::IcmCircuit& circuit);

}  // namespace tqec::baseline
