#include "baseline/lin2017.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geom/canonical.h"

namespace tqec::baseline {

namespace {

/// 2D interval/box on the qubit-arrangement plane.
struct Rect {
  int x0, y0, x1, y1;
  bool intersects(const Rect& o) const {
    return x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1;
  }
};

/// Greedy list scheduling with conflicts and per-line dependencies: each
/// CNOT goes to the earliest step after its line predecessors in which its
/// routing footprint conflicts with nothing already scheduled there. This
/// is the greedy equivalent of Lin et al.'s per-step maximum-weight
/// independent-set selection.
int schedule(const icm::IcmCircuit& circuit,
             const std::vector<Rect>& footprint) {
  const auto lines = static_cast<std::size_t>(circuit.num_lines());
  std::vector<int> line_ready(lines, 0);  // earliest step per line
  std::vector<std::vector<std::size_t>> step_gates;

  for (std::size_t g = 0; g < circuit.cnots().size(); ++g) {
    const icm::IcmCnot cnot = circuit.cnots()[g];
    int step = std::max(line_ready[static_cast<std::size_t>(cnot.control)],
                        line_ready[static_cast<std::size_t>(cnot.target)]);
    for (;; ++step) {
      if (step >= static_cast<int>(step_gates.size())) break;
      const auto& gates = step_gates[static_cast<std::size_t>(step)];
      const bool clash = std::any_of(
          gates.begin(), gates.end(), [&](std::size_t other) {
            return footprint[g].intersects(footprint[other]);
          });
      if (!clash) break;
    }
    if (step >= static_cast<int>(step_gates.size()))
      step_gates.resize(static_cast<std::size_t>(step) + 1);
    step_gates[static_cast<std::size_t>(step)].push_back(g);
    line_ready[static_cast<std::size_t>(cnot.control)] = step + 1;
    line_ready[static_cast<std::size_t>(cnot.target)] = step + 1;
  }
  return static_cast<int>(step_gates.size());
}

std::int64_t box_total(const icm::IcmStats& stats) {
  return geom::box_volume(geom::BoxKind::YBox) * stats.y_states +
         geom::box_volume(geom::BoxKind::ABox) * stats.a_states;
}

}  // namespace

LinResult lin_1d(const icm::IcmCircuit& circuit) {
  const icm::IcmStats stats = circuit.stats();
  std::vector<Rect> footprint;
  footprint.reserve(circuit.cnots().size());
  for (const icm::IcmCnot& cnot : circuit.cnots()) {
    const int lo = std::min(cnot.control, cnot.target);
    const int hi = std::max(cnot.control, cnot.target);
    footprint.push_back({lo, 0, hi, 0});
  }
  LinResult result;
  result.time_steps = schedule(circuit, footprint);
  result.grid_x = stats.qubits;
  result.grid_y = 1;
  result.volume = std::int64_t{3} * result.time_steps * stats.qubits * 2 +
                  box_total(stats);
  return result;
}

LinResult lin_2d(const icm::IcmCircuit& circuit) {
  const icm::IcmStats stats = circuit.stats();
  const int gx = std::max(
      1, static_cast<int>(std::lround(std::ceil(
             std::sqrt(static_cast<double>(stats.qubits))))));
  const int gy = (stats.qubits + gx - 1) / gx;
  auto cell_of = [&](int line) {
    return Rect{line % gx, line / gx, line % gx, line / gx};
  };
  std::vector<Rect> footprint;
  footprint.reserve(circuit.cnots().size());
  for (const icm::IcmCnot& cnot : circuit.cnots()) {
    // L-shaped route: the bounding box of the two grid cells.
    const Rect a = cell_of(cnot.control);
    const Rect b = cell_of(cnot.target);
    footprint.push_back({std::min(a.x0, b.x0), std::min(a.y0, b.y0),
                         std::max(a.x1, b.x1), std::max(a.y1, b.y1)});
  }
  LinResult result;
  result.time_steps = schedule(circuit, footprint);
  result.grid_x = gx;
  result.grid_y = gy;
  result.volume = std::int64_t{3} * result.time_steps * gx * (2 * gy) +
                  box_total(stats);
  return result;
}

}  // namespace tqec::baseline
