#include "icm/ordering.h"

#include <algorithm>
#include <queue>

namespace tqec::icm {

OrderAnalysis analyze_order(const IcmCircuit& circuit) {
  const auto n = static_cast<std::size_t>(circuit.num_lines());
  OrderAnalysis out;
  out.level.assign(n, 0);
  out.constrained.assign(n, false);

  std::vector<std::vector<int>> succ(n);
  std::vector<int> indegree(n, 0);
  for (const MeasOrder& c : circuit.meas_order()) {
    succ[static_cast<std::size_t>(c.before_line)].push_back(c.after_line);
    ++indegree[static_cast<std::size_t>(c.after_line)];
    out.constrained[static_cast<std::size_t>(c.before_line)] = true;
    out.constrained[static_cast<std::size_t>(c.after_line)] = true;
  }

  std::queue<int> ready;
  for (std::size_t v = 0; v < n; ++v)
    if (indegree[v] == 0) ready.push(static_cast<int>(v));

  std::size_t processed = 0;
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop();
    ++processed;
    for (int w : succ[static_cast<std::size_t>(v)]) {
      auto& lvl = out.level[static_cast<std::size_t>(w)];
      lvl = std::max(lvl, out.level[static_cast<std::size_t>(v)] + 1);
      if (--indegree[static_cast<std::size_t>(w)] == 0) ready.push(w);
    }
  }
  TQEC_REQUIRE(processed == n,
               "measurement-order constraints contain a cycle");
  out.max_level = n == 0 ? 0 : *std::max_element(out.level.begin(),
                                                 out.level.end());
  return out;
}

bool order_respected(const IcmCircuit& circuit, const std::vector<int>& time) {
  TQEC_REQUIRE(time.size() == static_cast<std::size_t>(circuit.num_lines()),
               "time vector size mismatch");
  return std::all_of(
      circuit.meas_order().begin(), circuit.meas_order().end(),
      [&](const MeasOrder& c) {
        return time[static_cast<std::size_t>(c.before_line)] <
               time[static_cast<std::size_t>(c.after_line)];
      });
}

}  // namespace tqec::icm
