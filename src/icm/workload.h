// Synthetic ICM workload generator reproducing the paper's Table 1.
//
// The paper evaluates on eight RevLib circuits, reporting their statistics
// *after* gate decomposition: #Qubits (ICM lines), #CNOTs, #|Y>, #|A>.
// The RevLib files themselves are not available offline, so this generator
// synthesizes ICM circuits with exactly those statistics and the same
// structural shape the Clifford+T -> ICM transformation produces:
//   - #|A> T-gate clusters, each contributing one |A> line, two |Y> lines,
//     three CNOTs chained off a logical data line, and the intra-/inter-T
//     measurement-order constraints;
//   - the remaining CNOTs placed between data lines with a locality window
//     (arithmetic circuits interact mostly with nearby lines);
//   - data lines = #Qubits - 3 * #|A>.
// All eight Table-1 rows satisfy these shape equations (see DESIGN.md), so
// downstream stages see problems of exactly the published size.
#pragma once

#include <cstdint>
#include <string>

#include "icm/icm.h"

namespace tqec::icm {

struct WorkloadSpec {
  std::string name;
  int qubits = 0;   // total ICM lines after decomposition
  int cnots = 0;    // total CNOTs
  int y_states = 0; // #|Y>; must equal 2 * a_states
  int a_states = 0; // #|A> (= number of T gates)
  /// Locality window for plain CNOT partner selection, in data lines.
  int locality_window = 16;
  std::uint64_t seed = 7;
};

/// Generate an ICM circuit with exactly the spec's statistics.
/// Throws TqecError if the spec is infeasible (qubits < 3*a_states + 2,
/// cnots < 3*a_states, or y_states != 2*a_states).
IcmCircuit make_workload(const WorkloadSpec& spec);

}  // namespace tqec::icm
