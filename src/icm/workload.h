// Synthetic ICM workload generator reproducing the paper's Table 1.
//
// The paper evaluates on eight RevLib circuits, reporting their statistics
// *after* gate decomposition: #Qubits (ICM lines), #CNOTs, #|Y>, #|A>.
// The RevLib files themselves are not available offline, so this generator
// synthesizes ICM circuits with exactly those statistics and the same
// structural shape the Clifford+T -> ICM transformation produces:
//   - #|A> T-gate clusters, each contributing one |A> line, two |Y> lines,
//     three CNOTs chained off a logical data line, and the intra-/inter-T
//     measurement-order constraints;
//   - the remaining CNOTs placed between data lines with a locality window
//     (arithmetic circuits interact mostly with nearby lines);
//   - data lines = #Qubits - 3 * #|A>.
// All eight Table-1 rows satisfy these shape equations (see DESIGN.md), so
// downstream stages see problems of exactly the published size.
#pragma once

#include <cstdint>
#include <string>

#include "icm/icm.h"

namespace tqec::icm {

struct WorkloadSpec {
  std::string name;
  int qubits = 0;   // total ICM lines after decomposition
  int cnots = 0;    // total CNOTs
  int y_states = 0; // #|Y>; must equal 2 * a_states
  int a_states = 0; // #|A> (= number of T gates)
  /// Locality window for plain CNOT partner selection, in data lines.
  int locality_window = 16;
  std::uint64_t seed = 7;
};

/// Generate an ICM circuit with exactly the spec's statistics.
/// Throws TqecError if the spec is infeasible (qubits < 3*a_states + 2,
/// cnots < 3*a_states, or y_states != 2*a_states).
IcmCircuit make_workload(const WorkloadSpec& spec);

/// Long-circuit family: layered random Clifford+T at configurable depth.
///
/// Where WorkloadSpec reproduces the paper's Table-1 *sizes*, this family
/// controls *depth*: each of `layers` rounds appends `t_per_layer` T-gate
/// clusters and `cnots_per_layer` plain CNOTs to the evolving data lines,
/// so the ASAP CNOT depth grows linearly with `layers` while the live line
/// set stays O(data_lines). That is exactly the stress shape the time-axis
/// sharded compiler targets: long and thin, with low-crossing time cuts.
struct LayeredWorkloadSpec {
  std::string name;
  int data_lines = 16;
  int layers = 32;
  int t_per_layer = 1;     // T clusters appended per layer
  int cnots_per_layer = 4; // plain CNOTs appended per layer
  /// Locality window for plain CNOT partner selection, in data lines.
  int locality_window = 8;
  std::uint64_t seed = 7;
};

/// Generate a layered long circuit. Deterministic in the spec (seeded).
/// Throws TqecError if data_lines < 2 or layers < 1.
IcmCircuit make_layered_workload(const LayeredWorkloadSpec& spec);

/// Parse a long-circuit family name of the form
///   long_<data>x<layers>[_t<per>][_c<per>][_w<window>][_s<seed>]
/// e.g. "long_32x96" or "long_16x24_t2_c6". Returns false if `name` is not
/// in the family or the numbers are out of range; on success fills `spec`
/// (with spec.name = name; the incoming spec.seed is kept as the default
/// when the name carries no `_s<seed>` suffix, so callers can thread the
/// request seed through). This is how the CLI, tqec_serve, and the bench
/// harness address family members alongside the paper benchmarks.
bool parse_layered_name(const std::string& name, LayeredWorkloadSpec& spec);

}  // namespace tqec::icm
