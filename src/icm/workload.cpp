#include "icm/workload.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <string_view>

#include "common/rng.h"
#include "common/string_util.h"

namespace tqec::icm {

IcmCircuit make_workload(const WorkloadSpec& spec) {
  TQEC_REQUIRE(spec.y_states == 2 * spec.a_states,
               "workload requires #|Y> = 2 * #|A> (paper Table 1 shape)");
  const int ancilla_lines = 3 * spec.a_states;
  const int data_lines = spec.qubits - ancilla_lines;
  TQEC_REQUIRE(data_lines >= 2, "too few data lines for the spec");
  const int plain_cnots = spec.cnots - 3 * spec.a_states;
  TQEC_REQUIRE(plain_cnots >= 0, "too few CNOTs for the T-cluster count");

  Rng rng(spec.seed);
  IcmCircuit icm(spec.name);

  std::vector<int> current(static_cast<std::size_t>(data_lines));
  for (int q = 0; q < data_lines; ++q)
    current[static_cast<std::size_t>(q)] =
        icm.add_line(rng.chance(0.5) ? InitBasis::Zero : InitBasis::Plus);

  std::vector<std::array<int, 2>> last_t(
      static_cast<std::size_t>(data_lines), {-1, -1});

  // Build a shuffled event schedule: a_states T-clusters + plain CNOTs.
  enum class Event : std::uint8_t { TCluster, PlainCnot };
  std::vector<Event> schedule;
  schedule.reserve(static_cast<std::size_t>(spec.a_states + plain_cnots));
  schedule.insert(schedule.end(), static_cast<std::size_t>(spec.a_states),
                  Event::TCluster);
  schedule.insert(schedule.end(), static_cast<std::size_t>(plain_cnots),
                  Event::PlainCnot);
  for (std::size_t i = schedule.size(); i > 1; --i)
    std::swap(schedule[i - 1], schedule[rng.below(i)]);

  auto pick_data_line = [&]() { return rng.range(0, data_lines - 1); };
  auto pick_partner = [&](int q) {
    const int window = std::min(data_lines - 1, spec.locality_window);
    for (;;) {
      const int lo = std::max(0, q - window);
      const int hi = std::min(data_lines - 1, q + window);
      const int p = rng.range(lo, hi);
      if (p != q) return p;
    }
  };

  for (const Event event : schedule) {
    if (event == Event::TCluster) {
      const auto q = static_cast<std::size_t>(pick_data_line());
      const int old = current[q];
      const int a = icm.add_line(InitBasis::AState, MeasBasis::X);
      const int y1 = icm.add_line(InitBasis::YState, MeasBasis::X);
      const int y2 = icm.add_line(InitBasis::YState);
      icm.add_cnot(old, a);
      icm.add_cnot(a, y1);
      icm.add_cnot(y1, y2);
      icm.set_meas_basis(old, MeasBasis::Z);
      icm.add_meas_order(old, a);
      icm.add_meas_order(old, y1);
      if (last_t[q][0] >= 0) {
        for (int prev : last_t[q])
          for (int cur : {a, y1}) icm.add_meas_order(prev, cur);
      }
      last_t[q] = {a, y1};
      current[q] = y2;
    } else {
      const int c = pick_data_line();
      const int t = pick_partner(c);
      icm.add_cnot(current[static_cast<std::size_t>(c)],
                   current[static_cast<std::size_t>(t)]);
    }
  }

  for (int q = 0; q < data_lines; ++q)
    icm.mark_output(current[static_cast<std::size_t>(q)]);

  // Generator postconditions: exact Table-1 statistics.
  const IcmStats stats = icm.stats();
  TQEC_ASSERT(stats.qubits == spec.qubits, "qubit count drifted");
  TQEC_ASSERT(stats.cnots == spec.cnots, "CNOT count drifted");
  TQEC_ASSERT(stats.y_states == spec.y_states, "|Y> count drifted");
  TQEC_ASSERT(stats.a_states == spec.a_states, "|A> count drifted");
  return icm;
}

IcmCircuit make_layered_workload(const LayeredWorkloadSpec& spec) {
  TQEC_REQUIRE(spec.data_lines >= 2, "layered workload needs >= 2 data lines");
  TQEC_REQUIRE(spec.layers >= 1, "layered workload needs >= 1 layer");
  TQEC_REQUIRE(spec.t_per_layer >= 0 && spec.cnots_per_layer >= 0,
               "negative per-layer event count");
  TQEC_REQUIRE(spec.t_per_layer + spec.cnots_per_layer >= 1,
               "layered workload needs >= 1 event per layer");

  Rng rng(spec.seed);
  IcmCircuit icm(spec.name);

  const int data_lines = spec.data_lines;
  std::vector<int> current(static_cast<std::size_t>(data_lines));
  for (int q = 0; q < data_lines; ++q)
    current[static_cast<std::size_t>(q)] =
        icm.add_line(rng.chance(0.5) ? InitBasis::Zero : InitBasis::Plus);

  std::vector<std::array<int, 2>> last_t(
      static_cast<std::size_t>(data_lines), {-1, -1});

  auto pick_data_line = [&]() { return rng.range(0, data_lines - 1); };
  auto pick_partner = [&](int q) {
    const int window = std::min(data_lines - 1, spec.locality_window);
    for (;;) {
      const int lo = std::max(0, q - window);
      const int hi = std::min(data_lines - 1, q + window);
      const int p = rng.range(lo, hi);
      if (p != q) return p;
    }
  };

  // Per-layer event mix, shuffled within the layer so the family is not
  // trivially periodic; the layer loop itself is what makes depth scale.
  enum class Event : std::uint8_t { TCluster, PlainCnot };
  std::vector<Event> layer_events;
  for (int layer = 0; layer < spec.layers; ++layer) {
    layer_events.clear();
    layer_events.insert(layer_events.end(),
                        static_cast<std::size_t>(spec.t_per_layer),
                        Event::TCluster);
    layer_events.insert(layer_events.end(),
                        static_cast<std::size_t>(spec.cnots_per_layer),
                        Event::PlainCnot);
    for (std::size_t i = layer_events.size(); i > 1; --i)
      std::swap(layer_events[i - 1], layer_events[rng.below(i)]);

    for (const Event event : layer_events) {
      if (event == Event::TCluster) {
        const auto q = static_cast<std::size_t>(pick_data_line());
        const int old = current[q];
        const int a = icm.add_line(InitBasis::AState, MeasBasis::X);
        const int y1 = icm.add_line(InitBasis::YState, MeasBasis::X);
        const int y2 = icm.add_line(InitBasis::YState);
        icm.add_cnot(old, a);
        icm.add_cnot(a, y1);
        icm.add_cnot(y1, y2);
        icm.set_meas_basis(old, MeasBasis::Z);
        icm.add_meas_order(old, a);
        icm.add_meas_order(old, y1);
        if (last_t[q][0] >= 0) {
          for (int prev : last_t[q])
            for (int cur : {a, y1}) icm.add_meas_order(prev, cur);
        }
        last_t[q] = {a, y1};
        current[q] = y2;
      } else {
        const int c = pick_data_line();
        const int t = pick_partner(c);
        icm.add_cnot(current[static_cast<std::size_t>(c)],
                     current[static_cast<std::size_t>(t)]);
      }
    }
  }

  for (int q = 0; q < data_lines; ++q)
    icm.mark_output(current[static_cast<std::size_t>(q)]);
  return icm;
}

bool parse_layered_name(const std::string& name, LayeredWorkloadSpec& spec) {
  constexpr std::string_view kPrefix = "long_";
  if (name.size() <= kPrefix.size() ||
      name.compare(0, kPrefix.size(), kPrefix) != 0)
    return false;

  LayeredWorkloadSpec parsed;
  parsed.name = name;
  parsed.seed = spec.seed;  // caller's default; an `_s<n>` suffix overrides

  // Split the tail on '_': "<data>x<layers>" then optional t/c/w/s knobs.
  std::vector<std::string> parts;
  std::size_t pos = kPrefix.size();
  while (pos <= name.size()) {
    const std::size_t next = name.find('_', pos);
    parts.push_back(name.substr(pos, next == std::string::npos
                                         ? std::string::npos
                                         : next - pos));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  if (parts.empty()) return false;

  const auto parse_int = [](const std::string& text, int lo, int hi,
                            int& out) {
    if (text.empty()) return false;
    const auto v = try_parse_i64(text);
    if (!v || *v < lo || *v > hi) return false;
    out = static_cast<int>(*v);
    return true;
  };

  const std::size_t x = parts[0].find('x');
  if (x == std::string::npos) return false;
  if (!parse_int(parts[0].substr(0, x), 2, 4096, parsed.data_lines))
    return false;
  if (!parse_int(parts[0].substr(x + 1), 1, 1 << 20, parsed.layers))
    return false;
  parsed.cnots_per_layer = std::max(2, parsed.data_lines / 4);

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& p = parts[i];
    if (p.size() < 2) return false;
    int value = 0;
    switch (p[0]) {
      case 't':
        if (!parse_int(p.substr(1), 0, 64, parsed.t_per_layer)) return false;
        break;
      case 'c':
        if (!parse_int(p.substr(1), 0, 4096, parsed.cnots_per_layer))
          return false;
        break;
      case 'w':
        if (!parse_int(p.substr(1), 1, 4096, parsed.locality_window))
          return false;
        break;
      case 's':
        if (!parse_int(p.substr(1), 0, 1 << 30, value)) return false;
        parsed.seed = static_cast<std::uint64_t>(value);
        break;
      default:
        return false;
    }
  }
  if (parsed.t_per_layer + parsed.cnots_per_layer < 1) return false;
  spec = std::move(parsed);
  return true;
}

}  // namespace tqec::icm
