#include "icm/workload.h"

#include <algorithm>
#include <array>
#include <numeric>

#include "common/rng.h"

namespace tqec::icm {

IcmCircuit make_workload(const WorkloadSpec& spec) {
  TQEC_REQUIRE(spec.y_states == 2 * spec.a_states,
               "workload requires #|Y> = 2 * #|A> (paper Table 1 shape)");
  const int ancilla_lines = 3 * spec.a_states;
  const int data_lines = spec.qubits - ancilla_lines;
  TQEC_REQUIRE(data_lines >= 2, "too few data lines for the spec");
  const int plain_cnots = spec.cnots - 3 * spec.a_states;
  TQEC_REQUIRE(plain_cnots >= 0, "too few CNOTs for the T-cluster count");

  Rng rng(spec.seed);
  IcmCircuit icm(spec.name);

  std::vector<int> current(static_cast<std::size_t>(data_lines));
  for (int q = 0; q < data_lines; ++q)
    current[static_cast<std::size_t>(q)] =
        icm.add_line(rng.chance(0.5) ? InitBasis::Zero : InitBasis::Plus);

  std::vector<std::array<int, 2>> last_t(
      static_cast<std::size_t>(data_lines), {-1, -1});

  // Build a shuffled event schedule: a_states T-clusters + plain CNOTs.
  enum class Event : std::uint8_t { TCluster, PlainCnot };
  std::vector<Event> schedule;
  schedule.reserve(static_cast<std::size_t>(spec.a_states + plain_cnots));
  schedule.insert(schedule.end(), static_cast<std::size_t>(spec.a_states),
                  Event::TCluster);
  schedule.insert(schedule.end(), static_cast<std::size_t>(plain_cnots),
                  Event::PlainCnot);
  for (std::size_t i = schedule.size(); i > 1; --i)
    std::swap(schedule[i - 1], schedule[rng.below(i)]);

  auto pick_data_line = [&]() { return rng.range(0, data_lines - 1); };
  auto pick_partner = [&](int q) {
    const int window = std::min(data_lines - 1, spec.locality_window);
    for (;;) {
      const int lo = std::max(0, q - window);
      const int hi = std::min(data_lines - 1, q + window);
      const int p = rng.range(lo, hi);
      if (p != q) return p;
    }
  };

  for (const Event event : schedule) {
    if (event == Event::TCluster) {
      const auto q = static_cast<std::size_t>(pick_data_line());
      const int old = current[q];
      const int a = icm.add_line(InitBasis::AState, MeasBasis::X);
      const int y1 = icm.add_line(InitBasis::YState, MeasBasis::X);
      const int y2 = icm.add_line(InitBasis::YState);
      icm.add_cnot(old, a);
      icm.add_cnot(a, y1);
      icm.add_cnot(y1, y2);
      icm.set_meas_basis(old, MeasBasis::Z);
      icm.add_meas_order(old, a);
      icm.add_meas_order(old, y1);
      if (last_t[q][0] >= 0) {
        for (int prev : last_t[q])
          for (int cur : {a, y1}) icm.add_meas_order(prev, cur);
      }
      last_t[q] = {a, y1};
      current[q] = y2;
    } else {
      const int c = pick_data_line();
      const int t = pick_partner(c);
      icm.add_cnot(current[static_cast<std::size_t>(c)],
                   current[static_cast<std::size_t>(t)]);
    }
  }

  for (int q = 0; q < data_lines; ++q)
    icm.mark_output(current[static_cast<std::size_t>(q)]);

  // Generator postconditions: exact Table-1 statistics.
  const IcmStats stats = icm.stats();
  TQEC_ASSERT(stats.qubits == spec.qubits, "qubit count drifted");
  TQEC_ASSERT(stats.cnots == spec.cnots, "CNOT count drifted");
  TQEC_ASSERT(stats.y_states == spec.y_states, "|Y> count drifted");
  TQEC_ASSERT(stats.a_states == spec.a_states, "|A> count drifted");
  return icm;
}

}  // namespace tqec::icm
