// Clifford+T -> ICM transformation (paper Sec. 3.1, following Paler'15).
//
// Teleportation templates used per gate, where q is the line currently
// carrying the logical qubit:
//   T / Tdg : allocate a (|A>), y1 (|Y>), y2 (|Y>); CNOT(q,a), CNOT(a,y1),
//             CNOT(y1,y2); measure q in Z (first-order), a and y1 in X
//             (second-order); the logical qubit continues on y2.
//             Intra-T constraints: q before a, q before y1. Inter-T: both
//             second-order lines of the previous T on the same logical qubit
//             precede both second-order lines of this one.
//   S / Sdg : allocate y (|Y>); CNOT(q,y); measure q in X; continue on y.
//   H       : allocate h (|+>); CNOT(q,h); measure q in X; continue on h.
//   X / Z   : Pauli frame update; tracked classically and elided (standard
//             in ICM compilation — Paulis never consume space-time volume).
//   CNOT    : kept as-is on the current lines.
//
// The |Y> cost of a T gate is two lines, matching the paper's Table 1 where
// #|Y> = 2 * #|A> on every benchmark (deterministic worst-case correction).
#pragma once

#include "icm/icm.h"
#include "qcir/circuit.h"

namespace tqec::icm {

/// Transform a Clifford+T circuit to ICM form. Throws if the circuit
/// contains non-Clifford+T kinds (decompose it first).
IcmCircuit from_clifford_t(const qcir::Circuit& circuit);

}  // namespace tqec::icm
