// Text serialization of ICM circuits (".icm" format).
//
// A simple line-oriented format so ICM workloads can be cached, diffed and
// exchanged between tools:
//
//   icm 1 <name>
//   lines <n>
//   line <id> <init> <meas> [output]     init: zero|plus|y|a, meas: z|x
//   cnot <control> <target>              in time order
//   order <before-line> <after-line>     measurement-order constraint
//
// Comments start with '#'. read/write round-trip exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "icm/icm.h"

namespace tqec::icm {

void write_icm(const IcmCircuit& circuit, std::ostream& out);
std::string to_icm_text(const IcmCircuit& circuit);
void write_icm_file(const IcmCircuit& circuit, const std::string& path);

IcmCircuit read_icm(std::istream& in, const std::string& source = "<icm>");
IcmCircuit parse_icm_text(const std::string& text);
IcmCircuit read_icm_file(const std::string& path);

}  // namespace tqec::icm
