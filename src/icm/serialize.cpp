#include "icm/serialize.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace tqec::icm {

namespace {

const char* init_name(InitBasis b) {
  switch (b) {
    case InitBasis::Zero: return "zero";
    case InitBasis::Plus: return "plus";
    case InitBasis::YState: return "y";
    case InitBasis::AState: return "a";
  }
  return "?";
}

[[noreturn]] void fail(const std::string& source, int line,
                       const std::string& message) {
  throw ParseError(source, line, message);
}

InitBasis parse_init(const std::string& s, const std::string& source,
                     int line) {
  if (s == "zero") return InitBasis::Zero;
  if (s == "plus") return InitBasis::Plus;
  if (s == "y") return InitBasis::YState;
  if (s == "a") return InitBasis::AState;
  fail(source, line, "unknown init basis '" + s + "'");
}

/// Sanity bound on declared/implied line counts: far beyond any circuit in
/// scope, low enough that a corrupt count cannot drive a huge allocation.
constexpr std::int64_t kMaxLines = 1 << 24;

/// Checked integer token; malformed text becomes a line-numbered
/// ParseError instead of an uncaught std::invalid_argument from stoi.
int parse_id(const std::string& source, int line_no, const std::string& token,
             const char* what) {
  const auto v = try_parse_i64(token);
  if (!v || *v < 0 || *v > kMaxLines)
    fail(source, line_no,
         std::string(what) + ": expected a non-negative line id, got '" +
             token + "'");
  return static_cast<int>(*v);
}

}  // namespace

void write_icm(const IcmCircuit& circuit, std::ostream& out) {
  out << "icm 1 " << circuit.name() << "\n";
  out << "lines " << circuit.num_lines() << "\n";
  for (int l = 0; l < circuit.num_lines(); ++l) {
    out << "line " << l << ' ' << init_name(circuit.init_basis(l)) << ' '
        << (circuit.meas_basis(l) == MeasBasis::Z ? 'z' : 'x');
    if (circuit.is_output(l)) out << " output";
    if (circuit.is_carry_in(l)) out << " carry";
    out << "\n";
  }
  for (const IcmCnot& c : circuit.cnots())
    out << "cnot " << c.control << ' ' << c.target << "\n";
  for (const MeasOrder& o : circuit.meas_order())
    out << "order " << o.before_line << ' ' << o.after_line << "\n";
}

std::string to_icm_text(const IcmCircuit& circuit) {
  std::ostringstream os;
  write_icm(circuit, os);
  return os.str();
}

void write_icm_file(const IcmCircuit& circuit, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw TqecError("cannot open " + path + " for writing");
  write_icm(circuit, out);
}

IcmCircuit read_icm(std::istream& in, const std::string& source) {
  IcmCircuit circuit;
  std::string raw;
  int line_no = 0;
  int declared_lines = -1;
  bool header_seen = false;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view trimmed = trim(raw);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto tokens = split_ws(trimmed);
    const std::string& keyword = tokens[0];
    // Endpoint validation for cnot/order: the ids must name lines already
    // declared, with the defect reported at the referencing line.
    const auto declared = [&](const std::string& token, const char* what) {
      const int id = parse_id(source, line_no, token, what);
      if (id >= circuit.num_lines())
        fail(source, line_no,
             std::string(what) + ": line " + std::to_string(id) +
                 " not declared (circuit has " +
                 std::to_string(circuit.num_lines()) + " lines)");
      return id;
    };
    if (keyword == "icm") {
      if (tokens.size() < 2 || tokens[1] != "1")
        fail(source, line_no, "unsupported icm version");
      circuit.set_name(tokens.size() > 2 ? tokens[2] : "");
      header_seen = true;
      continue;
    }
    if (!header_seen)
      fail(source, line_no, "'" + keyword + "' before the icm header");
    if (keyword == "lines") {
      if (tokens.size() != 2) fail(source, line_no, "lines expects a count");
      declared_lines = parse_id(source, line_no, tokens[1], "lines");
    } else if (keyword == "line") {
      if (tokens.size() < 4) fail(source, line_no, "line needs id init meas");
      const int id = parse_id(source, line_no, tokens[1], "line");
      if (id != circuit.num_lines())
        fail(source, line_no, "line ids must be dense and in order");
      const InitBasis init = parse_init(tokens[2], source, line_no);
      const MeasBasis meas = tokens[3] == "z"   ? MeasBasis::Z
                             : tokens[3] == "x" ? MeasBasis::X
                                                : (fail(source, line_no,
                                                        "bad meas basis '" +
                                                            tokens[3] + "'"),
                                                   MeasBasis::Z);
      circuit.add_line(init, meas);
      for (std::size_t t = 4; t < tokens.size(); ++t) {
        if (tokens[t] == "output")
          circuit.mark_output(id);
        else if (tokens[t] == "carry")
          circuit.mark_carry_in(id);
        else
          fail(source, line_no, "unknown line flag '" + tokens[t] + "'");
      }
    } else if (keyword == "cnot") {
      if (tokens.size() != 3) fail(source, line_no, "cnot needs two lines");
      const int control = declared(tokens[1], "cnot");
      const int target = declared(tokens[2], "cnot");
      if (control == target)
        fail(source, line_no, "cnot control == target");
      circuit.add_cnot(control, target);
    } else if (keyword == "order") {
      if (tokens.size() != 3) fail(source, line_no, "order needs two lines");
      const int before = declared(tokens[1], "order");
      const int after = declared(tokens[2], "order");
      if (before == after) fail(source, line_no, "order before == after");
      circuit.add_meas_order(before, after);
    } else {
      fail(source, line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!header_seen) throw ParseError(source, 0, "missing icm header");
  if (declared_lines >= 0 && declared_lines != circuit.num_lines())
    throw ParseError(source, 0,
                     "declared line count mismatch: header says " +
                         std::to_string(declared_lines) + ", document has " +
                         std::to_string(circuit.num_lines()));
  return circuit;
}

IcmCircuit parse_icm_text(const std::string& text) {
  std::istringstream in(text);
  return read_icm(in, "<string>");
}

IcmCircuit read_icm_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TqecError("cannot open " + path);
  return read_icm(in, path);
}

}  // namespace tqec::icm
