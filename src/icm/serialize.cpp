#include "icm/serialize.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace tqec::icm {

namespace {

const char* init_name(InitBasis b) {
  switch (b) {
    case InitBasis::Zero: return "zero";
    case InitBasis::Plus: return "plus";
    case InitBasis::YState: return "y";
    case InitBasis::AState: return "a";
  }
  return "?";
}

InitBasis parse_init(const std::string& s, const std::string& ctx) {
  if (s == "zero") return InitBasis::Zero;
  if (s == "plus") return InitBasis::Plus;
  if (s == "y") return InitBasis::YState;
  if (s == "a") return InitBasis::AState;
  throw TqecError(ctx + ": unknown init basis '" + s + "'");
}

[[noreturn]] void fail(const std::string& source, int line,
                       const std::string& message) {
  throw TqecError(source + ":" + std::to_string(line) + ": " + message);
}

}  // namespace

void write_icm(const IcmCircuit& circuit, std::ostream& out) {
  out << "icm 1 " << circuit.name() << "\n";
  out << "lines " << circuit.num_lines() << "\n";
  for (int l = 0; l < circuit.num_lines(); ++l) {
    out << "line " << l << ' ' << init_name(circuit.init_basis(l)) << ' '
        << (circuit.meas_basis(l) == MeasBasis::Z ? 'z' : 'x');
    if (circuit.is_output(l)) out << " output";
    out << "\n";
  }
  for (const IcmCnot& c : circuit.cnots())
    out << "cnot " << c.control << ' ' << c.target << "\n";
  for (const MeasOrder& o : circuit.meas_order())
    out << "order " << o.before_line << ' ' << o.after_line << "\n";
}

std::string to_icm_text(const IcmCircuit& circuit) {
  std::ostringstream os;
  write_icm(circuit, os);
  return os.str();
}

void write_icm_file(const IcmCircuit& circuit, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw TqecError("cannot open " + path + " for writing");
  write_icm(circuit, out);
}

IcmCircuit read_icm(std::istream& in, const std::string& source) {
  IcmCircuit circuit;
  std::string raw;
  int line_no = 0;
  int declared_lines = -1;
  bool header_seen = false;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view trimmed = trim(raw);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto tokens = split_ws(trimmed);
    const std::string& keyword = tokens[0];
    if (keyword == "icm") {
      if (tokens.size() < 2 || tokens[1] != "1")
        fail(source, line_no, "unsupported icm version");
      circuit.set_name(tokens.size() > 2 ? tokens[2] : "");
      header_seen = true;
    } else if (keyword == "lines") {
      if (tokens.size() != 2) fail(source, line_no, "lines expects a count");
      declared_lines = std::stoi(tokens[1]);
    } else if (keyword == "line") {
      if (tokens.size() < 4) fail(source, line_no, "line needs id init meas");
      const int id = std::stoi(tokens[1]);
      if (id != circuit.num_lines())
        fail(source, line_no, "line ids must be dense and in order");
      const InitBasis init = parse_init(tokens[2], source);
      const MeasBasis meas =
          tokens[3] == "z" ? MeasBasis::Z
          : tokens[3] == "x"
              ? MeasBasis::X
              : throw TqecError(source + ": bad meas basis " + tokens[3]);
      circuit.add_line(init, meas);
      if (tokens.size() > 4 && tokens[4] == "output")
        circuit.mark_output(id);
    } else if (keyword == "cnot") {
      if (tokens.size() != 3) fail(source, line_no, "cnot needs two lines");
      circuit.add_cnot(std::stoi(tokens[1]), std::stoi(tokens[2]));
    } else if (keyword == "order") {
      if (tokens.size() != 3) fail(source, line_no, "order needs two lines");
      circuit.add_meas_order(std::stoi(tokens[1]), std::stoi(tokens[2]));
    } else {
      fail(source, line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!header_seen) throw TqecError(source + ": missing icm header");
  if (declared_lines >= 0 && declared_lines != circuit.num_lines())
    throw TqecError(source + ": declared line count mismatch");
  return circuit;
}

IcmCircuit parse_icm_text(const std::string& text) {
  std::istringstream in(text);
  return read_icm(in, "<string>");
}

IcmCircuit read_icm_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TqecError("cannot open " + path);
  return read_icm(in, path);
}

}  // namespace tqec::icm
