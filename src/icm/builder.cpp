#include "icm/builder.h"

#include <array>

#include "common/trace.h"

namespace tqec::icm {

using qcir::Gate;
using qcir::GateKind;

IcmCircuit from_clifford_t(const qcir::Circuit& circuit) {
  TQEC_TRACE_SPAN("icm.build");
  TQEC_REQUIRE(circuit.is_clifford_t(),
               "from_clifford_t: circuit not in Clifford+T basis");

  IcmCircuit icm(circuit.name());

  // Current ICM line carrying each logical qubit.
  std::vector<int> current(static_cast<std::size_t>(circuit.num_qubits()));
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    InitBasis basis = InitBasis::Zero;
    if (!circuit.constant_inputs().empty()) {
      // Primary inputs are |0>-initialized here as well: RevLib functions
      // are classical, and the canonical-form volume model only depends on
      // line counts, not on which computational-basis state is prepared.
      basis = InitBasis::Zero;
    }
    current[static_cast<std::size_t>(q)] = icm.add_line(basis);
  }

  // Second-order measurement lines of the most recent T gate per logical
  // qubit (for inter-T constraints); empty when no T has acted yet.
  std::vector<std::array<int, 2>> last_t(
      static_cast<std::size_t>(circuit.num_qubits()), {-1, -1});

  for (const Gate& g : circuit.gates()) {
    switch (g.kind) {
      case GateKind::X:
      case GateKind::Z:
        break;  // Pauli frame update; no ICM structure
      case GateKind::Cnot:
        icm.add_cnot(current[static_cast<std::size_t>(g.controls[0])],
                     current[static_cast<std::size_t>(g.targets[0])]);
        break;
      case GateKind::H: {
        const auto q = static_cast<std::size_t>(g.targets[0]);
        const int h = icm.add_line(InitBasis::Plus);
        icm.add_cnot(current[q], h);
        icm.set_meas_basis(current[q], MeasBasis::X);
        current[q] = h;
        break;
      }
      case GateKind::S:
      case GateKind::Sdg: {
        const auto q = static_cast<std::size_t>(g.targets[0]);
        const int y = icm.add_line(InitBasis::YState);
        icm.add_cnot(current[q], y);
        icm.set_meas_basis(current[q], MeasBasis::X);
        current[q] = y;
        break;
      }
      case GateKind::T:
      case GateKind::Tdg: {
        const auto q = static_cast<std::size_t>(g.targets[0]);
        const int old = current[q];
        const int a = icm.add_line(InitBasis::AState, MeasBasis::X);
        const int y1 = icm.add_line(InitBasis::YState, MeasBasis::X);
        const int y2 = icm.add_line(InitBasis::YState);
        icm.add_cnot(old, a);
        icm.add_cnot(a, y1);
        icm.add_cnot(y1, y2);
        icm.set_meas_basis(old, MeasBasis::Z);
        // Intra-T: first-order Z measurement before the second-order ones.
        icm.add_meas_order(old, a);
        icm.add_meas_order(old, y1);
        // Inter-T: second-order sets of successive T gates stay ordered.
        if (last_t[q][0] >= 0) {
          for (int prev : last_t[q])
            for (int cur : {a, y1}) icm.add_meas_order(prev, cur);
        }
        last_t[q] = {a, y1};
        current[q] = y2;
        break;
      }
      default:
        throw TqecError("from_clifford_t: unsupported gate " + g.to_string());
    }
  }

  for (int q = 0; q < circuit.num_qubits(); ++q)
    icm.mark_output(current[static_cast<std::size_t>(q)]);
  return icm;
}

}  // namespace tqec::icm
