// ICM representation of a fault-tolerant circuit.
//
// Any Clifford+T circuit can be rewritten as qubit Initializations, CNOTs
// and Measurements (ICM form, Paler et al. 2015/2017): non-Clifford gates
// are performed by teleportation from |A> / |Y> ancilla states, and the only
// entangling operation is the CNOT. Each *line* of the ICM circuit is
// initialized once (|0>, |+>, |Y> or |A>), participates in CNOTs, and is
// measured once (Z or X basis) unless it carries a circuit output.
//
// Time-ordered measurement constraints (paper Sec. 2.2): the measurements
// implementing a T gate are not invariant under topological deformation.
// The first-order (Z-basis) measurement must precede that T gate's
// second-order selective-teleportation measurements (intra-T), and the
// second-order measurements of successive T gates on the same logical qubit
// must stay ordered (inter-T). We record these as a precedence relation
// between lines: measure(before) must happen at an earlier time coordinate
// than measure(after).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace tqec::icm {

enum class InitBasis : std::uint8_t {
  Zero,    // |0>, Z-basis initialization
  Plus,    // |+>, X-basis initialization
  YState,  // |Y> ancilla (from a Y distillation box)
  AState,  // |A> ancilla (from an A distillation box)
};

enum class MeasBasis : std::uint8_t { Z, X };

/// True for the ancilla initializations fed by distillation boxes.
inline bool is_injection(InitBasis basis) {
  return basis == InitBasis::YState || basis == InitBasis::AState;
}

struct IcmCnot {
  int control = 0;
  int target = 0;
  friend bool operator==(const IcmCnot&, const IcmCnot&) = default;
};

/// measure(before_line) must precede measure(after_line) in time.
struct MeasOrder {
  int before_line = 0;
  int after_line = 0;
  friend bool operator==(const MeasOrder&, const MeasOrder&) = default;
};

/// Aggregate statistics matching the paper's Table 1 columns.
struct IcmStats {
  int qubits = 0;   // #lines after decomposition
  int cnots = 0;    // #CNOT
  int y_states = 0; // #|Y>
  int a_states = 0; // #|A>
};

class IcmCircuit {
 public:
  IcmCircuit() = default;
  explicit IcmCircuit(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int num_lines() const { return static_cast<int>(init_.size()); }

  /// Create a new line; returns its index.
  int add_line(InitBasis init, MeasBasis meas = MeasBasis::Z) {
    init_.push_back(init);
    meas_.push_back(meas);
    is_output_.push_back(false);
    is_carry_in_.push_back(false);
    return num_lines() - 1;
  }

  InitBasis init_basis(int line) const { return init_.at(checked(line)); }
  MeasBasis meas_basis(int line) const { return meas_.at(checked(line)); }
  void set_meas_basis(int line, MeasBasis basis) {
    meas_.at(checked(line)) = basis;
  }

  /// Output lines carry the computation result; their measurement is
  /// deferred to the consumer and imposes no ordering constraints here.
  bool is_output(int line) const { return is_output_.at(checked(line)); }
  void mark_output(int line) { is_output_.at(checked(line)) = true; }

  /// Carry-in lines enter this circuit already initialized: they are the
  /// continuation of a line cut by a time-axis shard boundary. The PD-graph
  /// builder emits no initialization (and no injection module) for them; the
  /// stitch pass splices their first module onto the previous window's
  /// geometry instead. The recorded init basis is kept purely for bookkeeping
  /// (stats, round-tripping) and is not realized.
  bool is_carry_in(int line) const { return is_carry_in_.at(checked(line)); }
  void mark_carry_in(int line) { is_carry_in_.at(checked(line)) = true; }

  const std::vector<IcmCnot>& cnots() const { return cnots_; }
  void add_cnot(int control, int target) {
    checked(control);
    checked(target);
    TQEC_REQUIRE(control != target, "CNOT control == target");
    cnots_.push_back({control, target});
  }

  const std::vector<MeasOrder>& meas_order() const { return meas_order_; }
  void add_meas_order(int before_line, int after_line) {
    checked(before_line);
    checked(after_line);
    TQEC_REQUIRE(before_line != after_line, "self measurement order");
    meas_order_.push_back({before_line, after_line});
  }

  IcmStats stats() const {
    IcmStats s;
    s.qubits = num_lines();
    s.cnots = static_cast<int>(cnots_.size());
    for (InitBasis b : init_) {
      if (b == InitBasis::YState) ++s.y_states;
      if (b == InitBasis::AState) ++s.a_states;
    }
    return s;
  }

 private:
  std::size_t checked(int line) const {
    TQEC_REQUIRE(line >= 0 && line < num_lines(), "line out of range");
    return static_cast<std::size_t>(line);
  }

  std::string name_;
  std::vector<InitBasis> init_;
  std::vector<MeasBasis> meas_;
  std::vector<bool> is_output_;
  std::vector<bool> is_carry_in_;
  std::vector<IcmCnot> cnots_;
  std::vector<MeasOrder> meas_order_;
};

}  // namespace tqec::icm
