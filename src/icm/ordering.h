// Measurement-order constraint DAG utilities.
//
// The intra-/inter-T-gate constraints of an ICM circuit form a precedence
// relation over lines. Placement consumes this as (a) a validity check (the
// relation must be acyclic, otherwise no schedule exists) and (b) per-line
// topological levels used to group order-constrained modules into
// time-dependent super-modules.
#pragma once

#include <vector>

#include "icm/icm.h"

namespace tqec::icm {

struct OrderAnalysis {
  /// Topological level per line: 0 for unconstrained lines and sources;
  /// level(b) > level(a) for every constraint a -> b.
  std::vector<int> level;
  /// Max level over all lines (0 when no constraints).
  int max_level = 0;
  /// Lines that appear in at least one constraint.
  std::vector<bool> constrained;
};

/// Analyze the measurement-order DAG. Throws TqecError if cyclic.
OrderAnalysis analyze_order(const IcmCircuit& circuit);

/// True if `time[line]` respects every measurement-order constraint with
/// strict inequality.
bool order_respected(const IcmCircuit& circuit, const std::vector<int>& time);

}  // namespace tqec::icm
