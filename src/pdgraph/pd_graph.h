// The 2D primal-dual graph (PD graph, paper Sec. 2.3 and 3.1).
//
// Modularization breaks the canonical geometric description into *primal
// modules* (primal loop pieces) and *dual nets* (one per CNOT initially),
// recording which dual nets pass through which primal modules. The PD graph
// is the authoritative braiding record: every compression stage operates on
// it, and the final geometry is emitted from it.
//
// Construction rules (paper Fig. 6, validated against the worked 3-CNOT
// example):
//   - each ICM line is a *row*; its first use creates the row-initial module
//     (carrying the line's initialization I/M);
//   - a CNOT's dual net passes through two modules on the control side (the
//     row's current module, then a freshly appended *innovative* module) and
//     one module on the target side (the row's current module);
//   - lines initialized from a distillation box additionally get an
//     *injection* module at the head of their row (the box attachment
//     point), which carries no dual nets;
//   - the row's last module carries the line's measurement I/M.
//
// These rules give #modules = #qubits + #CNOTs + #|Y> + #|A>, matching the
// paper's Table 1 on every benchmark.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "icm/icm.h"

namespace tqec::pdgraph {

using ModuleId = int;
using NetId = int;

enum class ModuleOrigin : std::uint8_t { RowInitial, Innovative, Injection };

struct PrimalModule {
  ModuleId id = -1;
  int row = -1;  // ICM line
  ModuleOrigin origin = ModuleOrigin::RowInitial;

  /// Dual nets passing through this module, in traversal order. A net
  /// appears at most once per module in the initial PD graph.
  std::vector<NetId> nets;

  bool has_init = false;
  icm::InitBasis init_basis = icm::InitBasis::Zero;
  bool has_meas = false;
  icm::MeasBasis meas_basis = icm::MeasBasis::Z;

  /// True when this module carries a measurement participating in a
  /// time-ordered constraint; `meas_level` is its topological level.
  bool meas_constrained = false;
  int meas_level = 0;

  bool has_im_terminal() const { return has_init || has_meas; }
};

struct DualNet {
  NetId id = -1;
  int cnot_index = -1;
  ModuleId control_a = -1;  // control row, current module
  ModuleId control_b = -1;  // control row, innovative module
  ModuleId target = -1;     // target row, current module

  std::vector<ModuleId> path() const { return {control_a, control_b, target}; }
};

class PdGraph {
 public:
  const std::string& name() const { return name_; }

  const std::vector<PrimalModule>& modules() const { return modules_; }
  const std::vector<DualNet>& nets() const { return nets_; }
  /// Fig. 6(d) data structure: per ICM line, the ordered module list.
  const std::vector<std::vector<ModuleId>>& rows() const { return rows_; }

  const PrimalModule& module(ModuleId m) const {
    return modules_.at(static_cast<std::size_t>(m));
  }
  const DualNet& net(NetId n) const {
    return nets_.at(static_cast<std::size_t>(n));
  }

  int module_count() const { return static_cast<int>(modules_.size()); }
  int net_count() const { return static_cast<int>(nets_.size()); }

  /// Measurement-order constraints as module pairs: the measurement carried
  /// by `first` must precede the measurement carried by `second` in time.
  const std::vector<std::pair<ModuleId, ModuleId>>& meas_order() const {
    return meas_order_;
  }

  /// Count of injection modules per ancilla kind.
  int y_injections() const { return y_injections_; }
  int a_injections() const { return a_injections_; }

 private:
  friend PdGraph build_pd_graph(const icm::IcmCircuit& circuit);

  std::string name_;
  std::vector<PrimalModule> modules_;
  std::vector<DualNet> nets_;
  std::vector<std::vector<ModuleId>> rows_;
  std::vector<std::pair<ModuleId, ModuleId>> meas_order_;
  int y_injections_ = 0;
  int a_injections_ = 0;
};

/// Build the PD graph of an ICM circuit (paper stage 2).
PdGraph build_pd_graph(const icm::IcmCircuit& circuit);

/// Multiset of (module, net) pass-through records; the braiding signature
/// that compression stages must preserve. Sorted for comparison.
std::vector<std::pair<ModuleId, NetId>> braiding_signature(const PdGraph& g);

}  // namespace tqec::pdgraph
