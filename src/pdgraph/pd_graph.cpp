#include "pdgraph/pd_graph.h"

#include <algorithm>

#include "common/trace.h"
#include "icm/ordering.h"

namespace tqec::pdgraph {

PdGraph build_pd_graph(const icm::IcmCircuit& circuit) {
  TQEC_TRACE_SPAN("pdgraph.build");
  PdGraph g;
  g.name_ = circuit.name();
  const int lines = circuit.num_lines();
  g.rows_.assign(static_cast<std::size_t>(lines), {});

  // Current (rightmost) module per row; -1 before first use.
  std::vector<ModuleId> current(static_cast<std::size_t>(lines), -1);

  auto new_module = [&](int row, ModuleOrigin origin) -> ModuleId {
    PrimalModule m;
    m.id = static_cast<ModuleId>(g.modules_.size());
    m.row = row;
    m.origin = origin;
    g.modules_.push_back(std::move(m));
    g.rows_[static_cast<std::size_t>(row)].push_back(g.modules_.back().id);
    return g.modules_.back().id;
  };

  auto ensure_row = [&](int row) -> ModuleId {
    auto& cur = current[static_cast<std::size_t>(row)];
    if (cur >= 0) return cur;
    const icm::InitBasis basis = circuit.init_basis(row);
    const bool carry_in = circuit.is_carry_in(row);
    if (icm::is_injection(basis) && !carry_in) {
      // Box attachment point first, then the row-initial module that the
      // dual nets traverse. The injection is the row's I/M, so the initial
      // module carries it for I-shape eligibility.
      new_module(row, ModuleOrigin::Injection);
      if (basis == icm::InitBasis::YState) ++g.y_injections_;
      else ++g.a_injections_;
    }
    const ModuleId initial = new_module(row, ModuleOrigin::RowInitial);
    // Carry-in rows continue a line initialized in an earlier time-axis
    // window: no initialization (and no injection box) is realized here;
    // the stitch pass splices this module onto the prior window's geometry.
    if (!carry_in) {
      g.modules_[static_cast<std::size_t>(initial)].has_init = true;
      g.modules_[static_cast<std::size_t>(initial)].init_basis = basis;
    }
    cur = initial;
    return cur;
  };

  for (std::size_t k = 0; k < circuit.cnots().size(); ++k) {
    const icm::IcmCnot cnot = circuit.cnots()[k];
    DualNet net;
    net.id = static_cast<NetId>(g.nets_.size());
    net.cnot_index = static_cast<int>(k);

    // Control side: current module, then a fresh innovative module.
    const ModuleId ca = ensure_row(cnot.control);
    g.modules_[static_cast<std::size_t>(ca)].nets.push_back(net.id);
    const ModuleId cb = new_module(cnot.control, ModuleOrigin::Innovative);
    g.modules_[static_cast<std::size_t>(cb)].nets.push_back(net.id);
    current[static_cast<std::size_t>(cnot.control)] = cb;

    // Target side: current module only.
    const ModuleId t = ensure_row(cnot.target);
    g.modules_[static_cast<std::size_t>(t)].nets.push_back(net.id);

    net.control_a = ca;
    net.control_b = cb;
    net.target = t;
    g.nets_.push_back(net);
  }

  // Measurement I/M on the row-final modules; rows never used by a CNOT
  // still get their initial module so every line is represented.
  for (int row = 0; row < lines; ++row) {
    ensure_row(row);
    const ModuleId last = current[static_cast<std::size_t>(row)];
    auto& m = g.modules_[static_cast<std::size_t>(last)];
    if (!circuit.is_output(row)) {
      m.has_meas = true;
      m.meas_basis = circuit.meas_basis(row);
    }
  }

  // Time-ordered measurement constraints, lifted from lines to the modules
  // carrying those measurements.
  const icm::OrderAnalysis order = icm::analyze_order(circuit);
  std::vector<ModuleId> final_module(static_cast<std::size_t>(lines));
  for (int row = 0; row < lines; ++row)
    final_module[static_cast<std::size_t>(row)] =
        current[static_cast<std::size_t>(row)];
  for (const icm::MeasOrder& c : circuit.meas_order()) {
    const ModuleId before = final_module[static_cast<std::size_t>(c.before_line)];
    const ModuleId after = final_module[static_cast<std::size_t>(c.after_line)];
    g.meas_order_.emplace_back(before, after);
  }
  for (int row = 0; row < lines; ++row) {
    if (!order.constrained[static_cast<std::size_t>(row)]) continue;
    auto& m = g.modules_[static_cast<std::size_t>(
        final_module[static_cast<std::size_t>(row)])];
    m.meas_constrained = true;
    m.meas_level = order.level[static_cast<std::size_t>(row)];
  }

  return g;
}

std::vector<std::pair<ModuleId, NetId>> braiding_signature(const PdGraph& g) {
  std::vector<std::pair<ModuleId, NetId>> sig;
  for (const PrimalModule& m : g.modules())
    for (NetId n : m.nets) sig.emplace_back(m.id, n);
  std::sort(sig.begin(), sig.end());
  return sig;
}

}  // namespace tqec::pdgraph
