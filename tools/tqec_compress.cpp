// tqec_compress — command-line front end for the bridge-compression flow.
//
//   tqec_compress compress <file.real|file.icm> [options]
//   tqec_compress benchmark <name> [options]     (paper workloads)
//   tqec_compress list                           (benchmark names)
//
// Options:
//   --mode=full|dual|modular   pipeline variant (default full)
//   --seed=<n>                 pipeline seed (default 7)
//   --effort=<f>               SA effort multiplier (default 1.0)
//   --jobs=<n>                 worker threads for parallel restarts
//                              (default 1; 0 = one per hardware thread;
//                              never changes results)
//   --place-restarts=<k>       independent place+route attempts with
//                              derived seeds, best legal wins (default 1)
//   --stats-json=<path>        write the per-stage observability report
//                              as JSON v2 ("-" = stdout); enables tracing
//                              so the report embeds the metrics registry
//   --trace-json=<path>        enable tracing and write a Chrome
//                              trace-event file (open in Perfetto or
//                              chrome://tracing; with --jobs=N each worker
//                              thread gets its own tid row)
//   --place-replicas=<r>       parallel-tempering chain count for the SA
//                              placer (default 1 = classic single chain;
//                              changes results, unlike thread knobs)
//   --place-threads=<n>        worker threads for running SA replicas
//                              concurrently (default: divide the --jobs
//                              budget across concurrent attempts; never
//                              changes results)
//   --place-full-pack          repack whole layers on every SA move
//                              instead of the dirty contour suffix (A/B
//                              escape hatch for the incremental packer;
//                              bit-identical results either way)
//   --route-full-sweep         disable incremental PathFinder rerouting
//                              (rip up every net on every iteration; for
//                              A/B comparisons against the incremental
//                              schedule, which is the default)
//   --route-threads=<n>        worker threads for the batched PathFinder
//                              negotiation (default: divide the --jobs
//                              budget across concurrent attempts; never
//                              changes results)
//   --route-serial             classic one-net-at-a-time negotiation
//                              schedule (singleton batches; A/B escape
//                              hatch for the disjoint-region batching)
//   --route-heap               binary-heap A* open list instead of the
//                              monotone bucket queue (A/B escape hatch
//                              for the search-kernel swap)
//   --route-lookahead=0|1      obstacle-aware A* lookahead maps (default
//                              1; 0 = classic Manhattan-only heuristic,
//                              A/B escape hatch)
//   --route-windows=0|1        warm per-net search windows seeded from
//                              the previous route (default 1; 0 = classic
//                              failure-inflated margin ladder only)
//   --route-warm-start=0|1     carry PathFinder history + windows across
//                              the multi-seed restart attempts (default
//                              1; 0 = every attempt negotiates cold, and
//                              attempts may run concurrently)
//   --route-stall-sweeps=N     stall-triggered full-sweep budget per
//                              negotiation run (default 2; negative =
//                              unlimited, the classic schedule)
//   --shard-window=K           time-axis sharding: cut the circuit into
//                              ~K-ASAP-layer windows at low-crossing time
//                              cuts, compile windows independently, stitch
//                              along pinned seams (default 0 = off; off is
//                              bit-identical to the unsharded pipeline)
//   --shard-threads=N          concurrent window compiles (default 1 =
//                              sequential, the O(largest-window) memory
//                              path; 0 = one per hardware thread; never
//                              changes results)
//   --checkpoint-dir=PATH      per-window checkpoint directory: finished
//                              windows are content-hashed and written so a
//                              killed compile resumes without redoing them
//   --no-optimize              skip the reversible peephole pass
//   --no-plan                  disable f-value dual-segment planning
//   --verify                   run the end-to-end braiding verifier
//   --json=<path>              write the final geometry as JSON
//   --obj=<path>               write the final geometry as Wavefront OBJ
//   --icm=<path>               write the ICM form (.icm format)
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/trace.h"
#include "core/compiler.h"
#include "core/paper_tables.h"
#include "core/shard.h"
#include "decompose/decompose.h"
#include "geom/canonical.h"
#include "geom/export_obj.h"
#include "geom/export_svg.h"
#include "icm/builder.h"
#include "icm/serialize.h"
#include "icm/workload.h"
#include "qcir/optimizer.h"
#include "qcir/revlib.h"
#include "verify/verifier.h"

namespace {

using namespace tqec;

struct CliOptions {
  core::CompileOptions compile;
  core::ShardOptions shard;
  bool optimize = true;
  bool verify = false;
  std::optional<std::string> json_path;
  std::optional<std::string> obj_path;
  std::optional<std::string> svg_path;
  std::optional<std::string> icm_path;
  std::optional<std::string> stats_json_path;
  std::optional<std::string> trace_json_path;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: tqec_compress compress <file.real|file.icm> [options]\n"
      "       tqec_compress benchmark <name> [options]\n"
      "       tqec_compress list\n"
      "options: --mode=full|dual|modular --seed=N --effort=F\n"
      "         --jobs=N --place-restarts=K --stats-json=PATH|-\n"
      "         --trace-json=PATH --route-full-sweep\n"
      "         --place-replicas=R --place-threads=N --place-full-pack\n"
      "         --route-threads=N --route-serial --route-heap\n"
      "         --route-lookahead=0|1 --route-windows=0|1\n"
      "         --route-warm-start=0|1 --route-stall-sweeps=N\n"
      "         --shard-window=K --shard-threads=N --checkpoint-dir=PATH\n"
      "         --no-optimize --no-plan --verify\n"
      "         --json=PATH --obj=PATH --svg=PATH --icm=PATH\n");
  return 2;
}

bool parse_flag(const std::string& arg, CliOptions& opt) {
  auto value_of = [&](const char* prefix) -> std::optional<std::string> {
    const std::size_t n = std::strlen(prefix);
    if (arg.compare(0, n, prefix) == 0) return arg.substr(n);
    return std::nullopt;
  };
  if (auto v = value_of("--mode=")) {
    if (*v == "full") opt.compile.mode = core::PipelineMode::Full;
    else if (*v == "dual") opt.compile.mode = core::PipelineMode::DualOnly;
    else if (*v == "modular")
      opt.compile.mode = core::PipelineMode::ModularOnly;
    else return false;
    return true;
  }
  if (auto v = value_of("--seed=")) {
    opt.compile.seed = parse_u64(*v, "--seed");
    return true;
  }
  if (auto v = value_of("--effort=")) {
    opt.compile.effort = parse_double(*v, "--effort");
    return true;
  }
  if (auto v = value_of("--jobs=")) {
    opt.compile.jobs = parse_int(*v, "--jobs");
    return true;
  }
  if (auto v = value_of("--place-restarts=")) {
    opt.compile.place_restarts = parse_int(*v, "--place-restarts");
    return true;
  }
  if (auto v = value_of("--place-replicas=")) {
    opt.compile.place.replicas = parse_int(*v, "--place-replicas");
    return true;
  }
  if (auto v = value_of("--place-threads=")) {
    opt.compile.place.threads = parse_int(*v, "--place-threads");
    return true;
  }
  if (arg == "--place-full-pack")
    return opt.compile.place.full_pack = true, true;
  if (auto v = value_of("--stats-json=")) return opt.stats_json_path = *v, true;
  if (auto v = value_of("--trace-json=")) return opt.trace_json_path = *v, true;
  if (arg == "--route-full-sweep")
    return opt.compile.route.incremental = false, true;
  if (auto v = value_of("--route-threads=")) {
    opt.compile.route.threads = parse_int(*v, "--route-threads");
    return true;
  }
  if (arg == "--route-serial")
    return opt.compile.route.serial_schedule = true, true;
  if (arg == "--route-heap")
    return opt.compile.route.bucket_queue = false, true;
  if (auto v = value_of("--route-lookahead=")) {
    opt.compile.route.lookahead = parse_int(*v, "--route-lookahead") != 0;
    return true;
  }
  if (auto v = value_of("--route-windows=")) {
    opt.compile.route.windows = parse_int(*v, "--route-windows") != 0;
    return true;
  }
  if (auto v = value_of("--route-warm-start=")) {
    opt.compile.route.warm_start = parse_int(*v, "--route-warm-start") != 0;
    return true;
  }
  if (auto v = value_of("--route-stall-sweeps=")) {
    opt.compile.route.stall_sweeps = parse_int(*v, "--route-stall-sweeps");
    return true;
  }
  if (auto v = value_of("--shard-window=")) {
    opt.shard.window = parse_int(*v, "--shard-window");
    return true;
  }
  if (auto v = value_of("--shard-threads=")) {
    opt.shard.threads = parse_int(*v, "--shard-threads");
    return true;
  }
  if (auto v = value_of("--checkpoint-dir=")) {
    opt.shard.checkpoint_dir = *v;
    return true;
  }
  if (arg == "--no-optimize") return opt.optimize = false, true;
  if (arg == "--no-plan") return opt.compile.plan_flips = false, true;
  if (arg == "--verify") return opt.verify = true, true;
  if (auto v = value_of("--json=")) return opt.json_path = *v, true;
  if (auto v = value_of("--obj=")) return opt.obj_path = *v, true;
  if (auto v = value_of("--svg=")) return opt.svg_path = *v, true;
  if (auto v = value_of("--icm=")) return opt.icm_path = *v, true;
  return false;
}

icm::IcmCircuit load_input(const std::string& path, const CliOptions& opt) {
  if (path.size() > 4 && path.compare(path.size() - 4, 4, ".icm") == 0)
    return icm::read_icm_file(path);
  qcir::Circuit reversible = qcir::parse_real_file(path);
  if (opt.optimize) {
    qcir::OptimizeStats stats;
    reversible = qcir::optimize(reversible, &stats);
    if (stats.cancelled_pairs + stats.fused_pairs > 0)
      std::printf("peephole: %lld -> %lld gates (%d cancelled, %d fused)\n",
                  static_cast<long long>(stats.gates_before),
                  static_cast<long long>(stats.gates_after),
                  stats.cancelled_pairs, stats.fused_pairs);
  }
  return icm::from_clifford_t(decompose::decompose(reversible));
}

int run_pipeline(const icm::IcmCircuit& circuit, CliOptions opt) {
  const icm::IcmStats stats = circuit.stats();
  std::printf("ICM: %d lines, %d CNOTs, %d |Y>, %d |A>; canonical volume "
              "%lld\n",
              stats.qubits, stats.cnots, stats.y_states, stats.a_states,
              static_cast<long long>(geom::canonical_volume(stats)));
  if (opt.icm_path) {
    icm::write_icm_file(circuit, *opt.icm_path);
    std::printf("wrote %s\n", opt.icm_path->c_str());
  }

  const bool sharded = opt.shard.window > 0;
  if (sharded && opt.verify) {
    // The end-to-end braiding verifier needs the single-pipeline internals;
    // the sharded path verifies per window (tests/shard_test) and validates
    // the stitched geometry structurally inside compile_sharded.
    std::fprintf(stderr,
                 "--verify is incompatible with --shard-window (seams are "
                 "validated at stitch time; drop one of the flags)\n");
    return 2;
  }
  opt.compile.keep_internals = opt.verify;
  // Observability requested: turn collection on so the stats report embeds
  // the metrics registry and the trace file has spans to export. Tracing
  // never changes results (pinned by core_test).
  if (opt.trace_json_path || opt.stats_json_path)
    trace::set_enabled(true);
  const core::CompileResult result =
      sharded ? core::compile_sharded(circuit, opt.compile, opt.shard)
              : core::compile(circuit, opt.compile);
  const Vec3 dims = result.routing.bounding.dims();
  std::printf("modules %d -> nodes %d; volume %lld (%dx%dx%d), %s; "
              "%.2fs total (place %.2fs, route %.2fs)\n",
              result.modules, result.nodes,
              static_cast<long long>(result.volume), dims.x, dims.y, dims.z,
              result.routed_legal ? "legally routed" : "NOT LEGAL",
              result.timings.total_s, result.timings.place_s,
              result.timings.route_s);
  std::printf("compression vs canonical: %.2fx\n",
              static_cast<double>(result.canonical_volume) /
                  static_cast<double>(result.volume));
  if (result.shard.enabled) {
    std::printf("shard: %d windows (%d resumed, %d reseeded), "
                "%d crossings, %d stitches, "
                "%lld seam cells, stitch %.2fs\n",
                result.shard.windows_total, result.shard.windows_resumed,
                result.shard.windows_reseeded,
                result.shard.crossings, result.shard.stitches,
                static_cast<long long>(result.shard.seam_cells),
                result.shard.stitch_s);
    for (const std::string& issue : result.shard.issues)
      std::printf("shard issue: %s\n", issue.c_str());
  }
  if (result.peak_rss_bytes > 0)
    std::printf("peak RSS: %.1f MiB\n",
                static_cast<double>(result.peak_rss_bytes) / (1024.0 * 1024.0));

  if (opt.verify) {
    const verify::VerifyReport report = verify::verify_result(result);
    std::printf("verification: %s\n", report.summary().c_str());
    if (!report.ok()) return 1;
  }
  if (opt.stats_json_path) {
    const std::string stats = core::stats_json(result);
    if (*opt.stats_json_path == "-") {
      std::fwrite(stats.data(), 1, stats.size(), stdout);
    } else {
      std::FILE* f = std::fopen(opt.stats_json_path->c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n",
                     opt.stats_json_path->c_str());
        return 1;
      }
      std::fwrite(stats.data(), 1, stats.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", opt.stats_json_path->c_str());
    }
  }
  if (opt.trace_json_path) {
    if (!trace::write_chrome_trace_file(*opt.trace_json_path)) {
      std::fprintf(stderr, "cannot write %s\n", opt.trace_json_path->c_str());
      return 1;
    }
    std::printf("wrote %s (%zu span events)\n", opt.trace_json_path->c_str(),
                trace::event_count());
  }
  if (opt.json_path) {
    std::FILE* f = std::fopen(opt.json_path->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path->c_str());
      return 1;
    }
    const std::string json = geom::to_json(result.geometry);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", opt.json_path->c_str());
  }
  if (opt.obj_path) {
    geom::write_obj_file(result.geometry, *opt.obj_path);
    std::printf("wrote %s\n", opt.obj_path->c_str());
  }
  if (opt.svg_path) {
    geom::write_svg_file(result.geometry, *opt.svg_path);
    std::printf("wrote %s\n", opt.svg_path->c_str());
  }
  return result.routed_legal ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  CliOptions opt;
  std::vector<std::string> positional;
  // Flag values go through the checked parse_* helpers, which throw a
  // TqecError naming the flag and the offending text ("--jobs: expected an
  // integer, got 'banana'") — caught here instead of aborting via an
  // uncaught std::invalid_argument from the stoi family.
  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        if (!parse_flag(arg, opt)) {
          std::fprintf(stderr, "unknown option %s\n", arg.c_str());
          return usage();
        }
      } else {
        positional.push_back(arg);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  try {
    if (command == "list") {
      for (const core::PaperBenchmark& b : core::paper_benchmarks())
        std::printf("%-16s %6d qubits %6d CNOTs\n", b.name.c_str(), b.qubits,
                    b.cnots);
      std::printf("long_<D>x<L>[_tN][_cN][_wN][_sN]  layered long-circuit "
                  "family (depth ~ L)\n");
      return 0;
    }
    if (command == "compress") {
      if (positional.size() != 1) return usage();
      return run_pipeline(load_input(positional[0], opt), opt);
    }
    if (command == "benchmark") {
      if (positional.size() != 1) return usage();
      // Long-circuit layered family ("long_<data>x<layers>..."), then the
      // paper Table-1 benchmarks.
      icm::LayeredWorkloadSpec layered;
      layered.seed = opt.compile.seed;
      if (icm::parse_layered_name(positional[0], layered))
        return run_pipeline(icm::make_layered_workload(layered), opt);
      const core::PaperBenchmark& bench = core::paper_benchmark(positional[0]);
      return run_pipeline(
          icm::make_workload(core::workload_spec(bench, opt.compile.seed)),
          opt);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
