#!/usr/bin/env python3
"""Release timing gate for the route search kernel (CI job timing-gate).

Reads a google-benchmark JSON file produced by bench/micro_route_kernel
and checks the *self-relative* ratios

    bucket_over_heap     = time(bucket kernel) / time(heap kernel)
    batched_over_serial  = time(batched schedule) / time(serial schedule)

against the committed baseline (bench/route_timing_baseline.json). Ratios
measured on the same machine in the same process cancel out host speed, so
the gate is stable across runner generations where absolute wall-clock
thresholds would flake. The gate fails when a measured ratio exceeds
baseline * tolerance — i.e. when the optimized kernel or schedule
regressed by more than (tolerance - 1) relative to its reference
implementation.

Usage: check_route_timing.py <benchmark.json> <baseline.json>
"""
import json
import sys


def min_time(benchmarks, name):
    times = [
        b["real_time"]
        for b in benchmarks
        if b["name"] == name and b.get("run_type", "iteration") == "iteration"
    ]
    if not times:
        raise SystemExit(f"timing gate: no benchmark entry named {name!r}")
    return min(times)


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        benchmarks = json.load(f)["benchmarks"]
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    measured = {
        "bucket_over_heap": min_time(benchmarks, "BM_RouteKernel/bucket:1")
        / min_time(benchmarks, "BM_RouteKernel/bucket:0"),
        "batched_over_serial": min_time(benchmarks, "BM_RouteSchedule/batched:1")
        / min_time(benchmarks, "BM_RouteSchedule/batched:0"),
    }

    tolerance = baseline["tolerance"]
    failed = False
    for name, ratio in measured.items():
        limit = baseline["ratios"][name] * tolerance
        verdict = "FAIL" if ratio > limit else "ok"
        if ratio > limit:
            failed = True
        print(
            f"timing gate: {name} = {ratio:.3f} "
            f"(baseline {baseline['ratios'][name]:.3f}, limit {limit:.3f}) "
            f"{verdict}"
        )
    if failed:
        raise SystemExit(
            "timing gate: route stage regressed more than "
            f"{(tolerance - 1) * 100:.0f}% vs the committed baseline"
        )


if __name__ == "__main__":
    main()
