#!/usr/bin/env python3
"""Release timing gate for the place and route kernels (CI job timing-gate).

Reads google-benchmark JSON files and checks *self-relative* ratios —
time(optimized variant) / time(reference variant), both measured on the
same machine in the same process — against a committed baseline. Same-host
ratios cancel out runner speed, so the gate is stable across runner
generations where absolute wall-clock thresholds would flake.

Each baseline file names its ratios explicitly:

    {
      "tolerance": 1.2,
      "ratios": {
        "<ratio name>": {
          "numerator":   "<benchmark entry name>",
          "denominator": "<benchmark entry name>",
          "baseline":    <expected ratio>
        }
      }
    }

The gate fails when a measured ratio exceeds baseline * tolerance — i.e.
when the optimized kernel regressed by more than (tolerance - 1) relative
to its reference implementation. Repetition entries (run_type other than
"iteration") are ignored; the minimum over iterations is used, which is
the standard noise-robust statistic for benchmark gating.

Usage: check_timing.py <benchmark.json> <baseline.json> [<benchmark.json> <baseline.json> ...]

Known pairs in this repo:
    route-kernel.json  bench/route_timing_baseline.json   (micro_route_kernel)
    place-kernel.json  bench/place_timing_baseline.json   (micro_place_kernel)
"""
import json
import sys


def min_time(benchmarks, name):
    times = [
        b["real_time"]
        for b in benchmarks
        if b["name"] == name and b.get("run_type", "iteration") == "iteration"
    ]
    if not times:
        raise SystemExit(f"timing gate: no benchmark entry named {name!r}")
    return min(times)


def check_pair(benchmark_path, baseline_path):
    with open(benchmark_path) as f:
        benchmarks = json.load(f)["benchmarks"]
    with open(baseline_path) as f:
        baseline = json.load(f)

    tolerance = baseline["tolerance"]
    failed = False
    for name, spec in baseline["ratios"].items():
        ratio = min_time(benchmarks, spec["numerator"]) / min_time(
            benchmarks, spec["denominator"]
        )
        limit = spec["baseline"] * tolerance
        verdict = "FAIL" if ratio > limit else "ok"
        if ratio > limit:
            failed = True
        print(
            f"timing gate: {name} = {ratio:.3f} "
            f"(baseline {spec['baseline']:.3f}, limit {limit:.3f}) {verdict}"
        )
    if failed:
        raise SystemExit(
            f"timing gate: {benchmark_path} regressed more than "
            f"{(tolerance - 1) * 100:.0f}% vs {baseline_path}"
        )


def main():
    args = sys.argv[1:]
    if not args or len(args) % 2 != 0:
        raise SystemExit(__doc__)
    for i in range(0, len(args), 2):
        check_pair(args[i], args[i + 1])


if __name__ == "__main__":
    main()
