// tqec_serve — long-running compilation service over newline-delimited JSON.
//
//   tqec_serve [--threads=N] [--queue=N] [--cache-bytes=N] [--socket=PATH]
//
// Requests arrive one JSON object per line on stdin (default) or on a
// Unix-domain socket; responses leave one JSON object per line on stdout /
// the same connection, in completion order, correlated by "id".
//
// Request:
//   {"id": "r1",
//    "benchmark": "hwb-50-56" | "real": "<.real text>" | "icm": "<.icm text>",
//    "optimize": true,              // .real only: reversible peephole pass
//    "options": {"mode": "full|dual|modular", "seed": N, "effort": F,
//                "jobs": N, "place_restarts": K, "plan": true},
//    "deadline_s": 30.0,            // wall-clock budget; 0 = none
//    "geometry": false,             // emit + validate the 3D geometry
//    "stats": false}                // embed the full stats_json v2 report
//   {"cancel": "r1"}                // cancel an in-flight request
//
// Response (success):
//   {"id": "r1", "ok": true, "volume": V, "legal": true, "modules": M,
//    "nodes": N, "wall_s": S, "cache": {"decompose": "hit|miss|skip", ...},
//    "stats": {...}}                // only when the request asked for it
// Response (failure):
//   {"id": "r1", "ok": false,
//    "error": {"code": "bad_request|parse_error|cancelled|deadline_exceeded|
//              overloaded|internal", "message": "...",
//              "source": "...", "line": L}}   // parse_error only
//
// Scheduling: requests run on a fixed WorkerPool; the admission queue is
// bounded (--queue) and a full queue rejects immediately with "overloaded"
// rather than stalling the read loop — the client owns backoff/retry.
// Identical pure-prefix stages across requests are served from the shared
// content-hash stage cache (--cache-bytes, 0 disables; see
// core/stage_cache.h).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "common/json.h"
#include "common/parallel.h"
#include "common/socket.h"
#include "common/string_util.h"
#include "core/service.h"

namespace {

using namespace tqec;

struct ServeOptions {
  int threads = 0;  // 0 = one per hardware thread
  std::size_t queue = 64;
  std::int64_t cache_bytes = std::int64_t{256} << 20;
  std::string socket_path;  // empty = stdin/stdout
};

int usage() {
  std::fprintf(stderr,
               "usage: tqec_serve [--threads=N] [--queue=N]"
               " [--cache-bytes=N] [--socket=PATH]\n"
               "reads one JSON request per line on stdin (or PATH), writes\n"
               "one JSON response per line on stdout (or the connection)\n");
  return 2;
}

/// Serialized sink for response lines: workers finish in any order, the
/// mutex keeps each line atomic. Jobs hold the connection fd alive through
/// the shared_ptr even after the read loop moved on.
struct Output {
  explicit Output(int fd) : fd(fd) {}
  explicit Output(net::Fd conn) : owned(std::move(conn)), fd(owned.get()) {}
  std::mutex mutex;
  net::Fd owned;
  int fd;

  void write_line(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex);
    // A vanished client is not a server error; the response is dropped.
    (void)net::write_all(fd, line + "\n");
  }
};

/// In-flight request registry backing {"cancel": id}.
class InflightMap {
 public:
  void add(const std::string& id, CancelToken token) {
    if (id.empty()) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    tokens_[id] = std::move(token);
  }
  void remove(const std::string& id) {
    if (id.empty()) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    tokens_.erase(id);
  }
  bool cancel(const std::string& id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tokens_.find(id);
    if (it == tokens_.end()) return false;
    it->second.cancel();
    return true;
  }

 private:
  std::mutex mutex_;
  std::map<std::string, CancelToken> tokens_;
};

std::string quoted(const std::string& s) {
  return "\"" + json::escape(s) + "\"";
}

std::string error_line(const std::string& id, const std::string& code,
                       const std::string& message,
                       const std::string& source = {}, int line = 0) {
  std::string out = "{\"id\": " + quoted(id) +
                    ", \"ok\": false, \"error\": {\"code\": " + quoted(code) +
                    ", \"message\": " + quoted(message);
  if (!source.empty())
    out += ", \"source\": " + quoted(source) +
           ", \"line\": " + std::to_string(line);
  return out + "}}";
}

std::string response_line(const std::string& id, const CompileResponse& r,
                          bool want_stats) {
  if (!r.ok)
    return error_line(id, r.error.code_name(), r.error.message,
                      r.error.source, r.error.line);
  const core::CompileResult& res = r.result;
  const core::CacheUsage& c = res.cache;
  char wall[32];
  std::snprintf(wall, sizeof wall, "%.6f", r.wall_s);
  std::string out =
      "{\"id\": " + quoted(id) + ", \"ok\": true, \"volume\": " +
      std::to_string(res.volume) +
      ", \"legal\": " + (res.routed_legal ? "true" : "false") +
      ", \"modules\": " + std::to_string(res.modules) +
      ", \"nodes\": " + std::to_string(res.nodes) + ", \"wall_s\": " + wall +
      ", \"cache\": {\"enabled\": " + (c.enabled ? "true" : "false") +
      ", \"decompose\": " + quoted(c.decompose) +
      ", \"icm\": " + quoted(c.icm) +
      ", \"pd_graph\": " + quoted(c.pd_graph) +
      ", \"hits\": " + std::to_string(c.hits) +
      ", \"misses\": " + std::to_string(c.misses) +
      ", \"entries\": " + std::to_string(c.entries) +
      ", \"bytes\": " + std::to_string(c.bytes) +
      ", \"evictions\": " + std::to_string(c.evictions) + "}";
  if (want_stats) {
    // stats_json emits a complete JSON object: splice it in verbatim.
    out += ", \"stats\": " + core::stats_json(res);
  }
  return out + "}";
}

/// Translate a request's "options" object onto core::CompileOptions;
/// throws TqecError on unknown modes / wrong types (surfaced as
/// bad_request by the caller).
void apply_options(const json::Value& v, core::CompileOptions& opt) {
  if (const json::Value* m = v.find("mode")) {
    const std::string& mode = m->as_string();
    if (mode == "full") opt.mode = core::PipelineMode::Full;
    else if (mode == "dual") opt.mode = core::PipelineMode::DualOnly;
    else if (mode == "modular") opt.mode = core::PipelineMode::ModularOnly;
    else throw TqecError("unknown mode '" + mode + "'");
  }
  if (const json::Value* m = v.find("seed"))
    opt.seed = static_cast<std::uint64_t>(m->as_int());
  if (const json::Value* m = v.find("effort")) opt.effort = m->as_double();
  if (const json::Value* m = v.find("jobs"))
    opt.jobs = static_cast<int>(m->as_int());
  if (const json::Value* m = v.find("place_restarts"))
    opt.place_restarts = static_cast<int>(m->as_int());
  if (const json::Value* m = v.find("plan")) opt.plan_flips = m->as_bool();
}

class Server {
 public:
  Server(const ServeOptions& serve_opt)
      : compiler_(CompilerConfig{serve_opt.cache_bytes,
                                 serve_opt.cache_bytes > 0}),
        pool_(serve_opt.threads > 0
                  ? serve_opt.threads
                  : static_cast<int>(std::thread::hardware_concurrency()),
              serve_opt.queue) {}

  /// Handle one request line; every outcome becomes exactly one response
  /// line on `out` (now, for rejections; later, for admitted requests).
  void handle_line(const std::string& line,
                   const std::shared_ptr<Output>& out) {
    if (trim(line).empty()) return;
    json::Value doc;
    try {
      doc = json::parse(line);
      if (!doc.is_object()) throw TqecError("request must be a JSON object");
    } catch (const std::exception& e) {
      out->write_line(error_line("", "bad_request", e.what()));
      return;
    }

    if (const json::Value* cancel = doc.find("cancel")) {
      // Cancellation acknowledgement: ok reports whether the id was still
      // in flight (the compile's own response still arrives, as
      // "cancelled", once the pipeline reaches a stage boundary).
      std::string id;
      bool hit = false;
      try {
        id = cancel->as_string();
        hit = inflight_.cancel(id);
      } catch (const std::exception& e) {
        out->write_line(error_line("", "bad_request", e.what()));
        return;
      }
      out->write_line("{\"id\": " + quoted(id) +
                      ", \"ok\": " + (hit ? "true" : "false") +
                      ", \"cancelled\": " + (hit ? "true" : "false") + "}");
      return;
    }

    CompileRequest req;
    bool want_stats = false;
    try {
      if (const json::Value* v = doc.find("id")) req.id = v->as_string();
      if (const json::Value* v = doc.find("real"))
        req.real_text = v->as_string();
      if (const json::Value* v = doc.find("icm"))
        req.icm_text = v->as_string();
      if (const json::Value* v = doc.find("benchmark"))
        req.benchmark = v->as_string();
      if (const json::Value* v = doc.find("optimize"))
        req.optimize = v->as_bool();
      if (const json::Value* v = doc.find("deadline_s"))
        req.deadline_s = v->as_double();
      // Table statistics only by default; geometry emission is the one
      // expensive output a service client usually doesn't want.
      req.options.emit_geometry = false;
      if (const json::Value* v = doc.find("geometry"))
        req.options.emit_geometry = v->as_bool();
      if (const json::Value* v = doc.find("stats"))
        want_stats = v->as_bool();
      if (const json::Value* v = doc.find("options"))
        apply_options(*v, req.options);
    } catch (const std::exception& e) {
      out->write_line(error_line(req.id, "bad_request", e.what()));
      return;
    }

    req.options.cancel = CancelToken();
    const std::string id = req.id;
    inflight_.add(id, req.options.cancel);
    auto job = [this, req = std::move(req), want_stats, out] {
      const CompileResponse response = compiler_.compile(req);
      inflight_.remove(req.id);
      out->write_line(response_line(req.id, response, want_stats));
    };
    if (!pool_.submit(std::move(job))) {
      // Admission control: a full queue answers immediately instead of
      // wedging the read loop behind the slowest compile.
      inflight_.remove(id);
      out->write_line(error_line(id, "overloaded",
                                 "admission queue full; retry later"));
    }
  }

  void drain() { pool_.shutdown(); }

 private:
  Compiler compiler_;
  WorkerPool pool_;
  InflightMap inflight_;
};

int run_stdin(Server& server) {
  auto out = std::make_shared<Output>(1 /* stdout */);
  net::LineReader reader(0 /* stdin */);
  std::string line;
  while (reader.next_line(line)) server.handle_line(line, out);
  server.drain();
  return 0;
}

int run_socket(Server& server, const std::string& path) {
  net::UnixServerSocket listener(path);
  std::fprintf(stderr, "tqec_serve: listening on %s\n", path.c_str());
  for (;;) {
    net::Fd conn = listener.accept_client();
    if (!conn.valid()) break;
    auto out = std::make_shared<Output>(std::move(conn));
    net::LineReader reader(out->fd);
    std::string line;
    while (reader.next_line(line)) server.handle_line(line, out);
    // The connection object stays alive inside any still-queued jobs;
    // their responses go to the (possibly closed) fd and are dropped.
  }
  server.drain();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A client that disconnects mid-response must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  ServeOptions opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value_of =
          [&](const char* prefix) -> std::optional<std::string> {
        const std::size_t n = std::strlen(prefix);
        if (arg.compare(0, n, prefix) == 0) return arg.substr(n);
        return std::nullopt;
      };
      if (auto v = value_of("--threads=")) {
        opt.threads = parse_int(*v, "--threads");
      } else if (auto v = value_of("--queue=")) {
        opt.queue = static_cast<std::size_t>(parse_u64(*v, "--queue"));
      } else if (auto v = value_of("--cache-bytes=")) {
        opt.cache_bytes = parse_i64(*v, "--cache-bytes");
      } else if (auto v = value_of("--socket=")) {
        opt.socket_path = *v;
      } else {
        std::fprintf(stderr, "unknown option %s\n", arg.c_str());
        return usage();
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  try {
    Server server(opt);
    return opt.socket_path.empty() ? run_stdin(server)
                                   : run_socket(server, opt.socket_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
