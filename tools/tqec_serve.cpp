// tqec_serve — long-running compilation service over newline-delimited JSON.
//
//   tqec_serve [--threads=N] [--queue=N] [--cache-bytes=N] [--socket=PATH]
//              [--access-log=PATH] [--slow-s=F]
//
// Requests arrive one JSON object per line on stdin (default) or on a
// Unix-domain socket; responses leave one JSON object per line on stdout /
// the same connection, in completion order, correlated by "id".
//
// Request:
//   {"id": "r1",
//    "benchmark": "hwb-50-56" | "real": "<.real text>" | "icm": "<.icm text>",
//    "optimize": true,              // .real only: reversible peephole pass
//    "options": {"mode": "full|dual|modular", "seed": N, "effort": F,
//                "jobs": N, "place_restarts": K, "plan": true},
//    "shard_window": 0,             // time-axis sharding: ASAP layers per
//                                   // window (0 = off; see core/shard.h)
//    "shard_threads": 1,            // concurrent window compiles (never
//                                   // changes results)
//    "checkpoint_dir": "",          // per-window resume checkpoints
//    "deadline_s": 30.0,            // wall-clock budget; 0 = none
//    "geometry": false,             // emit + validate the 3D geometry
//    "stats": false}                // embed the full stats_json v2 report
//   {"cancel": "r1"}                // cancel an in-flight request
//
// Admin introspection (answered inline by the read loop — fast even when
// every worker is busy):
//   {"admin": "health"}        -> {"ok": true, "admin": "health",
//                                  "uptime_s": U, "inflight": N,
//                                  "queue_depth": Q, "workers": W}
//   {"admin": "metrics"}       -> {"ok": true, "admin": "metrics",
//                                  "serve": {counters, cache, histograms}}
//   {"admin": "metrics_text"}  -> {"ok": true, "admin": "metrics_text",
//                                  "text": "<OpenMetrics exposition>"}
// An optional "id" is echoed back. The metrics_text body is the standard
// Prometheus/OpenMetrics text format shipped as a JSON string; a scraper
// sidecar extracts the "text" field and serves it over HTTP.
//
// Response (success):
//   {"id": "r1", "ok": true, "volume": V, "legal": true, "modules": M,
//    "nodes": N, "wall_s": S, "cache": {"decompose": "hit|miss|skip", ...},
//    "shard": {"windows_total": W, "windows_resumed": R,
//              "seam_cells": C, ...},   // only for sharded requests
//    "stats": {...},                // only when the request asked for it
//    "debug": {...}}                // only for slow requests (see --slow-s)
// Response (failure):
//   {"id": "r1", "ok": false,
//    "error": {"code": "bad_request|parse_error|cancelled|deadline_exceeded|
//              overloaded|internal", "message": "...",
//              "source": "...", "line": L}}   // parse_error only
//
// Observability: the server keeps always-on latency histograms
// (serve.request_s, serve.queue_wait_s, serve.stage.*_s, plus the
// Compiler's serve.cache_lookup_s) and counters; the trace flight recorder
// runs permanently so a request slower than --slow-s attaches its span
// tree to the response's "debug" field. --access-log=PATH appends one JSON
// line per request (timestamp, id, input digest, options, queue wait,
// stage times, cache outcomes, result code). All of it is observational:
// responses are bit-identical with every surface on or off.
//
// Scheduling: requests run on a fixed WorkerPool; the admission queue is
// bounded (--queue) and a full queue rejects immediately with "overloaded"
// rather than stalling the read loop — the client owns backoff/retry.
// Identical pure-prefix stages across requests are served from the shared
// content-hash stage cache (--cache-bytes, 0 disables; see
// core/stage_cache.h).
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "common/hash.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/socket.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/service.h"

namespace {

using namespace tqec;

struct ServeOptions {
  int threads = 0;  // 0 = one per hardware thread
  std::size_t queue = 64;
  std::int64_t cache_bytes = std::int64_t{256} << 20;
  std::string socket_path;  // empty = stdin/stdout
  std::string access_log;   // empty = no access log
  double slow_s = 0;        // 0 = no slow-request capture
};

int usage() {
  std::fprintf(stderr,
               "usage: tqec_serve [--threads=N] [--queue=N]"
               " [--cache-bytes=N] [--socket=PATH]\n"
               "                  [--access-log=PATH] [--slow-s=F]\n"
               "reads one JSON request per line on stdin (or PATH), writes\n"
               "one JSON response per line on stdout (or the connection)\n");
  return 2;
}

/// Serialized sink for response lines: workers finish in any order, the
/// mutex keeps each line atomic. Jobs hold the connection fd alive through
/// the shared_ptr even after the read loop moved on.
struct Output {
  Output(int fd, std::atomic<std::uint64_t>* dropped)
      : fd(fd), dropped(dropped) {}
  Output(net::Fd conn, std::atomic<std::uint64_t>* dropped)
      : owned(std::move(conn)), fd(owned.get()), dropped(dropped) {}
  std::mutex mutex;
  net::Fd owned;
  int fd;
  std::atomic<std::uint64_t>* dropped;  // serve.responses_dropped

  /// Write one response line; false when the line was dropped. Drops are
  /// never silent: each one bumps the responses_dropped counter and logs
  /// the request id — at debug for a vanished client (EPIPE/ECONNRESET,
  /// not a server fault) and at warn for anything else.
  bool write_line(const std::string& line, const std::string& id = {}) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (net::write_all(fd, line + "\n")) return true;
    const int err = errno;  // write_all preserves the failing errno
    if (dropped != nullptr)
      dropped->fetch_add(1, std::memory_order_relaxed);
    const char* shown = id.empty() ? "<none>" : id.c_str();
    if (err == EPIPE || err == ECONNRESET) {
      TQEC_LOG_DEBUG("response dropped, client gone ("
                     << std::strerror(err) << "); id=" << shown);
    } else {
      TQEC_LOG_WARN("response write failed (" << std::strerror(err)
                                              << "); id=" << shown);
    }
    return false;
  }
};

/// In-flight request registry backing {"cancel": id}.
class InflightMap {
 public:
  void add(const std::string& id, CancelToken token) {
    if (id.empty()) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    tokens_[id] = std::move(token);
  }
  void remove(const std::string& id) {
    if (id.empty()) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    tokens_.erase(id);
  }
  bool cancel(const std::string& id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tokens_.find(id);
    if (it == tokens_.end()) return false;
    it->second.cancel();
    return true;
  }

 private:
  std::mutex mutex_;
  std::map<std::string, CancelToken> tokens_;
};

/// Append-only JSONL access log; the mutex keeps concurrent workers' lines
/// whole, the per-line flush keeps the file complete after a crash.
class AccessLog {
 public:
  explicit AccessLog(const std::string& path)
      : file_(std::fopen(path.c_str(), "a")) {
    if (file_ == nullptr)
      throw TqecError("cannot open access log '" + path +
                      "': " + std::strerror(errno));
  }
  ~AccessLog() {
    if (file_ != nullptr) std::fclose(file_);
  }
  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  void write(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::fputs(line.c_str(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }

 private:
  std::mutex mutex_;
  std::FILE* file_;
};

std::string quoted(const std::string& s) {
  return "\"" + json::escape(s) + "\"";
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string error_line(const std::string& id, const std::string& code,
                       const std::string& message,
                       const std::string& source = {}, int line = 0) {
  std::string out = "{\"id\": " + quoted(id) +
                    ", \"ok\": false, \"error\": {\"code\": " + quoted(code) +
                    ", \"message\": " + quoted(message);
  if (!source.empty())
    out += ", \"source\": " + quoted(source) +
           ", \"line\": " + std::to_string(line);
  return out + "}}";
}

std::string response_line(const std::string& id, const CompileResponse& r,
                          bool want_stats, const std::string& debug = {}) {
  if (!r.ok)
    return error_line(id, r.error.code_name(), r.error.message,
                      r.error.source, r.error.line);
  const core::CompileResult& res = r.result;
  const core::CacheUsage& c = res.cache;
  std::string out =
      "{\"id\": " + quoted(id) + ", \"ok\": true, \"volume\": " +
      std::to_string(res.volume) +
      ", \"legal\": " + (res.routed_legal ? "true" : "false") +
      ", \"modules\": " + std::to_string(res.modules) +
      ", \"nodes\": " + std::to_string(res.nodes) +
      ", \"wall_s\": " + fmt_double(r.wall_s) +
      ", \"cache\": {\"enabled\": " + (c.enabled ? "true" : "false") +
      ", \"decompose\": " + quoted(c.decompose) +
      ", \"icm\": " + quoted(c.icm) +
      ", \"pd_graph\": " + quoted(c.pd_graph) +
      ", \"hits\": " + std::to_string(c.hits) +
      ", \"misses\": " + std::to_string(c.misses) +
      ", \"entries\": " + std::to_string(c.entries) +
      ", \"bytes\": " + std::to_string(c.bytes) +
      ", \"evictions\": " + std::to_string(c.evictions) + "}";
  if (res.shard.enabled) {
    const core::ShardStats& sh = res.shard;
    out += ", \"shard\": {\"windows_total\": " +
           std::to_string(sh.windows_total) +
           ", \"windows_resumed\": " + std::to_string(sh.windows_resumed) +
           ", \"crossings\": " + std::to_string(sh.crossings) +
           ", \"stitches\": " + std::to_string(sh.stitches) +
           ", \"seam_cells\": " + std::to_string(sh.seam_cells) +
           ", \"stitch_s\": " + fmt_double(sh.stitch_s) + "}";
  }
  if (want_stats) {
    // stats_json emits a complete JSON object: splice it in verbatim.
    out += ", \"stats\": " + core::stats_json(res);
  }
  if (!debug.empty()) out += ", \"debug\": " + debug;
  return out + "}";
}

const char* mode_name(core::PipelineMode mode) {
  switch (mode) {
    case core::PipelineMode::DualOnly: return "dual";
    case core::PipelineMode::ModularOnly: return "modular";
    default: return "full";
  }
}

/// Translate a request's "options" object onto core::CompileOptions;
/// throws TqecError on unknown modes / wrong types (surfaced as
/// bad_request by the caller).
void apply_options(const json::Value& v, core::CompileOptions& opt) {
  if (const json::Value* m = v.find("mode")) {
    const std::string& mode = m->as_string();
    if (mode == "full") opt.mode = core::PipelineMode::Full;
    else if (mode == "dual") opt.mode = core::PipelineMode::DualOnly;
    else if (mode == "modular") opt.mode = core::PipelineMode::ModularOnly;
    else throw TqecError("unknown mode '" + mode + "'");
  }
  if (const json::Value* m = v.find("seed"))
    opt.seed = static_cast<std::uint64_t>(m->as_int());
  if (const json::Value* m = v.find("effort")) opt.effort = m->as_double();
  if (const json::Value* m = v.find("jobs"))
    opt.jobs = static_cast<int>(m->as_int());
  if (const json::Value* m = v.find("place_restarts"))
    opt.place_restarts = static_cast<int>(m->as_int());
  if (const json::Value* m = v.find("plan")) opt.plan_flips = m->as_bool();
}

/// What the access log remembers about a request before it runs.
struct RequestMeta {
  std::string id;
  const char* kind = "unknown";  // benchmark | real | icm | unknown
  std::string digest;            // 32-hex-char content digest of the input
  std::string options_json;      // applied options, already serialized
  std::uint64_t t_recv = 0;      // trace::now_ns() at the read loop
};

std::string digest_hex(const std::string& text) {
  Digest128 d;
  d.update(text);
  char buf[36];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(d.hi),
                static_cast<unsigned long long>(d.lo));
  return buf;
}

std::string options_json(const CompileRequest& req) {
  const core::CompileOptions& o = req.options;
  std::string out =
      std::string("{\"mode\": ") + quoted(mode_name(o.mode)) +
      ", \"seed\": " + std::to_string(o.seed) +
      ", \"effort\": " + fmt_double(o.effort) +
      ", \"jobs\": " + std::to_string(o.jobs) +
      ", \"place_restarts\": " + std::to_string(o.place_restarts) +
      ", \"plan\": " + (o.plan_flips ? "true" : "false");
  if (req.shard.window > 0)
    out += ", \"shard_window\": " + std::to_string(req.shard.window) +
           ", \"shard_threads\": " + std::to_string(req.shard.threads);
  return out + "}";
}

/// Completed spans as a JSON array (names, process-relative start, dur).
std::string spans_json(const std::vector<trace::FlightRecord>& spans) {
  std::string out = "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const trace::FlightRecord& s = spans[i];
    if (i > 0) out += ", ";
    out += "{\"name\": " + quoted(s.name ? s.name : "") +
           ", \"start_s\": " +
           fmt_double(static_cast<double>(s.start_ns) / 1e9) +
           ", \"dur_s\": " + fmt_double(static_cast<double>(s.dur_ns) / 1e9) +
           ", \"tid\": " + std::to_string(s.tid) + "}";
  }
  return out + "]";
}

/// Always-on service counters. Plain relaxed atomics: each is a
/// commutative sum, so totals are deterministic for any worker count.
struct ServerStats {
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> requests_ok{0};
  std::atomic<std::uint64_t> requests_error{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> cancel_requests{0};
  std::atomic<std::uint64_t> admin_requests{0};
  std::atomic<std::uint64_t> responses_dropped{0};
  std::atomic<std::uint64_t> slow_requests{0};
  /// Time-axis sharding totals over all sharded requests (core/shard.h).
  std::atomic<std::uint64_t> sharded_requests{0};
  std::atomic<std::uint64_t> windows_total{0};
  std::atomic<std::uint64_t> windows_resumed{0};
  std::atomic<std::uint64_t> seam_cells{0};
  /// Requests admitted but not yet answered (queued + running).
  std::atomic<std::int64_t> inflight{0};
};

class Server {
 public:
  Server(const ServeOptions& serve_opt)
      : compiler_(CompilerConfig{serve_opt.cache_bytes,
                                 serve_opt.cache_bytes > 0}),
        pool_(serve_opt.threads > 0
                  ? serve_opt.threads
                  : static_cast<int>(std::thread::hardware_concurrency()),
              serve_opt.queue),
        slow_ns_(serve_opt.slow_s > 0
                     ? static_cast<std::uint64_t>(serve_opt.slow_s * 1e9)
                     : 0),
        slow_s_(serve_opt.slow_s),
        start_ns_(trace::now_ns()) {
    if (!serve_opt.access_log.empty())
      access_log_ = std::make_unique<AccessLog>(serve_opt.access_log);
    // The flight recorder stays on for the server's lifetime: bounded
    // memory, lock-free record path, and it is what lets --slow-s attach
    // a span tree to a slow response after the fact.
    trace::set_flight_recorder_enabled(true);
  }

  std::atomic<std::uint64_t>* dropped_counter() {
    return &stats_.responses_dropped;
  }

  /// Handle one request line; every outcome becomes exactly one response
  /// line on `out` (now, for rejections and admin; later, for admitted
  /// requests) and — for compile requests — exactly one access-log line.
  void handle_line(const std::string& line,
                   const std::shared_ptr<Output>& out) {
    if (trim(line).empty()) return;
    const std::uint64_t t_recv = trace::now_ns();
    json::Value doc;
    try {
      doc = json::parse(line);
      if (!doc.is_object()) throw TqecError("request must be a JSON object");
    } catch (const std::exception& e) {
      RequestMeta meta;
      meta.t_recv = t_recv;
      finish_rejected(meta, "bad_request", e.what(), out);
      return;
    }

    if (const json::Value* cancel = doc.find("cancel")) {
      // Cancellation acknowledgement: ok reports whether the id was still
      // in flight (the compile's own response still arrives, as
      // "cancelled", once the pipeline reaches a stage boundary).
      stats_.cancel_requests.fetch_add(1, std::memory_order_relaxed);
      std::string id;
      bool hit = false;
      try {
        id = cancel->as_string();
        hit = inflight_.cancel(id);
      } catch (const std::exception& e) {
        out->write_line(error_line("", "bad_request", e.what()));
        return;
      }
      out->write_line("{\"id\": " + quoted(id) +
                      ", \"ok\": " + (hit ? "true" : "false") +
                      ", \"cancelled\": " + (hit ? "true" : "false") + "}",
                      id);
      return;
    }

    if (const json::Value* admin = doc.find("admin")) {
      handle_admin(*admin, doc, out);
      return;
    }

    CompileRequest req;
    RequestMeta meta;
    meta.t_recv = t_recv;
    bool want_stats = false;
    try {
      if (const json::Value* v = doc.find("id")) req.id = v->as_string();
      if (const json::Value* v = doc.find("real"))
        req.real_text = v->as_string();
      if (const json::Value* v = doc.find("icm"))
        req.icm_text = v->as_string();
      if (const json::Value* v = doc.find("benchmark"))
        req.benchmark = v->as_string();
      if (const json::Value* v = doc.find("optimize"))
        req.optimize = v->as_bool();
      if (const json::Value* v = doc.find("deadline_s"))
        req.deadline_s = v->as_double();
      // Table statistics only by default; geometry emission is the one
      // expensive output a service client usually doesn't want.
      req.options.emit_geometry = false;
      if (const json::Value* v = doc.find("geometry"))
        req.options.emit_geometry = v->as_bool();
      if (const json::Value* v = doc.find("stats"))
        want_stats = v->as_bool();
      if (const json::Value* v = doc.find("options"))
        apply_options(*v, req.options);
      if (const json::Value* v = doc.find("shard_window"))
        req.shard.window = static_cast<int>(v->as_int());
      if (const json::Value* v = doc.find("shard_threads"))
        req.shard.threads = static_cast<int>(v->as_int());
      if (const json::Value* v = doc.find("checkpoint_dir"))
        req.shard.checkpoint_dir = v->as_string();
    } catch (const std::exception& e) {
      meta.id = req.id;
      finish_rejected(meta, "bad_request", e.what(), out);
      return;
    }

    meta.id = req.id;
    if (!req.benchmark.empty()) {
      meta.kind = "benchmark";
      meta.digest = digest_hex(req.benchmark);
    } else if (!req.real_text.empty()) {
      meta.kind = "real";
      meta.digest = digest_hex(req.real_text);
    } else if (!req.icm_text.empty()) {
      meta.kind = "icm";
      meta.digest = digest_hex(req.icm_text);
    }
    meta.options_json = options_json(req);

    req.options.cancel = CancelToken();
    const std::string id = req.id;
    inflight_.add(id, req.options.cancel);
    stats_.inflight.fetch_add(1, std::memory_order_relaxed);
    auto job = [this, req = std::move(req), meta = std::move(meta),
                want_stats, out] {
      run_request(req, meta, want_stats, out);
    };
    if (!pool_.submit(std::move(job))) {
      // Admission control: a full queue answers immediately instead of
      // wedging the read loop behind the slowest compile.
      inflight_.remove(id);
      stats_.inflight.fetch_sub(1, std::memory_order_relaxed);
      stats_.overloaded.fetch_add(1, std::memory_order_relaxed);
      RequestMeta rejected;
      rejected.id = id;
      rejected.t_recv = t_recv;
      finish_rejected(rejected, "overloaded",
                      "admission queue full; retry later", out);
    }
  }

  void drain() { pool_.shutdown(); }

 private:
  /// Run one admitted request on a worker thread: compile, record the
  /// latency histograms, capture a slow request's spans, answer, log.
  void run_request(const CompileRequest& req, const RequestMeta& meta,
                   bool want_stats, const std::shared_ptr<Output>& out) {
    const std::uint64_t t_start = trace::now_ns();
    const double queue_wait_s =
        static_cast<double>(t_start - meta.t_recv) / 1e9;
    queue_wait_s_.record_s(queue_wait_s);

    const CompileResponse response = compiler_.compile(req);

    inflight_.remove(req.id);
    stats_.inflight.fetch_sub(1, std::memory_order_relaxed);
    const std::uint64_t t_end = trace::now_ns();
    const double wall_s = static_cast<double>(t_end - meta.t_recv) / 1e9;
    request_s_.record_s(wall_s);
    stats_.requests_total.fetch_add(1, std::memory_order_relaxed);
    std::string debug;
    if (response.ok) {
      stats_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      record_stage_times(response.result.timings);
      if (response.result.shard.enabled) {
        const core::ShardStats& sh = response.result.shard;
        stats_.sharded_requests.fetch_add(1, std::memory_order_relaxed);
        stats_.windows_total.fetch_add(
            static_cast<std::uint64_t>(sh.windows_total),
            std::memory_order_relaxed);
        stats_.windows_resumed.fetch_add(
            static_cast<std::uint64_t>(sh.windows_resumed),
            std::memory_order_relaxed);
        stats_.seam_cells.fetch_add(
            static_cast<std::uint64_t>(sh.seam_cells),
            std::memory_order_relaxed);
      }
    } else {
      stats_.requests_error.fetch_add(1, std::memory_order_relaxed);
    }
    const bool slow = slow_ns_ > 0 && t_end - t_start >= slow_ns_;
    if (slow) {
      stats_.slow_requests.fetch_add(1, std::memory_order_relaxed);
      // This worker thread ran the whole compile, so its flight ring
      // filtered to spans that started after t_start is exactly this
      // request's (top-level) span tree.
      debug = "{\"slow\": true, \"threshold_s\": " + fmt_double(slow_s_) +
              ", \"spans\": " +
              spans_json(trace::flight_records_this_thread(t_start)) + "}";
    }
    out->write_line(response_line(req.id, response, want_stats, debug),
                    req.id);
    if (access_log_ != nullptr)
      access_log_->write(access_line(meta, queue_wait_s, wall_s, &response,
                                     debug));
  }

  /// Answer a request rejected before it reached a worker (bad JSON,
  /// bad_request, overloaded). Rejections are requests too: they count,
  /// they land in serve.request_s, and they get an access-log line — so
  /// requests_total always equals the request_s sample count.
  void finish_rejected(const RequestMeta& meta, const std::string& code,
                       const std::string& message,
                       const std::shared_ptr<Output>& out) {
    const double wall_s =
        static_cast<double>(trace::now_ns() - meta.t_recv) / 1e9;
    request_s_.record_s(wall_s);
    stats_.requests_total.fetch_add(1, std::memory_order_relaxed);
    stats_.requests_error.fetch_add(1, std::memory_order_relaxed);
    out->write_line(error_line(meta.id, code, message), meta.id);
    if (access_log_ != nullptr)
      access_log_->write(access_line_rejected(meta, wall_s, code));
  }

  void record_stage_times(const core::StageTimings& t) {
    // Only stages that actually ran; a zero time means the stage was
    // skipped by the pipeline mode, not that it took zero seconds.
    if (t.pd_graph_s > 0) stage_pd_graph_s_.record_s(t.pd_graph_s);
    if (t.ishape_s > 0) stage_ishape_s_.record_s(t.ishape_s);
    if (t.primal_bridge_s > 0)
      stage_primal_bridge_s_.record_s(t.primal_bridge_s);
    if (t.dual_bridge_s > 0) stage_dual_bridge_s_.record_s(t.dual_bridge_s);
    if (t.place_s > 0) stage_place_s_.record_s(t.place_s);
    if (t.route_s > 0) stage_route_s_.record_s(t.route_s);
  }

  // -- access log -----------------------------------------------------------

  std::string access_line_common(const RequestMeta& meta, double wall_s,
                                 const std::string& code) const {
    return "{\"ts\": " + quoted(iso8601_utc_now()) +
           ", \"id\": " + quoted(meta.id) + ", \"kind\": \"" + meta.kind +
           "\", \"digest\": " + quoted(meta.digest) + ", \"options\": " +
           (meta.options_json.empty() ? std::string("{}")
                                      : meta.options_json) +
           ", \"wall_s\": " + fmt_double(wall_s) +
           ", \"code\": " + quoted(code);
  }

  std::string access_line_rejected(const RequestMeta& meta, double wall_s,
                                   const std::string& code) const {
    return access_line_common(meta, wall_s, code) + "}";
  }

  std::string access_line(const RequestMeta& meta, double queue_wait_s,
                          double wall_s, const CompileResponse* r,
                          const std::string& debug) const {
    const std::string code = r->ok ? "ok" : r->error.code_name();
    std::string out = access_line_common(meta, wall_s, code) +
                      ", \"queue_wait_s\": " + fmt_double(queue_wait_s);
    if (r->ok) {
      const core::CompileResult& res = r->result;
      const core::StageTimings& t = res.timings;
      const core::CacheUsage& c = res.cache;
      out += ", \"volume\": " + std::to_string(res.volume) +
             ", \"peak_rss_bytes\": " + std::to_string(res.peak_rss_bytes) +
             ", \"stages\": {\"pd_graph_s\": " + fmt_double(t.pd_graph_s) +
             ", \"ishape_s\": " + fmt_double(t.ishape_s) +
             ", \"primal_bridge_s\": " + fmt_double(t.primal_bridge_s) +
             ", \"dual_bridge_s\": " + fmt_double(t.dual_bridge_s) +
             ", \"place_s\": " + fmt_double(t.place_s) +
             ", \"route_s\": " + fmt_double(t.route_s) +
             ", \"total_s\": " + fmt_double(t.total_s) + "}" +
             ", \"cache\": {\"decompose\": " + quoted(c.decompose) +
             ", \"icm\": " + quoted(c.icm) +
             ", \"pd_graph\": " + quoted(c.pd_graph) +
             ", \"hits\": " + std::to_string(c.hits) +
             ", \"misses\": " + std::to_string(c.misses) + "}";
      if (res.shard.enabled)
        out += ", \"shard\": {\"windows_total\": " +
               std::to_string(res.shard.windows_total) +
               ", \"windows_resumed\": " +
               std::to_string(res.shard.windows_resumed) +
               ", \"seam_cells\": " + std::to_string(res.shard.seam_cells) +
               "}";
    }
    if (!debug.empty()) out += ", \"slow\": true, \"debug\": " + debug;
    return out + "}";
  }

  // -- admin protocol -------------------------------------------------------

  void handle_admin(const json::Value& admin, const json::Value& doc,
                    const std::shared_ptr<Output>& out) {
    stats_.admin_requests.fetch_add(1, std::memory_order_relaxed);
    std::string what, id;
    try {
      what = admin.as_string();
      if (const json::Value* v = doc.find("id")) id = v->as_string();
    } catch (const std::exception& e) {
      out->write_line(error_line(id, "bad_request", e.what()), id);
      return;
    }
    if (what == "health") {
      out->write_line(health_line(id), id);
    } else if (what == "metrics") {
      out->write_line(metrics_line(id), id);
    } else if (what == "metrics_text") {
      out->write_line("{\"id\": " + quoted(id) +
                          ", \"ok\": true, \"admin\": \"metrics_text\", "
                          "\"text\": " +
                          quoted(openmetrics()) + "}",
                      id);
    } else {
      out->write_line(error_line(id, "bad_request",
                                 "unknown admin command '" + what +
                                     "' (health, metrics, metrics_text)"),
                      id);
    }
  }

  double uptime_s() const {
    return static_cast<double>(trace::now_ns() - start_ns_) / 1e9;
  }

  std::string health_line(const std::string& id) {
    return "{\"id\": " + quoted(id) +
           ", \"ok\": true, \"admin\": \"health\", \"uptime_s\": " +
           fmt_double(uptime_s()) + ", \"inflight\": " +
           std::to_string(stats_.inflight.load(std::memory_order_relaxed)) +
           ", \"queue_depth\": " + std::to_string(pool_.pending()) +
           ", \"workers\": " + std::to_string(pool_.worker_count()) + "}";
  }

  /// The serve histograms that currently hold samples, in a fixed order.
  std::vector<trace::HistogramSnapshot> histogram_snapshots() const {
    std::vector<trace::HistogramSnapshot> out;
    const trace::Histogram* all[] = {
        &request_s_,        &queue_wait_s_,         &stage_pd_graph_s_,
        &stage_ishape_s_,   &stage_primal_bridge_s_, &stage_dual_bridge_s_,
        &stage_place_s_,    &stage_route_s_};
    for (const trace::Histogram* h : all) {
      trace::HistogramSnapshot s = h->snapshot();
      if (s.count > 0) out.push_back(std::move(s));
    }
    trace::HistogramSnapshot lookup = compiler_.cache_lookup_latency();
    if (lookup.count > 0) out.push_back(std::move(lookup));
    return out;
  }

  std::vector<std::pair<std::string, long long>> counter_values() const {
    const core::StageCache::Stats cache = compiler_.cache_stats();
    const auto v = [](const std::atomic<std::uint64_t>& a) {
      return static_cast<long long>(a.load(std::memory_order_relaxed));
    };
    return {{"requests", v(stats_.requests_total)},
            {"requests_ok", v(stats_.requests_ok)},
            {"requests_error", v(stats_.requests_error)},
            {"overloaded", v(stats_.overloaded)},
            {"cancel_requests", v(stats_.cancel_requests)},
            {"admin_requests", v(stats_.admin_requests)},
            {"responses_dropped", v(stats_.responses_dropped)},
            {"slow_requests", v(stats_.slow_requests)},
            {"sharded_requests", v(stats_.sharded_requests)},
            {"windows_total", v(stats_.windows_total)},
            {"windows_resumed", v(stats_.windows_resumed)},
            {"seam_cells", v(stats_.seam_cells)},
            {"cache_hits", static_cast<long long>(cache.hits)},
            {"cache_misses", static_cast<long long>(cache.misses)},
            {"cache_insertions", static_cast<long long>(cache.insertions)},
            {"cache_evictions", static_cast<long long>(cache.evictions)}};
  }

  std::string metrics_line(const std::string& id) {
    const core::StageCache::Stats cache = compiler_.cache_stats();
    std::string out = "{\"id\": " + quoted(id) +
                      ", \"ok\": true, \"admin\": \"metrics\", \"serve\": "
                      "{\"uptime_s\": " +
                      fmt_double(uptime_s()) + ", \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counter_values()) {
      if (!first) out += ", ";
      first = false;
      out += quoted(name) + ": " + std::to_string(value);
    }
    out += "}, \"inflight\": " +
           std::to_string(stats_.inflight.load(std::memory_order_relaxed)) +
           ", \"queue_depth\": " + std::to_string(pool_.pending()) +
           ", \"workers\": " + std::to_string(pool_.worker_count()) +
           ", \"peak_rss_bytes\": " + std::to_string(trace::peak_rss_bytes()) +
           ", \"cache\": {\"hits\": " + std::to_string(cache.hits) +
           ", \"misses\": " + std::to_string(cache.misses) +
           ", \"insertions\": " + std::to_string(cache.insertions) +
           ", \"evictions\": " + std::to_string(cache.evictions) +
           ", \"entries\": " + std::to_string(cache.entries) +
           ", \"bytes\": " + std::to_string(cache.bytes) +
           ", \"budget\": " + std::to_string(cache.budget) +
           "}, \"histograms\": {";
    first = true;
    for (const trace::HistogramSnapshot& h : histogram_snapshots()) {
      if (!first) out += ", ";
      first = false;
      out += quoted(h.name) + ": " + trace::histogram_json(h);
    }
    return out + "}}}";
  }

  /// "serve.request_s" -> "tqec_serve_request_s" etc.
  static std::string prom_name(const std::string& name) {
    std::string out = "tqec_";
    for (const char c : name) out += c == '.' ? '_' : c;
    return out;
  }

  std::string openmetrics() const {
    const core::StageCache::Stats cache = compiler_.cache_stats();
    std::vector<std::pair<std::string, long long>> counters;
    for (const auto& [name, value] : counter_values())
      counters.emplace_back("tqec_serve_" + name, value);
    const std::vector<std::pair<std::string, double>> gauges = {
        {"tqec_serve_uptime_s", uptime_s()},
        {"tqec_serve_inflight",
         static_cast<double>(stats_.inflight.load(std::memory_order_relaxed))},
        {"tqec_serve_queue_depth", static_cast<double>(pool_.pending())},
        {"tqec_serve_workers", static_cast<double>(pool_.worker_count())},
        {"tqec_serve_cache_entries", static_cast<double>(cache.entries)},
        {"tqec_serve_cache_bytes", static_cast<double>(cache.bytes)},
        {"tqec_process_peak_rss_bytes",
         static_cast<double>(trace::peak_rss_bytes())}};
    std::vector<trace::HistogramSnapshot> histograms =
        histogram_snapshots();
    for (trace::HistogramSnapshot& h : histograms) h.name = prom_name(h.name);
    return trace::openmetrics_text(counters, gauges, histograms);
  }

  Compiler compiler_;
  WorkerPool pool_;
  InflightMap inflight_;
  ServerStats stats_;
  std::unique_ptr<AccessLog> access_log_;
  const std::uint64_t slow_ns_;
  const double slow_s_;
  const std::uint64_t start_ns_;

  // Always-on latency histograms (lock-free record path; see
  // common/trace.h — aggregates are deterministic for any worker count).
  trace::Histogram request_s_{"serve.request_s"};
  trace::Histogram queue_wait_s_{"serve.queue_wait_s"};
  trace::Histogram stage_pd_graph_s_{"serve.stage.pd_graph_s"};
  trace::Histogram stage_ishape_s_{"serve.stage.ishape_s"};
  trace::Histogram stage_primal_bridge_s_{"serve.stage.primal_bridge_s"};
  trace::Histogram stage_dual_bridge_s_{"serve.stage.dual_bridge_s"};
  trace::Histogram stage_place_s_{"serve.stage.place_s"};
  trace::Histogram stage_route_s_{"serve.stage.route_s"};
};

int run_stdin(Server& server) {
  auto out = std::make_shared<Output>(1 /* stdout */,
                                      server.dropped_counter());
  net::LineReader reader(0 /* stdin */);
  std::string line;
  while (reader.next_line(line)) server.handle_line(line, out);
  server.drain();
  return 0;
}

int run_socket(Server& server, const std::string& path) {
  net::UnixServerSocket listener(path);
  std::fprintf(stderr, "tqec_serve: listening on %s\n", path.c_str());
  for (;;) {
    net::Fd conn = listener.accept_client();
    if (!conn.valid()) break;
    auto out = std::make_shared<Output>(std::move(conn),
                                        server.dropped_counter());
    net::LineReader reader(out->fd);
    std::string line;
    while (reader.next_line(line)) server.handle_line(line, out);
    // The connection object stays alive inside any still-queued jobs;
    // their responses go to the (possibly closed) fd and are counted as
    // dropped by Output::write_line.
  }
  server.drain();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A client that disconnects mid-response must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  ServeOptions opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value_of =
          [&](const char* prefix) -> std::optional<std::string> {
        const std::size_t n = std::strlen(prefix);
        if (arg.compare(0, n, prefix) == 0) return arg.substr(n);
        return std::nullopt;
      };
      if (auto v = value_of("--threads=")) {
        opt.threads = parse_int(*v, "--threads");
      } else if (auto v = value_of("--queue=")) {
        opt.queue = static_cast<std::size_t>(parse_u64(*v, "--queue"));
      } else if (auto v = value_of("--cache-bytes=")) {
        opt.cache_bytes = parse_i64(*v, "--cache-bytes");
      } else if (auto v = value_of("--socket=")) {
        opt.socket_path = *v;
      } else if (auto v = value_of("--access-log=")) {
        opt.access_log = *v;
      } else if (auto v = value_of("--slow-s=")) {
        opt.slow_s = parse_double(*v, "--slow-s");
      } else {
        std::fprintf(stderr, "unknown option %s\n", arg.c_str());
        return usage();
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  try {
    Server server(opt);
    return opt.socket_path.empty() ? run_stdin(server)
                                   : run_socket(server, opt.socket_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
